"""Quickstart: define approximate constraints and let queries use them.

Builds a small table whose ``email`` column is *nearly* unique and whose
``ts`` column is *nearly* sorted, creates PatchIndexes for both, and
shows how the optimizer exploits them for distinct and sort queries —
and how the indexes survive inserts, modifies and deletes without being
recomputed.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import NearlySortedColumn, NearlyUniqueColumn, PatchIndexManager
from repro.plan import DistinctNode, Optimizer, ScanNode, SortNode, execute_plan
from repro.storage import Catalog, Table


def main() -> None:
    rng = np.random.default_rng(0)
    n = 50_000

    # a user table: emails are unique except a few shared team accounts,
    # timestamps arrive almost in order except late events
    email = np.arange(n, dtype=np.int64) + 1_000_000  # surrogate for strings
    shared = rng.choice(n, size=500, replace=False)
    email[shared] = rng.integers(0, 50, size=500)
    ts = np.arange(n, dtype=np.int64) * 10
    late = rng.choice(n, size=800, replace=False)
    ts[late] = rng.integers(0, 10 * n, size=800)
    users = Table.from_arrays("users", {"id": np.arange(n), "email": email, "ts": ts})

    catalog = Catalog()
    catalog.register(users)
    manager = PatchIndexManager(catalog)

    nuc = manager.create(users, "email", NearlyUniqueColumn())
    nsc = manager.create(users, "ts", NearlySortedColumn())
    print(f"NUC on users.email: {nuc.num_patches} patches "
          f"(e = {nuc.exception_rate:.2%})")
    print(f"NSC on users.ts:    {nsc.num_patches} patches "
          f"(e = {nsc.exception_rate:.2%})")

    # --- queries -------------------------------------------------------
    optimizer = Optimizer(catalog, manager, use_cost_model=True)

    distinct = DistinctNode(ScanNode("users", ["email"]), ["email"])
    optimized = optimizer.optimize(distinct)
    print("\nDistinct plan after PatchIndex optimization:")
    print(optimized.explain())
    result = execute_plan(optimized, catalog)
    print(f"distinct emails: {result.num_rows}")

    sort = SortNode(ScanNode("users", ["ts"]), ["ts"])
    optimized_sort = optimizer.optimize(sort)
    out = execute_plan(optimized_sort, catalog)
    assert bool(np.all(np.diff(out.column("ts")) >= 0))
    print(f"sorted {out.num_rows} rows via merge of pre-sorted flow + patches")

    # --- updates: no recomputation, no aborts ---------------------------
    users.insert({"id": np.array([n]), "email": np.array([email[0]]),  # collision!
                  "ts": np.array([5])})                                # out of order!
    print(f"\nafter insert: NUC e = {nuc.exception_rate:.2%}, "
          f"NSC e = {nsc.exception_rate:.2%}")
    users.delete(np.array([0, 1, 2]))
    print(f"after delete of 3 rows: index rows = {nuc.num_rows}, "
          f"table rows = {users.num_rows}")
    assert nuc.verify() and nsc.verify()
    print("indexes verified: exclusion of patches satisfies both constraints")


if __name__ == "__main__":
    main()
