"""SQL analytics over PatchIndex-optimized tables.

Shows that plain SQL text benefits from approximate constraints: the
session routes SELECTs through the optimizer, so distinct / sort / join
queries get the §3.3 rewrites, while INSERT/UPDATE/DELETE statements
drive the §5 index maintenance.

Run:  python examples/sql_analytics.py
"""

import numpy as np

from repro.core import NearlySortedColumn, NearlyUniqueColumn, PatchIndexManager
from repro.sql import SQLSession
from repro.storage import Catalog, Table


def main() -> None:
    rng = np.random.default_rng(3)
    n = 40_000
    sku = np.arange(n, dtype=np.int64) + 500_000
    dup = rng.choice(n, size=400, replace=False)
    sku[dup] = rng.integers(0, 100, size=400)  # shared SKUs
    ts = np.arange(n, dtype=np.int64)
    late = rng.choice(n, size=600, replace=False)
    ts[late] = rng.integers(0, n, size=600)  # late-arriving events
    sales = Table.from_arrays(
        "sales",
        {"sid": np.arange(n), "sku": sku, "ts": ts,
         "amount": (rng.random(n) * 100).round(2)},
    )

    catalog = Catalog()
    catalog.register(sales)
    manager = PatchIndexManager(catalog)
    manager.create(sales, "sku", NearlyUniqueColumn())
    manager.create(sales, "ts", NearlySortedColumn())

    db = SQLSession(catalog, index_manager=manager, use_cost_model=False)

    print("plan for SELECT DISTINCT sku FROM sales:")
    print(db.explain("SELECT DISTINCT sku FROM sales"))
    out = db.execute("SELECT DISTINCT sku FROM sales")
    print(f"-> {out.num_rows} distinct SKUs\n")

    print("plan for SELECT * FROM sales ORDER BY ts:")
    print(db.explain("SELECT * FROM sales ORDER BY ts LIMIT 5"))
    out = db.execute("SELECT * FROM sales ORDER BY ts LIMIT 5")
    print(f"-> first timestamps: {out.column('ts').tolist()}\n")

    # DML maintains the indexes as a side effect of the statements
    db.execute("INSERT INTO sales (sid, sku, ts, amount) VALUES "
               "(40000, 7, 100, 9.99)")          # SKU 7 collides, ts=100 late
    db.execute("UPDATE sales SET ts = 0 WHERE sid = 200")
    db.execute("DELETE FROM sales WHERE amount < 0.05")
    nuc = manager.get("sales", "sku")
    nsc = manager.get("sales", "ts")
    print(f"after SQL DML: NUC e = {nuc.exception_rate:.3%}, "
          f"NSC e = {nsc.exception_rate:.3%}")
    assert nuc.verify() and nsc.verify()

    out = db.execute(
        "SELECT sku, COUNT(*) AS n, SUM(amount) AS total FROM sales "
        "WHERE sku < 100 GROUP BY sku ORDER BY total DESC LIMIT 3"
    )
    print("\ntop shared SKUs by revenue:")
    for row in out.to_rows():
        print(f"  sku={row[0]:<4} n={row[1]:<4} total={row[2]:.2f}")


if __name__ == "__main__":
    main()
