"""Constraint drift: perfect constraints becoming approximate over time.

The paper's closing argument (§6.3): with a classical UNIQUE
constraint, an insert that collides must be *aborted*.  A PatchIndex
instead lets the update through and transitions the constraint from
perfect to approximate, while queries keep exploiting it.  This example
simulates an HTAP-style trickle of updates against an initially clean
table and tracks the exception rate, then shows the monitoring hook
that triggers a global recomputation when drift exceeds a threshold.

Run:  python examples/constraint_drift.py
"""

import numpy as np

from repro.core import NearlyUniqueColumn, PatchIndexManager
from repro.plan import DistinctNode, Optimizer, ScanNode, execute_plan
from repro.storage import Catalog, Table


def main() -> None:
    rng = np.random.default_rng(7)
    n = 30_000
    orders = Table.from_arrays(
        "order_ids",
        {"id": np.arange(n), "order_no": np.arange(n, dtype=np.int64)},
    )
    catalog = Catalog()
    catalog.register(orders)
    manager = PatchIndexManager(catalog)
    handle = manager.create(orders, "order_no", NearlyUniqueColumn())
    print(f"initially perfect: e = {handle.exception_rate:.3%} "
          f"({handle.num_patches} patches)\n")

    # trickle updates: occasionally a duplicate order number arrives
    # (classic constraints would abort these statements)
    for day in range(10):
        fresh = np.arange(50, dtype=np.int64) + n + day * 50
        dup_count = rng.integers(1, 6)
        dups = rng.integers(0, n, size=dup_count)
        order_no = np.concatenate([fresh, orders.column("order_no")[dups]])
        ids = np.arange(len(order_no)) + orders.num_rows
        orders.insert({"id": ids, "order_no": order_no})
        print(f"day {day}: inserted {len(order_no):3d} orders "
              f"({dup_count} duplicates) -> e = {handle.exception_rate:.3%}")
    assert handle.verify()

    # queries still exploit the (now approximate) constraint
    plan = Optimizer(catalog, manager, use_cost_model=False).optimize(
        DistinctNode(ScanNode("order_ids", ["order_no"]), ["order_no"])
    )
    result = execute_plan(plan, catalog)
    print(f"\ndistinct order numbers via PatchIndex plan: {result.num_rows}")

    # drift monitoring: recompute once the exception rate crosses 1%
    manager.drop("order_ids", "order_no")
    monitored = manager.create(
        orders, "order_no", NearlyUniqueColumn(), recompute_threshold=0.01
    )
    print(f"\nmonitored index attached (threshold 1%), e = "
          f"{monitored.exception_rate:.3%}")
    dups = orders.column("order_no")[rng.integers(0, n, size=600)]
    orders.insert({
        "id": np.arange(len(dups)) + orders.num_rows,
        "order_no": dups,
    })
    print(f"after a burst of 600 duplicates: e = {monitored.exception_rate:.3%} "
          "(a recompute fired if the threshold was crossed)")
    assert monitored.verify()


if __name__ == "__main__":
    main()
