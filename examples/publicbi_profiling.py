"""Profiling datasets for approximate constraints (paper Figure 1).

Synthesizes the three PublicBI-like datasets, runs NUC/NSC discovery
over every column and prints, per dataset, the histogram of columns by
constraint match rate — the workflow that motivates PatchIndexes:
real-world data rarely satisfies perfect constraints, but many columns
are *nearly* unique or *nearly* sorted.

Run:  python examples/publicbi_profiling.py
"""

from repro.core import discover_nsc_patches, discover_nuc_patches
from repro.workloads import PUBLICBI_SPECS, generate_publicbi_dataset
from repro.workloads.publicbi import profile_histogram


def profile(table, constraint: str):
    rates = {}
    for name in table.schema.names:
        values = table.column(name)
        if constraint == "nsc":
            patches, _ = discover_nsc_patches(values)
        else:
            patches = discover_nuc_patches(values)
        rates[name] = 1.0 - len(patches) / len(values)
    return rates


def main() -> None:
    for name, spec in PUBLICBI_SPECS.items():
        table = generate_publicbi_dataset(spec, num_rows=8_000, seed=1)
        rates = profile(table, spec.constraint)
        matching = {c: r for c, r in rates.items() if r > 0.05}
        hist = profile_histogram(list(matching.values()))
        print(f"\n{name} ({spec.constraint.upper()}), "
              f"{len(table.schema)} columns, {table.num_rows} rows")
        print(f"  columns with an approximate constraint: {len(matching)}")
        for bucket, count in hist.items():
            bar = "#" * count
            print(f"  {bucket:>8} match: {count:3d} {bar}")
        best = sorted(matching.items(), key=lambda kv: -kv[1])[:3]
        for col, rate in best:
            print(f"  best candidate: {col} matches {rate:.1%} of tuples")


if __name__ == "__main__":
    main()
