"""Start a SQL server, talk to it from two clients, shut it down.

The smallest end-to-end tour of the network front door:

1. build a catalog and start :class:`repro.server.SQLServer` on an
   ephemeral port,
2. run concurrent clients — an asyncio client firing a query and an
   UPDATE in parallel, and a blocking :class:`repro.server.SQLClient`
   in a worker thread,
3. drain gracefully with ``aclose`` (in-flight statements commit,
   queued ones get typed ``server-closed`` errors).

Run it::

    PYTHONPATH=src python examples/server_quickstart.py

The wire protocol the clients speak is specified in
``docs/protocol.md``; ``docs/architecture.md`` places the server in
the layer map.
"""

import asyncio

import numpy as np

from repro.server import AsyncSQLClient, SQLClient, SQLServer
from repro.storage import Catalog, Table


def build_catalog() -> Catalog:
    rng = np.random.default_rng(7)
    n = 50_000
    catalog = Catalog()
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(n, dtype=np.int64),
                "grp": rng.integers(0, 20, n).astype(np.int64),
                "val": rng.random(n),
            },
        )
    )
    return catalog


async def async_client(port: int) -> None:
    """Pipeline a read and a write on one connection."""
    async with await AsyncSQLClient.connect("127.0.0.1", port) as cli:
        # submit both without waiting: the server admits them through
        # the shared session's FIFO (the write commits atomically)
        read_id = await cli.submit("SELECT grp, COUNT(*) AS n FROM events GROUP BY grp ORDER BY grp")
        write_id = await cli.submit("UPDATE events SET val = val * 2.0 WHERE grp = 3")
        groups = await cli.wait(read_id)
        update = await cli.wait(write_id)
        print(f"[async] {len(groups.rows)} groups; "
              f"update touched {update.row_count} rows "
              f"(commit #{update.stats['write_seq']})")


def blocking_client(port: int) -> None:
    """The same API surface, synchronous — e.g. for scripts or a REPL."""
    with SQLClient("127.0.0.1", port) as cli:
        cli.prepare("total", "SELECT SUM(val) AS s FROM events")
        before = cli.run_prepared("total").scalar()
        cli.execute("DELETE FROM events WHERE eid % 1000 = 0")
        after = cli.run_prepared("total").scalar()
        print(f"[blocking] SUM(val): {before:.2f} -> {after:.2f} after DELETE")


async def main() -> None:
    async with SQLServer(build_catalog(), parallelism=2) as server:
        print(f"serving on {server.host}:{server.port}")
        await asyncio.gather(
            async_client(server.port),
            asyncio.to_thread(blocking_client, server.port),
        )
        print(f"served {server.session.commit_count} commits; draining...")
    print("server closed")


if __name__ == "__main__":
    asyncio.run(main())
