"""TPC-H join acceleration with an NSC PatchIndex (paper §6.3).

Generates a TPC-H subset, perturbs 5 % of the lineitem order, defines a
PatchIndex on ``l_orderkey`` and compares Q3 with a plain hash join,
with the PatchIndex rewrite (MergeJoin on the sorted 95 % + HashJoin on
the patches), and with zero-branch pruning on clean data.

Run:  python examples/tpch_join_acceleration.py
"""

import time

from repro.core import NearlySortedColumn, PatchIndexManager
from repro.plan import Optimizer, execute_plan
from repro.storage import Catalog
from repro.workloads import generate_tpch, perturb_order
from repro.workloads.tpch_queries import q3_plan


def timed(label: str, fn):
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    print(f"{label:<38} {elapsed * 1000:8.1f} ms   ({out.num_rows} result rows)")
    return out


def main() -> None:
    data = generate_tpch(scale=0.02, seed=1)
    catalog = Catalog()
    data.register(catalog)
    catalog.add_structure("sortkey", "orders", "o_orderkey", object())

    # 5 % of lineitem rows moved out of order: the sorting constraint on
    # l_orderkey is now only approximately true
    lineitem = perturb_order(data.lineitem, 0.05, seed=2)
    catalog.register(lineitem)

    manager = PatchIndexManager(catalog)
    handle = manager.create(lineitem, "l_orderkey", NearlySortedColumn())
    print(f"lineitem rows: {lineitem.num_rows}, patches: {handle.num_patches} "
          f"(e = {handle.exception_rate:.2%})\n")

    reference = timed("Q3, plain hash join", lambda: execute_plan(q3_plan(), catalog))

    optimizer = Optimizer(catalog, manager, use_cost_model=False)
    rewritten = optimizer.optimize(q3_plan())
    result = timed("Q3, PatchIndex merge join", lambda: execute_plan(rewritten, catalog))
    assert result.num_rows == reference.num_rows

    # clean data: zero-branch pruning removes the patch subtree entirely
    manager.drop("lineitem", "l_orderkey")
    catalog.register(data.lineitem)
    handle = manager.create(data.lineitem, "l_orderkey", NearlySortedColumn())
    assert handle.num_patches == 0
    zbp = Optimizer(catalog, manager, zero_branch_pruning=True,
                    use_cost_model=False).optimize(q3_plan())
    timed("Q3, PatchIndex + zero-branch pruning", lambda: execute_plan(zbp, catalog))
    print("\noptimized plan with ZBP:")
    print(zbp.explain())


if __name__ == "__main__":
    main()
