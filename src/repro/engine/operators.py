"""Physical query operators (column-at-a-time, numpy-vectorized).

The operator set mirrors what the paper's optimizations manipulate
(§3.3): scans, selections, projections, hash and merge joins, sort,
distinct/grouping aggregation, union, order-preserving merge and the
Reuse operators for intermediate result caching.  The PatchIndex scan is
a :class:`Scan` topped by a :class:`PatchSelect` with mode
``exclude_patches`` or ``use_patches``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union as TUnion

import numpy as np

from repro.engine.batch import ROWID, Relation
from repro.engine.expressions import Expression, expression_columns

__all__ = [
    "Operator",
    "RelationSource",
    "Scan",
    "PatchSelect",
    "Filter",
    "Project",
    "HashJoin",
    "MergeJoin",
    "Sort",
    "Distinct",
    "GroupAggregate",
    "Union",
    "MergeUnion",
    "ReuseSlot",
    "ReuseCache",
    "ReuseLoad",
    "Limit",
    "find_scans",
    "factorize_rows",
]

EXCLUDE_PATCHES = "exclude_patches"
USE_PATCHES = "use_patches"


class Operator:
    """Base class for physical operators."""

    def execute(self) -> Relation:
        """Produce the operator's full result relation."""
        raise NotImplementedError

    def children(self) -> List["Operator"]:
        """Child operators, for tree traversal."""
        return []

    def label(self) -> str:
        """Short description used by explain output."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Readable operator-tree rendering."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class RelationSource(Operator):
    """Wraps an already-materialized relation (delta scans, tests)."""

    def __init__(self, relation: Relation, name: str = "source") -> None:
        self._relation = relation
        self._name = name

    def execute(self) -> Relation:
        return self._relation

    def label(self) -> str:
        return f"Source({self._name}, rows={self._relation.num_rows})"


class Scan(Operator):
    """Table scan with optional rowIDs, predicate and minmax pruning.

    ``push_range`` implements range propagation (§5): a pushed
    ``(column, lo, hi)`` range prunes whole blocks via the table's minmax
    summaries before any tuple is touched, and is how the dynamic variant
    restricts the probe side of the insert-handling join (Figure 5).
    """

    def __init__(
        self,
        table,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Expression] = None,
        with_rowids: bool = False,
        use_minmax: bool = True,
    ) -> None:
        self.table = table
        self.columns = list(columns) if columns is not None else list(table.schema.names)
        self.predicate = predicate
        self.with_rowids = with_rowids
        self.use_minmax = use_minmax
        self._ranges: List[Tuple[str, object, object]] = []

    def push_range(self, column: str, lo, hi) -> None:
        """Restrict the scan to blocks possibly containing [lo, hi]."""
        self._ranges.append((column, lo, hi))

    def _scan_one(self, table, rowid_offset: int) -> Relation:
        n = table.num_rows
        mask: Optional[np.ndarray] = None
        if self.use_minmax and self._ranges and n:
            mask = np.ones(n, dtype=bool)
            for column, lo, hi in self._ranges:
                mask &= table.minmax(column).row_mask_in_range(lo, hi)
        needed = list(self.columns)
        extra = []
        if self.predicate is not None:
            for name in expression_columns(self.predicate):
                if name not in needed and name in table.schema:
                    extra.append(name)
        cols = {c: table.column(c) for c in needed + extra}
        if self.with_rowids:
            cols[ROWID] = np.arange(rowid_offset, rowid_offset + n, dtype=np.int64)
        rel = Relation(cols)
        if mask is not None:
            rel = rel.filter(mask)
        if self.predicate is not None:
            if rel.num_rows:
                rel = rel.filter(np.asarray(self.predicate.evaluate(rel), dtype=bool))
            else:
                rel = rel.filter(np.zeros(0, dtype=bool))
        if extra:
            rel = rel.drop(extra)
        return rel

    def execute(self) -> Relation:
        partitions = getattr(self.table, "partitions", None)
        if partitions is None:
            return self._scan_one(self.table, 0)
        offsets = self.table.partition_offsets()
        pieces = [
            self._scan_one(part, int(offsets[i]))
            for i, part in enumerate(partitions)
        ]
        return Relation.concat(pieces)

    def label(self) -> str:
        extra = ""
        if self._ranges:
            extra = f", ranges={self._ranges}"
        if self.predicate is not None:
            extra += f", pred={self.predicate!r}"
        return f"Scan({self.table.name}{extra})"


class PatchSelect(Operator):
    """Selection operator merging PatchIndex information on-the-fly (§3.3).

    ``mask_fn`` returns the current patch bitmap as a boolean array
    aligned with the table's rowIDs; ``exclude_patches`` keeps non-patch
    tuples, ``use_patches`` keeps the exceptions.  The decision is purely
    rowID-based, independent of the data types in the flow (§3.5).
    """

    def __init__(self, child: Operator, mask_fn: Callable[[], np.ndarray], mode: str) -> None:
        if mode not in (EXCLUDE_PATCHES, USE_PATCHES):
            raise ValueError(f"unknown selection mode {mode!r}")
        self.child = child
        self.mask_fn = mask_fn
        self.mode = mode

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        rel = self.child.execute()
        rowids = rel.column(ROWID)
        patch_mask = np.asarray(self.mask_fn(), dtype=bool)
        flags = patch_mask[rowids]
        keep = flags if self.mode == USE_PATCHES else ~flags
        return rel.filter(keep)

    def label(self) -> str:
        return f"PatchSelect({self.mode})"


class Filter(Operator):
    """Predicate selection."""

    def __init__(self, child: Operator, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        rel = self.child.execute()
        if rel.num_rows == 0:
            return rel
        return rel.filter(np.asarray(self.predicate.evaluate(rel), dtype=bool))

    def label(self) -> str:
        return f"Filter({self.predicate!r})"


class Project(Operator):
    """Column projection / computation.

    ``outputs`` maps output names to input column names (str) or
    expressions.
    """

    def __init__(self, child: Operator, outputs: Dict[str, TUnion[str, Expression]]) -> None:
        self.child = child
        self.outputs = dict(outputs)

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        rel = self.child.execute()
        cols: Dict[str, np.ndarray] = {}
        for name, spec in self.outputs.items():
            if isinstance(spec, str):
                cols[name] = rel.column(spec)
            else:
                cols[name] = np.asarray(spec.evaluate(rel))
        return Relation(cols)

    def label(self) -> str:
        return f"Project({list(self.outputs)})"


def _hash_expand_matches(
    build_keys: np.ndarray, probe_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(build_idx, probe_idx) via a hash table build + per-tuple probe.

    This is a genuine hash join: the build side goes into a hash table
    and *every* probe tuple performs a random-access lookup, which is
    the per-tuple cost a merge join over sorted inputs avoids (§3.3).
    """
    table: dict = {}
    for pos, key in enumerate(build_keys.tolist()):
        table.setdefault(key, []).append(pos)
    build_idx: List[int] = []
    probe_idx: List[int] = []
    for i, key in enumerate(probe_keys.tolist()):
        bucket = table.get(key)
        if bucket is None:
            continue
        for b in bucket:
            build_idx.append(b)
            probe_idx.append(i)
    return (
        np.asarray(build_idx, dtype=np.int64),
        np.asarray(probe_idx, dtype=np.int64),
    )


def _expand_matches(
    build_keys: np.ndarray, probe_keys: np.ndarray, build_sorted: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Return aligned (build_idx, probe_idx) for an inner equi-join."""
    if build_sorted:
        order = None
        sorted_keys = build_keys
    else:
        order = np.argsort(build_keys, kind="stable")
        sorted_keys = build_keys[order]
    lo = np.searchsorted(sorted_keys, probe_keys, side="left")
    hi = np.searchsorted(sorted_keys, probe_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(probe_keys), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    build_pos = starts + within
    build_idx = build_pos if order is None else order[build_pos]
    return build_idx, probe_idx


def _join_output(
    build_rel: Relation,
    probe_rel: Relation,
    build_idx: np.ndarray,
    probe_idx: np.ndarray,
    build_key: str,
    probe_key: str,
) -> Relation:
    cols: Dict[str, np.ndarray] = {}
    for name, arr in build_rel.columns().items():
        cols[name] = arr[build_idx]
    for name, arr in probe_rel.columns().items():
        if name == probe_key and probe_key == build_key:
            continue  # identical key values, keep one copy
        if name in cols:
            raise ValueError(f"join column collision on {name!r}; project first")
        cols[name] = arr[probe_idx]
    return Relation(cols)


class HashJoin(Operator):
    """Inner equi-join; builds on one side and probes the other.

    ``build_side='auto'`` picks the smaller input as the build side,
    which is the paper's optimization of building the hash table on the
    lower-cardinality side (typically the patches, §3.3).  With
    ``dynamic_range_propagation`` the key range observed during the build
    phase is pushed into every :class:`Scan` of the probe subtree before
    it executes, pruning blocks via minmax summaries (§5.1).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: str,
        right_key: str,
        build_side: str = "auto",
        dynamic_range_propagation: bool = False,
    ) -> None:
        if build_side not in ("auto", "left", "right"):
            raise ValueError("build_side must be 'auto', 'left' or 'right'")
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.build_side = build_side
        self.dynamic_range_propagation = dynamic_range_propagation

    def children(self) -> List[Operator]:
        return [self.left, self.right]

    def _resolve_sides(self) -> Tuple[Operator, Operator, str, str]:
        if self.build_side == "left":
            return self.left, self.right, self.left_key, self.right_key
        if self.build_side == "right":
            return self.right, self.left, self.right_key, self.left_key
        return None, None, None, None  # type: ignore[return-value]

    def execute(self) -> Relation:
        if self.build_side == "auto":
            # the paper's heuristic: build on the lower-cardinality side
            left_rel = self.left.execute()
            right_rel = self.right.execute()
            if left_rel.num_rows <= right_rel.num_rows:
                build_rel, probe_rel = left_rel, right_rel
                build_key, probe_key = self.left_key, self.right_key
            else:
                build_rel, probe_rel = right_rel, left_rel
                build_key, probe_key = self.right_key, self.left_key
        else:
            build_op, probe_op, build_key, probe_key = self._resolve_sides()
            build_rel = build_op.execute()
            if self.dynamic_range_propagation and build_rel.num_rows:
                keys = build_rel.column(build_key)
                lo, hi = keys.min(), keys.max()
                for scan in find_scans(probe_op):
                    if probe_key in scan.columns:
                        scan.push_range(probe_key, lo, hi)
            probe_rel = probe_op.execute()
        build_idx, probe_idx = _hash_expand_matches(
            build_rel.column(build_key), probe_rel.column(probe_key)
        )
        return _join_output(build_rel, probe_rel, build_idx, probe_idx, build_key, probe_key)

    def label(self) -> str:
        drp = ", DRP" if self.dynamic_range_propagation else ""
        return f"HashJoin({self.left_key}={self.right_key}, build={self.build_side}{drp})"


class MergeJoin(Operator):
    """Inner equi-join over inputs already sorted on their keys (§3.3).

    Skips the build-side sort a hash/sort join pays: matching ranges are
    located with galloping binary search over the sorted key columns.
    """

    def __init__(self, left: Operator, right: Operator, left_key: str, right_key: str) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key

    def children(self) -> List[Operator]:
        return [self.left, self.right]

    def execute(self) -> Relation:
        left_rel = self.left.execute()
        right_rel = self.right.execute()
        build_idx, probe_idx = _expand_matches(
            left_rel.column(self.left_key),
            right_rel.column(self.right_key),
            build_sorted=True,
        )
        return _join_output(
            left_rel, right_rel, build_idx, probe_idx, self.left_key, self.right_key
        )

    def label(self) -> str:
        return f"MergeJoin({self.left_key}={self.right_key})"


class Sort(Operator):
    """Multi-key sort.

    Single-key sorts use introsort, like the QuickSort of the paper's
    engine (§6.2.1): runtime does not collapse on pre-sorted input, so
    the NSC optimization's value is what the index removes, not what
    the sort implementation happens to detect.
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[str],
        ascending: Optional[Sequence[bool]] = None,
        stable: bool = False,
    ) -> None:
        self.child = child
        self.keys = list(keys)
        self.ascending = list(ascending) if ascending is not None else [True] * len(self.keys)
        self.stable = stable

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        rel = self.child.execute()
        return rel.sort_by(self.keys, self.ascending, stable=self.stable)

    def label(self) -> str:
        return f"Sort({self.keys})"


class Distinct(Operator):
    """Duplicate elimination over the given (default: all) columns."""

    def __init__(self, child: Operator, columns: Optional[Sequence[str]] = None) -> None:
        self.child = child
        self.columns = list(columns) if columns is not None else None

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        rel = self.child.execute()
        cols = self.columns if self.columns is not None else rel.column_names
        if rel.num_rows == 0:
            return rel.select(cols)
        if len(cols) == 1:
            uniq = np.unique(rel.column(cols[0]))
            return Relation({cols[0]: uniq})
        _, first_idx = factorize_rows([rel.column(c) for c in cols])
        return rel.select(cols).take(first_idx)

    def label(self) -> str:
        return f"Distinct({self.columns or 'all'})"


class GroupAggregate(Operator):
    """Group-by aggregation.

    ``aggregates`` maps output names to ``(func, input)`` where ``func``
    is one of ``sum``, ``count``, ``min``, ``max``, ``avg`` and ``input``
    is a column name or expression (ignored for ``count``).
    """

    _FUNCS = ("sum", "count", "min", "max", "avg")

    def __init__(
        self,
        child: Operator,
        group_keys: Sequence[str],
        aggregates: Dict[str, Tuple[str, TUnion[str, Expression, None]]],
    ) -> None:
        for name, (func, _) in aggregates.items():
            if func not in self._FUNCS:
                raise ValueError(f"unknown aggregate {func!r} for {name!r}")
        self.child = child
        self.group_keys = list(group_keys)
        self.aggregates = dict(aggregates)

    def children(self) -> List[Operator]:
        return [self.child]

    def _input_array(self, rel: Relation, spec) -> np.ndarray:
        if isinstance(spec, str):
            return rel.column(spec)
        return np.asarray(spec.evaluate(rel))

    def execute(self) -> Relation:
        rel = self.child.execute()
        if not self.group_keys:
            return self._global_aggregate(rel)
        codes, first_idx = factorize_rows([rel.column(k) for k in self.group_keys])
        ngroups = len(first_idx)
        out: Dict[str, np.ndarray] = {
            k: rel.column(k)[first_idx] for k in self.group_keys
        }
        for name, (func, spec) in self.aggregates.items():
            if func == "count":
                out[name] = np.bincount(codes, minlength=ngroups).astype(np.int64)
                continue
            values = self._input_array(rel, spec)
            if func == "sum" or func == "avg":
                sums = np.bincount(codes, weights=values.astype(np.float64), minlength=ngroups)
                if func == "sum":
                    out[name] = sums if values.dtype.kind == "f" else _maybe_int(sums, values)
                else:
                    counts = np.bincount(codes, minlength=ngroups)
                    out[name] = sums / np.maximum(counts, 1)
            elif func == "min":
                acc = _filled(ngroups, values, np.inf)
                np.minimum.at(acc, codes, values)
                out[name] = _maybe_int(acc, values)
            elif func == "max":
                acc = _filled(ngroups, values, -np.inf)
                np.maximum.at(acc, codes, values)
                out[name] = _maybe_int(acc, values)
        return Relation(out)

    def _global_aggregate(self, rel: Relation) -> Relation:
        out: Dict[str, np.ndarray] = {}
        n = rel.num_rows
        for name, (func, spec) in self.aggregates.items():
            if func == "count":
                out[name] = np.array([n], dtype=np.int64)
                continue
            values = self._input_array(rel, spec)
            if func == "sum":
                out[name] = np.array([values.sum() if n else 0])
            elif func == "avg":
                out[name] = np.array([values.mean() if n else np.nan])
            elif func == "min":
                out[name] = np.array([values.min()]) if n else np.array([np.nan])
            elif func == "max":
                out[name] = np.array([values.max()]) if n else np.array([np.nan])
        return Relation(out)

    def label(self) -> str:
        return f"Aggregate(by={self.group_keys}, aggs={list(self.aggregates)})"


class Union(Operator):
    """Bag union: concatenates children with identical column sets."""

    def __init__(self, inputs: Sequence[Operator]) -> None:
        self.inputs = list(inputs)

    def children(self) -> List[Operator]:
        return list(self.inputs)

    def execute(self) -> Relation:
        return Relation.concat([op.execute() for op in self.inputs])

    def label(self) -> str:
        return f"Union(n={len(self.inputs)})"


class MergeUnion(Operator):
    """Order-preserving union of sorted inputs (§3.3 sort optimization).

    Combines the already-sorted non-patch flow with the sorted patch flow
    using a linear merge instead of re-sorting the union.
    """

    def __init__(self, inputs: Sequence[Operator], key: str, ascending: bool = True) -> None:
        self.inputs = list(inputs)
        self.key = key
        self.ascending = ascending

    def children(self) -> List[Operator]:
        return list(self.inputs)

    def execute(self) -> Relation:
        rels_all = [op.execute() for op in self.inputs]
        rels = [r for r in rels_all if r.num_rows > 0]
        if not rels:
            return rels_all[0] if rels_all else Relation({})
        merged = rels[0]
        for other in rels[1:]:
            merged = self._merge_two(merged, other)
        return merged

    def _merge_two(self, a: Relation, b: Relation) -> Relation:
        ka = a.column(self.key)
        kb = b.column(self.key)
        if self.ascending:
            ka_cmp, kb_cmp = ka, kb
        else:
            ka_cmp, kb_cmp = -_orderable(ka), -_orderable(kb)
        pos_a = np.arange(len(ka), dtype=np.int64) + np.searchsorted(kb_cmp, ka_cmp, side="left")
        pos_b = np.arange(len(kb), dtype=np.int64) + np.searchsorted(ka_cmp, kb_cmp, side="right")
        total = len(ka) + len(kb)
        out: Dict[str, np.ndarray] = {}
        for name in a.column_names:
            ca, cb = a.column(name), b.column(name)
            merged = np.empty(total, dtype=ca.dtype if ca.dtype == cb.dtype else object)
            merged[pos_a] = ca
            merged[pos_b] = cb
            out[name] = merged
        return Relation(out)

    def label(self) -> str:
        return f"MergeUnion(key={self.key}, asc={self.ascending})"


class ReuseSlot:
    """Shared cell between a ReuseCache and its ReuseLoads."""

    def __init__(self) -> None:
        self.relation: Optional[Relation] = None
        self.producer: Optional[Operator] = None

    def materialize(self) -> Relation:
        if self.relation is None:
            if self.producer is None:
                raise RuntimeError("ReuseSlot has no producer")
            self.relation = self.producer.execute()
        return self.relation


class ReuseCache(Operator):
    """Materializes its child's result into a slot and passes it on."""

    def __init__(self, child: Operator, slot: ReuseSlot) -> None:
        self.child = child
        self.slot = slot
        slot.producer = child

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        return self.slot.materialize()

    def label(self) -> str:
        return "ReuseCache"


class ReuseLoad(Operator):
    """Reads a relation previously materialized by a ReuseCache."""

    def __init__(self, slot: ReuseSlot) -> None:
        self.slot = slot

    def execute(self) -> Relation:
        return self.slot.materialize()

    def label(self) -> str:
        return "ReuseLoad"


class Limit(Operator):
    """First ``n`` rows of the child."""

    def __init__(self, child: Operator, n: int) -> None:
        if n < 0:
            raise ValueError("limit must be non-negative")
        self.child = child
        self.n = n

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        rel = self.child.execute()
        return rel.take(np.arange(min(self.n, rel.num_rows)))

    def label(self) -> str:
        return f"Limit({self.n})"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def find_scans(op: Operator) -> List[Scan]:
    """All Scan operators in a subtree (range-propagation targets)."""
    found: List[Scan] = []
    stack = [op]
    while stack:
        node = stack.pop()
        if isinstance(node, Scan):
            found.append(node)
        stack.extend(node.children())
    return found


def factorize_rows(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Dense group codes for multi-column keys.

    Returns ``(codes, first_idx)``: per-row group ids in ``[0, ngroups)``
    and the index of the first row of each group (ordered by key).
    """
    if len(arrays) == 1:
        _, first_idx, codes = np.unique(arrays[0], return_index=True, return_inverse=True)
        return codes.astype(np.int64), first_idx.astype(np.int64)
    combined = np.zeros(len(arrays[0]), dtype=np.int64)
    for arr in arrays:
        _, inv = np.unique(arr, return_inverse=True)
        card = int(inv.max()) + 1 if len(inv) else 1
        combined = combined * card + inv
    _, first_idx, codes = np.unique(combined, return_index=True, return_inverse=True)
    return codes.astype(np.int64), first_idx.astype(np.int64)


def _orderable(arr: np.ndarray) -> np.ndarray:
    if arr.dtype.kind in "iuf":
        return arr
    raise TypeError("descending MergeUnion requires numeric keys")


def _filled(n: int, like: np.ndarray, fill: float) -> np.ndarray:
    return np.full(n, fill, dtype=np.float64)


def _maybe_int(acc: np.ndarray, values: np.ndarray) -> np.ndarray:
    if values.dtype.kind in "iu":
        return acc.astype(np.int64)
    return acc
