"""Physical query operators (column-at-a-time, numpy-vectorized).

The operator set mirrors what the paper's optimizations manipulate
(§3.3): scans, selections, projections, hash and merge joins, sort,
distinct/grouping aggregation, union, order-preserving merge and the
Reuse operators for intermediate result caching.  The PatchIndex scan is
a :class:`Scan` topped by a :class:`PatchSelect` with mode
``exclude_patches`` or ``use_patches``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union as TUnion

import numpy as np

from repro.engine.batch import ROWID, Relation
from repro.engine.expressions import Expression, expression_columns
from repro.engine.interrupt import checkpoint, current_token
from repro.engine.parallel import (
    DEFAULT_MORSEL_ROWS,
    ExecutionContext,
    Morsel,
    row_chunks,
    table_morsels,
)
from repro.engine.parallel_sort import (
    merge_sorted_runs,
    serial_sort_permutation,
    sort_permutation,
)

__all__ = [
    "Operator",
    "RelationSource",
    "Scan",
    "PatchSelect",
    "Filter",
    "Project",
    "HashJoin",
    "MergeJoin",
    "Sort",
    "TopN",
    "Distinct",
    "GroupAggregate",
    "Union",
    "MergeUnion",
    "ReuseSlot",
    "ReuseCache",
    "ReuseLoad",
    "Limit",
    "find_scans",
    "factorize_rows",
]

EXCLUDE_PATCHES = "exclude_patches"
USE_PATCHES = "use_patches"


class Operator:
    """Base class for physical operators."""

    #: Execution context attached by :meth:`bind_context`; ``None`` (the
    #: class default) means serial execution.
    context: Optional[ExecutionContext] = None

    #: Explicit execution-mode assignment from the plan-level operator
    #: selection: ``"serial"`` keeps this operator off the parallel
    #: paths (its context is never bound), ``"parallel"`` marks
    #: eligibility (runtime gates still apply), ``None`` defers wholly
    #: to the runtime heuristics.
    forced_mode: Optional[str] = None

    def execute(self) -> Relation:
        """Produce the operator's full result relation."""
        raise NotImplementedError

    def bind_context(self, context: Optional[ExecutionContext]) -> "Operator":
        """Attach an execution context to this subtree (returns self).

        An operator pinned serial by the optimizer (``forced_mode``)
        stays unbound; its children still receive the context.
        """
        self.context = None if self.forced_mode == "serial" else context
        for child in self.children():
            child.bind_context(context)
        return self

    def children(self) -> List["Operator"]:
        """Child operators, for tree traversal."""
        return []

    def label(self) -> str:
        """Short description used by explain output."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Readable operator-tree rendering."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class RelationSource(Operator):
    """Wraps an already-materialized relation (delta scans, tests)."""

    def __init__(self, relation: Relation, name: str = "source") -> None:
        self._relation = relation
        self._name = name

    def execute(self) -> Relation:
        return self._relation

    def label(self) -> str:
        return f"Source({self._name}, rows={self._relation.num_rows})"


class Scan(Operator):
    """Table scan with optional rowIDs, predicate and minmax pruning.

    ``push_range`` implements range propagation (§5): a pushed
    ``(column, lo, hi)`` range prunes whole blocks via the table's minmax
    summaries before any tuple is touched, and is how the dynamic variant
    restricts the probe side of the insert-handling join (Figure 5).
    """

    def __init__(
        self,
        table,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Expression] = None,
        with_rowids: bool = False,
        use_minmax: bool = True,
    ) -> None:
        self.table = table
        self.columns = list(columns) if columns is not None else list(table.schema.names)
        self.predicate = predicate
        self.with_rowids = with_rowids
        self.use_minmax = use_minmax
        self._ranges: List[Tuple[str, object, object]] = []

    def push_range(self, column: str, lo, hi) -> None:
        """Restrict the scan to blocks possibly containing [lo, hi]."""
        self._ranges.append((column, lo, hi))

    def _needed_columns(self, table) -> Tuple[List[str], List[str]]:
        needed = list(self.columns)
        extra = []
        if self.predicate is not None:
            for name in expression_columns(self.predicate):
                if name not in needed and name in table.schema:
                    extra.append(name)
        return needed, extra

    def _block_mask(self, table) -> Optional[np.ndarray]:
        """Minmax-pruning row mask over one table/partition, or None."""
        if not (self.use_minmax and self._ranges and table.num_rows):
            return None
        mask = np.ones(table.num_rows, dtype=bool)
        for column, lo, hi in self._ranges:
            mask &= table.minmax(column).row_mask_in_range(lo, hi)
        return mask

    def _scan_range(
        self,
        table,
        start: int,
        stop: int,
        rowid_offset: int,
        mask: Optional[np.ndarray] = None,
    ) -> Relation:
        """Scan rows ``[start, stop)`` of one table/partition.

        ``rowid_offset`` is the global rowID of row ``start``; ``mask``
        is the table-wide minmax pruning mask (sliced here), so morsels
        share one mask computation.  Concatenating range scans in row
        order is bit-identical to a full serial scan.
        """
        needed, extra = self._needed_columns(table)
        cols = {c: table.column(c)[start:stop] for c in needed + extra}
        if self.with_rowids:
            cols[ROWID] = np.arange(
                rowid_offset, rowid_offset + (stop - start), dtype=np.int64
            )
        rel = Relation(cols)
        if mask is not None:
            rel = rel.filter(mask[start:stop])
        if self.predicate is not None:
            if rel.num_rows:
                rel = rel.filter(np.asarray(self.predicate.evaluate(rel), dtype=bool))
            else:
                rel = rel.filter(np.zeros(0, dtype=bool))
        if extra:
            rel = rel.drop(extra)
        return rel

    def _scan_one(self, table, rowid_offset: int) -> Relation:
        return self._scan_range(
            table, 0, table.num_rows, rowid_offset, self._block_mask(table)
        )

    def parallel_morsel_thunks(self) -> Optional[List[Callable[[], Relation]]]:
        """Per-morsel scan closures in row order, or None when the bound
        context does not warrant parallel execution.

        Used by this operator's parallel path and by fused pipelines
        (:class:`Filter` / :class:`PatchSelect` on top of a scan) that
        push their per-tuple work into the same morsel tasks.  The gate
        runs before any minmax mask is materialized, so a serial
        fallback costs nothing; masks are then computed once per
        table/partition, on the calling thread.
        """
        ctx = self.context
        if ctx is None or not ctx.active:
            return None
        morsels = table_morsels(self.table, ctx.morsel_rows)
        if not ctx.should_parallelize(self.table.num_rows, len(morsels)):
            return None
        masks: Dict[int, Optional[np.ndarray]] = {}
        for m in morsels:
            key = id(m.table)
            if key not in masks:
                masks[key] = self._block_mask(m.table)
        return [
            _ScanMorselThunk(self, m, masks[id(m.table)]) for m in morsels
        ]

    def execute(self) -> Relation:
        checkpoint()
        ctx = self.context
        # A bare scan only profits from morsels when there is per-tuple
        # work to do; otherwise the serial path is zero-copy.
        if self.predicate is not None or self._ranges:
            thunks = self.parallel_morsel_thunks()
            if thunks is not None:
                return Relation.concat(
                    ctx.map_grouped(_call, thunks, _morsel_affinity_keys(thunks, ctx))
                )
        if current_token() is not None:
            interruptible = self._scan_morsels_interruptible(ctx)
            if interruptible is not None:
                return interruptible
        partitions = getattr(self.table, "partitions", None)
        if partitions is None:
            return self._scan_one(self.table, 0)
        offsets = self.table.partition_offsets()
        pieces = [
            self._scan_one(part, int(offsets[i]))
            for i, part in enumerate(partitions)
        ]
        return Relation.concat(pieces)

    def _scan_morsels_interruptible(self, ctx) -> Optional[Relation]:
        """Serial scan as a checkpointed morsel loop (token armed).

        Concatenating contiguous range scans in row order is
        bit-identical to the whole-table scan — the same property the
        parallel path relies on — so arming a token changes nothing but
        the interrupt granularity.  Returns None for single-morsel
        tables, where the loop adds no interior checkpoint.
        """
        morsel_rows = ctx.morsel_rows if ctx is not None else DEFAULT_MORSEL_ROWS
        morsels = table_morsels(self.table, morsel_rows)
        if len(morsels) <= 1:
            return None
        masks: Dict[int, Optional[np.ndarray]] = {}
        pieces = []
        for m in morsels:
            checkpoint()
            key = id(m.table)
            if key not in masks:
                masks[key] = self._block_mask(m.table)
            pieces.append(
                self._scan_range(m.table, m.start, m.stop, m.rowid_offset, masks[key])
            )
        return Relation.concat(pieces)

    def label(self) -> str:
        extra = ""
        if self._ranges:
            extra = f", ranges={self._ranges}"
        if self.predicate is not None:
            extra += f", pred={self.predicate!r}"
        return f"Scan({self.table.name}{extra})"


class PatchSelect(Operator):
    """Selection operator merging PatchIndex information on-the-fly (§3.3).

    ``mask_fn`` returns the current patch bitmap as a boolean array
    aligned with the table's rowIDs; ``exclude_patches`` keeps non-patch
    tuples, ``use_patches`` keeps the exceptions.  The decision is purely
    rowID-based, independent of the data types in the flow (§3.5).
    """

    def __init__(self, child: Operator, mask_fn: Callable[[], np.ndarray], mode: str) -> None:
        if mode not in (EXCLUDE_PATCHES, USE_PATCHES):
            raise ValueError(f"unknown selection mode {mode!r}")
        self.child = child
        self.mask_fn = mask_fn
        self.mode = mode

    def children(self) -> List[Operator]:
        return [self.child]

    def _keep(self, rel: Relation, patch_mask: np.ndarray) -> Relation:
        flags = patch_mask[rel.column(ROWID)]
        keep = flags if self.mode == USE_PATCHES else ~flags
        return rel.filter(keep)

    def execute(self) -> Relation:
        checkpoint()
        ctx = self.context
        if ctx is not None and isinstance(self.child, Scan):
            # Fused scan→patch-select pipeline: the bitmap lookup and the
            # filter run inside the scan's morsel tasks.
            thunks = self.child.parallel_morsel_thunks()
            if thunks is not None:
                patch_mask = np.asarray(self.mask_fn(), dtype=bool)
                return Relation.concat(
                    ctx.map_grouped(
                        lambda t: self._keep(t(), patch_mask),
                        thunks,
                        _morsel_affinity_keys(thunks, ctx),
                    )
                )
        rel = self.child.execute()
        patch_mask = np.asarray(self.mask_fn(), dtype=bool)
        return self._keep(rel, patch_mask)

    def label(self) -> str:
        return f"PatchSelect({self.mode})"


class Filter(Operator):
    """Predicate selection."""

    def __init__(self, child: Operator, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate

    def children(self) -> List[Operator]:
        return [self.child]

    def _apply(self, rel: Relation) -> Relation:
        if rel.num_rows == 0:
            return rel
        return rel.filter(np.asarray(self.predicate.evaluate(rel), dtype=bool))

    def execute(self) -> Relation:
        checkpoint()
        ctx = self.context
        if ctx is not None and isinstance(self.child, Scan):
            # Fused scan→filter pipeline over the scan's morsels.
            thunks = self.child.parallel_morsel_thunks()
            if thunks is not None:
                return Relation.concat(
                    ctx.map_grouped(
                        lambda t: self._apply(t()),
                        thunks,
                        _morsel_affinity_keys(thunks, ctx),
                    )
                )
        rel = self.child.execute()
        if ctx is not None and ctx.active:
            chunks = row_chunks(rel.num_rows, ctx.morsel_rows)
            if ctx.should_parallelize(rel.num_rows, len(chunks)):
                # Predicates are elementwise, so chunked evaluation is
                # bit-identical to one whole-relation evaluation.
                pieces = ctx.map(
                    lambda c: self._apply(_slice_relation(rel, c[0], c[1])), chunks
                )
                return Relation.concat(pieces)
        return self._apply(rel)

    def label(self) -> str:
        return f"Filter({self.predicate!r})"


class Project(Operator):
    """Column projection / computation.

    ``outputs`` maps output names to input column names (str) or
    expressions.
    """

    def __init__(self, child: Operator, outputs: Dict[str, TUnion[str, Expression]]) -> None:
        self.child = child
        self.outputs = dict(outputs)

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        rel = self.child.execute()
        cols: Dict[str, np.ndarray] = {}
        for name, spec in self.outputs.items():
            if isinstance(spec, str):
                cols[name] = rel.column(spec)
            else:
                cols[name] = np.asarray(spec.evaluate(rel))
        return Relation(cols)

    def label(self) -> str:
        return f"Project({list(self.outputs)})"


def _hash_expand_matches(
    build_keys: np.ndarray, probe_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(build_idx, probe_idx) via a hash table build + per-tuple probe.

    This is a genuine hash join: the build side goes into a hash table
    and *every* probe tuple performs a random-access lookup, which is
    the per-tuple cost a merge join over sorted inputs avoids (§3.3).
    """
    table: dict = {}
    for pos, key in enumerate(build_keys.tolist()):
        table.setdefault(key, []).append(pos)
    build_idx: List[int] = []
    probe_idx: List[int] = []
    for i, key in enumerate(probe_keys.tolist()):
        bucket = table.get(key)
        if bucket is None:
            continue
        for b in bucket:
            build_idx.append(b)
            probe_idx.append(i)
    return (
        np.asarray(build_idx, dtype=np.int64),
        np.asarray(probe_idx, dtype=np.int64),
    )


def _parallel_hash_expand_matches(
    ctx: ExecutionContext, build_keys: np.ndarray, probe_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Partitioned parallel hash join (integer keys).

    Both sides are split by ``key mod P``; partition-local hash tables
    are built and probed concurrently, and the match pairs are re-sorted
    to ``(probe, build)`` order — exactly the order the serial build
    (insertion-ordered buckets, ascending probe loop) produces, keeping
    the output bit-identical.
    """
    nparts = ctx.parallelism
    build_part = np.mod(build_keys, nparts)
    probe_part = np.mod(probe_keys, nparts)

    def join_partition(p: int) -> Tuple[np.ndarray, np.ndarray]:
        bsel = np.flatnonzero(build_part == p)
        psel = np.flatnonzero(probe_part == p)
        if len(bsel) == 0 or len(psel) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        bi, pi = _hash_expand_matches(build_keys[bsel], probe_keys[psel])
        return bsel[bi], psel[pi]

    pairs = ctx.map(join_partition, list(range(nparts)))
    build_idx = np.concatenate([b for b, _ in pairs])
    probe_idx = np.concatenate([p for _, p in pairs])
    order = np.lexsort((build_idx, probe_idx))
    return build_idx[order], probe_idx[order]


def _expand_matches(
    build_keys: np.ndarray, probe_keys: np.ndarray, build_sorted: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Return aligned (build_idx, probe_idx) for an inner equi-join."""
    if build_sorted:
        order = None
        sorted_keys = build_keys
    else:
        order = np.argsort(build_keys, kind="stable")
        sorted_keys = build_keys[order]
    lo = np.searchsorted(sorted_keys, probe_keys, side="left")
    hi = np.searchsorted(sorted_keys, probe_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(probe_keys), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    build_pos = starts + within
    build_idx = build_pos if order is None else order[build_pos]
    return build_idx, probe_idx


def _join_output(
    build_rel: Relation,
    probe_rel: Relation,
    build_idx: np.ndarray,
    probe_idx: np.ndarray,
    build_key: str,
    probe_key: str,
) -> Relation:
    cols: Dict[str, np.ndarray] = {}
    for name, arr in build_rel.columns().items():
        cols[name] = arr[build_idx]
    for name, arr in probe_rel.columns().items():
        if name == probe_key and probe_key == build_key:
            continue  # identical key values, keep one copy
        if name in cols:
            raise ValueError(f"join column collision on {name!r}; project first")
        cols[name] = arr[probe_idx]
    return Relation(cols)


class HashJoin(Operator):
    """Inner equi-join; builds on one side and probes the other.

    ``build_side='auto'`` picks the smaller input as the build side,
    which is the paper's optimization of building the hash table on the
    lower-cardinality side (typically the patches, §3.3).  With
    ``dynamic_range_propagation`` the key range observed during the build
    phase is pushed into every :class:`Scan` of the probe subtree before
    it executes, pruning blocks via minmax summaries (§5.1).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: str,
        right_key: str,
        build_side: str = "auto",
        dynamic_range_propagation: bool = False,
    ) -> None:
        if build_side not in ("auto", "left", "right"):
            raise ValueError("build_side must be 'auto', 'left' or 'right'")
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.build_side = build_side
        self.dynamic_range_propagation = dynamic_range_propagation

    def children(self) -> List[Operator]:
        return [self.left, self.right]

    def _resolve_sides(self) -> Tuple[Operator, Operator, str, str]:
        if self.build_side == "left":
            return self.left, self.right, self.left_key, self.right_key
        if self.build_side == "right":
            return self.right, self.left, self.right_key, self.left_key
        return None, None, None, None  # type: ignore[return-value]

    def execute(self) -> Relation:
        checkpoint()
        if self.build_side == "auto":
            # the paper's heuristic: build on the lower-cardinality side
            left_rel = self.left.execute()
            right_rel = self.right.execute()
            if left_rel.num_rows <= right_rel.num_rows:
                build_rel, probe_rel = left_rel, right_rel
                build_key, probe_key = self.left_key, self.right_key
            else:
                build_rel, probe_rel = right_rel, left_rel
                build_key, probe_key = self.right_key, self.left_key
        else:
            build_op, probe_op, build_key, probe_key = self._resolve_sides()
            build_rel = build_op.execute()
            if self.dynamic_range_propagation and build_rel.num_rows:
                keys = build_rel.column(build_key)
                lo, hi = keys.min(), keys.max()
                for scan in find_scans(probe_op):
                    if probe_key in scan.columns:
                        scan.push_range(probe_key, lo, hi)
            probe_rel = probe_op.execute()
        build_idx, probe_idx = self._matches(
            build_rel.column(build_key), probe_rel.column(probe_key)
        )
        return _join_output(build_rel, probe_rel, build_idx, probe_idx, build_key, probe_key)

    def _matches(
        self, build_keys: np.ndarray, probe_keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        ctx = self.context
        if (
            ctx is not None
            and ctx.should_parallelize(len(probe_keys))
            and build_keys.dtype.kind in "iu"
            and probe_keys.dtype.kind in "iu"
        ):
            return _parallel_hash_expand_matches(ctx, build_keys, probe_keys)
        return _hash_expand_matches(build_keys, probe_keys)

    def label(self) -> str:
        drp = ", DRP" if self.dynamic_range_propagation else ""
        return f"HashJoin({self.left_key}={self.right_key}, build={self.build_side}{drp})"


class MergeJoin(Operator):
    """Inner equi-join over inputs already sorted on their keys (§3.3).

    Skips the build-side sort a hash/sort join pays: matching ranges are
    located with galloping binary search over the sorted key columns.
    Should the build (left) input arrive unsorted — a planner bug would
    previously corrupt the binary search silently — it is re-ordered
    through the stable parallel sort engine, which fans out on the bound
    execution context and stays bit-identical to a serial stable sort.
    """

    def __init__(self, left: Operator, right: Operator, left_key: str, right_key: str) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key

    def children(self) -> List[Operator]:
        return [self.left, self.right]

    def _ordered_build(self, left_rel: Relation) -> Relation:
        """The build side, stably sorted on its key if not already."""
        keys = left_rel.column(self.left_key)
        if len(keys) < 2 or bool(np.all(keys[:-1] <= keys[1:])):
            return left_rel
        order = sort_permutation([keys], [True], context=self.context)
        return _take_with_context(left_rel, order, self.context)

    def execute(self) -> Relation:
        left_rel = self._ordered_build(self.left.execute())
        checkpoint()
        right_rel = self.right.execute()
        build_idx, probe_idx = _expand_matches(
            left_rel.column(self.left_key),
            right_rel.column(self.right_key),
            build_sorted=True,
        )
        return _join_output(
            left_rel, right_rel, build_idx, probe_idx, self.left_key, self.right_key
        )

    def label(self) -> str:
        return f"MergeJoin({self.left_key}={self.right_key})"


class Sort(Operator):
    """Multi-key sort through the stable parallel sort engine.

    The permutation always equals ``np.argsort(kind="stable")``
    composed over the keys (see
    :func:`repro.engine.parallel_sort.serial_sort_permutation`), which
    is what lets a bound execution context fan the sort out as morsel
    chunk-sorts plus a deterministic k-way merge without breaking the
    engine's bit-identity contract.  Methodology note vs the paper's
    QuickSort (§6.2.1): the stable sort's integer-key radix path does
    not collapse on pre-sorted input — the microbenchmark datasets sort
    integer keys, so the NSC optimization's measured value remains what
    the index removes — but float/string keys now use an adaptive
    mergesort that partially exploits pre-sortedness, a deliberate
    trade for the parallel determinism contract.
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[str],
        ascending: Optional[Sequence[bool]] = None,
    ) -> None:
        self.child = child
        self.keys = list(keys)
        self.ascending = list(ascending) if ascending is not None else [True] * len(self.keys)

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        rel = self.child.execute()
        checkpoint()
        order = sort_permutation(
            [rel.column(k) for k in self.keys], self.ascending, context=self.context
        )
        return _take_with_context(rel, order, self.context)

    def label(self) -> str:
        return f"Sort({self.keys})"


class TopN(Operator):
    """First ``n`` rows under a sort order, without a full sort.

    Physical form of ``ORDER BY … LIMIT n`` chosen by the optimizer's
    TopN selection link: the input is cut into chunks, each chunk
    contributes its ``n`` best rows under the canonical stable order
    (keys, then original position), and the surviving candidates are
    stably sorted once.  Every row of the true top ``n`` is necessarily
    within the top ``n`` of its own chunk, and restricting the total
    order to the candidate set preserves it — so the result is
    bit-identical to the full sort followed by a limit, chunked or not.
    With a bound context the per-chunk selections fan out as morsel
    tasks.
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[str],
        ascending: Optional[Sequence[bool]],
        n: int,
    ) -> None:
        if n < 0:
            raise ValueError("top-n count must be non-negative")
        self.child = child
        self.keys = list(keys)
        self.ascending = list(ascending) if ascending is not None else [True] * len(self.keys)
        self.n = n

    def children(self) -> List[Operator]:
        return [self.child]

    def _chunk_top(self, rel: Relation, start: int, stop: int) -> np.ndarray:
        """Global indices of chunk ``[start, stop)``'s best ``n`` rows."""
        piece = _slice_relation(rel, start, stop)
        order = serial_sort_permutation(
            [piece.column(k) for k in self.keys], self.ascending
        )
        return (order[: self.n] + start).astype(np.int64)

    def execute(self) -> Relation:
        rel = self.child.execute()
        checkpoint()
        if self.n == 0 or rel.num_rows == 0:
            return rel.take(np.empty(0, dtype=np.int64))
        ctx = self.context
        chunk_rows = ctx.morsel_rows if ctx is not None else rel.num_rows
        chunks = row_chunks(rel.num_rows, max(1, chunk_rows))
        if ctx is not None and ctx.should_parallelize(rel.num_rows, len(chunks)):
            parts = ctx.map(lambda c: self._chunk_top(rel, c[0], c[1]), chunks)
        else:
            parts = [self._chunk_top(rel, start, stop) for start, stop in chunks]
        # ascending candidate indices keep the final stable sort equal to
        # the restriction of the full-input stable sort
        candidates = np.sort(np.concatenate(parts))
        order = serial_sort_permutation(
            [rel.column(k)[candidates] for k in self.keys], self.ascending
        )
        return rel.take(candidates[order[: self.n]])

    def label(self) -> str:
        return f"TopN({self.keys}, n={self.n})"


class Distinct(Operator):
    """Duplicate elimination over the given (default: all) columns."""

    def __init__(self, child: Operator, columns: Optional[Sequence[str]] = None) -> None:
        self.child = child
        self.columns = list(columns) if columns is not None else None

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        rel = self.child.execute()
        checkpoint()
        cols = self.columns if self.columns is not None else rel.column_names
        if rel.num_rows == 0:
            return rel.select(cols)
        if len(cols) == 1:
            uniq = np.unique(rel.column(cols[0]))
            return Relation({cols[0]: uniq})
        _, first_idx = factorize_rows([rel.column(c) for c in cols])
        return rel.select(cols).take(first_idx)

    def label(self) -> str:
        return f"Distinct({self.columns or 'all'})"


class GroupAggregate(Operator):
    """Group-by aggregation.

    ``aggregates`` maps output names to ``(func, input)`` where ``func``
    is one of ``sum``, ``count``, ``min``, ``max``, ``avg`` and ``input``
    is a column name or expression (ignored for ``count``).
    """

    _FUNCS = ("sum", "count", "min", "max", "avg")

    def __init__(
        self,
        child: Operator,
        group_keys: Sequence[str],
        aggregates: Dict[str, Tuple[str, TUnion[str, Expression, None]]],
    ) -> None:
        for name, (func, _) in aggregates.items():
            if func not in self._FUNCS:
                raise ValueError(f"unknown aggregate {func!r} for {name!r}")
        self.child = child
        self.group_keys = list(group_keys)
        self.aggregates = dict(aggregates)

    def children(self) -> List[Operator]:
        return [self.child]

    def _input_array(self, rel: Relation, spec) -> np.ndarray:
        if isinstance(spec, str):
            return rel.column(spec)
        return np.asarray(spec.evaluate(rel))

    def execute(self) -> Relation:
        rel = self.child.execute()
        checkpoint()
        if not self.group_keys:
            return self._global_aggregate(rel)
        ctx = self.context
        if ctx is not None and ctx.active:
            chunks = row_chunks(rel.num_rows, ctx.morsel_rows)
            if ctx.should_parallelize(rel.num_rows, len(chunks)):
                return self._parallel_aggregate(ctx, rel, chunks)
        return self._serial_aggregate(rel)

    def _serial_aggregate(self, rel: Relation) -> Relation:
        codes, first_idx = factorize_rows([rel.column(k) for k in self.group_keys])
        ngroups = len(first_idx)
        out: Dict[str, np.ndarray] = {
            k: rel.column(k)[first_idx] for k in self.group_keys
        }
        for name, (func, spec) in self.aggregates.items():
            if func == "count":
                out[name] = np.bincount(codes, minlength=ngroups).astype(np.int64)
                continue
            values = self._input_array(rel, spec)
            if func == "sum" and values.dtype.kind in "iu":
                # exact int64 accumulation (matches the parallel partial
                # merge bit-for-bit at any magnitude)
                acc_i = np.zeros(ngroups, dtype=np.int64)
                np.add.at(acc_i, codes, values)
                out[name] = acc_i
            elif func == "sum" or func == "avg":
                sums = np.bincount(codes, weights=values.astype(np.float64), minlength=ngroups)
                if func == "sum":
                    out[name] = sums if values.dtype.kind == "f" else _maybe_int(sums, values)
                else:
                    counts = np.bincount(codes, minlength=ngroups)
                    out[name] = sums / np.maximum(counts, 1)
            elif func == "min":
                acc = _filled(ngroups, values, np.inf)
                np.minimum.at(acc, codes, values)
                out[name] = _maybe_int(acc, values)
            elif func == "max":
                acc = _filled(ngroups, values, -np.inf)
                np.maximum.at(acc, codes, values)
                out[name] = _maybe_int(acc, values)
        return Relation(out)

    # ------------------------------------------------------------------
    # two-phase parallel aggregation
    # ------------------------------------------------------------------
    def _parallel_aggregate(self, ctx: ExecutionContext, rel: Relation, chunks) -> Relation:
        """Per-worker partial aggregation plus a merge step.

        Phase 1 (parallel, one task per row chunk): factorize the
        chunk-local group keys, evaluate aggregate inputs, and reduce
        the *associative* aggregates (count, min, max, integer sum) to
        chunk-local partials.  Phase 2 (merge, calling thread): unify the
        chunk-local group keys into the global (key-sorted) group order
        and combine the partials.

        Floating-point sums and averages are NOT merged from partials —
        IEEE addition is not associative, so that would diverge from the
        serial plan by rounding.  For those the merge phase reduces the
        chunk-evaluated inputs with one ordered ``bincount`` over the
        globally mapped codes, which accumulates in original row order
        and is therefore bit-identical to serial execution.  (Integer
        sums use exact int64 accumulation on both the serial and the
        parallel path, so they agree at any magnitude.)
        """
        nkeys = len(self.group_keys)
        specs = list(self.aggregates.items())

        def phase1(chunk):
            start, stop = chunk
            piece = _slice_relation(rel, start, stop)
            local_keys = [piece.column(k) for k in self.group_keys]
            codes, first_idx = factorize_rows(local_keys)
            ngroups = len(first_idx)
            uniques = [k[first_idx] for k in local_keys]
            partials: Dict[str, np.ndarray] = {}
            values: Dict[str, np.ndarray] = {}
            for name, (func, spec) in specs:
                if func == "count":
                    partials[name] = np.bincount(codes, minlength=ngroups).astype(np.int64)
                    continue
                vals = self._input_array(piece, spec)
                if func == "sum" and vals.dtype.kind in "iu":
                    acc = np.zeros(ngroups, dtype=np.int64)
                    np.add.at(acc, codes, vals)
                    partials[name] = acc
                elif func == "min":
                    acc = _filled(ngroups, vals, np.inf)
                    np.minimum.at(acc, codes, vals)
                    partials[name] = acc
                elif func == "max":
                    acc = _filled(ngroups, vals, -np.inf)
                    np.maximum.at(acc, codes, vals)
                    partials[name] = acc
                else:  # float sum / avg: keep inputs for the ordered merge
                    values[name] = vals
                    if func == "avg":
                        partials[name] = np.bincount(codes, minlength=ngroups)
            return codes, uniques, partials, values

        results = ctx.map(phase1, chunks)

        # merge phase: unify chunk-local groups into the global order
        merged_keys = [
            np.concatenate([res[1][i] for res in results]) for i in range(nkeys)
        ]
        global_codes, global_first = factorize_rows(merged_keys)
        ngroups = len(global_first)
        out: Dict[str, np.ndarray] = {
            k: merged_keys[i][global_first] for i, k in enumerate(self.group_keys)
        }
        # chunk-local group c of chunk j maps to global group mappings[j][c]
        mappings: List[np.ndarray] = []
        offset = 0
        for res in results:
            nlocal = len(res[1][0])
            mappings.append(global_codes[offset : offset + nlocal])
            offset += nlocal

        full_codes: Optional[np.ndarray] = None
        for name, (func, spec) in specs:
            needs_ordered = name in results[0][3]
            if needs_ordered and full_codes is None:
                full_codes = np.empty(rel.num_rows, dtype=np.int64)
                for (start, stop), res, mapping in zip(chunks, results, mappings):
                    full_codes[start:stop] = mapping[res[0]]
            if func == "count":
                acc_i = np.zeros(ngroups, dtype=np.int64)
                for res, mapping in zip(results, mappings):
                    acc_i[mapping] += res[2][name]
                out[name] = acc_i
            elif func == "min" or func == "max":
                fill = np.inf if func == "min" else -np.inf
                acc_f = np.full(ngroups, fill, dtype=np.float64)
                combine = np.minimum if func == "min" else np.maximum
                for res, mapping in zip(results, mappings):
                    acc_f[mapping] = combine(acc_f[mapping], res[2][name])
                # a one-row evaluation recovers the input dtype for the
                # same int-vs-float output decision the serial path makes
                sample = self._input_array(_slice_relation(rel, 0, 1), spec)
                out[name] = _maybe_int(acc_f, sample)
            elif func == "sum" and name not in results[0][3]:
                acc_i = np.zeros(ngroups, dtype=np.int64)
                for res, mapping in zip(results, mappings):
                    acc_i[mapping] += res[2][name]
                out[name] = acc_i
            else:
                # ordered reduction: accumulates in original row order,
                # matching the serial bincount bit-for-bit
                weights = np.concatenate([res[3][name] for res in results])
                sums = np.bincount(
                    full_codes, weights=weights.astype(np.float64), minlength=ngroups
                )
                if func == "sum":
                    out[name] = sums
                else:  # avg
                    counts = np.zeros(ngroups, dtype=np.int64)
                    for res, mapping in zip(results, mappings):
                        counts[mapping] += res[2][name]
                    out[name] = sums / np.maximum(counts, 1)
        return Relation(out)

    def _global_aggregate(self, rel: Relation) -> Relation:
        out: Dict[str, np.ndarray] = {}
        n = rel.num_rows
        for name, (func, spec) in self.aggregates.items():
            if func == "count":
                out[name] = np.array([n], dtype=np.int64)
                continue
            values = self._input_array(rel, spec)
            if func == "sum":
                out[name] = np.array([values.sum() if n else 0])
            elif func == "avg":
                out[name] = np.array([values.mean() if n else np.nan])
            elif func == "min":
                out[name] = np.array([values.min()]) if n else np.array([np.nan])
            elif func == "max":
                out[name] = np.array([values.max()]) if n else np.array([np.nan])
        return Relation(out)

    def label(self) -> str:
        return f"Aggregate(by={self.group_keys}, aggs={list(self.aggregates)})"


class Union(Operator):
    """Bag union: concatenates children with identical column sets."""

    def __init__(self, inputs: Sequence[Operator]) -> None:
        self.inputs = list(inputs)

    def children(self) -> List[Operator]:
        return list(self.inputs)

    def execute(self) -> Relation:
        return Relation.concat([op.execute() for op in self.inputs])

    def label(self) -> str:
        return f"Union(n={len(self.inputs)})"


class MergeUnion(Operator):
    """Order-preserving union of sorted inputs (§3.3 sort optimization).

    Combines the already-sorted non-patch flow with the sorted patch
    flow without re-sorting the union: the inputs are treated as sorted
    runs and combined by the deterministic k-way merge of
    :mod:`repro.engine.parallel_sort`.  Equal keys keep input order
    (earlier input first, then within-input order) in BOTH directions —
    bit-identical to stably re-sorting the concatenation, matching SQL's
    per-key direction semantics where a descending key reverses only the
    order *between* distinct key values, never the tie order within one.
    Descending, the inputs must be non-increasing.
    """

    def __init__(self, inputs: Sequence[Operator], key: str, ascending: bool = True) -> None:
        self.inputs = list(inputs)
        self.key = key
        self.ascending = ascending

    def children(self) -> List[Operator]:
        return list(self.inputs)

    def execute(self) -> Relation:
        return self._merge_all([op.execute() for op in self.inputs])

    def _merge_all(self, rels_all: Sequence[Relation]) -> Relation:
        rels = [r for r in rels_all if r.num_rows > 0]
        if not rels:
            return rels_all[0] if rels_all else Relation({})
        if len(rels) == 1:
            return rels[0]
        run_keys = [r.column(self.key) for r in rels]
        order = merge_sorted_runs(
            run_keys, context=self.context, ascending=self.ascending
        )
        return _take_with_context(Relation.concat(rels), order, self.context)

    def label(self) -> str:
        return f"MergeUnion(key={self.key}, asc={self.ascending})"


class ReuseSlot:
    """Shared cell between a ReuseCache and its ReuseLoads."""

    def __init__(self) -> None:
        self.relation: Optional[Relation] = None
        self.producer: Optional[Operator] = None

    def materialize(self) -> Relation:
        if self.relation is None:
            if self.producer is None:
                raise RuntimeError("ReuseSlot has no producer")
            self.relation = self.producer.execute()
        return self.relation


class ReuseCache(Operator):
    """Materializes its child's result into a slot and passes it on."""

    def __init__(self, child: Operator, slot: ReuseSlot) -> None:
        self.child = child
        self.slot = slot
        slot.producer = child

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        return self.slot.materialize()

    def label(self) -> str:
        return "ReuseCache"


class ReuseLoad(Operator):
    """Reads a relation previously materialized by a ReuseCache."""

    def __init__(self, slot: ReuseSlot) -> None:
        self.slot = slot

    def execute(self) -> Relation:
        return self.slot.materialize()

    def label(self) -> str:
        return "ReuseLoad"


class Limit(Operator):
    """First ``n`` rows of the child, after skipping ``offset`` rows."""

    def __init__(self, child: Operator, n: int, offset: int = 0) -> None:
        if n < 0:
            raise ValueError("limit must be non-negative")
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.child = child
        self.n = n
        self.offset = offset

    def children(self) -> List[Operator]:
        return [self.child]

    def execute(self) -> Relation:
        rel = self.child.execute()
        start = min(self.offset, rel.num_rows)
        stop = min(start + self.n, rel.num_rows)
        return rel.take(np.arange(start, stop))

    def label(self) -> str:
        if self.offset:
            return f"Limit({self.n}, offset={self.offset})"
        return f"Limit({self.n})"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
class _ScanMorselThunk:
    """Zero-arg callable producing one morsel's scan result."""

    __slots__ = ("scan", "morsel", "mask")

    def __init__(self, scan: Scan, morsel: Morsel, mask: Optional[np.ndarray]) -> None:
        self.scan = scan
        self.morsel = morsel
        self.mask = mask

    def __call__(self) -> Relation:
        m = self.morsel
        return self.scan._scan_range(m.table, m.start, m.stop, m.rowid_offset, self.mask)


def _call(thunk: Callable[[], Relation]) -> Relation:
    return thunk()


def _morsel_affinity_keys(
    thunks: Sequence[_ScanMorselThunk], ctx: ExecutionContext
) -> List[Tuple[int, int]]:
    """Partition-pinned affinity keys for scan-morsel dispatch.

    Morsels of one table/partition share a key component, so
    :meth:`~repro.engine.parallel.ExecutionContext.map_grouped` keeps a
    partition's contiguous chunks (and the caches their processing
    touches — minmax summaries, patch bitmaps) on one worker.  Each
    partition is additionally striped into about
    ``ceil(workers / partitions)`` contiguous runs: a group never spans
    partitions, yet an unpartitioned table still fans out across the
    pool instead of collapsing into one serial group.
    """
    counts: Dict[int, int] = {}
    for t in thunks:
        key = id(t.morsel.table)
        counts[key] = counts.get(key, 0) + 1
    stripes = max(1, -(-ctx.parallelism // len(counts)))
    seen: Dict[int, int] = {}
    keys: List[Tuple[int, int]] = []
    for t in thunks:
        key = id(t.morsel.table)
        pos = seen.get(key, 0)
        seen[key] = pos + 1
        keys.append((key, pos * stripes // counts[key]))
    return keys


def _take_with_context(
    rel: Relation, indices: np.ndarray, ctx: Optional[ExecutionContext]
) -> Relation:
    """Row gather, fanned out per column when a context warrants it.

    Fancy indexing is independent per column (numpy releases the GIL for
    the bulk copy), so wide sorted/merged outputs gather their columns
    concurrently; order and values are identical to ``rel.take``.
    """
    if (
        ctx is None
        or not ctx.active
        or len(rel.column_names) <= 1
        or len(indices) < ctx.min_parallel_rows
    ):
        return rel.take(indices)
    names = rel.column_names
    arrays = ctx.map(lambda name: rel.column(name)[indices], names)
    return Relation(dict(zip(names, arrays)))


def _slice_relation(rel: Relation, start: int, stop: int) -> Relation:
    """Row range of a relation as numpy views (no copies)."""
    return Relation({n: arr[start:stop] for n, arr in rel.columns().items()})


def find_scans(op: Operator) -> List[Scan]:
    """All Scan operators in a subtree (range-propagation targets)."""
    found: List[Scan] = []
    stack = [op]
    while stack:
        node = stack.pop()
        if isinstance(node, Scan):
            found.append(node)
        stack.extend(node.children())
    return found


def factorize_rows(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Dense group codes for multi-column keys.

    Returns ``(codes, first_idx)``: per-row group ids in ``[0, ngroups)``
    and the index of the first row of each group (ordered by key).
    """
    if len(arrays) == 1:
        _, first_idx, codes = np.unique(arrays[0], return_index=True, return_inverse=True)
        return codes.astype(np.int64), first_idx.astype(np.int64)
    combined = np.zeros(len(arrays[0]), dtype=np.int64)
    for arr in arrays:
        _, inv = np.unique(arr, return_inverse=True)
        card = int(inv.max()) + 1 if len(inv) else 1
        combined = combined * card + inv
    _, first_idx, codes = np.unique(combined, return_index=True, return_inverse=True)
    return codes.astype(np.int64), first_idx.astype(np.int64)


def _filled(n: int, like: np.ndarray, fill: float) -> np.ndarray:
    return np.full(n, fill, dtype=np.float64)


def _maybe_int(acc: np.ndarray, values: np.ndarray) -> np.ndarray:
    if values.dtype.kind in "iu":
        return acc.astype(np.int64)
    return acc
