"""Cooperative query interruption: tokens, deadlines, checkpoints.

A :class:`CancellationToken` carries two independent stop signals — an
explicit :meth:`~CancellationToken.cancel` flag and an optional
monotonic deadline derived from ``timeout_ms`` — and is *polled*, never
preemptive: morsel pipelines call :func:`checkpoint` (or
``token.check()``) between units of work and unwind via a typed
:class:`QueryInterruptedError` subclass.  Because every check sits
*between* morsels, interruption can never observe (or produce) a
half-processed morsel: reads leave tables and PatchIndexes untouched,
and DML performs one final check before applying its mutation, so a
write is either fully applied or provably un-applied.

The active token travels through a thread-local *scope*
(:func:`cancellation_scope`), installed by the session layer around a
statement.  Worker threads of an
:class:`~repro.engine.parallel.ExecutionContext` pool do not inherit
the submitter's thread-local state — the context captures the current
token at fan-out time and closes over it in the per-morsel task, which
is why checkpoints fire on pool workers too.

The no-token fast path is a single thread-local read per checkpoint, so
instrumenting operators costs nothing when interruption is not armed.
"""

from __future__ import annotations

import operator
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "QueryInterruptedError",
    "QueryCancelledError",
    "QueryTimeoutError",
    "CancellationToken",
    "cancellation_scope",
    "current_token",
    "checkpoint",
    "validate_timeout_ms",
]


class QueryInterruptedError(RuntimeError):
    """A statement unwound cooperatively before completing.

    Base class of the two interruption causes; catching it covers both.
    The engine raises it only *between* morsels (or before a DML
    mutation is applied), so whatever raised it left the stored data
    exactly as it was.
    """


class QueryCancelledError(QueryInterruptedError):
    """The statement's :class:`CancellationToken` was explicitly cancelled."""


class QueryTimeoutError(QueryInterruptedError):
    """The statement ran past its ``statement_timeout_ms`` deadline."""


def validate_timeout_ms(value, name: str = "statement_timeout_ms") -> int:
    """Validate a millisecond timeout knob: a positive integer.

    Mirrors :func:`~repro.engine.parallel.validate_parallelism`: rejects
    ``bool`` (a common footgun since ``True == 1``), non-integers, and
    values below 1.  ``None`` (= disabled) is handled by callers before
    validation, never here.
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    try:
        value = operator.index(value)
    except TypeError:
        raise TypeError(
            f"{name} must be an integer, got {type(value).__name__}"
        ) from None
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


class CancellationToken:
    """One statement's stop signal: an explicit flag plus a deadline.

    Thread-safe by construction: ``cancel()`` flips a single boolean
    that readers poll, and the deadline is immutable after ``__init__``.
    The token is created by the session when the statement is admitted,
    so a ``timeout_ms`` deadline covers queue wait as well as execution.
    """

    __slots__ = ("_cancelled", "_deadline", "_timeout_ms")

    def __init__(self, timeout_ms: Optional[int] = None) -> None:
        self._cancelled = False
        if timeout_ms is None:
            self._timeout_ms = None
            self._deadline = None
        else:
            self._timeout_ms = validate_timeout_ms(timeout_ms)
            self._deadline = time.monotonic() + self._timeout_ms / 1000.0

    def cancel(self) -> None:
        """Request interruption; the statement unwinds at its next check."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def timeout_ms(self) -> Optional[int]:
        """The timeout this token was armed with, if any."""
        return self._timeout_ms

    @property
    def deadline(self) -> Optional[float]:
        """Absolute ``time.monotonic()`` deadline, if a timeout is armed."""
        return self._deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (may be negative); None if unarmed."""
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    def expired(self) -> bool:
        """Whether the deadline (if any) has passed."""
        return self._deadline is not None and time.monotonic() >= self._deadline

    def check(self) -> None:
        """Raise the matching :class:`QueryInterruptedError` if signalled.

        Explicit cancellation wins over an expired deadline when both
        apply — the user's intent is the more specific signal.
        """
        if self._cancelled:
            raise QueryCancelledError("query cancelled")
        if self._deadline is not None and time.monotonic() >= self._deadline:
            raise QueryTimeoutError(
                f"query timed out after {self._timeout_ms} ms"
            )


class _Scope(threading.local):
    """Per-thread stack cell holding the active token."""

    token: Optional[CancellationToken] = None


_SCOPE = _Scope()


def current_token() -> Optional[CancellationToken]:
    """The token installed on this thread, or None outside any scope."""
    return _SCOPE.token


@contextmanager
def cancellation_scope(token: Optional[CancellationToken]) -> Iterator[None]:
    """Install ``token`` as this thread's active token for the block.

    Scopes nest: the previous token is restored on exit, so a statement
    run from inside another statement's scope (tests do this) sees its
    own token only.  ``None`` explicitly clears the scope for the block.
    """
    previous = _SCOPE.token
    _SCOPE.token = token
    try:
        yield
    finally:
        _SCOPE.token = previous


def checkpoint() -> None:
    """Poll this thread's active token; no-op when no scope is installed.

    This is the call operators sprinkle between morsels — the disarmed
    cost is one thread-local attribute read.
    """
    token = _SCOPE.token
    if token is not None:
        token.check()
