"""Relations: the columnar data flowing between operators."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["Relation", "ROWID"]

#: Reserved column carrying tuple rowIDs through a dataflow.  The
#: PatchIndex selection operators decide per tuple on its rowID (§3.5),
#: so scans attach this column when an index is in play.
ROWID = "__rowid__"


class Relation:
    """An immutable set of equal-length named columns."""

    __slots__ = ("_columns", "_num_rows")

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        lengths = {len(arr) for arr in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: {sorted(lengths)}")
        self._columns = dict(columns)
        self._num_rows = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise KeyError(f"unknown column {name!r}; have {self.column_names}")
        return self._columns[name]

    def columns(self) -> Dict[str, np.ndarray]:
        return dict(self._columns)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Relation":
        """Row selection by index array (gathers every column)."""
        return Relation({n: arr[indices] for n, arr in self._columns.items()})

    def filter(self, mask: np.ndarray) -> "Relation":
        """Row selection by boolean mask."""
        return Relation({n: arr[mask] for n, arr in self._columns.items()})

    def select(self, names: Sequence[str]) -> "Relation":
        """Column projection."""
        return Relation({n: self.column(n) for n in names})

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        """Rename columns; unmentioned columns keep their names."""
        return Relation({mapping.get(n, n): arr for n, arr in self._columns.items()})

    def with_column(self, name: str, values: np.ndarray) -> "Relation":
        """Add or replace one column."""
        if len(values) != self._num_rows and self._columns:
            raise ValueError("column length mismatch")
        cols = dict(self._columns)
        cols[name] = values
        return Relation(cols)

    def drop(self, names: Iterable[str]) -> "Relation":
        """Remove columns if present."""
        names = set(names)
        return Relation({n: a for n, a in self._columns.items() if n not in names})

    @staticmethod
    def concat(relations: Sequence["Relation"]) -> "Relation":
        """Stack relations with identical column sets vertically."""
        relations = [r for r in relations]
        if not relations:
            return Relation({})
        names = relations[0].column_names
        for r in relations[1:]:
            if set(r.column_names) != set(names):
                raise ValueError("concat requires identical column sets")
        return Relation(
            {n: np.concatenate([r.column(n) for r in relations]) for n in names}
        )

    @staticmethod
    def empty_like(rel: "Relation") -> "Relation":
        """A zero-row relation with the same columns."""
        return Relation({n: arr[:0] for n, arr in rel._columns.items()})

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def to_rows(self) -> List[tuple]:
        """Materialize as python tuples (test/debug helper)."""
        names = self.column_names
        return list(zip(*(self._columns[n].tolist() for n in names)))

    def sort_by(
        self,
        keys: Sequence[str],
        ascending: Optional[Sequence[bool]] = None,
        stable: bool = True,
        context=None,
    ) -> "Relation":
        """Multi-key sort in the engine's canonical stable order.

        The permutation is
        :func:`repro.engine.parallel_sort.sort_permutation` — the
        repeated stable-argsort composition every sort consumer shares;
        passing an :class:`~repro.engine.parallel.ExecutionContext` runs
        it as parallel chunk-sorts plus a deterministic k-way merge with
        bit-identical output.  ``stable=False`` keeps the historical
        introsort (quicksort family) path for single-key sorts, matching
        the paper's engine whose sort does not exploit pre-sortedness.
        """
        from repro.engine.parallel_sort import sort_permutation

        if ascending is None:
            ascending = [True] * len(keys)
        if not stable and len(keys) == 1:
            idx = np.argsort(self._columns[keys[0]], kind="quicksort")
            if not ascending[0]:
                idx = idx[::-1]
            return self.take(idx)
        order = sort_permutation(
            [self._columns[k] for k in keys], ascending, context=context
        )
        return self.take(order)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Relation(rows={self._num_rows}, cols={self.column_names})"
