"""Morsel-driven parallel execution (the engine-side analogue of §4.2.3).

The paper parallelizes PatchIndex *maintenance* by exploiting that
shard-local bitmap work is independent; this module applies the same
discipline to *query execution*.  Tables are cut into fixed-size row
ranges ("morsels", after the morsel-driven scheduling of Leis et al.),
each morsel is processed by a worker of a shared
:class:`~concurrent.futures.ThreadPoolExecutor`, and the per-morsel
results are combined in morsel order.  Because numpy kernels release the
GIL for the heavy slice work — the same property
:mod:`repro.bitmap.parallel` relies on — scan/filter/patch-select
pipelines scale across cores despite running in threads.

Determinism contract
--------------------
Parallel execution must be indistinguishable from serial execution:

* morsels are formed from contiguous row ranges and concatenated in
  morsel order, so tuple order matches a serial scan bit-for-bit;
* hash-join match pairs are re-sorted to the serial probe order;
* aggregation merges per-worker partials only for aggregates whose
  reduction is exactly associative (count, min, max, int64 integer
  sums); floating-point sums are reduced in original row order so IEEE
  rounding matches the serial plan.

Operators consult the :class:`ExecutionContext` attached to their tree
(see :meth:`repro.engine.operators.Operator.bind_context`); with no
context, or ``parallelism=1``, every path degenerates to the serial
implementation.
"""

from __future__ import annotations

import dataclasses
import operator
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.engine.interrupt import CancellationToken, current_token
from repro.testing import faults

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "DEFAULT_MIN_PARALLEL_ROWS",
    "ExecutionContext",
    "Morsel",
    "row_chunks",
    "table_morsels",
    "validate_parallelism",
    "validate_stall_timeout",
]

#: Rows per morsel; large enough that numpy kernel time dominates the
#: per-task dispatch overhead, small enough to load-balance.
DEFAULT_MORSEL_ROWS = 65_536

#: Below this many input rows parallel dispatch is pure overhead (the
#: left side of the paper's Figure 6 U-curve) and operators run serially.
DEFAULT_MIN_PARALLEL_ROWS = 16_384

T = TypeVar("T")
R = TypeVar("R")


def validate_parallelism(value: object, name: str = "parallelism") -> int:
    """Validate a worker-count knob, returning it as a plain int.

    Shared by every surface that accepts a parallelism setting (the
    ``SET parallelism`` statement, session/context constructors and
    PatchIndex maintenance): the value must be a positive integer.
    Floats, bools and strings are rejected with a :class:`TypeError`,
    zero and negatives with a :class:`ValueError`, instead of surfacing
    later as worker-pool misbehavior.
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    try:
        parallelism = operator.index(value)
    except TypeError:
        raise TypeError(f"{name} must be an integer, got {value!r}") from None
    if parallelism < 1:
        raise ValueError(f"{name} must be a positive integer, got {parallelism}")
    return int(parallelism)


def validate_stall_timeout(value: object, name: str = "stall_timeout_s") -> float:
    """Validate a stall-timeout knob: a positive number of seconds.

    ``None`` (= disabled) is handled by callers before validation, never
    here; bools and non-numbers are rejected like
    :func:`validate_parallelism` rejects them.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return float(value)


def _run_morsel_task(
    fn: Callable[[T], R], item: T, token: Optional[CancellationToken]
) -> R:
    """One pool task: checkpoint, fault point, then the actual work.

    A module-level function (not a closure inside :meth:`map`) so the
    token travels *explicitly*: pool workers do not inherit the
    submitter's thread-local cancellation scope, and capturing the token
    at fan-out time is what makes checkpoints fire on worker threads.
    """
    if token is not None:
        token.check()
    if faults.ACTIVE:
        faults.fire("worker.morsel")
    return fn(item)


@dataclasses.dataclass(frozen=True)
class Morsel:
    """A contiguous row range of one table (or partition).

    ``rowid_offset`` is the global rowID of row ``start``, so scans can
    attach rowIDs that match a serial full-table scan.
    """

    table: object
    start: int
    stop: int
    rowid_offset: int

    @property
    def num_rows(self) -> int:
        return self.stop - self.start


def row_chunks(num_rows: int, chunk_rows: int) -> List[Tuple[int, int]]:
    """Split ``[0, num_rows)`` into contiguous ``(start, stop)`` ranges."""
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    return [
        (start, min(start + chunk_rows, num_rows))
        for start in range(0, num_rows, chunk_rows)
    ]


def table_morsels(table, morsel_rows: int = DEFAULT_MORSEL_ROWS) -> List[Morsel]:
    """Morsels covering ``table`` in row order.

    Partitioned tables contribute per-partition ranges (morsels never
    span a partition boundary, mirroring the partition-local processing
    of §3.2); plain tables are cut into ``morsel_rows`` ranges.
    """
    partitions = getattr(table, "partitions", None)
    if partitions is None:
        return [
            Morsel(table, start, stop, start)
            for start, stop in row_chunks(table.num_rows, morsel_rows)
        ]
    offsets = table.partition_offsets()
    morsels: List[Morsel] = []
    for part, offset in zip(partitions, offsets):
        for start, stop in row_chunks(part.num_rows, morsel_rows):
            morsels.append(Morsel(part, start, stop, int(offset) + start))
    return morsels


class ExecutionContext:
    """Shared worker pool plus the knobs of one parallel execution.

    Parameters
    ----------
    parallelism:
        Worker count; ``1`` disables parallel paths entirely and ``None``
        uses the CPU count.
    morsel_rows:
        Rows per morsel / per aggregation chunk.
    min_parallel_rows:
        Operators with fewer input rows stay serial.
    external_workers:
        Worker count of the *external lane* (see
        :meth:`submit_external`); defaults to ``max(2, parallelism)``.
    stall_timeout_s:
        If set, :meth:`map` treats a pool task that produces no result
        for this many seconds as *wedged*: the pool is quarantined
        (shut down without waiting and replaced lazily) and the
        unfinished morsels are recomputed inline — safe because morsel
        tasks are pure.  ``None`` (the default) disables stall
        detection; a healthy deployment relies on cooperative
        cancellation instead.

    The pool is created lazily on first use and shared by every operator
    bound to the context (and by concurrent queries of one session); it
    is safe to call :meth:`map` from several threads at once.

    The context is designed as a *shared handle*: a multi-client
    front-end (:class:`repro.sql.async_session.AsyncSQLSession`) creates
    one context and hands it to its blocking session core, so every
    client's morsel work multiplexes onto one worker pool instead of
    each client spinning up its own.
    """

    def __init__(
        self,
        parallelism: Optional[int] = None,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        min_parallel_rows: int = DEFAULT_MIN_PARALLEL_ROWS,
        external_workers: Optional[int] = None,
        stall_timeout_s: Optional[float] = None,
    ) -> None:
        if parallelism is None:
            parallelism = os.cpu_count() or 1
        parallelism = validate_parallelism(parallelism)
        if morsel_rows < 1:
            raise ValueError("morsel_rows must be >= 1")
        if external_workers is None:
            external_workers = max(2, parallelism)
        if stall_timeout_s is not None:
            stall_timeout_s = validate_stall_timeout(stall_timeout_s)
        self._parallelism = parallelism
        self.morsel_rows = int(morsel_rows)
        self.min_parallel_rows = int(min_parallel_rows)
        self._external_workers = validate_parallelism(
            external_workers, name="external_workers"
        )
        self._stall_timeout_s = stall_timeout_s
        self._heal_count = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._external: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def parallelism(self) -> int:
        return self._parallelism

    @property
    def active(self) -> bool:
        """Whether parallel paths should engage at all."""
        return self._parallelism > 1

    @property
    def stall_timeout_s(self) -> Optional[float]:
        """Seconds before a silent pool task counts as wedged (None = off)."""
        return self._stall_timeout_s

    @property
    def heal_count(self) -> int:
        """How many times a wedged pool was quarantined and replaced."""
        return self._heal_count

    def should_parallelize(self, num_rows: int, num_tasks: int = 2) -> bool:
        """Gate for operators: enough rows and at least two tasks."""
        return self.active and num_tasks >= 2 and num_rows >= self.min_parallel_rows

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Optional[ThreadPoolExecutor]:
        if self._pool is None:
            with self._pool_lock:
                if self._closed:
                    return None
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self._parallelism,
                        thread_name_prefix="repro-exec",
                    )
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in item order.

        Runs inline when the context is serial, closed, or there is at
        most one item; otherwise dispatches to the shared pool.  The
        first worker exception propagates to the caller with its
        original traceback; the pool's threads survive task exceptions,
        so a poisoned morsel never wedges the context.

        The calling thread's :class:`CancellationToken` (if a
        cancellation scope is installed) is captured at fan-out time and
        checked before every morsel — on pool workers via the explicit
        capture, inline via the same path — so both execution modes
        interrupt with morsel granularity.

        With ``stall_timeout_s`` armed, a task that stays silent past
        the deadline triggers self-healing: the wedged pool is
        quarantined, its unfinished morsels are recomputed inline
        (morsel tasks are pure, so recomputation is safe), and the next
        parallel call lazily builds a replacement pool.

        ``fn`` must not call :meth:`map` recursively: only leaf-level
        morsel work goes to the pool, operator orchestration stays on the
        calling thread, which keeps the fixed-size pool deadlock-free.
        """
        token = current_token()
        if not self.active or len(items) <= 1:
            return self._map_inline(fn, items, token)
        pool = self._ensure_pool()
        if pool is None:
            # closed (e.g. by SET parallelism racing an in-flight query):
            # degrade to inline execution rather than resurrect a pool
            # nothing would ever shut down again.
            return self._map_inline(fn, items, token)
        try:
            futures = [pool.submit(_run_morsel_task, fn, item, token) for item in items]
        except RuntimeError:
            # the pool shut down between _ensure_pool and the submit;
            # morsel tasks are pure, so recomputing inline is safe
            if self._closed:
                return self._map_inline(fn, items, token)
            raise
        return self._collect(pool, futures, fn, items, token)

    @staticmethod
    def _map_inline(
        fn: Callable[[T], R],
        items: Sequence[T],
        token: Optional[CancellationToken],
    ) -> List[R]:
        """Serial fallback with the same per-morsel checkpoints as the pool."""
        out: List[R] = []
        for item in items:
            if token is not None:
                token.check()
            if faults.ACTIVE:
                faults.fire("worker.morsel")
            out.append(fn(item))
        return out

    def _collect(
        self,
        pool: ThreadPoolExecutor,
        futures: List["Future[R]"],
        fn: Callable[[T], R],
        items: Sequence[T],
        token: Optional[CancellationToken],
    ) -> List[R]:
        """Gather morsel results in item order, healing a wedged pool."""
        results: List[R] = [None] * len(futures)  # type: ignore[list-item]
        try:
            for i, future in enumerate(futures):
                results[i] = future.result(timeout=self._stall_timeout_s)
        except FuturesTimeoutError:
            # A task sat past stall_timeout_s with no result: treat the
            # pool as wedged.  Quarantine it (replacement is built lazily
            # by the next parallel call) and finish this map serially.
            for future in futures:
                future.cancel()
            self._quarantine(pool)
            for i, future in enumerate(futures):
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    results[i] = future.result()
                else:
                    if token is not None:
                        token.check()
                    results[i] = fn(items[i])
        except BaseException:
            # worker exception or an interrupt on this thread: drop the
            # not-yet-started morsels and propagate
            for future in futures:
                future.cancel()
            raise
        return results

    def _quarantine(self, pool: ThreadPoolExecutor) -> None:
        """Retire a wedged pool; the next parallel call builds a new one."""
        with self._pool_lock:
            if self._closed or self._pool is not pool:
                # someone else already replaced (or closed) it
                pool.shutdown(wait=False, cancel_futures=True)
                return
            self._pool = None
            self._heal_count += 1
        pool.shutdown(wait=False, cancel_futures=True)

    def map_grouped(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        keys: Sequence[object],
    ) -> List[R]:
        """Apply ``fn`` to every item with affinity grouping.

        Items sharing a key form one pool task that processes them
        sequentially on a single worker — the NUMA-style affinity the
        parallel sort uses to keep a partition's chunks (and their
        minmax/patch caches) on one thread.  Results come back in item
        order regardless of grouping, and the same recursion rule as
        :meth:`map` applies: ``fn`` must be leaf-level work.
        """
        if len(keys) != len(items):
            raise ValueError("need one affinity key per item")
        token = current_token()
        if not self.active or len(items) <= 1:
            return self._map_inline(fn, items, token)
        groups: dict = {}
        for pos, (item, key) in enumerate(zip(items, keys)):
            groups.setdefault(key, []).append((pos, item))
        if len(groups) <= 1:
            return self._map_inline(fn, items, token)

        def run_group(entries: List[Tuple[int, T]]) -> List[Tuple[int, R]]:
            out = []
            for pos, item in entries:
                # morsel-granular checkpoints *within* an affinity group
                # too, not just between groups
                if token is not None:
                    token.check()
                out.append((pos, fn(item)))
            return out

        out: List[R] = [None] * len(items)  # type: ignore[list-item]
        for batch in self.map(run_group, list(groups.values())):
            for pos, result in batch:
                out[pos] = result
        return out

    # ------------------------------------------------------------------
    # external lane (statement-granular work)
    # ------------------------------------------------------------------
    @property
    def external_workers(self) -> int:
        """Worker count of the external lane."""
        return self._external_workers

    def _ensure_external(self) -> Optional[ThreadPoolExecutor]:
        if self._external is None:
            with self._pool_lock:
                if self._closed:
                    return None
                if self._external is None:
                    self._external = ThreadPoolExecutor(
                        max_workers=self._external_workers,
                        thread_name_prefix="repro-extern",
                    )
        return self._external

    def submit_external(self, fn: Callable[..., R], *args, **kwargs) -> "Future[R]":
        """Run ``fn`` on the external lane, returning its Future.

        The external lane is a second, separately-sized pool for
        *statement-granular* work — e.g. one client query dispatched off
        an event loop — as opposed to the morsel-granular tasks
        :meth:`map` fans out.  Keeping the lanes apart preserves the
        executor's deadlock-freedom rule: morsel workers never block on
        other morsel tasks, and a statement running on the external lane
        may freely call :meth:`map` (the fan-out lands on the morsel
        pool, not back on its own lane).  Unlike :meth:`map`, this works
        at any ``parallelism`` including 1 — a serial context still
        offers the lane so a front-end can push blocking statements off
        its event loop.

        Raises :class:`RuntimeError` once the context is closed.
        """
        pool = self._ensure_external()
        if pool is None:
            raise RuntimeError("cannot submit external work to a closed context")
        return pool.submit(fn, *args, **kwargs)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut both worker pools down (idempotent and permanent).

        In-flight :meth:`map` callers finish; later calls run inline.
        In-flight external-lane work finishes; later
        :meth:`submit_external` calls raise.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            external, self._external = self._external, None
            self._closed = True
        for p in (pool, external):
            if p is not None:
                # a pool thread closing its own context (e.g. a SET
                # statement executing on the external lane) must not
                # join itself; the interpreter reaps the workers.
                wait = threading.current_thread() not in getattr(p, "_threads", ())
                p.shutdown(wait=wait)

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExecutionContext(parallelism={self._parallelism}, "
            f"morsel_rows={self.morsel_rows})"
        )
