"""Scalar/predicate expressions evaluated vectorized over relations."""

from __future__ import annotations

import operator
from typing import Callable, Union

import numpy as np

from repro.engine.batch import Relation

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "BinaryExpr",
    "ComparisonExpr",
    "UnaryExpr",
    "IsNullExpr",
    "CaseExpr",
    "col",
    "lit",
    "where",
    "is_null",
    "expression_columns",
]


class Expression:
    """Base class; subclasses implement :meth:`evaluate`."""

    def evaluate(self, rel: Relation) -> np.ndarray:
        """Evaluate to a numpy array aligned with ``rel``'s rows."""
        raise NotImplementedError

    # -- comparison operators ------------------------------------------
    def __eq__(self, other: object):  # type: ignore[override]
        return ComparisonExpr(operator.eq, "=", self, _wrap(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return ComparisonExpr(operator.ne, "<>", self, _wrap(other))

    def __lt__(self, other: object):
        return ComparisonExpr(operator.lt, "<", self, _wrap(other))

    def __le__(self, other: object):
        return ComparisonExpr(operator.le, "<=", self, _wrap(other))

    def __gt__(self, other: object):
        return ComparisonExpr(operator.gt, ">", self, _wrap(other))

    def __ge__(self, other: object):
        return ComparisonExpr(operator.ge, ">=", self, _wrap(other))

    # -- boolean connectives -------------------------------------------
    def __and__(self, other: object):
        return BinaryExpr(np.logical_and, "AND", self, _wrap(other))

    def __or__(self, other: object):
        return BinaryExpr(np.logical_or, "OR", self, _wrap(other))

    def __invert__(self):
        return UnaryExpr(np.logical_not, "NOT", self)

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: object):
        return BinaryExpr(operator.add, "+", self, _wrap(other))

    def __sub__(self, other: object):
        return BinaryExpr(operator.sub, "-", self, _wrap(other))

    def __mul__(self, other: object):
        return BinaryExpr(operator.mul, "*", self, _wrap(other))

    def __truediv__(self, other: object):
        return BinaryExpr(operator.truediv, "/", self, _wrap(other))

    def __floordiv__(self, other: object):
        return BinaryExpr(operator.floordiv, "//", self, _wrap(other))

    def __mod__(self, other: object):
        return BinaryExpr(operator.mod, "%", self, _wrap(other))

    def __rmul__(self, other: object):
        return BinaryExpr(operator.mul, "*", _wrap(other), self)

    def __rsub__(self, other: object):
        return BinaryExpr(operator.sub, "-", _wrap(other), self)

    def __radd__(self, other: object):
        return BinaryExpr(operator.add, "+", _wrap(other), self)

    def isin(self, values) -> "Expression":
        """Membership test against a fixed value set."""
        return IsInExpr(self, values)

    def __hash__(self) -> int:  # __eq__ is overloaded, keep hashability
        return id(self)


class ColumnRef(Expression):
    """Reference to a column of the input relation."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, rel: Relation) -> np.ndarray:
        return rel.column(self.name)

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant, broadcast over the input rows."""

    def __init__(self, value: object) -> None:
        self.value = value

    def evaluate(self, rel: Relation) -> np.ndarray:
        if isinstance(self.value, str):
            out = np.empty(rel.num_rows, dtype=object)
            out[:] = self.value
            return out
        return np.full(rel.num_rows, self.value)

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class BinaryExpr(Expression):
    """Vectorized binary operation."""

    def __init__(self, fn: Callable, symbol: str, left: Expression, right: Expression) -> None:
        self.fn = fn
        self.symbol = symbol
        self.left = left
        self.right = right

    def evaluate(self, rel: Relation) -> np.ndarray:
        return self.fn(self.left.evaluate(rel), self.right.evaluate(rel))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


_NOT_NONE_UFUNC = np.frompyfunc(lambda v: v is not None, 1, 1)


def _not_null_mask(arr: np.ndarray) -> np.ndarray:
    """True where a value is present (SQL not-NULL).

    NULL is represented as ``None`` in object (string) columns and as
    NaN in float columns; integer columns cannot hold NULLs.
    """
    if arr.dtype == object:
        if len(arr) == 0:
            return np.zeros(0, dtype=bool)
        return _NOT_NONE_UFUNC(arr).astype(bool)
    if np.issubdtype(arr.dtype, np.floating):
        return ~np.isnan(arr)
    return np.ones(len(arr), dtype=bool)


class ComparisonExpr(BinaryExpr):
    """Comparison with SQL NULL semantics: NULL never matches.

    SQL three-valued logic collapses to two values at the predicate
    boundary: a comparison involving NULL evaluates to NULL, and NULL
    rows are excluded — so here any comparison where either operand is
    NULL (``None`` in object columns, NaN in float columns) yields
    ``False``.  This matches SQLite/DuckDB row selection for plain
    predicates (``WHERE x = NULL`` matches nothing, ``x <> 1`` skips
    NULL rows); ``NOT`` over a NULL comparison still differs from
    strict three-valued logic and is tracked in the differential
    harness's xfail manifest.
    """

    def evaluate(self, rel: Relation) -> np.ndarray:
        left = np.asarray(self.left.evaluate(rel))
        right = np.asarray(self.right.evaluate(rel))
        if left.dtype != object and right.dtype != object:
            out = np.asarray(self.fn(left, right), dtype=bool)
            # numpy says NaN != x is True; SQL says NULL <> x is NULL
            if self.symbol == "<>":
                if np.issubdtype(left.dtype, np.floating):
                    out &= ~np.isnan(left)
                if np.issubdtype(right.dtype, np.floating):
                    out &= ~np.isnan(right)
            return out
        valid = _not_null_mask(left) & _not_null_mask(right)
        out = np.zeros(len(valid), dtype=bool)
        if valid.any():
            out[valid] = np.asarray(
                self.fn(left[valid], right[valid]), dtype=bool
            )
        return out


class UnaryExpr(Expression):
    """Vectorized unary operation."""

    def __init__(self, fn: Callable, symbol: str, child: Expression) -> None:
        self.fn = fn
        self.symbol = symbol
        self.child = child

    def evaluate(self, rel: Relation) -> np.ndarray:
        return self.fn(self.child.evaluate(rel))

    def __repr__(self) -> str:
        return f"{self.symbol}({self.child!r})"


class IsNullExpr(Expression):
    """SQL ``x IS NULL`` / ``x IS NOT NULL`` membership-in-NULL test.

    The only predicate form that *selects* NULL rows (comparisons never
    do, see :class:`ComparisonExpr`).  NULL is ``None`` in object
    columns and NaN in float columns; integer columns have no NULLs,
    so ``IS NULL`` over them is constant-false.
    """

    def __init__(self, child: Expression, negate: bool = False) -> None:
        self.child = child
        self.negate = negate

    def evaluate(self, rel: Relation) -> np.ndarray:
        present = _not_null_mask(np.asarray(self.child.evaluate(rel)))
        return present if self.negate else ~present

    def __repr__(self) -> str:
        op = "IS NOT NULL" if self.negate else "IS NULL"
        return f"({self.child!r} {op})"


class IsInExpr(Expression):
    """Membership test (``x IN (v1, v2, ...)``)."""

    def __init__(self, child: Expression, values) -> None:
        self.child = child
        self.values = list(values)

    def evaluate(self, rel: Relation) -> np.ndarray:
        vals = np.asarray(self.child.evaluate(rel))
        # SQL: NULL IN (...) is NULL (row excluded), and a NULL member
        # of the value list can never produce a match
        members = [v for v in self.values if v is not None]
        out = np.asarray(np.isin(vals, members), dtype=bool)
        if vals.dtype == object or np.issubdtype(vals.dtype, np.floating):
            out &= _not_null_mask(vals)
        return out

    def __repr__(self) -> str:
        return f"({self.child!r} IN {self.values!r})"


class CaseExpr(Expression):
    """Two-branch conditional (``CASE WHEN cond THEN a ELSE b END``)."""

    def __init__(self, cond: Expression, then: Expression, otherwise: Expression) -> None:
        self.cond = cond
        self.then = then
        self.otherwise = otherwise

    def evaluate(self, rel: Relation) -> np.ndarray:
        return np.where(
            self.cond.evaluate(rel),
            self.then.evaluate(rel),
            self.otherwise.evaluate(rel),
        )

    def __repr__(self) -> str:
        return f"where({self.cond!r}, {self.then!r}, {self.otherwise!r})"


def col(name: str) -> ColumnRef:
    """Shorthand column reference."""
    return ColumnRef(name)


def lit(value: object) -> Literal:
    """Shorthand literal."""
    return Literal(value)


def where(
    cond: Expression,
    then: Union[Expression, object],
    otherwise: Union[Expression, object],
) -> CaseExpr:
    """Shorthand conditional expression."""
    return CaseExpr(cond, _wrap(then), _wrap(otherwise))


def is_null(expr: Expression, negate: bool = False) -> IsNullExpr:
    """Shorthand ``IS [NOT] NULL`` test."""
    return IsNullExpr(expr, negate)


def _wrap(value: object) -> Expression:
    return value if isinstance(value, Expression) else Literal(value)


def expression_columns(expr: Expression) -> set:
    """Names of all columns an expression references."""
    out: set = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ColumnRef):
            out.add(node.name)
        elif isinstance(node, BinaryExpr):
            stack.extend([node.left, node.right])
        elif isinstance(node, (UnaryExpr, IsInExpr, IsNullExpr)):
            stack.append(node.child)
        elif isinstance(node, CaseExpr):
            stack.extend([node.cond, node.then, node.otherwise])
    return out
