"""Scalar/predicate expressions evaluated vectorized over relations."""

from __future__ import annotations

import operator
from typing import Callable, Union

import numpy as np

from repro.engine.batch import Relation

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "BinaryExpr",
    "UnaryExpr",
    "CaseExpr",
    "col",
    "lit",
    "where",
    "expression_columns",
]


class Expression:
    """Base class; subclasses implement :meth:`evaluate`."""

    def evaluate(self, rel: Relation) -> np.ndarray:
        """Evaluate to a numpy array aligned with ``rel``'s rows."""
        raise NotImplementedError

    # -- comparison operators ------------------------------------------
    def __eq__(self, other: object):  # type: ignore[override]
        return BinaryExpr(operator.eq, "=", self, _wrap(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return BinaryExpr(operator.ne, "<>", self, _wrap(other))

    def __lt__(self, other: object):
        return BinaryExpr(operator.lt, "<", self, _wrap(other))

    def __le__(self, other: object):
        return BinaryExpr(operator.le, "<=", self, _wrap(other))

    def __gt__(self, other: object):
        return BinaryExpr(operator.gt, ">", self, _wrap(other))

    def __ge__(self, other: object):
        return BinaryExpr(operator.ge, ">=", self, _wrap(other))

    # -- boolean connectives -------------------------------------------
    def __and__(self, other: object):
        return BinaryExpr(np.logical_and, "AND", self, _wrap(other))

    def __or__(self, other: object):
        return BinaryExpr(np.logical_or, "OR", self, _wrap(other))

    def __invert__(self):
        return UnaryExpr(np.logical_not, "NOT", self)

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: object):
        return BinaryExpr(operator.add, "+", self, _wrap(other))

    def __sub__(self, other: object):
        return BinaryExpr(operator.sub, "-", self, _wrap(other))

    def __mul__(self, other: object):
        return BinaryExpr(operator.mul, "*", self, _wrap(other))

    def __truediv__(self, other: object):
        return BinaryExpr(operator.truediv, "/", self, _wrap(other))

    def __floordiv__(self, other: object):
        return BinaryExpr(operator.floordiv, "//", self, _wrap(other))

    def __mod__(self, other: object):
        return BinaryExpr(operator.mod, "%", self, _wrap(other))

    def __rmul__(self, other: object):
        return BinaryExpr(operator.mul, "*", _wrap(other), self)

    def __rsub__(self, other: object):
        return BinaryExpr(operator.sub, "-", _wrap(other), self)

    def __radd__(self, other: object):
        return BinaryExpr(operator.add, "+", _wrap(other), self)

    def isin(self, values) -> "Expression":
        """Membership test against a fixed value set."""
        return IsInExpr(self, values)

    def __hash__(self) -> int:  # __eq__ is overloaded, keep hashability
        return id(self)


class ColumnRef(Expression):
    """Reference to a column of the input relation."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, rel: Relation) -> np.ndarray:
        return rel.column(self.name)

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant, broadcast over the input rows."""

    def __init__(self, value: object) -> None:
        self.value = value

    def evaluate(self, rel: Relation) -> np.ndarray:
        if isinstance(self.value, str):
            out = np.empty(rel.num_rows, dtype=object)
            out[:] = self.value
            return out
        return np.full(rel.num_rows, self.value)

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class BinaryExpr(Expression):
    """Vectorized binary operation."""

    def __init__(self, fn: Callable, symbol: str, left: Expression, right: Expression) -> None:
        self.fn = fn
        self.symbol = symbol
        self.left = left
        self.right = right

    def evaluate(self, rel: Relation) -> np.ndarray:
        return self.fn(self.left.evaluate(rel), self.right.evaluate(rel))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class UnaryExpr(Expression):
    """Vectorized unary operation."""

    def __init__(self, fn: Callable, symbol: str, child: Expression) -> None:
        self.fn = fn
        self.symbol = symbol
        self.child = child

    def evaluate(self, rel: Relation) -> np.ndarray:
        return self.fn(self.child.evaluate(rel))

    def __repr__(self) -> str:
        return f"{self.symbol}({self.child!r})"


class IsInExpr(Expression):
    """Membership test (``x IN (v1, v2, ...)``)."""

    def __init__(self, child: Expression, values) -> None:
        self.child = child
        self.values = list(values)

    def evaluate(self, rel: Relation) -> np.ndarray:
        vals = self.child.evaluate(rel)
        return np.isin(vals, self.values)

    def __repr__(self) -> str:
        return f"({self.child!r} IN {self.values!r})"


class CaseExpr(Expression):
    """Two-branch conditional (``CASE WHEN cond THEN a ELSE b END``)."""

    def __init__(self, cond: Expression, then: Expression, otherwise: Expression) -> None:
        self.cond = cond
        self.then = then
        self.otherwise = otherwise

    def evaluate(self, rel: Relation) -> np.ndarray:
        return np.where(
            self.cond.evaluate(rel),
            self.then.evaluate(rel),
            self.otherwise.evaluate(rel),
        )

    def __repr__(self) -> str:
        return f"where({self.cond!r}, {self.then!r}, {self.otherwise!r})"


def col(name: str) -> ColumnRef:
    """Shorthand column reference."""
    return ColumnRef(name)


def lit(value: object) -> Literal:
    """Shorthand literal."""
    return Literal(value)


def where(
    cond: Expression,
    then: Union[Expression, object],
    otherwise: Union[Expression, object],
) -> CaseExpr:
    """Shorthand conditional expression."""
    return CaseExpr(cond, _wrap(then), _wrap(otherwise))


def _wrap(value: object) -> Expression:
    return value if isinstance(value, Expression) else Literal(value)


def expression_columns(expr: Expression) -> set:
    """Names of all columns an expression references."""
    out: set = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ColumnRef):
            out.add(node.name)
        elif isinstance(node, BinaryExpr):
            stack.extend([node.left, node.right])
        elif isinstance(node, (UnaryExpr, IsInExpr)):
            stack.append(node.child)
        elif isinstance(node, CaseExpr):
            stack.extend([node.cond, node.then, node.otherwise])
    return out
