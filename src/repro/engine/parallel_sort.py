"""Stable parallel sort: morsel chunk-sort + deterministic k-way merge.

PR 1's morsel executor left every sort on the serial path because the
engine's bit-identity contract ("parallel execution is indistinguishable
from serial execution") seemed to force it: a naive parallel sort breaks
ties in a schedule-dependent order.  This module retires that
restriction.  The input is cut into morsel-aligned chunks, each chunk is
argsorted on the shared :class:`~repro.engine.parallel.ExecutionContext`
worker pool, and the sorted chunk runs are combined by a deterministic
k-way tournament merge (a loser-tree bracket of vectorized two-way
merges) that breaks equal keys by ``(chunk index, within-chunk offset)``.
Chunks are contiguous row ranges taken in order, so that tie rule *is*
original row order — the result is bit-identical to
``np.argsort(kind="stable")`` no matter the worker count or schedule,
including multi-key, descending and NaN/None orderings.

Ordering semantics
------------------
:func:`serial_sort_permutation` is the reference: a least-significant-
key-first loop of stable argsorts where a descending key reverses its
*equal-key groups* only — ties keep the order established by the
less-significant keys, and full-row ties always keep original row
order.  This is SQL ``ORDER BY`` semantics: each key's direction is
independent (``ORDER BY a DESC, b`` still orders ``b`` ascending
within equal ``a``).  An earlier revision reversed the whole
permutation per descending key, which flipped the tie order of every
less-significant key — a wrong-answer bug the differential harness
caught against SQLite.  The parallel path reproduces the reference
exactly via a single-pass reduction: multi-key inputs are rank-encoded
per key (dense codes in argsort order, NaN/NaT/None grouped as one
largest value, a descending direction folded in by flipping that key's
codes) and combined into one ``int64`` key, so the merge only ever
compares scalars and full-row ties fall back to original row index.

Partition affinity
------------------
Chunk-sort tasks are dispatched through
:meth:`~repro.engine.parallel.ExecutionContext.map_grouped`: chunks
sharing an affinity key run sequentially on one worker.  Callers sorting
partitioned data (``SortKey`` refresh) key the groups by partition so a
partition's chunks land on a fixed worker and its per-partition caches
(minmax, patch bitmaps) stay warm; by default chunks are block-striped
across workers, which keeps neighbouring rows on one thread.

Everything degenerates to the serial reference when the context is
absent/serial, the input is below the parallel threshold, or
:func:`sort_parallel_payoff` says the fan-out cannot amortize its
dispatch overhead (the plan-level twin lives in
:meth:`repro.plan.cost.CostModel.sort_parallel_payoff`).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.interrupt import checkpoint
from repro.engine.parallel import (
    DEFAULT_MORSEL_ROWS,
    ExecutionContext,
    row_chunks,
)

__all__ = [
    "serial_sort_permutation",
    "sort_permutation",
    "merge_sorted_runs",
    "sort_parallel_payoff",
    "parallel_sort_cost",
    "serial_sort_cost",
]

#: Cost units mirroring :class:`repro.plan.cost.CostModel` (kept here so
#: the runtime gate and the plan-level model share one formula).
SORT_UNIT = 2.0
MERGE_UNIT = 0.5
DISPATCH_UNIT = 10.0

#: Combined multi-key codes are re-densified before their cardinality
#: product can overflow int64.
_CODE_LIMIT = 1 << 60

#: Dtype kinds whose comparisons run GIL-free in numpy; object columns
#: (python comparisons) sort serially — chunking buys nothing under the
#: GIL and the serial path is trivially bit-identical.
_PARALLEL_KINDS = "biufUSMm"


# ----------------------------------------------------------------------
# cost gate (shared with plan/cost.py)
# ----------------------------------------------------------------------
def serial_sort_cost(
    num_rows: float,
    sort_unit: float = SORT_UNIT,
) -> float:
    """Abstract cost units of a serial n-log-n sort."""
    n = float(num_rows)
    return sort_unit * n * max(1.0, math.log2(max(n, 2.0)))


def parallel_sort_cost(
    num_rows: float,
    parallelism: int,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
    sort_unit: float = SORT_UNIT,
    merge_unit: float = MERGE_UNIT,
    dispatch_unit: float = DISPATCH_UNIT,
) -> float:
    """Abstract cost units of the chunk-sort + k-way merge pipeline.

    Chunk argsorts divide the n·log(chunk) comparison work across the
    achievable workers (an input smaller than a morsel cannot use more
    than one); the merge pays n·log(chunks) vectorized comparisons; every
    engaged worker costs a fixed dispatch overhead.
    """
    n = float(num_rows)
    if n <= 0:
        return 0.0
    workers = min(float(max(1, parallelism)), n / float(morsel_rows))
    if workers <= 1.0:
        return serial_sort_cost(n, sort_unit)
    num_chunks = math.ceil(n / float(morsel_rows))
    chunk_cost = sort_unit * n * max(1.0, math.log2(max(morsel_rows, 2.0))) / workers
    merge_cost = merge_unit * n * max(1.0, math.log2(max(num_chunks, 2.0)))
    return chunk_cost + merge_cost + dispatch_unit * workers


def sort_parallel_payoff(
    num_rows: float,
    parallelism: int,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
    sort_unit: float = SORT_UNIT,
    merge_unit: float = MERGE_UNIT,
    dispatch_unit: float = DISPATCH_UNIT,
) -> bool:
    """Whether the parallel sort pipeline undercuts the serial sort.

    The runtime consults this (with the context's knobs) before fanning
    a sort out, mirroring ``dml_parallel_payoff``: below the payoff
    point the sort stays on the serial path, so small ORDER BYs never
    regress.
    """
    if parallelism <= 1 or num_rows <= 0:
        return False
    serial = serial_sort_cost(num_rows, sort_unit)
    parallel = parallel_sort_cost(
        num_rows, parallelism, morsel_rows, sort_unit, merge_unit, dispatch_unit
    )
    return parallel < serial


# ----------------------------------------------------------------------
# key normalization
# ----------------------------------------------------------------------
def _orderable_key(arr: np.ndarray) -> np.ndarray:
    """A key array np.argsort can order, extending object columns.

    Object (string) columns may carry ``None``; python comparisons
    against ``None`` raise, so such columns are wrapped into
    ``(is_none, value)`` tuples — ``None`` sorts after every value (the
    same "missing is largest" placement numpy gives NaN) and all
    ``None`` tie.  Every other dtype orders natively.
    """
    arr = np.asarray(arr)
    if arr.dtype.kind != "O":
        return arr
    none_mask = np.array([v is None for v in arr], dtype=bool)
    if not none_mask.any():
        return arr
    wrapped = np.empty(len(arr), dtype=object)
    wrapped[:] = [(1, 0) if v is None else (0, v) for v in arr]
    return wrapped


def _group_missing(neq: np.ndarray, sorted_vals: np.ndarray) -> np.ndarray:
    """Collapse NaN/NaT runs into one rank group (argsort ties them)."""
    kind = sorted_vals.dtype.kind
    if kind == "f":
        miss = np.isnan(sorted_vals)
    elif kind in "mM":
        miss = np.isnat(sorted_vals)
    else:
        return neq
    return neq & ~(miss[1:] & miss[:-1])


# ----------------------------------------------------------------------
# serial reference
# ----------------------------------------------------------------------
def serial_sort_permutation(
    keys: Sequence[np.ndarray],
    ascending: Optional[Sequence[bool]] = None,
) -> np.ndarray:
    """The canonical stable multi-key permutation (serial reference).

    SQL ``ORDER BY`` semantics: every key sorts stably in its own
    direction, so a descending key reverses its equal-key *groups* (not
    the whole permutation — that would flip the tie order the less-
    significant keys established, the bug the differential harness
    caught) and full-row ties keep original row order.  The parallel
    path is defined as bit-identical to this.
    """
    keys = [np.asarray(k) for k in keys]
    if ascending is None:
        ascending = [True] * len(keys)
    n = len(keys[0]) if keys else 0
    order = np.arange(n, dtype=np.int64)
    for key, asc in reversed(list(zip(keys, ascending))):
        vals = _orderable_key(key)[order]
        idx = np.argsort(vals, kind="stable")
        if not asc:
            idx = idx[_reverse_groups(vals[idx])]
        order = order[idx]
    return order


# ----------------------------------------------------------------------
# deterministic k-way merge (loser-tree bracket)
# ----------------------------------------------------------------------
def _merge_pair(
    pair: Tuple[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized two-way merge of sorted runs; the left run wins ties.

    ``searchsorted(b, a, 'left')`` counts the b-elements strictly below
    each a-element and ``searchsorted(a, b, 'right')`` the a-elements at
    or below each b-element, so scattering both runs to
    ``own_rank + other_count`` interleaves them in sorted order with
    every tie resolved to the left (lower chunk index) run — numpy's
    enhanced sort order makes the same NaN-is-largest comparisons the
    chunk argsorts made.
    """
    (a_idx, a_key), (b_idx, b_key) = pair
    pos_a = np.arange(len(a_key), dtype=np.int64) + np.searchsorted(
        b_key, a_key, side="left"
    )
    pos_b = np.arange(len(b_key), dtype=np.int64) + np.searchsorted(
        a_key, b_key, side="right"
    )
    total = len(a_key) + len(b_key)
    idx = np.empty(total, dtype=np.int64)
    key = np.empty(total, dtype=a_key.dtype)
    idx[pos_a] = a_idx
    idx[pos_b] = b_idx
    key[pos_a] = a_key
    key[pos_b] = b_key
    return idx, key


def _kway_merge(
    runs: List[Tuple[np.ndarray, np.ndarray]],
    context: Optional[ExecutionContext],
) -> np.ndarray:
    """Merge sorted ``(indices, keys)`` runs into one permutation.

    The runs play a tournament: adjacent runs meet in vectorized two-way
    matches, losers of each comparison wait at their match node and
    winners advance, exactly as in a loser tree — realized level by
    level so every match is one GIL-releasing numpy merge and the
    matches of a level run concurrently on the context's pool.  Pairing
    stays adjacent, so the left run of every match holds the smaller
    chunk indices and the tie rule "lower (chunk, offset) first" holds
    by induction at every level.
    """
    if not runs:
        return np.arange(0, dtype=np.int64)
    while len(runs) > 1:
        checkpoint()
        pairs = [(runs[i], runs[i + 1]) for i in range(0, len(runs) - 1, 2)]
        if context is not None:
            merged = context.map(_merge_pair, pairs)
        else:
            merged = [_merge_pair(p) for p in pairs]
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
    return runs[0][0]


def _reverse_groups(keys: np.ndarray) -> np.ndarray:
    """Permutation emitting a run's equal-key groups in reverse order.

    ``keys`` must have equal keys contiguous (any sorted run qualifies;
    NaN/NaT collapse into one group, matching argsort's tie behavior).
    Groups come out back-to-front with each group's offsets kept
    ascending — applied to an ascending-stable argsort this yields the
    *descending* stable order: key groups reversed, ties untouched.
    This per-group reversal is what SQL ``ORDER BY ... DESC`` needs; an
    elementwise ``[::-1]`` would reverse tie order too.
    """
    n = len(keys)
    if n <= 1:
        return np.arange(n, dtype=np.int64)
    neq = keys[1:] != keys[:-1]
    neq = _group_missing(neq, keys)
    starts = np.concatenate([[0], np.flatnonzero(neq) + 1]).astype(np.int64)
    lengths = np.diff(np.concatenate([starts, [n]]))
    rev_starts = starts[::-1]
    rev_lengths = lengths[::-1]
    out_starts = np.concatenate([[0], np.cumsum(rev_lengths)[:-1]])
    return np.repeat(rev_starts - out_starts, rev_lengths) + np.arange(n, dtype=np.int64)


def merge_sorted_runs(
    run_keys: Sequence[np.ndarray],
    context: Optional[ExecutionContext] = None,
    ascending: bool = True,
) -> np.ndarray:
    """Permutation merging already-sorted runs over their concatenation.

    With ``ascending`` (the default), ``run_keys`` are ascending-sorted
    key arrays; the result indexes into their concatenation and orders
    it ascending with equal keys taken in ``(run index, within-run
    offset)`` order — bit-identical to
    ``np.argsort(np.concatenate(run_keys), kind="stable")`` whenever
    each run is non-decreasing.  This is the merge the NSC flows need:
    per-partition sorted streams (``MergeUnion``, ``SortKey``) combine
    without re-sorting, and with a context the bracket's matches run on
    the worker pool.

    With ``ascending=False``, ``run_keys`` are *non-increasing* runs and
    the result is the canonical descending stable order of the
    concatenation: keys non-increasing, equal keys in ascending ``(run
    index, within-run offset)`` order — matching what ``Sort`` /
    :func:`serial_sort_permutation` produce for a descending key (ties
    keep input order; SQL ``ORDER BY ... DESC`` semantics).  Mechanics:
    every run enters the tournament reversed elementwise (making it
    non-decreasing) and the runs pair up in reverse run order, so the
    forward merge's "left wins ties" rule resolves ties to the *higher*
    (run, offset); the single final reversal then flips keys to
    descending and ties back to ascending (run, offset).
    """
    arrays = [np.asarray(keys) for keys in run_keys]
    offsets = np.concatenate([[0], np.cumsum([len(a) for a in arrays])]).astype(np.int64)
    runs: List[Tuple[np.ndarray, np.ndarray]] = []
    if ascending:
        for keys, offset in zip(arrays, offsets):
            idx = np.arange(offset, offset + len(keys), dtype=np.int64)
            runs.append((idx, keys))
    else:
        for keys, offset in reversed(list(zip(arrays, offsets))):
            idx = np.arange(offset + len(keys) - 1, offset - 1, -1, dtype=np.int64)
            runs.append((idx, keys[::-1]))
    ctx = context if context is not None and context.active else None
    merged = _kway_merge(runs, ctx)
    return merged if ascending else merged[::-1]


# ----------------------------------------------------------------------
# chunk-sorted stable argsort
# ----------------------------------------------------------------------
def _chunk_runs(
    values: np.ndarray,
    context: ExecutionContext,
    affinity: Optional[Sequence[int]] = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Stable-argsort morsel-aligned chunks on the worker pool.

    ``affinity`` maps chunk index to a group key; chunks sharing a key
    are sorted sequentially on one worker (partition affinity).  The
    default block-stripes chunks across the pool, so each worker owns a
    contiguous row range.
    """
    chunks = row_chunks(len(values), context.morsel_rows)

    def sort_chunk(chunk: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray]:
        start, stop = chunk
        idx = np.argsort(values[start:stop], kind="stable").astype(np.int64)
        idx += start
        return idx, values[idx]

    if affinity is None:
        workers = context.parallelism
        affinity = [i * workers // len(chunks) for i in range(len(chunks))]
    return context.map_grouped(sort_chunk, chunks, affinity)


def _stable_argsort(
    values: np.ndarray,
    context: Optional[ExecutionContext],
    affinity: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Ascending stable argsort, parallel when the context warrants it."""
    n = len(values)
    if not _should_parallelize(n, values.dtype, context):
        return np.argsort(values, kind="stable").astype(np.int64)
    runs = _chunk_runs(values, context, affinity)
    return _kway_merge(runs, context)


def _should_parallelize(
    num_rows: int, dtype: np.dtype, context: Optional[ExecutionContext]
) -> bool:
    if context is None or not context.active:
        return False
    if dtype.kind not in _PARALLEL_KINDS:
        return False
    num_chunks = -(-num_rows // context.morsel_rows) if num_rows else 0
    if not context.should_parallelize(num_rows, num_chunks):
        return False
    return sort_parallel_payoff(num_rows, context.parallelism, context.morsel_rows)


# ----------------------------------------------------------------------
# rank encoding (multi-key reduction)
# ----------------------------------------------------------------------
def _dense_codes(
    values: np.ndarray,
    context: Optional[ExecutionContext],
    affinity: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, int]:
    """Dense int64 ranks in stable-argsort order (missing values tie).

    ``codes[i] < codes[j]`` iff value ``i`` sorts strictly before value
    ``j`` under ``np.argsort``'s comparisons; equal values — including
    every NaN/NaT and ``-0.0`` vs ``+0.0`` — share a code, so folding a
    direction in by flipping codes reverses the value order without
    touching tie behavior.
    """
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.int64), 1
    perm = _stable_argsort(values, context, affinity)
    sorted_vals = values[perm]
    neq = sorted_vals[1:] != sorted_vals[:-1]
    neq = _group_missing(neq, sorted_vals)
    ranks = np.concatenate([[0], np.cumsum(neq)]).astype(np.int64)
    codes = np.empty(n, dtype=np.int64)
    codes[perm] = ranks
    return codes, int(ranks[-1]) + 1


# ----------------------------------------------------------------------
# public entry point
# ----------------------------------------------------------------------
def sort_permutation(
    keys: Sequence[np.ndarray],
    ascending: Optional[Sequence[bool]] = None,
    context: Optional[ExecutionContext] = None,
    affinity: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Permutation sorting rows by ``keys``/``ascending``.

    Bit-identical to :func:`serial_sort_permutation` (and therefore to
    ``Relation.sort_by``) at any worker count: multi-key, descending and
    NaN/None orderings included.  ``affinity`` optionally pins chunk
    groups to workers (see :func:`_chunk_runs`).

    Cooperative interruption: checkpoints fire before the sort starts
    and between the chunk-sort / code-densify / merge phases (the
    parallel fan-outs inside each phase carry their own per-morsel
    checks via ``context.map``), so an armed
    :class:`~repro.engine.interrupt.CancellationToken` unwinds a large
    sort between phases instead of after it.
    """
    checkpoint()
    keys = [np.asarray(k) for k in keys]
    if ascending is None:
        ascending = [True] * len(keys)
    if len(ascending) != len(keys):
        raise ValueError("need one ascending flag per sort key")
    if not keys:
        return np.arange(0, dtype=np.int64)
    n = len(keys[0])
    for k in keys[1:]:
        if len(k) != n:
            raise ValueError("sort keys must have equal lengths")
    okeys = [_orderable_key(k) for k in keys]
    if not _should_parallelize(n, okeys[0].dtype, context) or any(
        k.dtype.kind not in _PARALLEL_KINDS for k in okeys
    ):
        return serial_sort_permutation(keys, ascending)

    if len(okeys) == 1:
        perm = _stable_argsort(okeys[0], context, affinity)
        if not ascending[0]:
            perm = perm[_reverse_groups(okeys[0][perm])]
        return perm

    # Each key's direction is independent (SQL ORDER BY): a descending
    # key folds in by flipping that key's codes only, and the final
    # stable argsort keeps full-row ties in original row order.
    code: Optional[np.ndarray] = None
    code_card = 1
    for key, asc in zip(okeys, ascending):
        checkpoint()
        codes, card = _dense_codes(key, context, affinity)
        if not asc:
            codes = (card - 1) - codes
        if code is None:
            code, code_card = codes, card
        else:
            if code_card > _CODE_LIMIT // max(card, 1):
                # re-densify BEFORE combining: the combined cardinality
                # would overflow int64 and corrupt the ranks silently.
                # Post-densify both factors are <= n+1, so the product
                # of the next combine cannot overflow.
                code, code_card = _dense_codes(code, context, affinity)
            code = code * card + codes
            code_card *= card
    assert code is not None
    return _stable_argsort(code, context, affinity)
