"""Vectorized query execution engine (the X100/Vector stand-in).

Operators follow the column-at-a-time model: each operator materializes
its full result :class:`~repro.engine.batch.Relation` from its children.
This is the operator-at-a-time cousin of the paper's batch-at-a-time
engine — both are columnar and vectorized (numpy primitives here play
the role of the X100 vectorized kernels), which is what the PatchIndex
integration relies on.

The PatchIndex scan of §3.3 is realized exactly as in the paper: an
ordinary :class:`~repro.engine.operators.Scan` topped by a selection
operator (:class:`~repro.engine.operators.PatchSelect`) with the two
modes ``exclude_patches`` and ``use_patches`` that merge the PatchIndex
bitmap on-the-fly with the dataflow.
"""

from repro.engine.batch import Relation
from repro.engine.interrupt import (
    CancellationToken,
    QueryCancelledError,
    QueryInterruptedError,
    QueryTimeoutError,
    cancellation_scope,
    checkpoint,
    current_token,
    validate_timeout_ms,
)
from repro.engine.expressions import (
    BinaryExpr,
    ColumnRef,
    ComparisonExpr,
    Expression,
    IsNullExpr,
    Literal,
    col,
    expression_columns,
    is_null,
    lit,
    where,
)
from repro.engine.parallel import ExecutionContext, validate_parallelism
from repro.engine.parallel_sort import (
    merge_sorted_runs,
    serial_sort_permutation,
    sort_parallel_payoff,
    sort_permutation,
)
from repro.engine.operators import (
    Distinct,
    Filter,
    GroupAggregate,
    HashJoin,
    Limit,
    MergeJoin,
    MergeUnion,
    Operator,
    PatchSelect,
    Project,
    RelationSource,
    ReuseCache,
    ReuseLoad,
    Scan,
    Sort,
    Union,
)

__all__ = [
    "Relation",
    "ExecutionContext",
    "validate_parallelism",
    "CancellationToken",
    "QueryInterruptedError",
    "QueryCancelledError",
    "QueryTimeoutError",
    "cancellation_scope",
    "checkpoint",
    "current_token",
    "validate_timeout_ms",
    "merge_sorted_runs",
    "serial_sort_permutation",
    "sort_parallel_payoff",
    "sort_permutation",
    "Expression",
    "expression_columns",
    "ComparisonExpr",
    "IsNullExpr",
    "is_null",
    "ColumnRef",
    "Literal",
    "BinaryExpr",
    "col",
    "lit",
    "where",
    "Operator",
    "RelationSource",
    "Scan",
    "PatchSelect",
    "Filter",
    "Project",
    "HashJoin",
    "MergeJoin",
    "Sort",
    "Distinct",
    "GroupAggregate",
    "Union",
    "MergeUnion",
    "ReuseCache",
    "ReuseLoad",
    "Limit",
]
