"""Qualitative comparison scoring (paper Figure 11).

The paper summarizes the evaluation as a radar chart scoring each
approach 1–4 on Creation effort (C), Memory/storage overhead (M),
Performance impact (P) and Updatability (U), higher = better.  We
derive the same scores from *measured* quantities: approaches are
ranked per dimension and the rank mapped to a score, ties sharing the
better score.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["rank_scores", "qualitative_scores", "DIMENSIONS"]

DIMENSIONS = ("C", "M", "P", "U")


def rank_scores(
    values: Mapping[str, float], lower_is_better: bool = True
) -> Dict[str, int]:
    """Map measured values to scores ``1..len(values)`` (higher better).

    The best measurement gets the highest score; values within 10 % of
    each other tie and share the better score.
    """
    items = sorted(values.items(), key=lambda kv: kv[1], reverse=not lower_is_better)
    scores: Dict[str, int] = {}
    n = len(items)
    score = n
    prev = None
    for i, (name, value) in enumerate(items):
        if prev is not None and not _close(prev, value):
            score = n - i
        scores[name] = score
        prev = value
    return scores


def _close(a: float, b: float) -> bool:
    hi = max(abs(a), abs(b))
    if hi == 0:
        return True
    return abs(a - b) / hi <= 0.10


def qualitative_scores(
    creation: Mapping[str, float],
    memory: Mapping[str, float],
    query: Mapping[str, float],
    update: Mapping[str, float],
) -> Dict[str, Dict[str, int]]:
    """Figure 11 scores per approach from measured quantities.

    All four inputs are lower-is-better measurements (seconds / bytes).
    Returns ``{approach: {C, M, P, U}}``.
    """
    per_dim = {
        "C": rank_scores(creation),
        "M": rank_scores(memory),
        "P": rank_scores(query),
        "U": rank_scores(update),
    }
    approaches = set(creation) | set(memory) | set(query) | set(update)
    return {
        name: {dim: per_dim[dim].get(name, 0) for dim in DIMENSIONS}
        for name in approaches
    }
