"""Per-query timing baselines with a noise-tolerant CI diff gate.

The differential corpus doubles as a perf-regression net: each SELECT
gets a stored median wall-clock baseline in
``benchmarks/results/baselines.json`` and CI compares fresh timings
against it.  Absolute Python timings are noisy — machines, load and
interpreter versions all move them — so the gate is deliberately
coarse: a query only fails when it runs more than ``factor``× its
stored baseline (``BENCH_BASELINE_FACTOR``, default 5.0), catching
order-of-magnitude regressions (an accidental O(n²), a lost rewrite)
while shrugging off scheduler jitter.

Environment protocol (mirrors :func:`repro.bench.harness.write_report`):

* ``BENCH_WRITE`` — truthy: persist freshly measured baselines.  The
  gate still runs FIRST against the stored file, so a regression
  cannot silently rewrite its own baseline.
* ``BENCH_BASELINE_RESET`` — truthy: skip the gate and accept the new
  timings as the baseline (for intentional perf-profile changes).
* ``BENCH_BASELINE_FACTOR`` — override the slowdown factor.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Callable, Dict, List, Mapping, Optional

from repro.bench.harness import results_dir, time_fn

__all__ = [
    "BaselineGateError",
    "BaselineDiff",
    "load_baselines",
    "save_baselines",
    "baselines_path",
    "measure_queries",
    "diff_against_baselines",
    "gate_and_maybe_write",
    "DEFAULT_FACTOR",
]

DEFAULT_FACTOR = 5.0
#: Timings below this floor are pure overhead; the gate ignores them
#: (a 0.2 ms query "regressing" to 1.5 ms is scheduler noise, not perf).
MIN_GATED_SECONDS = 0.005


class BaselineGateError(AssertionError):
    """At least one query regressed past the allowed slowdown factor."""


@dataclasses.dataclass
class BaselineDiff:
    """One query's fresh timing against its stored baseline."""

    qid: str
    baseline_s: Optional[float]
    current_s: float
    factor: float

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline, ``None`` when no baseline exists yet."""
        if self.baseline_s is None or self.baseline_s <= 0:
            return None
        return self.current_s / self.baseline_s

    @property
    def regressed(self) -> bool:
        """True when the timing breaks the gate (see module doc)."""
        if self.ratio is None:
            return False  # new query: nothing to compare against
        if max(self.current_s, self.baseline_s) < MIN_GATED_SECONDS:
            return False
        return self.ratio > self.factor


def baselines_path() -> str:
    """Location of the stored baseline file."""
    return os.path.join(results_dir(), "baselines.json")


def load_baselines(path: Optional[str] = None) -> Dict[str, float]:
    """Stored ``{query id: median seconds}`` (empty when absent)."""
    path = baselines_path() if path is None else path
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return {str(k): float(v) for k, v in data.get("timings", {}).items()}


def save_baselines(
    timings: Mapping[str, float], path: Optional[str] = None
) -> str:
    """Persist ``timings`` (sorted, rounded) for stable diffs."""
    path = baselines_path() if path is None else path
    payload = {
        "note": (
            "median wall-clock seconds per differential-corpus query; "
            "gated by BENCH_BASELINE_FACTOR (see repro.bench.baselines)"
        ),
        "timings": {k: round(float(v), 6) for k, v in sorted(timings.items())},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def measure_queries(
    run: Callable[[str], object],
    queries: Mapping[str, str],
    repeats: int = 3,
    warmup: int = 1,
) -> Dict[str, float]:
    """Median seconds for each ``{qid: sql}`` via ``run(sql)``."""
    return {
        qid: time_fn(lambda sql=sql: run(sql), repeats=repeats, warmup=warmup)
        for qid, sql in queries.items()
    }


def diff_against_baselines(
    current: Mapping[str, float],
    stored: Mapping[str, float],
    factor: Optional[float] = None,
) -> List[BaselineDiff]:
    """Compare fresh timings to stored ones (no verdict, just diffs)."""
    if factor is None:
        factor = float(os.environ.get("BENCH_BASELINE_FACTOR", DEFAULT_FACTOR))
    return [
        BaselineDiff(qid, stored.get(qid), seconds, factor)
        for qid, seconds in sorted(current.items())
    ]


def _truthy(name: str) -> bool:
    return os.environ.get(name, "").lower() not in ("", "0", "false")


def gate_and_maybe_write(
    current: Mapping[str, float], path: Optional[str] = None
) -> List[BaselineDiff]:
    """Apply the gate, then (only then) honor ``BENCH_WRITE``.

    Raises :class:`BaselineGateError` listing every regressed query —
    unless ``BENCH_BASELINE_RESET`` is set, which accepts the new
    profile.  With ``BENCH_WRITE`` set the measured timings are
    persisted after the gate passes, so a regressing run can never
    refresh its own baseline by accident.
    """
    stored = load_baselines(path)
    diffs = diff_against_baselines(current, stored)
    regressed = [d for d in diffs if d.regressed]
    if regressed and not _truthy("BENCH_BASELINE_RESET"):
        lines = ", ".join(
            f"{d.qid}: {d.current_s * 1e3:.1f}ms vs baseline "
            f"{d.baseline_s * 1e3:.1f}ms ({d.ratio:.1f}x > {d.factor:.1f}x)"
            for d in regressed
        )
        raise BaselineGateError(f"timing regressions past the gate: {lines}")
    if _truthy("BENCH_WRITE") or _truthy("BENCH_BASELINE_RESET"):
        merged = dict(stored)
        merged.update(current)
        save_baselines(merged, path)
    return diffs
