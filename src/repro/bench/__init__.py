"""Benchmark support: timing, report formatting, qualitative scoring."""

from repro.bench.harness import (
    format_table,
    time_dml_serial_vs_parallel,
    time_fn,
    time_serial_vs_parallel,
    write_report,
)
from repro.bench.qualitative import qualitative_scores, rank_scores

__all__ = [
    "time_fn",
    "time_serial_vs_parallel",
    "time_dml_serial_vs_parallel",
    "format_table",
    "write_report",
    "rank_scores",
    "qualitative_scores",
]
