"""Benchmark support: timing, report formatting, qualitative scoring.

:mod:`repro.bench.baselines` adds stored per-query timing baselines
with a noise-tolerant CI diff gate (see its module doc for the
``BENCH_WRITE`` / ``BENCH_BASELINE_*`` protocol).
"""

from repro.bench.baselines import (
    BaselineDiff,
    BaselineGateError,
    diff_against_baselines,
    gate_and_maybe_write,
    load_baselines,
    measure_queries,
    save_baselines,
)
from repro.bench.harness import (
    format_table,
    time_dml_serial_vs_parallel,
    time_fn,
    time_serial_vs_parallel,
    write_report,
)
from repro.bench.qualitative import qualitative_scores, rank_scores

__all__ = [
    "time_fn",
    "time_serial_vs_parallel",
    "time_dml_serial_vs_parallel",
    "format_table",
    "write_report",
    "rank_scores",
    "qualitative_scores",
    "BaselineDiff",
    "BaselineGateError",
    "diff_against_baselines",
    "gate_and_maybe_write",
    "load_baselines",
    "measure_queries",
    "save_baselines",
]
