"""Timing and report helpers shared by the benchmark suite.

Benchmarks regenerate the paper's tables and figures as text reports:
each run prints the rows/series and writes them under
``benchmarks/results/`` so EXPERIMENTS.md can cite stable artifacts.
Absolute timings are Python-scale; the reports therefore focus on the
ratios and orderings the paper's conclusions rest on.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "time_fn",
    "time_serial_vs_parallel",
    "time_dml_serial_vs_parallel",
    "format_table",
    "write_report",
    "results_dir",
]


def time_fn(fn: Callable[[], object], repeats: int = 3, warmup: int = 1) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def time_serial_vs_parallel(
    fn: Callable[[object], object],
    parallelism: int = 4,
    repeats: int = 3,
    warmup: int = 1,
    **context_kwargs,
) -> Tuple[float, float]:
    """Time ``fn`` under serial and morsel-parallel execution.

    ``fn`` receives an execution context (``None`` for the serial run, a
    live :class:`~repro.engine.parallel.ExecutionContext` for the
    parallel run) and should execute the workload with it.  Returns
    ``(serial_seconds, parallel_seconds)`` medians; the ratio is the
    serial-vs-parallel speedup the benchmark reports.
    """
    from repro.engine.parallel import ExecutionContext

    serial = time_fn(lambda: fn(None), repeats=repeats, warmup=warmup)
    with ExecutionContext(parallelism=parallelism, **context_kwargs) as context:
        parallel = time_fn(lambda: fn(context), repeats=repeats, warmup=warmup)
    return serial, parallel


def time_dml_serial_vs_parallel(
    setup: Callable[[int], object],
    run: Callable[[object], object],
    parallelism: int = 4,
    repeats: int = 3,
    warmup: int = 1,
    teardown: Optional[Callable[[object], object]] = None,
) -> Tuple[float, float]:
    """Time a *mutating* workload under serial and parallel execution.

    DML consumes its input, so unlike :func:`time_serial_vs_parallel`
    every sample gets fresh state: ``setup(parallelism)`` builds the
    workload state (tables, sessions, bitmaps — untimed, with the worker
    count already configured, e.g. ``SQLSession(catalog, parallelism=n)``)
    and ``run(state)`` executes the DML statements (timed).
    ``teardown(state)`` releases the state after each sample — untimed,
    so worker-pool shutdown never skews the parallel measurement.
    Returns ``(serial_seconds, parallel_seconds)`` medians.
    """

    def timed(workers: int) -> float:
        samples = []
        for i in range(warmup + repeats):
            state = setup(workers)
            start = time.perf_counter()
            run(state)
            elapsed = time.perf_counter() - start
            if teardown is not None:
                teardown(state)
            if i >= warmup:
                samples.append(elapsed)
        samples.sort()
        return samples[len(samples) // 2]

    return timed(1), timed(parallelism)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table."""
    rendered: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.4f}"
    return str(value)


def results_dir() -> str:
    """Directory for benchmark report artifacts."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_report(name: str, text: str) -> str:
    """Print a report; persist it only when ``BENCH_WRITE`` is set.

    Every benchmark prints its report unconditionally, but the file
    under ``benchmarks/results/`` is refreshed only when the
    ``BENCH_WRITE`` environment variable is truthy (the dedicated
    bench CI job sets it) — a plain test run used to rewrite every
    result file it happened to execute, churning noisy timing artifacts
    through unrelated commits.  Only the benchmark that actually ran
    ever touches its own file; nothing else is rewritten.
    """
    print()
    print(text)
    path = os.path.join(results_dir(), f"{name}.txt")
    if os.environ.get("BENCH_WRITE", "").lower() not in ("", "0", "false"):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return path
