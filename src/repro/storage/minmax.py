"""MinMax summary tables (small materialized aggregates, paper §5 / [22]).

For buckets of ``block_size`` consecutive tuples, the minimum and maximum
column value is materialized.  Scans evaluate selection predicates (or
join ranges propagated at runtime, §5.1) against the bucket summaries and
skip buckets that cannot contain qualifying tuples — the "avoid the full
table scan" mechanism of the insert-handling query in Figure 5.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["MinMaxIndex", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 4096


class MinMaxIndex:
    """Per-block min/max summary over one column array."""

    def __init__(self, values: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._block_size = block_size
        self._num_rows = len(values)
        nblocks = (len(values) + block_size - 1) // block_size
        mins: List[object] = []
        maxs: List[object] = []
        for b in range(nblocks):
            chunk = values[b * block_size : (b + 1) * block_size]
            mins.append(chunk.min())
            maxs.append(chunk.max())
        if len(values) and values.dtype != object:
            self._mins: np.ndarray = np.asarray(mins, dtype=values.dtype)
            self._maxs: np.ndarray = np.asarray(maxs, dtype=values.dtype)
        else:
            self._mins = np.asarray(mins, dtype=object)
            self._maxs = np.asarray(maxs, dtype=object)

    @property
    def block_size(self) -> int:
        """Rows per summarized bucket."""
        return self._block_size

    @property
    def num_blocks(self) -> int:
        """Number of summarized buckets."""
        return len(self._mins)

    def blocks_in_range(self, lo, hi) -> np.ndarray:
        """Indexes of blocks whose [min, max] intersects [lo, hi]."""
        if self.num_blocks == 0:
            return np.zeros(0, dtype=np.int64)
        keep = (self._maxs >= lo) & (self._mins <= hi)
        return np.flatnonzero(keep).astype(np.int64)

    def row_ranges_in_range(self, lo, hi) -> List[Tuple[int, int]]:
        """Coalesced ``[start, end)`` row ranges possibly matching [lo, hi]."""
        blocks = self.blocks_in_range(lo, hi)
        ranges: List[Tuple[int, int]] = []
        for b in blocks:
            start = int(b) * self._block_size
            end = min(start + self._block_size, self._num_rows)
            if ranges and ranges[-1][1] == start:
                ranges[-1] = (ranges[-1][0], end)
            else:
                ranges.append((start, end))
        return ranges

    def row_mask_in_range(self, lo, hi) -> np.ndarray:
        """Boolean mask over all rows: True where the block may match."""
        mask = np.zeros(self._num_rows, dtype=bool)
        for start, end in self.row_ranges_in_range(lo, hi):
            mask[start:end] = True
        return mask

    def selectivity(self, lo, hi) -> float:
        """Fraction of blocks that survive pruning for [lo, hi]."""
        if self.num_blocks == 0:
            return 0.0
        return len(self.blocks_in_range(lo, hi)) / self.num_blocks
