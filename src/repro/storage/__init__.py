"""Column-store storage substrate.

The paper integrates PatchIndexes into Actian Vector; this package is our
stand-in substrate: in-memory, numpy-backed columns organized in tables
with positional rowIDs, positional delta structures for updates (the
paper's PDT [17]), minmax summaries (small materialized aggregates [22])
for scan pruning and range propagation, and a catalog tying it together.
"""

from repro.storage.column import ColumnType, Column
from repro.storage.minmax import MinMaxIndex
from repro.storage.pdt import PositionalDelta, UpdateEvent
from repro.storage.table import Field, Schema, Table
from repro.storage.partition import PartitionedTable
from repro.storage.catalog import Catalog
from repro.storage.snapshot import Snapshot, ShardLockManager
from repro.storage.wal import (
    WAL_SYNC_POLICIES,
    DurabilityManager,
    WALError,
    WriteAheadLog,
    validate_checkpoint_interval,
    validate_data_dir,
    validate_wal_sync,
)
from repro.storage.recovery import (
    CheckpointCorruptionError,
    RecoveryError,
    RecoveryReport,
    WALCorruptionError,
)

__all__ = [
    "ColumnType",
    "Column",
    "MinMaxIndex",
    "PositionalDelta",
    "UpdateEvent",
    "Field",
    "Schema",
    "Table",
    "PartitionedTable",
    "Catalog",
    "Snapshot",
    "ShardLockManager",
    "WAL_SYNC_POLICIES",
    "DurabilityManager",
    "WALError",
    "WriteAheadLog",
    "validate_checkpoint_interval",
    "validate_data_dir",
    "validate_wal_sync",
    "CheckpointCorruptionError",
    "RecoveryError",
    "RecoveryReport",
    "WALCorruptionError",
]
