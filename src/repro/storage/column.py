"""Typed columns over numpy arrays.

Columns are immutable value sequences; tables own the mutation logic
(through positional deltas).  Three logical types cover the paper's
workloads: 64-bit integers, 64-bit floats and strings.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence, Union

import numpy as np

__all__ = ["ColumnType", "Column"]


class ColumnType(enum.Enum):
    """Logical column types supported by the substrate."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"

    @property
    def numpy_dtype(self) -> object:
        if self is ColumnType.INT64:
            return np.int64
        if self is ColumnType.FLOAT64:
            return np.float64
        return object

    @classmethod
    def infer(cls, values: np.ndarray) -> "ColumnType":
        """Infer the logical type of a numpy array."""
        if np.issubdtype(values.dtype, np.integer) or np.issubdtype(values.dtype, np.bool_):
            return cls.INT64
        if np.issubdtype(values.dtype, np.floating):
            return cls.FLOAT64
        return cls.STRING


def _coerce(values: Union[Sequence, np.ndarray], ctype: ColumnType) -> np.ndarray:
    if ctype is ColumnType.STRING:
        arr = np.empty(len(values), dtype=object)
        arr[:] = [None if v is None else str(v) for v in values]
        return arr
    return np.asarray(values, dtype=ctype.numpy_dtype)


class Column:
    """A named, typed, immutable column of values.

    Parameters
    ----------
    name:
        Column name.
    values:
        Any sequence; coerced to the numpy dtype of ``ctype``.
    ctype:
        Logical type; inferred from ``values`` if omitted.
    """

    __slots__ = ("name", "type", "_data")

    def __init__(
        self,
        name: str,
        values: Union[Sequence, np.ndarray],
        ctype: ColumnType | None = None,
    ) -> None:
        if isinstance(values, np.ndarray):
            arr = values
        else:
            arr = np.asarray(values, dtype=object if _has_strings(values) else None)
        if ctype is None:
            ctype = ColumnType.infer(arr)
        self.name = name
        self.type = ctype
        self._data = _coerce(arr, ctype)

    @property
    def data(self) -> np.ndarray:
        """The backing numpy array (treat as read-only)."""
        return self._data

    def __len__(self) -> int:
        return len(self._data)

    def take(self, indices: np.ndarray) -> "Column":
        """Select rows by position."""
        return Column(self.name, self._data[indices], self.type)

    def concat(self, other: "Column") -> "Column":
        """Append another column of the same type."""
        if other.type is not self.type:
            raise TypeError(
                f"cannot concat column of type {other.type} to {self.type}"
            )
        return Column(self.name, np.concatenate([self._data, other._data]), self.type)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.name == other.name
            and self.type is other.type
            and len(self) == len(other)
            and bool(np.all(self._data == other._data))
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Column({self.name!r}, {self.type.value}, n={len(self)})"


def _has_strings(values: Iterable) -> bool:
    for v in values:
        if isinstance(v, str):
            return True
        if v is not None:
            return False
    return False
