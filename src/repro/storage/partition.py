"""Range-partitioned tables (paper §3.2).

"Data partitioning is transparent for PatchIndexes, as a separate index
is created for each partition.  Constraint discovery, index creation and
query processing are performed partition-locally and in parallel."

A :class:`PartitionedTable` splits rows into contiguous partitions on a
key column (the microbenchmark datasets partition on their unique key,
§6.2).  Each partition is an ordinary :class:`~repro.storage.table.Table`
with its own positional delta structure, so PatchIndex managers attach
per partition.  Inserts route by key range (new keys beyond the last
boundary go to the final partition); deletes and modifies address tuples
by ``(partition, local rowid)`` or by global rowid.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.table import Schema, Table

__all__ = ["PartitionedTable"]


class PartitionedTable:
    """A table split into contiguous key-range partitions."""

    def __init__(
        self,
        name: str,
        partitions: Sequence[Table],
        partition_key: str,
        upper_bounds: Sequence,
    ) -> None:
        if not partitions:
            raise ValueError("need at least one partition")
        if len(upper_bounds) != len(partitions) - 1:
            raise ValueError("need exactly one upper bound per partition boundary")
        schema = partitions[0].schema
        for part in partitions[1:]:
            if part.schema != schema:
                raise ValueError("all partitions must share one schema")
        self.name = name
        self.schema: Schema = schema
        self.partition_key = partition_key
        self._partitions = list(partitions)
        self._upper_bounds = list(upper_bounds)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_table(
        cls, table: Table, partition_key: str, num_partitions: int
    ) -> "PartitionedTable":
        """Range-partition an existing table on ``partition_key``.

        Rows keep their relative order inside each partition; boundaries
        are chosen as equi-depth quantiles of the key column, giving
        near-equal partition sizes for a unique key (§6.2).
        """
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        keys = table.column(partition_key)
        n = table.num_rows
        if num_partitions == 1 or n == 0:
            return cls(table.name, [table], partition_key, [])
        order = np.sort(keys)
        bound_idx = [
            int(round(i * n / num_partitions)) - 1 for i in range(1, num_partitions)
        ]
        bounds = [order[max(0, i)] for i in bound_idx]
        parts: List[Table] = []
        lower = None
        for p in range(num_partitions):
            upper = bounds[p] if p < len(bounds) else None
            mask = np.ones(n, dtype=bool)
            if lower is not None:
                mask &= keys > lower
            if upper is not None:
                mask &= keys <= upper
            cols = {c: table.column(c)[mask] for c in table.schema.names}
            parts.append(Table(f"{table.name}#{p}", table.schema, cols))
            lower = upper
        return cls(table.name, parts, partition_key, bounds)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def partitions(self) -> List[Table]:
        """The partition tables, in key order."""
        return list(self._partitions)

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    @property
    def num_rows(self) -> int:
        return sum(p.num_rows for p in self._partitions)

    def partition_offsets(self) -> np.ndarray:
        """Global rowid offset of each partition's first row."""
        sizes = [p.num_rows for p in self._partitions]
        return np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Concatenated current-image column across partitions."""
        return np.concatenate([p.column(name) for p in self._partitions])

    def rowids(self) -> np.ndarray:
        """All current global rowIDs (0..num_rows), partition-major."""
        return np.arange(self.num_rows, dtype=np.int64)

    def columns(self, names: Optional[Iterable[str]] = None) -> Dict[str, np.ndarray]:
        names = list(names) if names is not None else self.schema.names
        return {n: self.column(n) for n in names}

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def _route(self, keys: np.ndarray) -> np.ndarray:
        """Partition id for each key (range routing)."""
        if not self._upper_bounds:
            return np.zeros(len(keys), dtype=np.int64)
        bounds = np.asarray(self._upper_bounds)
        return np.searchsorted(bounds, keys, side="left").astype(np.int64)

    def insert(self, values: Dict[str, np.ndarray]) -> None:
        """Insert tuples, routing each to its key-range partition."""
        keys = np.asarray(values[self.partition_key])
        parts = self._route(keys)
        for p in np.unique(parts):
            mask = parts == p
            self._partitions[int(p)].insert(
                {c: np.asarray(v)[mask] for c, v in values.items()}
            )

    def _split_global(self, rowids: np.ndarray) -> List[Tuple[int, np.ndarray]]:
        rowids = np.unique(np.asarray(rowids, dtype=np.int64))
        offsets = self.partition_offsets()
        parts = np.searchsorted(offsets, rowids, side="right") - 1
        out = []
        for p in np.unique(parts):
            mask = parts == p
            out.append((int(p), rowids[mask] - offsets[int(p)]))
        return out

    def delete_global(self, rowids: np.ndarray) -> None:
        """Delete by global rowids (offsets computed before the statement)."""
        for p, local in self._split_global(rowids):
            self._partitions[p].delete(local)

    def modify_global(self, rowids: np.ndarray, values: Dict[str, np.ndarray]) -> None:
        """Modify by global rowids; ``values`` aligned with sorted rowids."""
        rowids = np.asarray(rowids, dtype=np.int64)
        order = np.argsort(rowids, kind="stable")
        sorted_ids = rowids[order]
        aligned = {c: np.asarray(v)[order] for c, v in values.items()}
        offsets = self.partition_offsets()
        parts = np.searchsorted(offsets, sorted_ids, side="right") - 1
        for p in np.unique(parts):
            mask = parts == p
            self._partitions[int(p)].modify(
                sorted_ids[mask] - offsets[int(p)],
                {c: v[mask] for c, v in aligned.items()},
            )

    def checkpoint(self) -> None:
        """Checkpoint every partition's delta structure."""
        for part in self._partitions:
            part.checkpoint()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartitionedTable({self.name!r}, parts={self.num_partitions}, "
            f"rows={self.num_rows})"
        )
