"""Tables with positional rowIDs and update hooks.

A table owns a :class:`~repro.storage.pdt.PositionalDelta` holding its
current image.  RowIDs are positional: tuple ``i`` of the current image
has rowID ``i``, and deleting tuples shifts the rowIDs of all subsequent
tuples — the semantics both PatchIndex designs maintain under deletes
(§4.2.3 / §5.3).

Update hooks let index structures (PatchIndexes, JoinIndexes,
materialized views) observe statements: each hook receives the
:class:`~repro.storage.pdt.UpdateEvent` *after* the table image changed,
mirroring the paper's design where maintenance queries run as part of the
update statement and can scan the statement's PDT deltas.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.storage.column import ColumnType
from repro.storage.minmax import DEFAULT_BLOCK_SIZE, MinMaxIndex
from repro.storage.pdt import PositionalDelta, UpdateEvent

__all__ = ["Field", "Schema", "Table"]

UpdateHook = Callable[["Table", UpdateEvent], None]


@dataclasses.dataclass(frozen=True)
class Field:
    """A named, typed schema entry."""

    name: str
    type: ColumnType


class Schema:
    """Ordered collection of fields."""

    def __init__(self, fields: Sequence[Field]) -> None:
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names in schema")
        self._fields = list(fields)
        self._by_name = {f.name: f for f in fields}

    @property
    def fields(self) -> List[Field]:
        return list(self._fields)

    @property
    def names(self) -> List[str]:
        return [f.name for f in self._fields]

    def field(self, name: str) -> Field:
        if name not in self._by_name:
            raise KeyError(f"unknown column {name!r}")
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cols = ", ".join(f"{f.name}:{f.type.value}" for f in self._fields)
        return f"Schema({cols})"


class Table:
    """An in-memory columnar table with positional update semantics."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        columns: Dict[str, np.ndarray],
        minmax_block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if set(columns) != set(schema.names):
            raise ValueError("columns must match the schema exactly")
        coerced = {}
        for field in schema.fields:
            arr = columns[field.name]
            if field.type is ColumnType.STRING:
                if arr.dtype != object:
                    obj = np.empty(len(arr), dtype=object)
                    # NULL (None) survives coercion; see repro.sql NULL rules
                    obj[:] = [None if v is None else str(v) for v in arr]
                    arr = obj
            else:
                arr = np.asarray(arr, dtype=field.type.numpy_dtype)
            coerced[field.name] = arr
        self.name = name
        self.schema = schema
        self._delta = PositionalDelta(coerced)
        self._minmax_block_size = minmax_block_size
        self._minmax: Dict[str, MinMaxIndex] = {}
        self._minmax_version = -1
        self._hooks: List[UpdateHook] = []
        self._version = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        name: str,
        columns: Dict[str, np.ndarray],
        types: Optional[Dict[str, ColumnType]] = None,
        minmax_block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "Table":
        """Build a table, inferring the schema from the arrays."""
        fields = []
        arrays = {}
        for col, values in columns.items():
            arr = np.asarray(values) if not isinstance(values, np.ndarray) else values
            ctype = (types or {}).get(col) or ColumnType.infer(arr)
            fields.append(Field(col, ctype))
            arrays[col] = arr
        return cls(name, Schema(fields), arrays, minmax_block_size=minmax_block_size)

    @classmethod
    def empty_like(cls, name: str, other: "Table") -> "Table":
        """An empty table sharing ``other``'s schema."""
        cols = {c: other.column(c)[:0] for c in other.schema.names}
        return cls(name, other.schema, cols, minmax_block_size=other._minmax_block_size)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Rows in the current image."""
        return self._delta.num_rows

    @property
    def version(self) -> int:
        """Monotone statement counter, bumped on every update."""
        return self._version

    def column(self, name: str) -> np.ndarray:
        """Current-image array for one column (merged with deltas)."""
        self.schema.field(name)
        return self._delta.column(name)

    def columns(self, names: Optional[Iterable[str]] = None) -> Dict[str, np.ndarray]:
        """Current-image arrays for several (default: all) columns."""
        names = list(names) if names is not None else self.schema.names
        return {n: self.column(n) for n in names}

    def rowids(self) -> np.ndarray:
        """All current rowIDs (0..num_rows)."""
        return np.arange(self.num_rows, dtype=np.int64)

    # ------------------------------------------------------------------
    # minmax summaries
    # ------------------------------------------------------------------
    def minmax(self, column: str) -> MinMaxIndex:
        """Lazily built minmax summary over the current image of a column."""
        if self._minmax_version != self._version:
            self._minmax = {}
            self._minmax_version = self._version
        cached = self._minmax.get(column)
        if cached is None:
            cached = MinMaxIndex(self.column(column), self._minmax_block_size)
            self._minmax[column] = cached
        return cached

    # ------------------------------------------------------------------
    # update statements
    # ------------------------------------------------------------------
    def add_update_hook(self, hook: UpdateHook) -> None:
        """Register a maintenance hook called after each update statement."""
        self._hooks.append(hook)

    def remove_update_hook(self, hook: UpdateHook) -> None:
        """Unregister a previously added hook."""
        self._hooks.remove(hook)

    def _fire(self, event: UpdateEvent) -> None:
        self._version += 1
        for hook in list(self._hooks):
            hook(self, event)

    def insert(self, values: Dict[str, np.ndarray]) -> np.ndarray:
        """Insert tuples; returns their rowIDs in the post-statement image."""
        rowids = self._delta.insert(values)
        event = UpdateEvent(
            kind="insert",
            rowids=rowids,
            values={k: np.asarray(v) for k, v in values.items()},
        )
        self._fire(event)
        return rowids

    def delete(self, rowids: np.ndarray) -> None:
        """Delete tuples at the given (pre-statement) rowIDs."""
        rowids = np.unique(np.asarray(rowids, dtype=np.int64))
        self._delta.delete(rowids)
        self._fire(UpdateEvent(kind="delete", rowids=rowids))

    def modify(self, rowids: np.ndarray, values: Dict[str, np.ndarray]) -> None:
        """Overwrite column values at the given rowIDs."""
        rowids = np.asarray(rowids, dtype=np.int64)
        self._delta.modify(rowids, values)
        self._fire(
            UpdateEvent(
                kind="modify",
                rowids=rowids,
                values={k: np.asarray(v) for k, v in values.items()},
            )
        )

    def checkpoint(self) -> None:
        """Fold buffered deltas into the base arrays (no hook fires)."""
        self._delta.checkpoint()

    @property
    def delta(self) -> PositionalDelta:
        """The table's positional delta structure (queried by PatchIndexes)."""
        return self._delta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, rows={self.num_rows}, cols={len(self.schema)})"
