"""Write-ahead logging and checkpointing: the durability subsystem.

Everything above this module is in-memory: tables, positional deltas,
PatchIndexes.  A :class:`DurabilityManager` attached to a SQL session
makes the *committed statement log* survive a process crash:

* Every committed write statement (INSERT / UPDATE / DELETE) is
  appended to an append-only, CRC32-framed **write-ahead log** in
  commit-sequence order *before* its table mutation is applied.  The
  session's writer discipline already serializes commits, so the WAL
  append slots in at the commit point without new locking.
* A **checkpoint** snapshots every table's current image (plain and
  partitioned, all column arrays plus schema and partition layout) into
  a single CRC-framed file, after which the log is rotated and old
  segments pruned.  Checkpoints fire every ``checkpoint_interval``
  commits, on graceful close, and on demand.
* **Recovery** (:mod:`repro.storage.recovery`) loads the newest valid
  checkpoint, replays the WAL tail through the session's own
  ``prepare``/``run_prepared`` path — so replay is bit-identical to the
  chaos suite's serial-replay oracle — truncates a torn tail at the
  last valid frame, and refuses startup on mid-log corruption.

Sync policy (``wal_sync``) trades latency for durability:

``fsync``
    ``os.fsync`` after every commit before it is acknowledged: an acked
    write survives power loss.
``group``
    Flush per commit, fsync at most every ``group_commit_s`` seconds
    (piggybacked on the next commit): bounded data loss under power
    loss, none under clean process death.
``off``
    Flush per commit only: survives process death (the OS keeps the
    page cache), not power loss before the next checkpoint/close.

Wire format
-----------
A WAL record frame is ``magic(2) | payload_len(u32 LE) | crc32(u32 LE)
| payload`` where the CRC covers the payload and the payload is compact
JSON ``{"seq": n, "kind": "write"|"set", "sql": "..."}``.  A checkpoint
file is ``magic(5) | payload_len(u64 LE) | crc32(u32 LE) | payload``
where the payload is an ``.npz`` archive of every column array plus a
JSON manifest.  Torn-tail and corruption semantics live with the reader
in :mod:`repro.storage.recovery`.

Fault injection points (see :mod:`repro.testing.faults`):
``wal.append`` (before a frame is written), ``wal.fsync`` (before
``os.fsync``) and ``checkpoint.write`` (before a finished checkpoint is
atomically renamed into place).
"""

from __future__ import annotations

import io
import json
import operator
import os
import struct
import time
import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from repro.storage.catalog import Catalog
from repro.storage.column import ColumnType
from repro.storage.partition import PartitionedTable
from repro.storage.table import Field, Schema, Table
from repro.testing import faults

__all__ = [
    "WAL_SYNC_POLICIES",
    "WALError",
    "WriteAheadLog",
    "DurabilityManager",
    "encode_record",
    "decode_payload",
    "snapshot_catalog",
    "load_snapshot",
    "restore_catalog",
    "validate_wal_sync",
    "validate_checkpoint_interval",
    "validate_data_dir",
    "checkpoint_name",
    "segment_name",
]

#: Accepted ``wal_sync`` policies, weakest to strongest.
WAL_SYNC_POLICIES = ("off", "group", "fsync")

#: Frame magic for WAL records; a torn append preserves it (a torn tail
#: is a prefix of one valid frame), so a wrong magic mid-file is
#: corruption, never tearing.
FRAME_MAGIC = b"\xaaW"
FRAME_HEADER = struct.Struct("<2sII")  # magic, payload length, payload crc32

#: Checkpoint container magic + header (payload length u64, crc32 u32).
CHECKPOINT_MAGIC = b"CKPT\x01"
CHECKPOINT_HEADER = struct.Struct("<QI")

#: Default seconds between piggybacked fsyncs under ``wal_sync=group``.
DEFAULT_GROUP_COMMIT_S = 0.05

_SEQ_DIGITS = 16


class WALError(RuntimeError):
    """A durability-layer failure (append, sync, or checkpoint)."""


def validate_wal_sync(value: object, name: str = "wal_sync") -> str:
    """Validate a WAL sync-policy knob (``off`` / ``group`` / ``fsync``).

    Shared by the ``SET wal_sync`` statement and the session/async/server
    constructors; anything but one of the enum strings raises.
    """
    if not isinstance(value, str):
        raise TypeError(f"{name} must be a string, got {value!r}")
    policy = value.lower()
    if policy not in WAL_SYNC_POLICIES:
        raise ValueError(
            f"unknown {name} policy {value!r}; "
            f"expected one of {', '.join(WAL_SYNC_POLICIES)}"
        )
    return policy


def validate_checkpoint_interval(value: object, name: str = "checkpoint_interval") -> int:
    """Validate a checkpoint-interval knob: commits between checkpoints.

    The value must be a positive integer; ``None`` (= disabled) is
    handled by callers before validation, mirroring
    :func:`~repro.engine.interrupt.validate_timeout_ms`.  Bools, floats
    and strings raise :class:`TypeError`; zero and negatives raise
    :class:`ValueError`.
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    try:
        interval = operator.index(value)
    except TypeError:
        raise TypeError(f"{name} must be an integer, got {value!r}") from None
    if interval < 1:
        raise ValueError(f"{name} must be a positive integer, got {interval}")
    return int(interval)


def validate_data_dir(value: object, name: str = "data_dir") -> str:
    """Validate a data-directory knob, returning it as a plain string.

    Accepts a non-empty ``str`` / ``os.PathLike``; rejects a path that
    exists but is not a directory.  The directory itself is created on
    demand by the :class:`DurabilityManager`.
    """
    if isinstance(value, os.PathLike):
        value = os.fspath(value)
    if not isinstance(value, str):
        raise TypeError(f"{name} must be a path string, got {value!r}")
    if not value.strip():
        raise ValueError(f"{name} must be a non-empty path")
    if os.path.exists(value) and not os.path.isdir(value):
        raise ValueError(f"{name} {value!r} exists and is not a directory")
    return value


def segment_name(first_seq: int) -> str:
    """File name of the WAL segment whose first record is ``first_seq``."""
    return f"wal-{first_seq:0{_SEQ_DIGITS}d}.log"


def checkpoint_name(seq: int) -> str:
    """File name of the checkpoint taken at commit sequence ``seq``."""
    return f"checkpoint-{seq:0{_SEQ_DIGITS}d}.ckpt"


def encode_record(seq: int, kind: str, sql: str) -> bytes:
    """One CRC32-framed WAL record (see the module docstring format)."""
    payload = json.dumps(
        {"seq": int(seq), "kind": kind, "sql": sql}, separators=(",", ":")
    ).encode("utf-8")
    header = FRAME_HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload))
    return header + payload


def decode_payload(payload: bytes) -> Tuple[int, str, str]:
    """Decode a record payload into ``(seq, kind, sql)``."""
    doc = json.loads(payload.decode("utf-8"))
    return int(doc["seq"]), str(doc["kind"]), str(doc["sql"])


class WriteAheadLog:
    """One append-only WAL segment file with a sync policy.

    Not thread-safe by itself: the session's writer discipline already
    guarantees one committing statement at a time, which is the only
    caller.  ``synced_offset`` tracks the byte offset known durable
    (the power-loss simulation point the chaos suite truncates to).
    """

    def __init__(
        self,
        path: str,
        policy: str = "fsync",
        group_commit_s: float = DEFAULT_GROUP_COMMIT_S,
    ) -> None:
        self.path = path
        self.policy = validate_wal_sync(policy)
        self.group_commit_s = float(group_commit_s)
        self._fh = open(path, "ab")
        self._offset = self._fh.tell()
        #: bytes present at open already survived whatever came before
        self._synced_offset = self._offset
        self._last_sync = time.monotonic()
        self._poisoned = False
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def offset(self) -> int:
        """Bytes appended (and flushed) so far."""
        return self._offset

    @property
    def synced_offset(self) -> int:
        """Bytes known fsync-durable (<= :attr:`offset`)."""
        return self._synced_offset

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def append(self, seq: int, kind: str, sql: str) -> int:
        """Append one record and apply the sync policy; returns the
        byte offset the record starts at.

        On any failure mid-append (including an injected fault or a
        failed fsync of this record) the file is rolled back to the
        pre-append offset, so the log never carries a frame for a
        statement that was not acknowledged as logged — a half-written
        frame can only come from a real crash, where it is a torn tail
        for recovery to truncate.
        """
        if self._closed:
            raise WALError("write-ahead log is closed")
        if self._poisoned:
            raise WALError(
                "write-ahead log is poisoned by an earlier append failure "
                "that could not be rolled back"
            )
        data = encode_record(seq, kind, sql)
        pre = self._offset
        try:
            if faults.ACTIVE:
                faults.fire("wal.append")
            self._fh.write(data)
            self._fh.flush()
            self._offset = pre + len(data)
            if self.policy == "fsync":
                self.sync()
            elif self.policy == "group":
                if time.monotonic() - self._last_sync >= self.group_commit_s:
                    self.sync()
        except BaseException:
            self._rollback(pre)
            raise
        return pre

    def sync(self) -> None:
        """Force appended records to stable storage (``os.fsync``)."""
        if self._closed:
            raise WALError("write-ahead log is closed")
        if faults.ACTIVE:
            faults.fire("wal.fsync")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._synced_offset = self._offset
        self._last_sync = time.monotonic()

    def truncate_to(self, offset: int) -> None:
        """Roll the log back to ``offset`` (statement-abort path)."""
        self._rollback(offset)
        if self._poisoned:
            raise WALError(f"could not roll the write-ahead log back to {offset}")

    def _rollback(self, offset: int) -> None:
        """Best-effort restore of the pre-append state; poison on failure."""
        try:
            self._fh.close()
        except OSError:
            pass
        try:
            with open(self.path, "r+b") as fh:
                fh.truncate(offset)
            self._fh = open(self.path, "ab")
            self._offset = offset
            self._synced_offset = min(self._synced_offset, offset)
        except OSError:
            self._poisoned = True

    def close(self, sync: bool = True) -> None:
        """Flush (and by default fsync) then close the segment."""
        if self._closed:
            return
        self._closed = True
        try:
            self._fh.flush()
            if sync and not self._poisoned:
                os.fsync(self._fh.fileno())
                self._synced_offset = self._offset
        except OSError:
            pass
        finally:
            try:
                self._fh.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# checkpoint serialization
# ----------------------------------------------------------------------
def snapshot_catalog(catalog: Catalog, seq: int) -> bytes:
    """Serialize every table image into one CRC-framed checkpoint blob.

    The payload is an ``.npz`` archive: a JSON manifest (uint8 array)
    naming each table's kind, schema and partition layout, plus one
    entry per column array (per partition for partitioned tables).
    Arrays round-trip bit-exactly, string columns included, so a
    restored image is bit-identical to the snapshotted one.
    """
    manifest: Dict[str, object] = {"format": 1, "seq": int(seq), "tables": []}
    arrays: Dict[str, np.ndarray] = {}
    for table in catalog:
        schema = [[f.name, f.type.value] for f in table.schema.fields]
        if isinstance(table, PartitionedTable):
            manifest["tables"].append(
                {
                    "name": table.name,
                    "kind": "partitioned",
                    "schema": schema,
                    "partition_key": table.partition_key,
                    "upper_bounds": [
                        b.item() if hasattr(b, "item") else b
                        for b in table._upper_bounds
                    ],
                    "num_partitions": table.num_partitions,
                }
            )
            for i, part in enumerate(table.partitions):
                for col in table.schema.names:
                    arrays[f"p::{table.name}::{i}::{col}"] = part.column(col)
        else:
            manifest["tables"].append(
                {"name": table.name, "kind": "table", "schema": schema}
            )
            for col in table.schema.names:
                arrays[f"t::{table.name}::{col}"] = table.column(col)
    buf = io.BytesIO()
    manifest_bytes = json.dumps(manifest, separators=(",", ":")).encode("utf-8")
    np.savez(
        buf,
        manifest=np.frombuffer(manifest_bytes, dtype=np.uint8),
        **arrays,
    )
    payload = buf.getvalue()
    header = CHECKPOINT_HEADER.pack(len(payload), zlib.crc32(payload))
    return CHECKPOINT_MAGIC + header + payload


def load_snapshot(data: bytes) -> Tuple[int, Dict, Dict[str, np.ndarray]]:
    """Parse checkpoint bytes into ``(seq, manifest, arrays)``.

    Raises :class:`ValueError` on any framing/CRC mismatch; callers
    (recovery) map that onto the typed checkpoint-corruption error and
    fall back to the previous checkpoint.
    """
    head_len = len(CHECKPOINT_MAGIC) + CHECKPOINT_HEADER.size
    if len(data) < head_len or data[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        raise ValueError("not a checkpoint file (bad magic)")
    length, crc = CHECKPOINT_HEADER.unpack_from(data, len(CHECKPOINT_MAGIC))
    payload = data[head_len : head_len + length]
    if len(payload) != length or len(data) != head_len + length:
        raise ValueError("checkpoint payload truncated or trailing garbage")
    if zlib.crc32(payload) != crc:
        raise ValueError("checkpoint CRC mismatch")
    with np.load(io.BytesIO(payload), allow_pickle=True) as npz:
        arrays = {k: npz[k] for k in npz.files}
    manifest = json.loads(bytes(arrays.pop("manifest")).decode("utf-8"))
    return int(manifest["seq"]), manifest, arrays


def _schema_from_manifest(entry: Dict) -> Schema:
    return Schema([Field(name, ColumnType(tval)) for name, tval in entry["schema"]])


def _restore_image(table: Table, columns: Dict[str, np.ndarray]) -> None:
    """Overwrite ``table``'s image in place via delete-all + insert.

    Going through the public update statements keeps every registered
    update hook (PatchIndexes, SortKeys, matviews) consistent with the
    restored image instead of silently pointing at pre-crash state.
    """
    if table.num_rows:
        table.delete(table.rowids())
    num_rows = len(next(iter(columns.values()))) if columns else 0
    if num_rows:
        table.insert(columns)


def restore_catalog(catalog: Catalog, manifest: Dict, arrays: Dict[str, np.ndarray]) -> None:
    """Load a checkpoint image into a catalog.

    A registered table with the matching schema is restored *in place*
    (update hooks fire, so attached index structures stay consistent);
    a missing table — or one whose schema/layout diverged — is rebuilt
    from the snapshot and re-registered, dropping stale structures.
    """
    for entry in manifest["tables"]:
        name = entry["name"]
        schema = _schema_from_manifest(entry)
        existing = catalog.table(name) if name in catalog else None
        if entry["kind"] == "partitioned":
            part_cols = [
                {
                    col: arrays[f"p::{name}::{i}::{col}"]
                    for col in schema.names
                }
                for i in range(entry["num_partitions"])
            ]
            ok = (
                isinstance(existing, PartitionedTable)
                and existing.schema == schema
                and existing.num_partitions == entry["num_partitions"]
                and existing.partition_key == entry["partition_key"]
            )
            if ok:
                for part, cols in zip(existing.partitions, part_cols):
                    _restore_image(part, cols)
            else:
                parts = [
                    Table(f"{name}#{i}", schema, cols)
                    for i, cols in enumerate(part_cols)
                ]
                catalog.drop(name)
                catalog.register(
                    PartitionedTable(
                        name, parts, entry["partition_key"], entry["upper_bounds"]
                    )
                )
        else:
            cols = {col: arrays[f"t::{name}::{col}"] for col in schema.names}
            if isinstance(existing, Table) and existing.schema == schema:
                _restore_image(existing, cols)
            else:
                catalog.drop(name)
                catalog.register(Table(name, schema, cols))


class DurabilityManager:
    """Owns a data directory: WAL segments plus checkpoint files.

    Created by a SQL session when ``data_dir`` is configured; the
    session calls :meth:`recover` once at construction (restore newest
    valid checkpoint, replay the WAL tail through itself, open the log
    for append) and then :meth:`log_write` at every commit point.

    Parameters
    ----------
    catalog:
        The catalog whose tables are checkpointed and restored.
    data_dir:
        Directory for WAL segments and checkpoints (created on demand).
    wal_sync:
        Sync policy, see :data:`WAL_SYNC_POLICIES`.
    checkpoint_interval:
        Commits between automatic checkpoints (``None`` disables; the
        close-time checkpoint still runs).  The automatic checkpoint
        fires at the *start* of the commit that crosses the interval,
        before that commit is logged, so a failed checkpoint can never
        leave a committed-but-uncheckpointed statement half-recorded.
    group_commit_s:
        Piggybacked fsync interval under ``wal_sync=group``.
    checkpoint_retain:
        Checkpoints kept on disk (>= 1).  WAL segments are pruned only
        once no retained checkpoint needs them, so recovery can always
        fall back to an older checkpoint plus a longer replay.
    """

    def __init__(
        self,
        catalog: Catalog,
        data_dir: str,
        wal_sync: str = "fsync",
        checkpoint_interval: Optional[int] = None,
        group_commit_s: float = DEFAULT_GROUP_COMMIT_S,
        checkpoint_retain: int = 2,
    ) -> None:
        self.catalog = catalog
        self.data_dir = validate_data_dir(data_dir)
        self._wal_sync = validate_wal_sync(wal_sync)
        self._checkpoint_interval = (
            None
            if checkpoint_interval is None
            else validate_checkpoint_interval(checkpoint_interval)
        )
        self.group_commit_s = float(group_commit_s)
        self.checkpoint_retain = max(1, int(checkpoint_retain))
        os.makedirs(self.data_dir, exist_ok=True)
        self.wal: Optional[WriteAheadLog] = None
        self._last_seq = 0
        self._last_record_offset = 0
        self._writes_since_checkpoint = 0
        self._checkpoints_written = 0
        self._replaying = False
        self._closed = False
        self.recovery_report = None

    # ------------------------------------------------------------------
    # knobs
    # ------------------------------------------------------------------
    @property
    def wal_sync(self) -> str:
        """Current sync policy."""
        return self._wal_sync

    def set_wal_sync(self, policy: str) -> str:
        """Reconfigure the sync policy (validated; applies to future
        appends immediately)."""
        self._wal_sync = validate_wal_sync(policy)
        if self.wal is not None:
            self.wal.policy = self._wal_sync
        return self._wal_sync

    @property
    def checkpoint_interval(self) -> Optional[int]:
        """Commits between automatic checkpoints (None = disabled)."""
        return self._checkpoint_interval

    def set_checkpoint_interval(self, interval: Optional[int]) -> Optional[int]:
        """Reconfigure the automatic checkpoint cadence (None disables)."""
        if interval is not None:
            interval = validate_checkpoint_interval(interval)
        self._checkpoint_interval = interval
        return interval

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest logged record."""
        return self._last_seq

    @property
    def checkpoints_written(self) -> int:
        """Checkpoints taken by this manager instance."""
        return self._checkpoints_written

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # recovery + lifecycle
    # ------------------------------------------------------------------
    def recover(self, session) -> "object":
        """Restore the data directory into ``session`` and arm logging.

        Delegates the read side (checkpoint choice, WAL scan, torn-tail
        truncation, corruption refusal, replay) to
        :mod:`repro.storage.recovery`, then opens the newest segment for
        append and — when the directory held no checkpoint — seeds it
        with an initial checkpoint of the session's current catalog.
        """
        from repro.storage import recovery

        self._replaying = True
        try:
            report = recovery.run_recovery(self, session)
        finally:
            self._replaying = False
        self._last_seq = report.last_seq
        self._open_wal_for_append()
        if report.checkpoint_path is None:
            # fresh directory (or WAL-only): establish the base image
            self.checkpoint()
        self.recovery_report = report
        return report

    def _open_wal_for_append(self) -> None:
        from repro.storage import recovery

        segments = recovery.list_segments(self.data_dir)
        if segments:
            path = segments[-1][1]
        else:
            path = os.path.join(self.data_dir, segment_name(self._last_seq + 1))
        self.wal = WriteAheadLog(
            path, policy=self._wal_sync, group_commit_s=self.group_commit_s
        )

    def close(self, checkpoint: bool = True) -> None:
        """Flush, optionally checkpoint, and release the directory.

        The graceful-shutdown path: the server drain calls through the
        session's ``close()``, so a clean stop always leaves a synced
        log — and, by default, a fresh checkpoint when any commit
        happened since the last one.
        """
        if self._closed:
            return
        if self.wal is not None and not self.wal.closed:
            try:
                self.wal.sync()
            except (OSError, faults.InjectedFaultError):
                pass
            if checkpoint and self._writes_since_checkpoint > 0:
                self.checkpoint()
            self.wal.close()
        self._closed = True

    # ------------------------------------------------------------------
    # the commit path
    # ------------------------------------------------------------------
    def log_write(self, sql: str) -> Optional[int]:
        """Log one committed write statement; returns its sequence.

        Called by the session at the commit point — after the last
        interruption window, immediately before the atomic table
        mutation — so a logged record implies the mutation applies
        unless the process dies first (in which case replay applies
        it).  No-op (returns None) while recovery is replaying.
        """
        return self._log("write", sql)

    def log_set(self, sql: str) -> Optional[int]:
        """Log a replay-relevant SET statement (durability knobs)."""
        return self._log("set", sql)

    def _log(self, kind: str, sql: str) -> Optional[int]:
        if self._replaying:
            return None
        if self._closed or self.wal is None:
            raise WALError("durability manager is closed")
        if not sql:
            raise WALError(
                "cannot log a statement without SQL text; prepared statements "
                "must carry their source on a durable session"
            )
        if (
            kind == "write"
            and self._checkpoint_interval is not None
            and self._writes_since_checkpoint >= self._checkpoint_interval
        ):
            # checkpoint *before* logging the crossing commit: a failed
            # checkpoint aborts the statement before it is logged or
            # applied, so log and tables never diverge
            self.checkpoint()
        seq = self._last_seq + 1
        self._last_record_offset = self.wal.append(seq, kind, sql)
        self._last_seq = seq
        if kind == "write":
            self._writes_since_checkpoint += 1
        return seq

    def rollback_record(self, seq: int) -> None:
        """Un-log the newest record (mutation failed after logging).

        Only the record just returned by :meth:`log_write` can be
        rolled back; the session calls this when the table mutation
        itself raises, so the log never claims a commit that did not
        apply.
        """
        if seq != self._last_seq or self.wal is None:
            raise WALError(f"cannot roll back record {seq}; last is {self._last_seq}")
        self.wal.truncate_to(self._last_record_offset)
        self._last_seq -= 1
        self._writes_since_checkpoint = max(0, self._writes_since_checkpoint - 1)

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self) -> str:
        """Snapshot the catalog, rotate the WAL, prune old state.

        Write-temp → fsync → atomic rename, so a crash mid-checkpoint
        leaves the previous checkpoint (and the un-rotated log) fully
        usable; only after the rename does the log rotate and pruning
        delete checkpoints/segments no retained checkpoint needs.
        Returns the checkpoint file path.
        """
        if self._closed:
            raise WALError("durability manager is closed")
        data = snapshot_catalog(self.catalog, self._last_seq)
        final = os.path.join(self.data_dir, checkpoint_name(self._last_seq))
        tmp = final + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        if faults.ACTIVE:
            try:
                faults.fire("checkpoint.write")
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        os.replace(tmp, final)
        self._sync_dir()
        self._rotate_wal()
        self._prune()
        self._writes_since_checkpoint = 0
        self._checkpoints_written += 1
        return final

    def _rotate_wal(self) -> None:
        if self.wal is not None:
            self.wal.close()
        path = os.path.join(self.data_dir, segment_name(self._last_seq + 1))
        self.wal = WriteAheadLog(
            path, policy=self._wal_sync, group_commit_s=self.group_commit_s
        )
        self._sync_dir()

    def _prune(self) -> None:
        """Drop checkpoints beyond the retention bound, then every WAL
        segment whose records are all covered by the oldest retained
        checkpoint."""
        from repro.storage import recovery

        ckpts = recovery.list_checkpoints(self.data_dir)
        if len(ckpts) > self.checkpoint_retain:
            for _, path in ckpts[: -self.checkpoint_retain]:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            ckpts = ckpts[-self.checkpoint_retain :]
        if not ckpts:
            return
        horizon = ckpts[0][0]  # oldest retained checkpoint's sequence
        segments = recovery.list_segments(self.data_dir)
        for i, (start, path) in enumerate(segments[:-1]):  # never the active one
            next_start = segments[i + 1][0]
            if next_start <= horizon + 1:
                # every record in [start, next_start) is <= horizon
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def _sync_dir(self) -> None:
        """fsync the directory so renames/creates survive power loss."""
        try:
            fd = os.open(self.data_dir, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DurabilityManager({self.data_dir!r}, wal_sync={self._wal_sync}, "
            f"last_seq={self._last_seq}, "
            f"checkpoints={self._checkpoints_written})"
        )
