"""Crash recovery: checkpoint load + WAL-tail replay.

The read side of the durability subsystem (:mod:`repro.storage.wal`
writes, this module recovers).  :func:`run_recovery` opens a data
directory and rebuilds the exact committed state:

1. **Checkpoint choice.**  Checkpoints are tried newest-first; a file
   that fails its CRC/framing check is skipped (with the typed
   :class:`CheckpointCorruptionError` recorded) and the previous one is
   used — WAL segment pruning retains every segment the oldest kept
   checkpoint needs, so an older base just means a longer replay.  If
   checkpoints exist but none validates, startup is refused.
2. **WAL scan.**  Every segment is scanned frame-by-frame.  An invalid
   frame *at the end of the newest segment* is a **torn tail** — the
   prefix of a record the crash cut short — and is truncated away at the
   last valid frame boundary.  An invalid frame anywhere else (bytes or
   valid frames follow it, or it sits in a non-final segment) is
   **mid-log corruption**: recovery refuses startup with
   :class:`WALCorruptionError` rather than silently skipping committed
   history.  The record sequence across segments must be gapless and
   strictly ascending; anything else is also a refusal.
3. **Replay.**  Records with ``seq`` greater than the checkpoint's are
   re-executed through the owning session's ``prepare`` /
   ``run_prepared`` path — the same code path that ran them the first
   time and the same one the chaos suite's serial-replay oracle uses —
   with WAL logging suppressed, so recovered state is bit-identical to
   serial replay of the durable commit-log prefix.

The torn/corrupt distinction is deterministic because a torn append is
always a *prefix of one valid frame*: the frame magic survives (or
fewer bytes than a header remain), the length field points past EOF, or
the payload CRC fails with nothing after it.  A CRC failure or bad
magic with more log after it can only be corruption.
"""

from __future__ import annotations

import dataclasses
import os
import zlib
from typing import List, Optional, Tuple

from repro.storage import wal as walmod

__all__ = [
    "RecoveryError",
    "WALCorruptionError",
    "CheckpointCorruptionError",
    "RecoveryReport",
    "WALRecord",
    "list_checkpoints",
    "list_segments",
    "load_checkpoint",
    "scan_segment",
    "scan_wal",
    "read_records",
    "run_recovery",
]


class RecoveryError(RuntimeError):
    """Recovery could not rebuild a consistent state from the data dir."""


class WALCorruptionError(RecoveryError):
    """Mid-log WAL corruption: an invalid frame with history after it
    (or a sequence gap).  Startup is refused — truncating here would
    silently drop committed writes."""


class CheckpointCorruptionError(RecoveryError):
    """A checkpoint file failed its CRC/framing check."""


@dataclasses.dataclass(frozen=True)
class WALRecord:
    """One decoded WAL record."""

    seq: int
    kind: str  # "write" | "set"
    sql: str


@dataclasses.dataclass
class RecoveryReport:
    """What :func:`run_recovery` found and did."""

    data_dir: str
    checkpoint_seq: int = 0
    checkpoint_path: Optional[str] = None
    skipped_checkpoints: List[str] = dataclasses.field(default_factory=list)
    records_scanned: int = 0
    records_replayed: int = 0
    writes_replayed: int = 0
    truncated_bytes: int = 0
    last_seq: int = 0
    initialized: bool = False  # fresh directory: nothing to recover


# ----------------------------------------------------------------------
# directory listing
# ----------------------------------------------------------------------
def _listed(data_dir: str, prefix: str, suffix: str) -> List[Tuple[int, str]]:
    out: List[Tuple[int, str]] = []
    try:
        names = os.listdir(data_dir)
    except FileNotFoundError:
        return out
    for name in names:
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        stem = name[len(prefix) : -len(suffix)]
        if not stem.isdigit():
            continue
        out.append((int(stem), os.path.join(data_dir, name)))
    out.sort()
    return out


def list_checkpoints(data_dir: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` of every checkpoint file, oldest first.

    In-flight ``.tmp`` files (a crash mid-checkpoint) are ignored; the
    atomic-rename protocol guarantees a listed file was written whole —
    though its *content* is still CRC-verified on load.
    """
    return _listed(data_dir, "checkpoint-", ".ckpt")


def list_segments(data_dir: str) -> List[Tuple[int, str]]:
    """``(first_seq, path)`` of every WAL segment, oldest first."""
    return _listed(data_dir, "wal-", ".log")


def load_checkpoint(path: str):
    """Load + CRC-verify one checkpoint: ``(seq, manifest, arrays)``.

    Raises :class:`CheckpointCorruptionError` on any framing, CRC or
    decode failure.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
        return walmod.load_snapshot(data)
    except OSError as exc:
        raise CheckpointCorruptionError(f"cannot read checkpoint {path}: {exc}") from exc
    except Exception as exc:
        raise CheckpointCorruptionError(f"invalid checkpoint {path}: {exc}") from exc


# ----------------------------------------------------------------------
# WAL scanning
# ----------------------------------------------------------------------
def _find_frame_after(data: bytes, start: int) -> bool:
    """Is there a complete, valid frame anywhere at/after ``start``?

    Used when a frame's length field points past EOF: a genuinely torn
    tail has nothing valid after it, while a bit-flipped length mid-log
    would appear to swallow later valid frames — resyncing on the magic
    distinguishes the two so corruption is refused, not truncated.
    """
    header = walmod.FRAME_HEADER
    pos = data.find(walmod.FRAME_MAGIC, start)
    while pos != -1:
        if pos + header.size <= len(data):
            _, length, crc = header.unpack_from(data, pos)
            end = pos + header.size + length
            if end <= len(data) and zlib.crc32(data[pos + header.size : end]) == crc:
                return True
        pos = data.find(walmod.FRAME_MAGIC, pos + 1)
    return False


def scan_segment(
    path: str, allow_torn: bool
) -> Tuple[List[WALRecord], int, bool]:
    """Scan one segment: ``(records, good_offset, torn)``.

    ``good_offset`` is the byte offset just past the last valid frame.
    With ``allow_torn`` (the newest segment only) an invalid tail is
    reported as torn; otherwise any invalid byte raises
    :class:`WALCorruptionError`.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    header = walmod.FRAME_HEADER
    records: List[WALRecord] = []
    offset = 0
    size = len(data)
    torn_reason: Optional[str] = None
    while offset < size:
        if size - offset < header.size:
            torn_reason = "short header"
            break
        magic, length, crc = header.unpack_from(data, offset)
        if magic != walmod.FRAME_MAGIC:
            raise WALCorruptionError(
                f"bad frame magic at {path}:{offset}; a torn append "
                "preserves the magic, so this is corruption"
            )
        end = offset + header.size + length
        if end > size:
            # length field points past EOF: torn — unless a valid frame
            # hides in the claimed extent, which means a flipped length
            if _find_frame_after(data, offset + header.size):
                raise WALCorruptionError(
                    f"frame at {path}:{offset} claims length {length} past "
                    "EOF but valid frames follow: corrupt length field"
                )
            torn_reason = "payload extends past EOF"
            break
        payload = data[offset + header.size : end]
        if zlib.crc32(payload) != crc:
            if end == size:
                torn_reason = "payload CRC mismatch on the final frame"
                break
            raise WALCorruptionError(
                f"payload CRC mismatch at {path}:{offset} with "
                f"{size - end} bytes of log after it"
            )
        try:
            seq, kind, sql = walmod.decode_payload(payload)
        except Exception as exc:
            raise WALCorruptionError(
                f"undecodable WAL payload at {path}:{offset}: {exc}"
            ) from exc
        records.append(WALRecord(seq, kind, sql))
        offset = end
    if torn_reason is not None:
        if allow_torn:
            return records, offset, True
        raise WALCorruptionError(
            f"invalid WAL frame at {path}:{offset} ({torn_reason}) in a "
            "non-final segment"
        )
    return records, offset, False


def scan_wal(
    segments: List[Tuple[int, str]], truncate: bool = True
) -> Tuple[List[WALRecord], int]:
    """Scan every segment in order: ``(records, truncated_bytes)``.

    Torn tails are tolerated (and truncated, when ``truncate``) only in
    the newest segment; an older segment must end exactly on a frame
    boundary.  The combined record stream must be gapless and strictly
    ascending by one, or :class:`WALCorruptionError` is raised.
    """
    records: List[WALRecord] = []
    truncated = 0
    for i, (_, path) in enumerate(segments):
        is_last = i == len(segments) - 1
        segment_records, good_offset, torn = scan_segment(path, allow_torn=is_last)
        if torn:
            size = os.path.getsize(path)
            truncated = size - good_offset
            if truncate:
                with open(path, "r+b") as fh:
                    fh.truncate(good_offset)
                    fh.flush()
                    os.fsync(fh.fileno())
        records.extend(segment_records)
    seqs = [r.seq for r in records]
    if seqs and seqs != list(range(seqs[0], seqs[0] + len(seqs))):
        raise WALCorruptionError(
            "WAL record sequence has gaps or reordering; refusing to "
            "replay a log with missing committed history"
        )
    return records, truncated


def read_records(data_dir: str) -> List[WALRecord]:
    """Every record currently on disk, oldest first (no truncation).

    Test/oracle helper: with a large ``checkpoint_retain`` the full
    commit history from sequence 1 stays scannable, which is what the
    chaos suite replays serially as its ground truth.
    """
    records, _ = scan_wal(list_segments(data_dir), truncate=False)
    return records


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------
def run_recovery(manager, session) -> RecoveryReport:
    """Rebuild ``session``'s catalog from ``manager``'s data directory.

    Called by :meth:`repro.storage.wal.DurabilityManager.recover` with
    replay-mode already armed (so re-executed statements do not re-log).
    Chooses the newest valid checkpoint, restores it in place, scans the
    WAL (truncating a torn tail), and replays the tail records through
    ``session.prepare`` / ``session.run_prepared``.
    """
    report = RecoveryReport(data_dir=manager.data_dir)
    ckpts = list_checkpoints(manager.data_dir)
    manifest = arrays = None
    for seq, path in reversed(ckpts):
        try:
            ckpt_seq, manifest, arrays = load_checkpoint(path)
        except CheckpointCorruptionError:
            report.skipped_checkpoints.append(path)
            continue
        if ckpt_seq != seq:
            report.skipped_checkpoints.append(path)
            manifest = arrays = None
            continue
        report.checkpoint_seq = ckpt_seq
        report.checkpoint_path = path
        break
    if ckpts and report.checkpoint_path is None:
        raise CheckpointCorruptionError(
            f"all {len(ckpts)} checkpoint(s) in {manager.data_dir} failed "
            "validation; refusing to guess at a base image"
        )
    if manifest is not None:
        walmod.restore_catalog(manager.catalog, manifest, arrays)

    segments = list_segments(manager.data_dir)
    records, truncated = scan_wal(segments, truncate=True)
    report.records_scanned = len(records)
    report.truncated_bytes = truncated
    report.last_seq = max(
        report.checkpoint_seq, records[-1].seq if records else 0
    )

    tail = [r for r in records if r.seq > report.checkpoint_seq]
    if tail and tail[0].seq != report.checkpoint_seq + 1:
        raise WALCorruptionError(
            f"WAL tail starts at sequence {tail[0].seq} but the checkpoint "
            f"covers through {report.checkpoint_seq}: missing segment(s)"
        )
    for record in tail:
        prepared = session.prepare(record.sql)
        session.run_prepared(prepared)
        report.records_replayed += 1
        if record.kind == "write":
            report.writes_replayed += 1

    report.initialized = not ckpts and not segments
    return report
