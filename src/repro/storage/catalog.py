"""Catalog: named tables plus registered auxiliary structures.

The optimizer consults the catalog to find PatchIndexes, materialized
views, SortKeys and JoinIndexes applicable to a query (§3.3/§6).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.storage.partition import PartitionedTable
from repro.storage.table import Table

__all__ = ["Catalog"]

AnyTable = Union[Table, PartitionedTable]


class Catalog:
    """Registry of tables and the index/materialization structures on them."""

    def __init__(self) -> None:
        self._tables: Dict[str, AnyTable] = {}
        self._structures: Dict[Tuple[str, str, str], object] = {}

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def register(self, table: AnyTable) -> AnyTable:
        """Add a table under its name; replaces any previous entry."""
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> AnyTable:
        """Look a table up by name."""
        if name not in self._tables:
            raise KeyError(f"unknown table {name!r}")
        return self._tables[name]

    def drop(self, name: str) -> None:
        """Remove a table and every structure registered on it."""
        self._tables.pop(name, None)
        for key in [k for k in self._structures if k[0] == name]:
            del self._structures[key]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[AnyTable]:
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # auxiliary structures (PatchIndexes, matviews, sortkeys, joinindexes)
    # ------------------------------------------------------------------
    def add_structure(self, kind: str, table: str, column: str, obj: object) -> None:
        """Register an auxiliary structure for (kind, table, column)."""
        self._structures[(table, column, kind)] = obj

    def structure(self, kind: str, table: str, column: str) -> Optional[object]:
        """Look an auxiliary structure up, or None."""
        return self._structures.get((table, column, kind))

    def structures_on(self, table: str) -> List[Tuple[str, str, object]]:
        """All (kind, column, structure) registered on a table."""
        return [
            (kind, column, obj)
            for (tab, column, kind), obj in self._structures.items()
            if tab == table
        ]

    def remove_structure(self, kind: str, table: str, column: str) -> None:
        """Drop one auxiliary structure if present."""
        self._structures.pop((table, column, kind), None)
