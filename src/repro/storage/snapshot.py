"""Snapshot views and shard-granular locking (paper §5.4).

PatchIndexes integrate with a system's snapshot isolation: a
:class:`Snapshot` captures a consistent image of a table at a version,
unaffected by later updates.  Independently, the sharded bitmap enables
finer-grained concurrency control: shards are independent, so a
:class:`ShardLockManager` locks individual shards instead of the whole
structure, and start-value adjustment uses only commutative decrements
(concurrent decrements produce the same result in any order, §5.4).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Sequence

import numpy as np

from repro.storage.table import Table

__all__ = ["Snapshot", "ShardLockManager"]


class Snapshot:
    """A frozen, consistent image of a table's columns."""

    def __init__(self, table: Table) -> None:
        self.table_name = table.name
        self.version = table.version
        self.num_rows = table.num_rows
        self._columns: Dict[str, np.ndarray] = {
            name: table.column(name).copy() for name in table.schema.names
        }

    def column(self, name: str) -> np.ndarray:
        """The snapshotted array for one column."""
        return self._columns[name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Snapshot({self.table_name!r}@v{self.version}, rows={self.num_rows})"


class ShardLockManager:
    """Per-shard locks for concurrent sharded-bitmap mutation.

    Lock striping over shard ids: writers take only the locks of the
    shards they touch, so updates to disjoint shards proceed in parallel.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self._locks = [threading.Lock() for _ in range(num_shards)]

    @property
    def num_shards(self) -> int:
        return len(self._locks)

    @contextmanager
    def locked(self, shard: int) -> Iterator[None]:
        """Hold the lock of a single shard."""
        lock = self._locks[shard]
        with lock:
            yield

    @contextmanager
    def locked_many(self, shards: Sequence[int]) -> Iterator[None]:
        """Hold several shard locks; acquired in sorted order (no deadlock)."""
        ordered = sorted(set(int(s) for s in shards))
        acquired = []
        try:
            for s in ordered:
                self._locks[s].acquire()
                acquired.append(s)
            yield
        finally:
            for s in reversed(acquired):
                self._locks[s].release()
