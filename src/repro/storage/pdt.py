"""Positional delta structure (the paper's PDT stand-in, [17]).

Read-optimized column stores buffer table updates in memory rather than
rewriting the columnar storage on every statement.  The PatchIndex update
handlers of §5 query this structure for the tuples touched by the current
statement — e.g. the insert handler "scans the PDTs of the current query".

This implementation keeps three delta layers against the base image:

* **inserts** — columnar buffers appended after the base rows,
* **deletes** — current-image positions removed,
* **modifies** — per-column value overrides at current-image positions.

Reads merge the deltas positionally on demand (cached until the next
write); :meth:`PositionalDelta.checkpoint` folds the deltas into new base
arrays.  This trades the PDT's tree for simplicity while offering the
same interface to the index-maintenance layer: cheap update buffering,
positional rowID semantics (deletes shift subsequent rowIDs) and
statement-level delta scans.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

__all__ = ["PositionalDelta", "UpdateEvent"]


@dataclasses.dataclass
class UpdateEvent:
    """Statement-level delta description passed to update hooks (§5).

    ``kind`` is one of ``"insert"``, ``"delete"``, ``"modify"``.

    For inserts, ``rowids`` are the positions the new tuples occupy in the
    post-statement image and ``values`` holds their column values.  For
    deletes, ``rowids`` are pre-statement positions (descending-safe input
    to the sharded bitmap bulk delete).  For modifies, ``rowids`` are the
    touched positions and ``values`` the new values of changed columns.
    """

    kind: str
    rowids: np.ndarray
    values: Dict[str, np.ndarray] = dataclasses.field(default_factory=dict)


class PositionalDelta:
    """Delta layers over a dict of base column arrays."""

    def __init__(self, base: Dict[str, np.ndarray]) -> None:
        lengths = {len(arr) for arr in base.values()}
        if len(lengths) > 1:
            raise ValueError("base columns must have equal length")
        self._base = dict(base)
        self._base_rows = lengths.pop() if lengths else 0
        self._insert_buffers: Dict[str, List[np.ndarray]] = {c: [] for c in base}
        self._insert_rows = 0
        self._deleted_base = np.zeros(0, dtype=np.int64)  # base positions, sorted
        self._modify: Dict[str, Dict[int, object]] = {}
        self._cache: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # size
    # ------------------------------------------------------------------
    @property
    def base_rows(self) -> int:
        """Rows in the base image."""
        return self._base_rows

    @property
    def num_rows(self) -> int:
        """Rows in the merged (current) image."""
        return self._base_rows - len(self._deleted_base) + self._insert_rows

    @property
    def has_deltas(self) -> bool:
        """Whether any un-checkpointed deltas exist."""
        return bool(
            self._insert_rows or len(self._deleted_base) or any(self._modify.values())
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Merged current-image array for one column."""
        return self.merged()[name]

    def merged(self) -> Dict[str, np.ndarray]:
        """Merged current-image arrays for all columns (cached)."""
        if self._cache is None:
            self._cache = {name: self._merge_column(name) for name in self._base}
        return self._cache

    def _merge_column(self, name: str) -> np.ndarray:
        arr = self._base[name]
        overrides = self._modify.get(name)
        if overrides:
            arr = arr.copy()
            idx = np.fromiter(overrides.keys(), dtype=np.int64, count=len(overrides))
            vals = list(overrides.values())
            if arr.dtype == object:
                for i, v in zip(idx, vals):
                    arr[i] = v
            else:
                arr[idx] = np.asarray(vals, dtype=arr.dtype)
        if len(self._deleted_base):
            arr = np.delete(arr, self._deleted_base)
        buffers = self._insert_buffers.get(name, [])
        if buffers:
            arr = np.concatenate([arr, *buffers])
        return arr

    # ------------------------------------------------------------------
    # writes (positions refer to the *current* image at call time)
    # ------------------------------------------------------------------
    def insert(self, values: Dict[str, np.ndarray]) -> np.ndarray:
        """Append tuples; returns the rowids they occupy afterwards."""
        if set(values) != set(self._base):
            raise KeyError("insert must provide every column exactly once")
        counts = {len(v) for v in values.values()}
        if len(counts) != 1:
            raise ValueError("insert columns must have equal length")
        n = counts.pop()
        start = self.num_rows
        for name, vals in values.items():
            base = self._base[name]
            self._insert_buffers[name].append(
                np.asarray(vals, dtype=base.dtype)
                if base.dtype != object
                else _as_object(vals)
            )
        self._insert_rows += n
        self._cache = None
        return np.arange(start, start + n, dtype=np.int64)

    def delete(self, rowids: np.ndarray) -> None:
        """Delete tuples at current-image positions ``rowids``."""
        rowids = np.unique(np.asarray(rowids, dtype=np.int64))
        if len(rowids) == 0:
            return
        if rowids[0] < 0 or rowids[-1] >= self.num_rows:
            raise IndexError("rowid out of range")
        # Fast path while no deltas are buffered: current == base positions.
        if not self.has_deltas:
            self._deleted_base = rowids
            self._cache = None
            return
        # General path: fold the current image into a new base first, so
        # current positions and base positions coincide again.
        self.checkpoint()
        self._deleted_base = rowids
        self._cache = None

    def modify(self, rowids: np.ndarray, values: Dict[str, np.ndarray]) -> None:
        """Overwrite column values at current-image positions ``rowids``."""
        rowids = np.asarray(rowids, dtype=np.int64)
        if len(rowids) and (rowids.min() < 0 or rowids.max() >= self.num_rows):
            raise IndexError("rowid out of range")
        for name in values:
            if name not in self._base:
                raise KeyError(f"unknown column {name!r}")
        if self.has_deltas:
            # Same simplification as delete: realign positions first.
            self.checkpoint()
        for name, vals in values.items():
            store = self._modify.setdefault(name, {})
            for rid, val in zip(rowids.tolist(), np.asarray(vals).tolist()):
                store[rid] = val
        self._cache = None

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Fold all deltas into fresh base arrays."""
        merged = self.merged()
        self._base = {name: arr for name, arr in merged.items()}
        self._base_rows = self.num_rows
        self._insert_buffers = {c: [] for c in self._base}
        self._insert_rows = 0
        self._deleted_base = np.zeros(0, dtype=np.int64)
        self._modify = {}
        self._cache = dict(self._base)

    # ------------------------------------------------------------------
    # statement-delta scans used by PatchIndex maintenance (§5.1)
    # ------------------------------------------------------------------
    def pending_inserts(self) -> Dict[str, np.ndarray]:
        """Columnar view of all not-yet-checkpointed inserted tuples."""
        out = {}
        for name, buffers in self._insert_buffers.items():
            if buffers:
                out[name] = np.concatenate(buffers)
            else:
                out[name] = self._base[name][:0]
        return out

    def pending_insert_rowids(self) -> np.ndarray:
        """Current-image rowids of the pending inserted tuples."""
        return np.arange(self.num_rows - self._insert_rows, self.num_rows, dtype=np.int64)


def _as_object(vals) -> np.ndarray:
    arr = np.empty(len(vals), dtype=object)
    arr[:] = list(vals)
    return arr
