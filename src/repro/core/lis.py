"""Longest sorted subsequence (Fredman [12], patience sorting).

Used by NSC discovery to find a *minimal* patch set: the complement of a
longest non-decreasing (or non-increasing) subsequence is the smallest
set of rowIDs whose removal leaves the column sorted.  Runs in
O(n log n) via binary search over pile tails, with parent pointers for
reconstruction.

Arbitrary (including string) values are supported by reducing to dense
order codes first; descending order negates the codes.
"""

from __future__ import annotations

from bisect import bisect_right
import numpy as np

__all__ = ["longest_sorted_subsequence", "order_codes"]


def order_codes(values: np.ndarray, ascending: bool = True) -> np.ndarray:
    """Map values to dense int codes preserving (or reversing) order."""
    _, codes = np.unique(values, return_inverse=True)
    codes = codes.astype(np.int64)
    return codes if ascending else -codes


def longest_sorted_subsequence(
    values: np.ndarray, ascending: bool = True
) -> np.ndarray:
    """Indices (sorted, ascending positions) of one longest sorted run.

    "Sorted" means non-decreasing for ``ascending=True`` and
    non-increasing otherwise, so duplicate values extend the sequence —
    matching the sort operator's stable semantics.
    """
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    codes = order_codes(values, ascending)
    tails: list = []  # smallest tail code of an increasing run of length i+1
    tail_idx = np.empty(n, dtype=np.int64)  # index holding tails[i]
    parent = np.full(n, -1, dtype=np.int64)
    code_list = codes.tolist()  # python ints: bisect on a list is fastest
    length = 0
    for i, c in enumerate(code_list):
        # non-decreasing: replace the first tail strictly greater than c
        pos = bisect_right(tails, c)
        if pos == length:
            tails.append(c)
            length += 1
        else:
            tails[pos] = c
        tail_idx[pos] = i
        parent[i] = tail_idx[pos - 1] if pos > 0 else -1
    # reconstruct
    out = np.empty(length, dtype=np.int64)
    i = tail_idx[length - 1]
    for k in range(length - 1, -1, -1):
        out[k] = i
        i = parent[i]
    return out


def lis_length(values: np.ndarray, ascending: bool = True) -> int:
    """Length of the longest sorted subsequence (no reconstruction)."""
    return len(longest_sorted_subsequence(values, ascending))
