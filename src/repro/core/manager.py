"""PatchIndex lifecycle management and partition transparency (§3.2).

The manager creates indexes, hooks them into their tables' update
streams, optionally monitors the exception rate to trigger a global
recomputation (the mitigation §5.1/§5.3 suggest for lost optimality),
and hides partitioning: on a :class:`~repro.storage.partition.
PartitionedTable` a separate index is created per partition and a
:class:`PartitionedPatchIndex` presents them as one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bitmap import ParallelBulkDeleter
from repro.bitmap.sharded import DEFAULT_SHARD_BITS
from repro.core.constraints import Constraint
from repro.engine.parallel import validate_parallelism
from repro.core.patchindex import BITMAP_DESIGN, PatchIndex
from repro.core.updates import apply_update
from repro.storage.catalog import Catalog
from repro.storage.partition import PartitionedTable
from repro.storage.table import Table

__all__ = ["PatchIndexManager", "PartitionedPatchIndex", "MaintainedIndex"]

STRUCTURE_KIND = "patchindex"


class MaintainedIndex:
    """A PatchIndex wired to its table's update hook."""

    def __init__(
        self,
        index: PatchIndex,
        table: Table,
        dynamic_range_propagation: bool = True,
        recompute_threshold: Optional[float] = None,
    ) -> None:
        self.index = index
        self.table = table
        self.dynamic_range_propagation = dynamic_range_propagation
        self.recompute_threshold = recompute_threshold
        self.recompute_count = 0
        table.add_update_hook(self._on_update)

    def _on_update(self, table: Table, event) -> None:
        apply_update(
            self.index, table, event,
            dynamic_range_propagation=self.dynamic_range_propagation,
        )
        if (
            self.recompute_threshold is not None
            and self.index.exception_rate > self.recompute_threshold
        ):
            self.index.rebuild()
            self.recompute_count += 1

    def detach(self) -> None:
        """Stop maintaining the index."""
        self.table.remove_update_hook(self._on_update)


class PartitionedPatchIndex:
    """Partition-local PatchIndexes presented as one table-level index.

    RowIDs are global (partition offsets added), so the combined patch
    mask aligns with the global rowIDs a partitioned Scan emits.
    """

    def __init__(
        self,
        table: PartitionedTable,
        parts: List[MaintainedIndex],
        pool: Optional[ParallelBulkDeleter] = None,
    ) -> None:
        self.table = table
        self.parts = parts
        #: delete+condense pool shared by every partition-local index
        self._pool = pool

    @property
    def column(self) -> str:
        return self.parts[0].index.column

    @property
    def constraint(self) -> Constraint:
        return self.parts[0].index.constraint

    @property
    def design(self) -> str:
        return self.parts[0].index.design

    @property
    def num_rows(self) -> int:
        return sum(p.index.num_rows for p in self.parts)

    @property
    def num_patches(self) -> int:
        return sum(p.index.num_patches for p in self.parts)

    @property
    def exception_rate(self) -> float:
        rows = self.num_rows
        return self.num_patches / rows if rows else 0.0

    def patch_mask(self) -> np.ndarray:
        """Global-rowID-aligned concatenation of the partition masks."""
        return np.concatenate([p.index.patch_mask() for p in self.parts])

    def patch_rowids(self) -> np.ndarray:
        offsets = self.table.partition_offsets()
        return np.concatenate(
            [p.index.patch_rowids() + offsets[i] for i, p in enumerate(self.parts)]
        )

    def memory_bytes(self) -> int:
        return sum(p.index.memory_bytes() for p in self.parts)

    def condense(self) -> None:
        """Condense every partition-local index (§4.2.4)."""
        for p in self.parts:
            p.index.condense()

    def verify(self) -> bool:
        return all(p.index.verify() for p in self.parts)

    def detach(self) -> None:
        for p in self.parts:
            p.detach()
            p.index.close()  # releases partition-owned pools (no-op for shared)
        if self._pool is not None:
            self._pool.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartitionedPatchIndex({self.table.name}.{self.column}, "
            f"parts={len(self.parts)}, e={self.exception_rate:.4f})"
        )


class PatchIndexManager:
    """Creates, registers and drops maintained PatchIndexes."""

    def __init__(self, catalog: Optional[Catalog] = None) -> None:
        self.catalog = catalog
        self._indexes: Dict[Tuple[str, str], object] = {}

    def create(
        self,
        table,
        column: str,
        constraint: Constraint,
        design: str = BITMAP_DESIGN,
        shard_bits: int = DEFAULT_SHARD_BITS,
        parallel_deletes: bool = False,
        parallelism: int = 1,
        condense_threshold: Optional[float] = None,
        dynamic_range_propagation: bool = True,
        recompute_threshold: Optional[float] = None,
    ):
        """Build and attach a PatchIndex; returns the queryable index.

        For a partitioned table this creates one index per partition
        (partition-local discovery, §3.2) and returns the combined
        :class:`PartitionedPatchIndex`; otherwise the bare
        :class:`~repro.core.patchindex.PatchIndex` is returned.
        ``parallelism`` and ``condense_threshold`` configure the
        maintenance pool and auto-condense of every created index (the
        same knob semantics as :class:`~repro.core.patchindex.PatchIndex`).
        """
        key = (table.name, column)
        if key in self._indexes:
            raise ValueError(f"PatchIndex on {table.name}.{column} already exists")
        validate_parallelism(parallelism)
        if isinstance(table, PartitionedTable):
            # one delete+condense pool shared by all partition-local
            # indexes — parallelism bounds the table's worker threads,
            # not each partition's
            pool = (
                ParallelBulkDeleter(max_workers=parallelism)
                if parallelism > 1
                else None
            )
            parts = [
                MaintainedIndex(
                    PatchIndex(
                        part, column, _clone_constraint(constraint),
                        design=design, shard_bits=shard_bits,
                        parallel_deletes=parallel_deletes,
                        condense_threshold=condense_threshold,
                        maintenance_pool=pool,
                    ),
                    part,
                    dynamic_range_propagation=dynamic_range_propagation,
                    recompute_threshold=recompute_threshold,
                )
                for part in table.partitions
            ]
            handle: object = PartitionedPatchIndex(table, parts, pool=pool)
        else:
            maintained = MaintainedIndex(
                PatchIndex(
                    table, column, constraint,
                    design=design, shard_bits=shard_bits,
                    parallel_deletes=parallel_deletes,
                    parallelism=parallelism,
                    condense_threshold=condense_threshold,
                ),
                table,
                dynamic_range_propagation=dynamic_range_propagation,
                recompute_threshold=recompute_threshold,
            )
            handle = _SingleIndexHandle(maintained)
        self._indexes[key] = handle
        if self.catalog is not None:
            self.catalog.add_structure(STRUCTURE_KIND, table.name, column, handle)
        return handle

    def get(self, table_name: str, column: str):
        """Look a maintained index up, or None."""
        return self._indexes.get((table_name, column))

    def drop(self, table_name: str, column: str) -> None:
        """Detach and forget an index."""
        handle = self._indexes.pop((table_name, column), None)
        if handle is not None:
            handle.detach()
        if self.catalog is not None:
            self.catalog.remove_structure(STRUCTURE_KIND, table_name, column)

    def indexes(self) -> List[object]:
        """All maintained index handles."""
        return list(self._indexes.values())


class _SingleIndexHandle:
    """Uniform facade over a single maintained index."""

    def __init__(self, maintained: MaintainedIndex) -> None:
        self._maintained = maintained

    @property
    def index(self) -> PatchIndex:
        return self._maintained.index

    @property
    def column(self) -> str:
        return self._maintained.index.column

    @property
    def constraint(self) -> Constraint:
        return self._maintained.index.constraint

    @property
    def design(self) -> str:
        return self._maintained.index.design

    @property
    def num_rows(self) -> int:
        return self._maintained.index.num_rows

    @property
    def num_patches(self) -> int:
        return self._maintained.index.num_patches

    @property
    def exception_rate(self) -> float:
        return self._maintained.index.exception_rate

    @property
    def constant_value(self):
        return self._maintained.index.constant_value

    def patch_mask(self) -> np.ndarray:
        return self._maintained.index.patch_mask()

    def patch_rowids(self) -> np.ndarray:
        return self._maintained.index.patch_rowids()

    def is_patch(self, rowid: int) -> bool:
        return self._maintained.index.is_patch(rowid)

    def memory_bytes(self) -> int:
        return self._maintained.index.memory_bytes()

    def condense(self) -> None:
        self._maintained.index.condense()

    def verify(self) -> bool:
        return self._maintained.index.verify()

    def detach(self) -> None:
        self._maintained.detach()
        self._maintained.index.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return repr(self._maintained.index)


def _clone_constraint(constraint: Constraint) -> Constraint:
    """Fresh constraint instance per partition (NSC carries state)."""
    if hasattr(constraint, "ascending"):
        return type(constraint)(ascending=constraint.ascending)  # type: ignore[call-arg]
    return type(constraint)()
