"""Approximate constraint definitions (paper §3.1).

A constraint couples discovery with the per-statement maintenance
semantics of Table 1.  New constraint kinds plug in by subclassing
:class:`Constraint` (the expandability path of §5.5): implement the
initial fill plus insert/modify behaviour; delete handling is generic
(drop tracking information) and lives in the PatchIndex itself.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.discovery import discover_nsc_patches, discover_nuc_patches
from repro.core.lis import longest_sorted_subsequence

__all__ = [
    "Constraint",
    "NearlyUniqueColumn",
    "NearlySortedColumn",
    "NearlyConstantColumn",
]


class Constraint:
    """Interface for approximate constraints maintained by a PatchIndex."""

    #: short tag used in catalogs and reports ("nuc", "nsc", ...)
    kind: str = "abstract"

    def initial_patches(self, values: np.ndarray) -> np.ndarray:
        """Minimal patch rowIDs for a freshly indexed column."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable constraint description."""
        raise NotImplementedError


class NearlyUniqueColumn(Constraint):
    """NUC: all values distinct, except the patches."""

    kind = "nuc"

    def initial_patches(self, values: np.ndarray) -> np.ndarray:
        return discover_nuc_patches(values)

    def describe(self) -> str:
        return "nearly unique column"


class NearlySortedColumn(Constraint):
    """NSC: values sorted (non-decreasing/non-increasing), except patches.

    Carries the per-index state the insert handler needs: the boundary
    value of the materialized sorted subsequence (§5.1).
    """

    kind = "nsc"

    def __init__(self, ascending: bool = True) -> None:
        self.ascending = ascending

    def initial_patches(self, values: np.ndarray) -> np.ndarray:
        patches, _ = discover_nsc_patches(values, self.ascending)
        return patches

    def initial_patches_with_state(
        self, values: np.ndarray
    ) -> Tuple[np.ndarray, Optional[object]]:
        """Patches plus the last value of the kept sorted run."""
        return discover_nsc_patches(values, self.ascending)

    def extend_sorted_run(
        self, inserted: np.ndarray, last_value: Optional[object]
    ) -> Tuple[np.ndarray, Optional[object]]:
        """Local extension of the sorted run over inserted values (§5.1).

        Only values beyond ``last_value`` may extend the run; among them a
        longest sorted subsequence is kept.  Returns the positions (into
        ``inserted``) that join the run and the new boundary value.  The
        globally longest subsequence may be lost — the accepted
        optimality trade-off of §5.1.
        """
        n = len(inserted)
        if n == 0:
            return np.zeros(0, dtype=np.int64), last_value
        if last_value is None:
            eligible = np.arange(n, dtype=np.int64)
        elif self.ascending:
            eligible = np.flatnonzero(inserted >= last_value).astype(np.int64)
        else:
            eligible = np.flatnonzero(inserted <= last_value).astype(np.int64)
        if len(eligible) == 0:
            return np.zeros(0, dtype=np.int64), last_value
        keep_local = longest_sorted_subsequence(inserted[eligible], self.ascending)
        keep = eligible[keep_local]
        new_last = inserted[keep[-1]] if len(keep) else last_value
        return keep, new_last

    def describe(self) -> str:
        direction = "ascending" if self.ascending else "descending"
        return f"nearly sorted column ({direction})"


class NearlyConstantColumn(Constraint):
    """NCC: all values equal one constant, except the patches.

    The "approximate constancy of column values" the paper names as
    future work (§7), implemented through the §5.5 expandability recipe:
    a constraint-specific initial fill plus insert/modify semantics (any
    touched tuple whose value differs from the constant is a patch),
    while delete handling is the generic drop-tracking path.
    """

    kind = "ncc"

    def initial_patches(self, values: np.ndarray) -> np.ndarray:
        patches, _ = self.initial_patches_with_state(values)
        return patches

    def initial_patches_with_state(
        self, values: np.ndarray
    ) -> Tuple[np.ndarray, Optional[object]]:
        """Minimal patches: everything that differs from the mode."""
        if len(values) == 0:
            return np.zeros(0, dtype=np.int64), None
        uniq, counts = np.unique(values, return_counts=True)
        constant = uniq[int(np.argmax(counts))]
        patches = np.flatnonzero(values != constant).astype(np.int64)
        return patches, constant

    def violating(self, values: np.ndarray, constant: Optional[object]) -> np.ndarray:
        """Positions (into ``values``) violating the constant."""
        if constant is None:
            return np.arange(len(values), dtype=np.int64)
        return np.flatnonzero(values != constant).astype(np.int64)

    def describe(self) -> str:
        return "nearly constant column"
