"""PatchIndex core: approximate constraints, discovery and maintenance.

This package implements the paper's primary contribution: the
:class:`~repro.core.patchindex.PatchIndex` materializes the set of
exceptions ("patches") to an approximate constraint — a nearly unique
column (NUC) or nearly sorted column (NSC) — and keeps that set correct
under inserts, modifies and deletes without index recomputation or full
table scans (§5).
"""

from repro.core.constraints import (
    Constraint,
    NearlyConstantColumn,
    NearlySortedColumn,
    NearlyUniqueColumn,
)
from repro.core.discovery import discover_nsc_patches, discover_nuc_patches
from repro.core.lis import longest_sorted_subsequence
from repro.core.patchindex import (
    BITMAP_DESIGN,
    IDENTIFIER_DESIGN,
    PatchIndex,
)
from repro.core.manager import PatchIndexManager, PartitionedPatchIndex

__all__ = [
    "Constraint",
    "NearlyUniqueColumn",
    "NearlySortedColumn",
    "NearlyConstantColumn",
    "discover_nuc_patches",
    "discover_nsc_patches",
    "longest_sorted_subsequence",
    "PatchIndex",
    "BITMAP_DESIGN",
    "IDENTIFIER_DESIGN",
    "PatchIndexManager",
    "PartitionedPatchIndex",
]
