"""The PatchIndex structure (paper §3.2/§4) in both designs.

A PatchIndex materializes the rowIDs violating an approximate constraint
on one column.  Two designs are implemented, matching the paper:

* **bitmap-based** (dense): one bit per tuple in a
  :class:`~repro.bitmap.sharded.ShardedBitmap`; constant memory
  (t/8 · 1.0039 bytes) and cheap bulk deletes.
* **identifier-based** (sparse): a sorted array of 64-bit rowIDs; memory
  grows linearly with the exception rate (e · t · 8 bytes), so the
  bitmap wins for e > 1/64 ≈ 1.56 % (§3.2, Table 3).

The index exposes the maintenance primitives §5 needs — grow with the
table, add patches, drop deleted rows — while the constraint-specific
logic lives in :mod:`repro.core.updates`.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.bitmap import ParallelBulkDeleter, ShardedBitmap
from repro.bitmap.sharded import DEFAULT_SHARD_BITS
from repro.core.constraints import (
    Constraint,
    NearlyConstantColumn,
    NearlySortedColumn,
)
from repro.engine.parallel import validate_parallelism

__all__ = ["PatchIndex", "BITMAP_DESIGN", "IDENTIFIER_DESIGN"]

BITMAP_DESIGN = "bitmap"
IDENTIFIER_DESIGN = "identifier"


class PatchIndex:
    """Materialized exception set for an approximate constraint.

    Parameters
    ----------
    table:
        The (partition-local) table the index covers.
    column:
        Indexed column name.
    constraint:
        The approximate constraint (NUC/NSC instance).
    design:
        ``"bitmap"`` or ``"identifier"``.
    shard_bits:
        Shard size of the backing sharded bitmap (bitmap design only).
    parallel_deletes:
        Use the thread-pool bulk-delete executor for the sharded bitmap
        (worker count = CPU count; legacy boolean knob).
    parallelism:
        Worker count for the index's shard-local maintenance: bulk
        deletes *and* condense run on one shared
        :class:`~repro.bitmap.parallel.ShardTaskPool` of this size.
        ``1`` (the default) keeps maintenance serial; must be a positive
        integer.  The pool is owned by the index; :meth:`close` releases
        it.
    condense_threshold:
        Forwarded to the backing sharded bitmap: auto-condense once the
        lost-bit fraction strictly exceeds this value (§4.2.4).
    maintenance_pool:
        An externally owned delete+condense pool to use instead of
        creating one (the manager injects a single pool shared by all
        partition-local indexes of one table); overrides ``parallelism``
        and is never closed by this index.
    """

    def __init__(
        self,
        table,
        column: str,
        constraint: Constraint,
        design: str = BITMAP_DESIGN,
        shard_bits: int = DEFAULT_SHARD_BITS,
        parallel_deletes: bool = False,
        parallelism: int = 1,
        condense_threshold: Optional[float] = None,
        maintenance_pool: Optional[ParallelBulkDeleter] = None,
        build: bool = True,
    ) -> None:
        if design not in (BITMAP_DESIGN, IDENTIFIER_DESIGN):
            raise ValueError(f"unknown design {design!r}")
        parallelism = validate_parallelism(parallelism)
        self.table = table
        self.column = column
        self.constraint = constraint
        self.design = design
        self._shard_bits = shard_bits
        self._num_rows = table.num_rows
        self._condense_threshold = condense_threshold
        self._bitmap: Optional[ShardedBitmap] = None
        self._ids: Optional[np.ndarray] = None
        self._owns_deleter = maintenance_pool is None
        if maintenance_pool is not None:
            self._deleter: Optional[ParallelBulkDeleter] = maintenance_pool
        elif parallelism > 1:
            self._deleter = ParallelBulkDeleter(max_workers=parallelism)
        elif parallel_deletes:
            self._deleter = ParallelBulkDeleter()
        else:
            self._deleter = None
        #: boundary value of the kept sorted run (NSC state, §5.1)
        self.last_sorted_value: Optional[object] = None
        #: the dominating value (NCC state, §5.5 extension)
        self.constant_value: Optional[object] = None
        if build:
            self.rebuild()
        else:
            self._init_storage(np.zeros(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # build / rebuild
    # ------------------------------------------------------------------
    def _init_storage(self, patches: np.ndarray) -> None:
        if self.design == BITMAP_DESIGN:
            self._bitmap = ShardedBitmap(
                self._num_rows,
                shard_bits=self._shard_bits,
                condense_threshold=self._condense_threshold,
                condense_executor=self._deleter,
            )
            self._bitmap.set_many(patches)
            self._ids = None
        else:
            self._ids = np.sort(np.asarray(patches, dtype=np.int64))
            self._bitmap = None

    def rebuild(self) -> None:
        """Recompute the patch set from scratch (constraint discovery)."""
        values = self.table.column(self.column)
        self._num_rows = len(values)
        if isinstance(self.constraint, NearlySortedColumn):
            patches, last = self.constraint.initial_patches_with_state(values)
            self.last_sorted_value = last
        elif isinstance(self.constraint, NearlyConstantColumn):
            patches, constant = self.constraint.initial_patches_with_state(values)
            self.constant_value = constant
        else:
            patches = self.constraint.initial_patches(values)
        self._init_storage(patches)

    # ------------------------------------------------------------------
    # read interface (used by the PatchIndex scan)
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Tuples the index currently covers."""
        return self._num_rows

    @property
    def num_patches(self) -> int:
        """Number of exceptions."""
        if self._bitmap is not None:
            return self._bitmap.count()
        return len(self._ids)

    @property
    def exception_rate(self) -> float:
        """Exceptions relative to the covered tuples (the paper's *e*)."""
        return self.num_patches / self._num_rows if self._num_rows else 0.0

    def patch_mask(self) -> np.ndarray:
        """Boolean array over rowIDs: True where the tuple is a patch."""
        if self._bitmap is not None:
            return self._bitmap.to_bool_array()
        mask = np.zeros(self._num_rows, dtype=bool)
        mask[self._ids] = True
        return mask

    def patch_rowids(self) -> np.ndarray:
        """Sorted patch rowIDs."""
        if self._bitmap is not None:
            return self._bitmap.positions()
        return self._ids.copy()

    def is_patch(self, rowid: int) -> bool:
        """Whether a single rowID is an exception."""
        if self._bitmap is not None:
            return self._bitmap.get(rowid)
        pos = np.searchsorted(self._ids, rowid)
        return bool(pos < len(self._ids) and self._ids[pos] == rowid)

    # ------------------------------------------------------------------
    # maintenance primitives (§5)
    # ------------------------------------------------------------------
    def extend_rows(self, count: int) -> None:
        """Grow the covered rowID space after an insert statement."""
        if count < 0:
            raise ValueError("cannot extend by a negative row count")
        self._num_rows += count
        if self._bitmap is not None:
            self._bitmap.extend(count)

    def add_patches(self, rowids: Iterable[int]) -> None:
        """Mark rowIDs as exceptions (idempotent)."""
        rowids = np.asarray(
            rowids if isinstance(rowids, np.ndarray) else list(rowids), dtype=np.int64
        )
        if len(rowids) == 0:
            return
        if rowids.min() < 0 or rowids.max() >= self._num_rows:
            raise IndexError("patch rowid out of range")
        if self._bitmap is not None:
            self._bitmap.set_many(rowids)
        else:
            merged = np.union1d(self._ids, rowids)
            self._ids = merged.astype(np.int64)

    def remove_rows(self, rowids: np.ndarray) -> None:
        """Drop tracking information for deleted tuples (§5.3).

        ``rowids`` are pre-statement positions; subsequent rowIDs shift
        down.  The bitmap design delegates to the sharded bitmap's bulk
        delete; the identifier design removes deleted entries and
        decrements identifiers by the number of deleted smaller rowIDs.
        """
        rowids = np.unique(np.asarray(rowids, dtype=np.int64))
        if len(rowids) == 0:
            return
        if rowids[0] < 0 or rowids[-1] >= self._num_rows:
            raise IndexError("rowid out of range")
        if self._bitmap is not None:
            self._bitmap.bulk_delete(rowids, executor=self._deleter)
        else:
            keep = self._ids[~np.isin(self._ids, rowids)]
            shift = np.searchsorted(rowids, keep, side="left")
            self._ids = (keep - shift).astype(np.int64)
        self._num_rows -= len(rowids)

    def condense(self) -> None:
        """Repack the backing bitmap, reclaiming lost bits (§4.2.4).

        Runs shard-local repacks on the index's maintenance pool when a
        ``parallelism`` > 1 was configured (the bitmap carries the pool
        as its condense executor); a no-op for the identifier design,
        which has no lost capacity.
        """
        if self._bitmap is not None:
            self._bitmap.condense()

    def close(self) -> None:
        """Release the maintenance worker pool, if this index owns one.

        Safe to call anytime: the pool recreates its threads lazily if
        maintenance continues afterwards.  Injected (shared) pools are
        left untouched — their owner closes them.
        """
        if self._deleter is not None and self._owns_deleter:
            self._deleter.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Memory held by the patch storage (Table 3)."""
        if self._bitmap is not None:
            return self._bitmap.memory_bytes()
        return self._ids.nbytes

    def verify(self) -> bool:
        """Check the core invariant: excluding patches satisfies the
        constraint (test/debug helper; scans the full column)."""
        values = self.table.column(self.column)
        if len(values) != self._num_rows:
            return False
        mask = self.patch_mask()
        kept = values[~mask]
        if self.constraint.kind == "nuc":
            # Strong invariant of the distinct rewrite: every kept value
            # occurs exactly once in the whole column, i.e. kept values
            # are unique and disjoint from patch values.
            if len(np.unique(kept)) != len(kept):
                return False
            patch_values = values[mask]
            return not bool(np.isin(kept, patch_values).any())
        if self.constraint.kind == "nsc":
            if len(kept) <= 1:
                return True
            asc = getattr(self.constraint, "ascending", True)
            pairs_ok = kept[1:] >= kept[:-1] if asc else kept[1:] <= kept[:-1]
            return bool(np.all(pairs_ok))
        if self.constraint.kind == "ncc":
            if len(kept) == 0:
                return True
            return bool(np.all(kept == self.constant_value))
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PatchIndex({self.table.name}.{self.column}, "
            f"{self.constraint.kind}, {self.design}, "
            f"e={self.exception_rate:.4f})"
        )
