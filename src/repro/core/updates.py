"""Update-query handling for PatchIndexes (paper §5, Table 1).

The handlers keep the invariant *"the index holds all exceptions to the
constraint"* under inserts, modifies and deletes while avoiding both a
full index recomputation and a full table scan:

* **NUC insert/modify** — run the insert-handling join of Figure 5: the
  touched tuples (scanned from the statement's positional deltas) are
  joined against the current table image; dynamic range propagation
  restricts the table scan to blocks overlapping the touched values.
  The rowIDs of *both* join sides of every collision are merged into
  the patches, so duplicated values never appear in the non-patch flow.
* **NSC insert** — extend the materialized sorted run with a longest
  sorted subsequence over the inserted values beyond the run's boundary
  value; the rest of the inserted tuples become patches.
* **NSC modify** — all modified tuples become patches (they may break
  the sorted run).
* **delete** (both) — drop the tracking information; the sharded
  bitmap's bulk delete (or identifier decrementing) realigns rowIDs.
  With a PatchIndex ``parallelism`` > 1 the shard-local shifts run on
  the index's maintenance pool, and a configured ``condense_threshold``
  may trigger an (equally shard-parallel) condense afterwards (§4.2.4).

Constraints may thereby *become* approximate over time even when they
were perfect at definition time, instead of aborting the update.
"""

from __future__ import annotations

import numpy as np

from repro.core.constraints import (
    NearlyConstantColumn,
    NearlySortedColumn,
    NearlyUniqueColumn,
)
from repro.core.patchindex import PatchIndex
from repro.engine.batch import ROWID, Relation
from repro.engine.operators import HashJoin, RelationSource, Scan
from repro.storage.pdt import UpdateEvent

__all__ = ["apply_update", "nuc_collision_patches"]


def apply_update(index: PatchIndex, table, event: UpdateEvent,
                 dynamic_range_propagation: bool = True) -> None:
    """Maintain ``index`` for one update statement on its table."""
    if event.kind == "delete":
        index.remove_rows(event.rowids)
        return
    constraint = index.constraint
    if isinstance(constraint, NearlyUniqueColumn):
        _handle_nuc(index, table, event, dynamic_range_propagation)
    elif isinstance(constraint, NearlySortedColumn):
        _handle_nsc(index, table, event)
    elif isinstance(constraint, NearlyConstantColumn):
        _handle_ncc(index, table, event)
    else:
        raise TypeError(
            f"no update handler for constraint {type(constraint).__name__}; "
            "extend repro.core.updates (§5.5)"
        )


# ----------------------------------------------------------------------
# nearly unique columns
# ----------------------------------------------------------------------
def _handle_nuc(index: PatchIndex, table, event: UpdateEvent,
                drp: bool) -> None:
    if index.column not in event.values:
        if event.kind == "insert":
            raise KeyError(f"insert event lacks column {index.column!r}")
        return  # modify that does not touch the indexed column
    touched_values = np.asarray(event.values[index.column])
    if event.kind == "insert":
        index.extend_rows(len(event.rowids))
    if len(touched_values) == 0:
        return
    matched_rowids = _collision_join(index, table, touched_values, drp)
    new_patches = nuc_collision_patches(
        table.column(index.column), matched_rowids, index.patch_mask()
    )
    index.add_patches(new_patches)


def _collision_join(index: PatchIndex, table, touched_values: np.ndarray,
                    drp: bool) -> np.ndarray:
    """Figure 5: join touched tuples with the table, project rowIDs.

    The build side is the (small) set of touched values; with dynamic
    range propagation their [min, max] range prunes the table scan via
    minmax summaries before it runs.
    """
    build = RelationSource(
        Relation({index.column: np.unique(touched_values)}), name="delta"
    )
    probe = Scan(table, columns=[index.column], with_rowids=True)
    join = HashJoin(
        build,
        probe,
        index.column,
        index.column,
        build_side="left",
        dynamic_range_propagation=drp,
    )
    matched = join.execute()
    return np.unique(matched.column(ROWID))


def nuc_collision_patches(
    column_values: np.ndarray,
    candidate_rowids: np.ndarray,
    patch_mask: np.ndarray,
) -> np.ndarray:
    """New patches among candidate rowIDs sharing a column value.

    Every candidate whose value group has two or more members becomes a
    patch (both join sides of Figure 5); candidates that matched only
    themselves stay non-patches.  A value group containing an existing
    patch is by construction non-unique, so its other members also
    become patches.  Existing patches never leave the patch set.
    """
    if len(candidate_rowids) == 0:
        return np.zeros(0, dtype=np.int64)
    values = column_values[candidate_rowids]
    is_patch = patch_mask[candidate_rowids]
    _, codes, counts = np.unique(values, return_inverse=True, return_counts=True)
    colliding = counts[codes] > 1
    new_patch_sel = colliding & ~is_patch
    return np.sort(candidate_rowids[new_patch_sel]).astype(np.int64)


# ----------------------------------------------------------------------
# nearly sorted columns
# ----------------------------------------------------------------------
def _handle_nsc(index: PatchIndex, table, event: UpdateEvent) -> None:
    constraint: NearlySortedColumn = index.constraint  # type: ignore[assignment]
    if event.kind == "insert":
        inserted = np.asarray(event.values[index.column])
        index.extend_rows(len(event.rowids))
        keep_local, new_last = constraint.extend_sorted_run(
            inserted, index.last_sorted_value
        )
        keep_mask = np.zeros(len(inserted), dtype=bool)
        keep_mask[keep_local] = True
        index.add_patches(np.asarray(event.rowids)[~keep_mask])
        index.last_sorted_value = new_last
        return
    if event.kind == "modify":
        if index.column not in event.values:
            return  # indexed column untouched: sorted run unaffected
        index.add_patches(event.rowids)


# ----------------------------------------------------------------------
# nearly constant columns (§5.5 / §7 extension)
# ----------------------------------------------------------------------
def _handle_ncc(index: PatchIndex, table, event: UpdateEvent) -> None:
    """Tuples whose value differs from the constant become patches.

    A purely local decision per touched tuple — no join, no table scan;
    the cheapest maintenance path of the three constraints.
    """
    constraint: NearlyConstantColumn = index.constraint  # type: ignore[assignment]
    if index.column not in event.values:
        if event.kind == "insert":
            raise KeyError(f"insert event lacks column {index.column!r}")
        return
    touched = np.asarray(event.values[index.column])
    rowids = np.asarray(event.rowids)
    if event.kind == "insert":
        index.extend_rows(len(rowids))
        if index.constant_value is None and len(touched):
            # first tuples define the constant
            _, constant = constraint.initial_patches_with_state(touched)
            index.constant_value = constant
    bad_local = constraint.violating(touched, index.constant_value)
    index.add_patches(rowids[bad_local])
