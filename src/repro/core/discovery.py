"""Minimal patch-set discovery for NUC and NSC (paper §3.1, from [18]).

Discovery determines the minimal set of rowIDs that makes the
PatchIndex query plans of §3.3 correct:

* **NUC** — every tuple whose value occurs more than once is a patch.
  Excluding the patches leaves only globally unique values, so the
  distinct plan of Figure 2 can combine the (aggregation-free) non-patch
  flow with the aggregated patch flow using a plain Union: the two value
  sets are disjoint.  This matches §5.1, where an insert collision turns
  *both* join sides into patches.
* **NSC** — the complement of a longest sorted subsequence.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.lis import longest_sorted_subsequence

__all__ = ["discover_nuc_patches", "discover_nsc_patches"]


def discover_nuc_patches(values: np.ndarray) -> np.ndarray:
    """RowIDs of all tuples whose value is not globally unique.

    Returns sorted patch rowIDs; excluding them leaves only values that
    occur exactly once in the column, and the patch/non-patch value sets
    are disjoint (the invariant the distinct rewrite relies on).
    """
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    _, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
    return np.flatnonzero(counts[inverse] > 1).astype(np.int64)


def discover_nsc_patches(
    values: np.ndarray, ascending: bool = True
) -> Tuple[np.ndarray, object]:
    """RowIDs violating sortedness, plus the sorted run's boundary value.

    Returns ``(patches, last_value)`` where ``last_value`` is the final
    (largest for ascending, smallest for descending) value of the kept
    sorted subsequence — the state the insert handler extends from
    (§5.1).  ``last_value`` is None for an empty column.
    """
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.int64), None
    keep = longest_sorted_subsequence(values, ascending)
    mask = np.ones(n, dtype=bool)
    mask[keep] = False
    patches = np.flatnonzero(mask).astype(np.int64)
    last_value = values[keep[-1]] if len(keep) else None
    return patches, last_value
