"""Sharded bitmap — the update-conscious bitmap of the paper (§4).

The bitmap is virtually divided into shards of ``shard_bits`` bits.  Each
shard stores a 64-bit *start value*: the logical index of the first bit
in the shard (the paper's analogue of UpBit's fence pointers).  Deleting
a bit then only shifts bits *within* one shard and decrements the start
values of subsequent shards; the bit at the end of the shard is lost
(tracked in ``lost``) until a :meth:`ShardedBitmap.condense` repacks the
structure.

Logical positions index the bitmap as if it were flat: after deleting
position ``p``, the former position ``p + 1`` becomes position ``p``,
exactly matching positional rowIDs in a column store.

Memory overhead of sharding is one 64-bit start value per shard, i.e.
``64 / shard_bits`` (0.39 % at the paper's chosen ``shard_bits = 2**14``).
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional

import numpy as np

from repro.bitmap import kernels
from repro.bitmap.kernels import WORD_BITS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bitmap.parallel import ShardTaskPool

__all__ = ["ShardedBitmap", "DEFAULT_SHARD_BITS"]

#: Shard size chosen in the paper's Figure 6 evaluation (2^14 bits).
DEFAULT_SHARD_BITS = 1 << 14

ShiftKernel = Callable[[np.ndarray, int, int], None]


class ShardedBitmap:
    """Growable bitmap with shard-local delete support.

    Parameters
    ----------
    length:
        Initial number of logical bits (all zero).
    shard_bits:
        Shard size in bits; must be a positive multiple of 64.  Powers of
        two allow the fast initial shard guess of §4.2.1.
    condense_threshold:
        If not ``None``, :meth:`bulk_delete` and :meth:`delete` trigger an
        automatic :meth:`condense` once the fraction of lost bits
        strictly exceeds this threshold (lost bits *at* the threshold do
        not condense).
    condense_executor:
        Optional :class:`~repro.bitmap.parallel.ShardTaskPool` used by
        :meth:`condense` (including auto-condense) to repack shards in
        parallel; ``None`` keeps condense serial.
    """

    def __init__(
        self,
        length: int = 0,
        shard_bits: int = DEFAULT_SHARD_BITS,
        condense_threshold: Optional[float] = None,
        condense_executor: Optional["ShardTaskPool"] = None,
    ) -> None:
        if length < 0:
            raise ValueError("bitmap length must be non-negative")
        if shard_bits <= 0 or shard_bits % WORD_BITS:
            raise ValueError("shard_bits must be a positive multiple of 64")
        self._shard_bits = shard_bits
        is_pow2 = shard_bits & (shard_bits - 1) == 0
        self._shard_shift = shard_bits.bit_length() - 1 if is_pow2 else None
        self._words_per_shard = shard_bits // WORD_BITS
        self._length = length
        self._condense_threshold = condense_threshold
        self.condense_executor = condense_executor
        nshards = max(1, (length + shard_bits - 1) // shard_bits)
        self._words = np.zeros(nshards * self._words_per_shard, dtype=np.uint64)
        self._starts = (np.arange(nshards, dtype=np.int64) * shard_bits)
        self._lost = np.zeros(nshards, dtype=np.int64)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_positions(
        cls,
        positions: Iterable[int],
        length: int,
        shard_bits: int = DEFAULT_SHARD_BITS,
        condense_threshold: Optional[float] = None,
        condense_executor: Optional["ShardTaskPool"] = None,
    ) -> "ShardedBitmap":
        """Build a bitmap of ``length`` bits with the given positions set."""
        bm = cls(
            length,
            shard_bits=shard_bits,
            condense_threshold=condense_threshold,
            condense_executor=condense_executor,
        )
        bm.set_many(positions)
        return bm

    @classmethod
    def from_bool_array(
        cls,
        bits: np.ndarray,
        shard_bits: int = DEFAULT_SHARD_BITS,
        condense_threshold: Optional[float] = None,
        condense_executor: Optional["ShardTaskPool"] = None,
    ) -> "ShardedBitmap":
        """Build a bitmap from a boolean mask."""
        bits = np.asarray(bits, dtype=bool)
        bm = cls(
            len(bits),
            shard_bits=shard_bits,
            condense_threshold=condense_threshold,
            condense_executor=condense_executor,
        )
        bm.set_many(np.flatnonzero(bits))
        return bm

    # ------------------------------------------------------------------
    # shard geometry
    # ------------------------------------------------------------------
    @property
    def shard_bits(self) -> int:
        """Shard size in bits."""
        return self._shard_bits

    @property
    def num_shards(self) -> int:
        """Number of (virtual) shards currently allocated."""
        return len(self._starts)

    def __len__(self) -> int:
        return self._length

    def _shard_bit_count(self, shard: int) -> int:
        """Number of logical bits currently held by ``shard``."""
        if shard + 1 < len(self._starts):
            return int(self._starts[shard + 1] - self._starts[shard])
        return self._length - int(self._starts[shard])

    def _shard_capacity(self, shard: int) -> int:
        """Bits the shard can hold (shard size minus lost bits)."""
        return self._shard_bits - int(self._lost[shard])

    def _locate(self, pos: int) -> int:
        """Return the shard containing logical position ``pos`` (§4.2.1).

        The initial guess ``pos >> log2(shard_bits)`` is a lower bound
        because start values only ever decrease; forward probing over the
        next start values finds the true shard.
        """
        if self._shard_shift is not None:
            shard = pos >> self._shard_shift
        else:
            shard = pos // self._shard_bits
        if shard >= len(self._starts):
            shard = len(self._starts) - 1
        starts = self._starts
        n = len(starts)
        while shard + 1 < n and starts[shard + 1] <= pos:
            shard += 1
        return shard

    def _check(self, pos: int) -> None:
        if not 0 <= pos < self._length:
            raise IndexError(f"bit position {pos} out of range [0, {self._length})")

    def _shard_words(self, shard: int) -> np.ndarray:
        lo = shard * self._words_per_shard
        return self._words[lo : lo + self._words_per_shard]

    # ------------------------------------------------------------------
    # bit access (§4.2.1)
    # ------------------------------------------------------------------
    def get(self, pos: int) -> bool:
        """Return the bit at logical position ``pos``."""
        self._check(pos)
        shard = self._locate(pos)
        offset = pos - int(self._starts[shard])
        return kernels.get_bit(self._shard_words(shard), offset)

    def set(self, pos: int) -> None:
        """Set the bit at logical position ``pos`` to 1."""
        self._check(pos)
        shard = self._locate(pos)
        offset = pos - int(self._starts[shard])
        kernels.set_bit(self._shard_words(shard), offset)

    def unset(self, pos: int) -> None:
        """Set the bit at logical position ``pos`` to 0."""
        self._check(pos)
        shard = self._locate(pos)
        offset = pos - int(self._starts[shard])
        kernels.clear_bit(self._shard_words(shard), offset)

    def set_many(self, positions: Iterable[int]) -> None:
        """Set many bits at once (used when building the index)."""
        pos = np.asarray(
            positions if isinstance(positions, np.ndarray) else list(positions),
            dtype=np.int64,
        )
        if len(pos) == 0:
            return
        if pos.min() < 0 or pos.max() >= self._length:
            raise IndexError("position out of range")
        shards = np.searchsorted(self._starts, pos, side="right") - 1
        offsets = pos - self._starts[shards]
        word_idx = shards * self._words_per_shard + (offsets >> 6)
        bit_idx = (offsets & 63).astype(np.uint64)
        np.bitwise_or.at(self._words, word_idx, np.uint64(1) << bit_idx)

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def _grow_shard(self) -> None:
        self._words = np.concatenate(
            [self._words, np.zeros(self._words_per_shard, dtype=np.uint64)]
        )
        self._starts = np.append(self._starts, np.int64(self._length))
        self._lost = np.append(self._lost, np.int64(0))

    def append(self, value: bool = False) -> None:
        """Append one bit at the end of the bitmap."""
        last = len(self._starts) - 1
        if self._shard_bit_count(last) >= self._shard_capacity(last):
            self._grow_shard()
            last += 1
        self._length += 1
        if value:
            offset = self._length - 1 - int(self._starts[last])
            kernels.set_bit(self._shard_words(last), offset)

    def extend(self, nbits: int) -> None:
        """Append ``nbits`` zero bits at the end of the bitmap."""
        if nbits < 0:
            raise ValueError("cannot extend by a negative bit count")
        remaining = nbits
        while remaining > 0:
            last = len(self._starts) - 1
            room = self._shard_capacity(last) - self._shard_bit_count(last)
            if room == 0:
                self._grow_shard()
                continue
            take = min(room, remaining)
            self._length += take
            remaining -= take

    # ------------------------------------------------------------------
    # delete (§4.2.2) and bulk delete (§4.2.3)
    # ------------------------------------------------------------------
    def delete(self, pos: int, kernel: ShiftKernel = kernels.shift_down_vectorized) -> None:
        """Delete the bit at ``pos``; subsequent bits shift down by one.

        Three steps, following §4.2.2: (a) locate the shard, (b) shift all
        subsequent bits *within the shard* one position towards the deleted
        bit, (c) decrement the start values of all subsequent shards.
        """
        self._check(pos)
        shard = self._locate(pos)
        offset = pos - int(self._starts[shard])
        nbits = self._shard_bit_count(shard)
        kernel(self._shard_words(shard), offset, nbits)
        if shard + 1 < len(self._starts):
            self._starts[shard + 1 :] -= 1
            self._lost[shard] += 1
        self._length -= 1
        self._maybe_condense()

    def bulk_delete(
        self,
        positions: Iterable[int],
        kernel: ShiftKernel = kernels.shift_down_vectorized,
        executor: Optional["ParallelBulkDeleter"] = None,
    ) -> None:
        """Delete many bits given by their *pre-delete* logical positions.

        Positions are grouped by shard; within a shard they are processed
        in descending order so earlier shifts do not move later targets
        (the order sensitivity of §4.2.3).  Shard-local shifts are
        independent and may run in parallel via ``executor``.  Start
        values are fixed afterwards in a single traversal holding a
        running sum of deletions in preceding shards.
        """
        pos = np.unique(np.asarray(list(positions), dtype=np.int64))
        if len(pos) == 0:
            return
        if pos[0] < 0 or pos[-1] >= self._length:
            raise IndexError("position out of range")
        shards = np.searchsorted(self._starts, pos, side="right") - 1
        offsets = pos - self._starts[shards]
        deleted_per_shard = np.zeros(len(self._starts), dtype=np.int64)

        uniq_shards, first_idx = np.unique(shards, return_index=True)
        tasks = []
        for i, shard in enumerate(uniq_shards):
            lo = first_idx[i]
            hi = first_idx[i + 1] if i + 1 < len(uniq_shards) else len(pos)
            offs_desc = offsets[lo:hi][::-1]
            deleted_per_shard[shard] = hi - lo
            tasks.append((int(shard), offs_desc))

        if executor is not None:
            executor.run(self, tasks, kernel)
        else:
            for shard, offs_desc in tasks:
                self._delete_within_shard(shard, offs_desc, kernel)

        # Single traversal adjusting start values with a running sum
        # (step (c) amortized over the whole bulk, Figure 4).
        preceding = np.cumsum(deleted_per_shard)
        self._starts[1:] -= preceding[:-1]
        self._lost[:-1] += deleted_per_shard[:-1]
        self._length -= len(pos)
        self._maybe_condense()

    def _delete_within_shard(
        self, shard: int, offsets_desc: np.ndarray, kernel: ShiftKernel
    ) -> None:
        """Apply descending-order deletes locally to one shard."""
        words = self._shard_words(shard)
        nbits = self._shard_bit_count(shard)
        for off in offsets_desc:
            kernel(words, int(off), nbits)
            nbits -= 1

    # ------------------------------------------------------------------
    # condense (§4.2.4)
    # ------------------------------------------------------------------
    def lost_bits(self) -> int:
        """Total bits of capacity lost to deletes since the last condense."""
        return int(self._lost.sum())

    def utilization(self) -> float:
        """Fraction of allocated bits that hold logical data."""
        capacity = len(self._starts) * self._shard_bits
        return self._length / capacity if capacity else 1.0

    def condense(self, executor: Optional["ShardTaskPool"] = None) -> None:
        """Repack the bitmap so every shard is full again.

        Shifts data across shard boundaries into the bits lost by previous
        delete operations and resets the start values.  Each post-condense
        shard is filled from a disjoint logical bit range of the old
        layout, so the repack is shard-local and independent: with an
        ``executor`` (or an attached :attr:`condense_executor`) the
        per-shard repacks run on its worker pool, falling back to the
        serial single-pass unpack/repack for small bitmaps.  Both paths
        produce bit-identical words, start values and lost counters.
        """
        if executor is None:
            executor = self.condense_executor
        shard_bits = self._shard_bits
        nshards = max(1, (self._length + shard_bits - 1) // shard_bits)
        words = np.zeros(nshards * self._words_per_shard, dtype=np.uint64)
        if executor is None or nshards < executor.min_shards_for_parallelism:
            self._repack_shard_range(words, 0, nshards)
        else:
            # contiguous shard runs per task: enough tasks to balance,
            # few enough that dispatch overhead stays negligible
            ntasks = min(nshards, executor.max_workers * 4)
            bounds = [nshards * t // ntasks for t in range(ntasks + 1)]
            executor.run_tasks(
                [
                    partial(self._repack_shard_range, words, first, last)
                    for first, last in zip(bounds, bounds[1:])
                    if last > first
                ]
            )
        self._words = words
        self._starts = np.arange(nshards, dtype=np.int64) * shard_bits
        self._lost = np.zeros(nshards, dtype=np.int64)

    def _repack_shard_range(
        self, new_words: np.ndarray, first_shard: int, last_shard: int
    ) -> None:
        """Fill post-condense shards ``[first, last)`` from the old layout.

        Post-condense shards are full and contiguous, and shard size is a
        word multiple, so one pack of the run's logical bit range lands
        word-aligned at the run's base.  Reads only pre-condense state
        and writes only the run's own word slice, so concurrent repacks
        never conflict.
        """
        lo = first_shard * self._shard_bits
        hi = min(last_shard * self._shard_bits, self._length)
        if hi <= lo:
            return
        packed = kernels.bool_to_words(self._logical_bool_range(lo, hi))
        base = first_shard * self._words_per_shard
        new_words[base : base + len(packed)] = packed

    def _logical_bool_range(self, lo: int, hi: int) -> np.ndarray:
        """The logical bits ``[lo, hi)`` as a boolean array."""
        out = np.zeros(max(0, hi - lo), dtype=bool)
        if hi <= lo:
            return out
        shard = self._locate(lo)
        cursor = lo
        while cursor < hi:
            nbits = self._shard_bit_count(shard)
            local = cursor - int(self._starts[shard])
            take = min(hi - cursor, nbits - local)
            if take <= 0:
                shard += 1
                continue
            words = self._shard_words(shard)
            out[cursor - lo : cursor - lo + take] = kernels.words_to_bool(
                words, local + take
            )[local:]
            cursor += take
            shard += 1
        return out

    def _maybe_condense(self) -> None:
        if self._condense_threshold is None:
            return
        capacity = len(self._starts) * self._shard_bits
        if capacity and self.lost_bits() / capacity > self._condense_threshold:
            self.condense()

    # ------------------------------------------------------------------
    # whole-bitmap views
    # ------------------------------------------------------------------
    def to_bool_array(self) -> np.ndarray:
        """Return the logical bitmap as a boolean numpy array."""
        return self._logical_bool_range(0, self._length)

    def positions(self) -> np.ndarray:
        """Return the sorted logical positions of all set bits."""
        return np.flatnonzero(self.to_bool_array()).astype(np.int64)

    def count(self) -> int:
        """Number of set bits."""
        total = 0
        for shard in range(len(self._starts)):
            nbits = self._shard_bit_count(shard)
            if nbits <= 0:
                continue
            nwords = (nbits + WORD_BITS - 1) // WORD_BITS
            words = self._shard_words(shard)[:nwords]
            total += kernels.popcount_words(words)
        return total

    def __iter__(self) -> Iterator[int]:
        return iter(self.positions().tolist())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes of word storage plus shard metadata."""
        return self._words.nbytes + self._starts.nbytes + self._lost.nbytes

    def overhead_fraction(self) -> float:
        """Metadata overhead relative to the word storage (≈ 64/shard_bits)."""
        return self._starts.nbytes / self._words.nbytes if self._words.nbytes else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedBitmap(length={self._length}, shards={self.num_shards}, "
            f"shard_bits={self._shard_bits}, lost={self.lost_bits()})"
        )
