"""Parallel shard-local work on sharded bitmaps (paper §4.2.3/§4.2.4).

Shard-local work on a :class:`~repro.bitmap.sharded.ShardedBitmap` is
independent by construction — a delete never moves bits across a shard
boundary, and the condense repack fills each post-condense shard from a
disjoint logical bit range — so it can run concurrently.  The paper
spawns a thread per shard; we use a shared
:class:`~concurrent.futures.ThreadPoolExecutor` (numpy kernels release
the GIL for the heavy slices, and a pool avoids per-operation
thread-start cost).

:class:`ShardTaskPool` owns that pool plumbing: lazy creation, an inline
fallback below a task-count threshold (the left side of the paper's
Figure 6 U-curve, where dispatch overhead dominates), and first-exception
propagation.  :class:`ParallelBulkDeleter` specializes it for the
shard-local phase of a bulk delete (§4.2.3, Figure 4); the same pool
doubles as the executor of a parallel :meth:`~repro.bitmap.sharded.
ShardedBitmap.condense` (§4.2.4).

The sequential epilogues stay with the caller: bulk delete's start-value
adjustment is a single array traversal with a running sum, and condense's
metadata reset is three array assignments.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, wait
from functools import partial
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bitmap.sharded import ShardedBitmap

__all__ = ["ShardTaskPool", "ParallelBulkDeleter"]

ShiftKernel = Callable[[np.ndarray, int, int], None]


class ShardTaskPool:
    """Thread pool for independent shard-local tasks.

    Parameters
    ----------
    max_workers:
        Number of worker threads; defaults to the CPU count.
    min_shards_for_parallelism:
        Below this many tasks the pool overhead outweighs any benefit,
        so the work runs inline on the calling thread.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        min_shards_for_parallelism: int = 2,
    ) -> None:
        self._max_workers = max_workers or (os.cpu_count() or 4)
        self._min_shards = min_shards_for_parallelism
        self._pool: Optional[ThreadPoolExecutor] = None

    @property
    def max_workers(self) -> int:
        """Configured worker-thread count."""
        return self._max_workers

    @property
    def min_shards_for_parallelism(self) -> int:
        """Task count below which work runs inline."""
        return self._min_shards

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def run_tasks(self, tasks: Sequence[Callable[[], None]]) -> None:
        """Run zero-arg callables, inline below the task threshold.

        Tasks must be mutually independent (disjoint writes); the first
        worker exception propagates to the caller after all tasks have
        settled.
        """
        if len(tasks) < self._min_shards:
            for task in tasks:
                task()
            return
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        done, _ = wait(futures)
        for fut in done:
            exc = fut.exception()
            if exc is not None:
                raise exc

    def close(self) -> None:
        """Shut the worker pool down."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardTaskPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ParallelBulkDeleter(ShardTaskPool):
    """Executes the shard-local phase of a bulk delete on the pool.

    Also serves as the condense executor of the bitmaps it is attached
    to (see :meth:`repro.bitmap.sharded.ShardedBitmap.condense`): delete
    and condense never overlap on one bitmap, so sharing the pool is
    free.
    """

    def run(
        self,
        bitmap: "ShardedBitmap",
        tasks: Sequence[Tuple[int, np.ndarray]],
        kernel: ShiftKernel,
    ) -> None:
        """Run ``(shard, descending offsets)`` tasks, possibly in parallel."""
        self.run_tasks(
            [
                partial(bitmap._delete_within_shard, shard, offs_desc, kernel)
                for shard, offs_desc in tasks
            ]
        )

    def __enter__(self) -> "ParallelBulkDeleter":
        return self
