"""Parallel bulk delete over sharded bitmaps (paper §4.2.3, Figure 4).

Shard-local shifts are independent by construction — a delete never moves
bits across a shard boundary — so the per-shard work of a bulk delete can
run concurrently.  The paper spawns a thread per shard that contains
positions to delete; we use a shared :class:`~concurrent.futures.
ThreadPoolExecutor` (numpy kernels release the GIL for the heavy slices,
and a pool avoids per-operation thread-start cost).

The final start-value adjustment stays sequential: it is a single array
traversal with a running sum and is performed by the caller
(:meth:`repro.bitmap.sharded.ShardedBitmap.bulk_delete`).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bitmap.sharded import ShardedBitmap

__all__ = ["ParallelBulkDeleter"]

ShiftKernel = Callable[[np.ndarray, int, int], None]


class ParallelBulkDeleter:
    """Executes the shard-local phase of a bulk delete on a thread pool.

    Parameters
    ----------
    max_workers:
        Number of worker threads; defaults to the CPU count.
    min_shards_for_parallelism:
        Below this many affected shards the pool overhead outweighs any
        benefit (the left side of the paper's Figure 6 U-curve), so the
        work runs inline.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        min_shards_for_parallelism: int = 2,
    ) -> None:
        self._max_workers = max_workers or (os.cpu_count() or 4)
        self._min_shards = min_shards_for_parallelism
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def run(
        self,
        bitmap: "ShardedBitmap",
        tasks: Sequence[Tuple[int, np.ndarray]],
        kernel: ShiftKernel,
    ) -> None:
        """Run ``(shard, descending offsets)`` tasks, possibly in parallel."""
        if len(tasks) < self._min_shards:
            for shard, offs_desc in tasks:
                bitmap._delete_within_shard(shard, offs_desc, kernel)
            return
        pool = self._ensure_pool()
        futures = [
            pool.submit(bitmap._delete_within_shard, shard, offs_desc, kernel)
            for shard, offs_desc in tasks
        ]
        done, _ = wait(futures)
        for fut in done:
            exc = fut.exception()
            if exc is not None:
                raise exc

    def close(self) -> None:
        """Shut the worker pool down."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelBulkDeleter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
