"""Ordinary (unsharded) bitmap — the baseline of the paper's Table 2.

A flat word array with one bit per tuple.  Single-bit access is a shift
and a mask; the weakness is :meth:`PlainBitmap.delete`, which must shift
every subsequent bit of the whole bitmap towards the deleted position,
making deletes linear in the bitmap size.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.bitmap import kernels
from repro.bitmap.kernels import WORD_BITS

__all__ = ["PlainBitmap"]


class PlainBitmap:
    """A growable bitmap over ``length`` logical bits.

    Parameters
    ----------
    length:
        Initial number of logical bits (all zero).
    """

    def __init__(self, length: int = 0) -> None:
        if length < 0:
            raise ValueError("bitmap length must be non-negative")
        self._length = length
        nwords = (length + WORD_BITS - 1) // WORD_BITS
        self._words = np.zeros(max(nwords, 1), dtype=np.uint64)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_positions(cls, positions: Iterable[int], length: int) -> "PlainBitmap":
        """Build a bitmap of ``length`` bits with the given positions set."""
        bm = cls(length)
        if not isinstance(positions, np.ndarray):
            positions = list(positions)
        pos = np.asarray(positions, dtype=np.int64)
        if len(pos) == 0:
            return bm
        if pos.min() < 0 or pos.max() >= length:
            raise IndexError("position out of range")
        words = pos >> 6
        bits = (pos & 63).astype(np.uint64)
        np.bitwise_or.at(bm._words, words, np.uint64(1) << bits)
        return bm

    @classmethod
    def from_bool_array(cls, bits: np.ndarray) -> "PlainBitmap":
        """Build a bitmap from a boolean mask."""
        bm = cls(len(bits))
        if len(bits):
            bm._words = kernels.bool_to_words(np.asarray(bits, dtype=bool))
        return bm

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def _check(self, pos: int) -> None:
        if not 0 <= pos < self._length:
            raise IndexError(f"bit position {pos} out of range [0, {self._length})")

    def get(self, pos: int) -> bool:
        """Return the bit at ``pos``."""
        self._check(pos)
        return kernels.get_bit(self._words, pos)

    def set(self, pos: int) -> None:
        """Set the bit at ``pos`` to 1."""
        self._check(pos)
        kernels.set_bit(self._words, pos)

    def unset(self, pos: int) -> None:
        """Set the bit at ``pos`` to 0."""
        self._check(pos)
        kernels.clear_bit(self._words, pos)

    def count(self) -> int:
        """Number of set bits."""
        return kernels.popcount_words(self._words)

    def to_bool_array(self) -> np.ndarray:
        """Return the logical bitmap as a boolean numpy array."""
        return kernels.words_to_bool(self._words, self._length)

    def positions(self) -> np.ndarray:
        """Return the sorted positions of all set bits."""
        return np.flatnonzero(self.to_bool_array()).astype(np.int64)

    def __iter__(self) -> Iterator[int]:
        return iter(self.positions().tolist())

    # ------------------------------------------------------------------
    # growth (insert support, paper §4: "reallocating/resizing the bitmap")
    # ------------------------------------------------------------------
    def append(self, value: bool = False) -> None:
        """Append one bit at the end of the bitmap."""
        self.extend(1)
        if value:
            kernels.set_bit(self._words, self._length - 1)

    def extend(self, nbits: int) -> None:
        """Append ``nbits`` zero bits at the end of the bitmap."""
        if nbits < 0:
            raise ValueError("cannot extend by a negative bit count")
        new_len = self._length + nbits
        nwords = (new_len + WORD_BITS - 1) // WORD_BITS
        if nwords > len(self._words):
            grown = np.zeros(max(nwords, 2 * len(self._words)), dtype=np.uint64)
            grown[: len(self._words)] = self._words
            self._words = grown
        self._length = new_len

    # ------------------------------------------------------------------
    # delete (the expensive operation for plain bitmaps)
    # ------------------------------------------------------------------
    def delete(self, pos: int) -> None:
        """Remove the bit at ``pos``; all subsequent bits shift down by one.

        Linear in the number of bits after ``pos`` — the full-bitmap shift
        the sharded design avoids.
        """
        self._check(pos)
        kernels.shift_down_vectorized(self._words, pos, self._length)
        self._length -= 1

    def bulk_delete(self, positions: Iterable[int]) -> None:
        """Delete many bits, given by their *pre-delete* positions.

        Processed in descending order so earlier deletions do not shift the
        coordinates of later ones.  Plain bitmaps have no cheaper bulk path;
        this is simply repeated single deletes.
        """
        pos = np.unique(np.asarray(list(positions), dtype=np.int64))
        for p in pos[::-1]:
            self.delete(int(p))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes used by the word storage."""
        return self._words.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PlainBitmap(length={self._length}, set={self.count()})"
