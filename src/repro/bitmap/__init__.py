"""Bitmap data structures underlying the PatchIndex (paper §4).

Two designs are provided:

* :class:`~repro.bitmap.plain.PlainBitmap` — the ordinary bitmap baseline.
  Single-bit access is cheap, but deleting a bit shifts the *entire*
  remainder of the bitmap.
* :class:`~repro.bitmap.sharded.ShardedBitmap` — the paper's contribution.
  The bitmap is virtually divided into shards, each with a start value
  (a fence pointer).  Deletes shift only within one shard, so they are
  cheap; bulk deletes are parallelized over shards and use a vectorized
  cross-element shift kernel (the numpy stand-in for the paper's AVX2
  intrinsics, Listing 1).
"""

from repro.bitmap.plain import PlainBitmap
from repro.bitmap.sharded import ShardedBitmap
from repro.bitmap.parallel import ParallelBulkDeleter, ShardTaskPool

__all__ = ["PlainBitmap", "ShardedBitmap", "ParallelBulkDeleter", "ShardTaskPool"]
