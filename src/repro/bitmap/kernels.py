"""Word-level bit manipulation kernels shared by the bitmap structures.

The paper accelerates the cross-element bit shift of the sharded bitmap's
delete operation with AVX2 intrinsics (Listing 1).  numpy plays the role
of SIMD here: :func:`shift_down_vectorized` expresses the same
shift-with-carry over whole word slices, while
:func:`shift_down_scalar` is the plain word-by-word loop used as the
non-vectorized comparison point in Figure 6.

All kernels operate on little-endian bit order: bit ``i`` of the logical
bitmap lives in word ``i // 64`` at bit position ``i % 64``.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64
_ONE = np.uint64(1)
_U63 = np.uint64(63)

__all__ = [
    "WORD_BITS",
    "get_bit",
    "set_bit",
    "clear_bit",
    "shift_down_vectorized",
    "shift_down_scalar",
    "words_to_bool",
    "bool_to_words",
    "popcount_words",
]


def get_bit(words: np.ndarray, bit: int) -> bool:
    """Return bit ``bit`` of the word array."""
    word = words[bit >> 6]
    return bool((int(word) >> (bit & 63)) & 1)


def set_bit(words: np.ndarray, bit: int) -> None:
    """Set bit ``bit`` of the word array to 1."""
    words[bit >> 6] |= np.uint64(1 << (bit & 63))


def clear_bit(words: np.ndarray, bit: int) -> None:
    """Set bit ``bit`` of the word array to 0."""
    words[bit >> 6] &= np.uint64(~(1 << (bit & 63)) & 0xFFFFFFFFFFFFFFFF)


def shift_down_vectorized(words: np.ndarray, bit: int, nbits: int) -> None:
    """Shift the bits in ``[bit, nbits)`` one position down (toward bit 0).

    After the call, logical bit ``j`` (for ``bit <= j < nbits - 1``) holds
    the value previously at ``j + 1``; bits below ``bit`` are unchanged and
    bit ``nbits - 1`` becomes 0.  This is the shard-local delete shift.

    ``words`` is a uint64 view covering at least ``nbits`` bits; only the
    words overlapping ``[bit, nbits)`` are touched.  The cross-word carry
    (``(w >> 1) | (w_next << 63)``) is evaluated on whole numpy slices,
    mirroring the AVX2 lane exchange of the paper's Listing 1.
    """
    if nbits <= 0 or bit >= nbits:
        return
    first = bit >> 6
    last = (nbits - 1) >> 6
    if first == last:
        w = int(words[first])
        low_mask = (1 << (bit & 63)) - 1
        words[first] = np.uint64((w & low_mask) | ((w >> 1) & ~low_mask))
        return
    # Words strictly after the first: shift down with carry from successor.
    body = words[first + 1 : last + 1]
    carry = np.empty_like(body)
    carry[:-1] = body[1:] << _U63
    carry[-1] = 0
    # First word: preserve bits below the deleted position.
    w = int(words[first])
    low_mask = (1 << (bit & 63)) - 1
    new_first = (w & low_mask) | ((w >> 1) & ~low_mask & 0xFFFFFFFFFFFFFFFF)
    new_first |= (int(words[first + 1]) & 1) << 63
    np.right_shift(body, _ONE, out=body)
    np.bitwise_or(body, carry, out=body)
    words[first] = np.uint64(new_first)


def shift_down_scalar(words: np.ndarray, bit: int, nbits: int) -> None:
    """Word-by-word loop version of :func:`shift_down_vectorized`.

    Semantically identical; used as the non-vectorized baseline when
    measuring the benefit of the vectorized kernel (Figure 6).
    """
    if nbits <= 0 or bit >= nbits:
        return
    first = bit >> 6
    last = (nbits - 1) >> 6
    mask64 = 0xFFFFFFFFFFFFFFFF
    w = int(words[first])
    low_mask = (1 << (bit & 63)) - 1
    new_w = (w & low_mask) | ((w >> 1) & ~low_mask & mask64)
    if first < last:
        new_w |= (int(words[first + 1]) & 1) << 63
    words[first] = np.uint64(new_w)
    for i in range(first + 1, last + 1):
        w = int(words[i]) >> 1
        if i < last:
            w |= (int(words[i + 1]) & 1) << 63
        words[i] = np.uint64(w & mask64)


def words_to_bool(words: np.ndarray, nbits: int) -> np.ndarray:
    """Expand a word array into a boolean array of the first ``nbits`` bits."""
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:nbits].astype(bool)


def bool_to_words(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean array into a uint64 word array (little-endian bits)."""
    packed = np.packbits(bits.astype(np.uint8), bitorder="little")
    nwords = (len(bits) + WORD_BITS - 1) // WORD_BITS
    padded = np.zeros(nwords * 8, dtype=np.uint8)
    padded[: len(packed)] = packed
    return padded.view(np.uint64)


def popcount_words(words: np.ndarray) -> int:
    """Count set bits over a word array."""
    if len(words) == 0:
        return 0
    return int(np.unpackbits(words.view(np.uint8)).sum())
