"""PatchIndex: updatable materialization of approximate constraints.

Python reproduction of Kläbe, Sattler & Baumann, *Updatable
Materialization of Approximate Constraints* (ICDE 2021,
arXiv:2102.06557).  See README.md for a tour, DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Typical entry points::

    from repro.storage import Table, Catalog
    from repro.core import PatchIndexManager, NearlyUniqueColumn
    from repro.plan import Optimizer, execute_plan
    from repro.sql import SQLSession
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
