"""SortKey materialization (baseline of §6.2).

A SortKey physically orders table data on one column, so a sort query
degenerates to a scan (plus, for partitioned tables, a merge of the
per-partition streams, §6.2).  Creating it is expensive — the data is
physically reordered — and only one SortKey can exist per table, unlike
PatchIndexes which leave the physical order untouched (§6.2.3).

We materialize the ordered data as a separate sorted copy (our tables
do not support in-place reordering), which is equivalent for both query
and maintenance cost accounting.  Updates re-sort (recompute) the copy.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.storage.partition import PartitionedTable
from repro.storage.table import Table

__all__ = ["SortKey"]

REFRESH_IMMEDIATE = "immediate"
REFRESH_MANUAL = "manual"


class SortKey:
    """Physically sorted materialization of a table on one column."""

    def __init__(
        self,
        table,
        column: str,
        ascending: bool = True,
        refresh_policy: str = REFRESH_IMMEDIATE,
        catalog=None,
    ) -> None:
        if refresh_policy not in (REFRESH_IMMEDIATE, REFRESH_MANUAL):
            raise ValueError(f"unknown refresh policy {refresh_policy!r}")
        self.source = table
        self.column = column
        self.ascending = ascending
        self.refresh_policy = refresh_policy
        self.refresh_count = 0
        self.sorted_parts: List[Table] = self._compute()
        self._source_version = _version_of(table)
        self._hooked: List[Table] = []
        if refresh_policy == REFRESH_IMMEDIATE:
            for part in _base_tables(table):
                part.add_update_hook(self._on_update)
                self._hooked.append(part)
        if catalog is not None:
            catalog.add_structure("sortkey", table.name, column, self)

    # ------------------------------------------------------------------
    def _compute(self) -> List[Table]:
        parts = []
        for i, base in enumerate(_base_tables(self.source)):
            keys = base.column(self.column)
            order = np.argsort(keys, kind="stable")
            if not self.ascending:
                order = order[::-1]
            cols = {c: base.column(c)[order] for c in base.schema.names}
            parts.append(Table(f"{base.name}__sorted_{self.column}", base.schema, cols))
        return parts

    def _on_update(self, table, event) -> None:
        self.refresh()

    def refresh(self) -> None:
        """Physically re-sort (the expensive maintenance path)."""
        self.sorted_parts = self._compute()
        self._source_version = _version_of(self.source)
        self.refresh_count += 1

    @property
    def is_stale(self) -> bool:
        return _version_of(self.source) != self._source_version

    # ------------------------------------------------------------------
    def scan_sorted(self, columns: Optional[List[str]] = None) -> dict:
        """Globally ordered columns: per-partition scans plus a merge."""
        columns = columns or self.source.schema.names
        if len(self.sorted_parts) == 1:
            part = self.sorted_parts[0]
            return {c: part.column(c) for c in columns}
        key_arrays = [p.column(self.column) for p in self.sorted_parts]
        merged_key = np.concatenate(key_arrays)
        order = np.argsort(merged_key, kind="stable")
        if not self.ascending:
            order = order[::-1]
        out = {}
        for c in columns:
            cat = np.concatenate([p.column(c) for p in self.sorted_parts])
            out[c] = cat[order]
        return out

    def memory_bytes(self) -> int:
        """Extra storage: zero beyond the reordered data itself (§6.4)."""
        return 0

    def detach(self) -> None:
        """Stop auto-refreshing."""
        for part in self._hooked:
            part.remove_update_hook(self._on_update)
        self._hooked = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SortKey({self.source.name}.{self.column}, parts={len(self.sorted_parts)})"


def _base_tables(table) -> List[Table]:
    if isinstance(table, PartitionedTable):
        return table.partitions
    return [table]


def _version_of(table) -> int:
    if isinstance(table, PartitionedTable):
        return sum(p.version for p in table.partitions)
    return table.version
