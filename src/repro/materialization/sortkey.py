"""SortKey materialization (baseline of §6.2).

A SortKey physically orders table data on one column, so a sort query
degenerates to a scan (plus, for partitioned tables, a merge of the
per-partition streams, §6.2).  Creating it is expensive — the data is
physically reordered — and only one SortKey can exist per table, unlike
PatchIndexes which leave the physical order untouched (§6.2.3).

We materialize the ordered data as a separate sorted copy (our tables
do not support in-place reordering), which is equivalent for both query
and maintenance cost accounting.  Updates re-sort (recompute) the copy.

Refresh runs through the stable parallel sort engine
(:mod:`repro.engine.parallel_sort`): with an execution context, a
partitioned source sorts its partitions concurrently — each partition's
sort-and-gather is one pool task pinned to a fixed worker (partition
affinity), so its column and minmax caches stay warm — while a plain
table fans out as morsel chunk-sorts plus the deterministic k-way
merge.  Either way the sorted copies are bit-identical to the serial
``np.argsort(kind="stable")`` materialization.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.engine.parallel import ExecutionContext
from repro.engine.parallel_sort import merge_sorted_runs, sort_permutation
from repro.storage.partition import PartitionedTable
from repro.storage.table import Table

__all__ = ["SortKey"]

REFRESH_IMMEDIATE = "immediate"
REFRESH_MANUAL = "manual"


class SortKey:
    """Physically sorted materialization of a table on one column.

    ``parallelism`` (or a shared ``context``) enables parallel refresh
    and scan-merge; ``1``/``None`` keeps the historical serial path.
    """

    def __init__(
        self,
        table,
        column: str,
        ascending: bool = True,
        refresh_policy: str = REFRESH_IMMEDIATE,
        catalog=None,
        context: Optional[ExecutionContext] = None,
        parallelism: Optional[int] = None,
    ) -> None:
        if refresh_policy not in (REFRESH_IMMEDIATE, REFRESH_MANUAL):
            raise ValueError(f"unknown refresh policy {refresh_policy!r}")
        self.source = table
        self.column = column
        self.ascending = ascending
        self.refresh_policy = refresh_policy
        self.refresh_count = 0
        self._owned_context: Optional[ExecutionContext] = None
        if context is None and parallelism is not None and parallelism > 1:
            context = ExecutionContext(parallelism=parallelism)
            self._owned_context = context
        self._context = context
        self._scan_order: Optional[np.ndarray] = None
        self.sorted_parts: List[Table] = self._compute()
        self._source_version = _version_of(table)
        self._hooked: List[Table] = []
        if refresh_policy == REFRESH_IMMEDIATE:
            for part in _base_tables(table):
                part.add_update_hook(self._on_update)
                self._hooked.append(part)
        if catalog is not None:
            catalog.add_structure("sortkey", table.name, column, self)

    # ------------------------------------------------------------------
    def _sorted_copy(self, base: Table, context: Optional[ExecutionContext]) -> Table:
        order = sort_permutation(
            [base.column(self.column)], [self.ascending], context=context
        )
        cols = {c: base.column(c)[order] for c in base.schema.names}
        return Table(f"{base.name}__sorted_{self.column}", base.schema, cols)

    def _compute(self) -> List[Table]:
        bases = _base_tables(self.source)
        ctx = self._context
        if ctx is not None and ctx.active and len(bases) > 1:
            # Partition affinity: each partition's sort+gather is one
            # pool task keyed by partition id, so a partition lands on a
            # fixed worker; the tasks themselves run serially inside
            # (leaf-level work — no nested pool dispatch).
            items = list(enumerate(bases))
            return ctx.map_grouped(
                lambda item: self._sorted_copy(item[1], context=None),
                items,
                [i for i, _ in items],
            )
        # single base table: chunk-parallel sort within the table
        return [self._sorted_copy(base, context=ctx) for base in bases]

    def _on_update(self, table, event) -> None:
        self.refresh()

    def refresh(self) -> None:
        """Physically re-sort (the expensive maintenance path)."""
        self.sorted_parts = self._compute()
        self._scan_order = None
        self._source_version = _version_of(self.source)
        self.refresh_count += 1

    @property
    def is_stale(self) -> bool:
        return _version_of(self.source) != self._source_version

    # ------------------------------------------------------------------
    def _merge_order(self) -> np.ndarray:
        """Global merge permutation over the concatenated sorted parts.

        Computed once per refresh and cached: repeated scans — in
        particular scans requesting only a column subset — no longer
        re-materialize the full permutation.  Both directions merge the
        per-partition runs with the deterministic k-way merge: ascending
        keys take equal keys in partition order (bit-identical to the
        stable argsort of the concatenation), descending keys in
        *reversed* partition order (bit-identical to the reversed-stable
        argsort the serial reference used — the merge learned that tie
        rule, so the full re-sort fallback is gone).
        """
        if self._scan_order is None:
            key_arrays = [p.column(self.column) for p in self.sorted_parts]
            self._scan_order = merge_sorted_runs(
                key_arrays, context=self._context, ascending=self.ascending
            )
        return self._scan_order

    def scan_sorted(self, columns: Optional[List[str]] = None) -> dict:
        """Globally ordered columns: per-partition scans plus a merge.

        Only the requested columns are concatenated and gathered; the
        merge permutation itself is shared across calls (see
        :meth:`_merge_order`).
        """
        columns = columns or self.source.schema.names
        if len(self.sorted_parts) == 1:
            part = self.sorted_parts[0]
            return {c: part.column(c) for c in columns}
        order = self._merge_order()

        def gather(c: str) -> np.ndarray:
            return np.concatenate([p.column(c) for p in self.sorted_parts])[order]

        ctx = self._context
        if ctx is not None and ctx.active and len(columns) > 1:
            return dict(zip(columns, ctx.map(gather, list(columns))))
        return {c: gather(c) for c in columns}

    def memory_bytes(self) -> int:
        """Extra storage: zero beyond the reordered data itself (§6.4)."""
        return 0

    def detach(self) -> None:
        """Stop auto-refreshing and release any owned worker pool."""
        for part in self._hooked:
            part.remove_update_hook(self._on_update)
        self._hooked = []
        if self._owned_context is not None:
            self._owned_context.close()
            self._owned_context = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SortKey({self.source.name}.{self.column}, parts={len(self.sorted_parts)})"


def _base_tables(table) -> List[Table]:
    if isinstance(table, PartitionedTable):
        return table.partitions
    return [table]


def _version_of(table) -> int:
    if isinstance(table, PartitionedTable):
        return sum(p.version for p in table.partitions)
    return table.version
