"""Specialized materialization baselines the paper compares against (§6).

* :class:`~repro.materialization.matview.MaterializedView` — precomputed
  distinct values of a column, refreshed by recomputation.
* :class:`~repro.materialization.sortkey.SortKey` — a physically
  reordered copy of the table, kept sorted by re-sorting on updates.
* :class:`~repro.materialization.joinindex.JoinIndex` — a materialized
  foreign-key join: the dimension-side rowID appended as an extra fact
  column.

Each tracks staleness against its base table version and supports
``immediate`` (refresh inside every update statement — the fair
comparison of Figure 9) or ``manual`` refresh policies.
"""

from repro.materialization.matview import MaterializedView
from repro.materialization.sortkey import SortKey
from repro.materialization.joinindex import JoinIndex

__all__ = ["MaterializedView", "SortKey", "JoinIndex"]
