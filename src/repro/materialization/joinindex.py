"""JoinIndex materialization ([27], baseline of §6.3).

A JoinIndex materializes a foreign-key join by storing, for every fact
tuple, the rowID of its dimension join partner as an additional fact
column.  A join query then degenerates to a scan of the fact table plus
a positional gather from the dimension table — no hash table and no
merge.  Creation performs the full join (the paper measures ~6× the
PatchIndex creation time); fact inserts compute partners for the new
tuples only, fact deletes drop entries positionally.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

__all__ = ["JoinIndex"]

#: partner value for fact tuples without a dimension match
NO_PARTNER = -1


class JoinIndex:
    """Materialized FK join between a fact and a dimension table."""

    def __init__(
        self,
        fact,
        fact_key: str,
        dim,
        dim_key: str,
        auto_maintain: bool = True,
        catalog=None,
    ) -> None:
        self.fact = fact
        self.fact_key = fact_key
        self.dim = dim
        self.dim_key = dim_key
        self._partners = self._compute_partners(fact.column(fact_key))
        self._maintaining = False
        if auto_maintain and hasattr(fact, "add_update_hook"):
            fact.add_update_hook(self._on_fact_update)
            self._maintaining = True
        if catalog is not None:
            catalog.add_structure("joinindex", fact.name, fact_key, self)

    # ------------------------------------------------------------------
    def _compute_partners(self, fact_keys: np.ndarray) -> np.ndarray:
        """Full FK join: hash table on the dimension, probe per fact row.

        Creating a JoinIndex performs the join it materializes — the
        expensive part the paper measures (~6× a PatchIndex creation).
        Duplicate dimension keys keep their first occurrence.
        """
        dim_keys = self.dim.column(self.dim_key)
        if len(dim_keys) == 0:
            return np.full(len(fact_keys), NO_PARTNER, dtype=np.int64)
        index_of: dict = {}
        for pos, key in enumerate(dim_keys.tolist()):
            index_of.setdefault(key, pos)
        return np.fromiter(
            (index_of.get(k, NO_PARTNER) for k in fact_keys.tolist()),
            dtype=np.int64,
            count=len(fact_keys),
        )

    def _on_fact_update(self, table, event) -> None:
        if event.kind == "insert":
            new_keys = np.asarray(event.values[self.fact_key])
            self._partners = np.concatenate(
                [self._partners, self._compute_partners(new_keys)]
            )
        elif event.kind == "delete":
            self._partners = np.delete(self._partners, event.rowids)
        elif event.kind == "modify":
            if self.fact_key in event.values:
                new_keys = np.asarray(event.values[self.fact_key])
                self._partners[event.rowids] = self._compute_partners(new_keys)

    # ------------------------------------------------------------------
    @property
    def partners(self) -> np.ndarray:
        """Dimension rowID per fact tuple (``NO_PARTNER`` if none)."""
        return self._partners

    def join(
        self,
        fact_columns: List[str],
        dim_columns: List[str],
        fact_mask: Optional[np.ndarray] = None,
    ) -> Dict[str, np.ndarray]:
        """The materialized join: gather dimension columns positionally.

        ``fact_mask`` optionally restricts the fact rows (pre-join
        selection); unmatched fact tuples are dropped (inner join).
        """
        partners = self._partners
        keep = partners >= 0
        if fact_mask is not None:
            keep = keep & fact_mask
        idx = np.flatnonzero(keep)
        out: Dict[str, np.ndarray] = {}
        for c in fact_columns:
            out[c] = self.fact.column(c)[idx]
        gather = partners[idx]
        for c in dim_columns:
            out[c] = self.dim.column(c)[gather]
        return out

    def memory_bytes(self) -> int:
        """The extra 8-byte column on the fact table."""
        return self._partners.nbytes

    def verify(self) -> bool:
        """Partner correctness check (test helper; full scan)."""
        expected = self._compute_partners(self.fact.column(self.fact_key))
        return bool(np.array_equal(expected, self._partners))

    def detach(self) -> None:
        """Stop maintaining."""
        if self._maintaining:
            self.fact.remove_update_hook(self._on_fact_update)
            self._maintaining = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JoinIndex({self.fact.name}.{self.fact_key} -> {self.dim.name}.{self.dim_key})"
