"""Materialized views over distinct queries (baseline of §6.2).

The paper simulates materialized views by storing the materialized
information in a separate table and manually rewriting queries; this
class does the same.  A distinct query on the source column becomes a
plain scan of the view table.  The major drawback is update support:
the view must be recomputed to stay consistent (§6: "Typically, they
need to be re-computed when updates occur").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.storage.table import Table

__all__ = ["MaterializedView"]

REFRESH_IMMEDIATE = "immediate"
REFRESH_MANUAL = "manual"


class MaterializedView:
    """Distinct values of ``table.column`` materialized as a table."""

    def __init__(
        self,
        table,
        column: str,
        name: Optional[str] = None,
        refresh_policy: str = REFRESH_IMMEDIATE,
    ) -> None:
        if refresh_policy not in (REFRESH_IMMEDIATE, REFRESH_MANUAL):
            raise ValueError(f"unknown refresh policy {refresh_policy!r}")
        self.source = table
        self.column = column
        self.name = name or f"{table.name}__distinct_{column}"
        self.refresh_policy = refresh_policy
        self.refresh_count = 0
        self.view: Table = self._compute()
        self._source_version = getattr(table, "version", 0)
        if refresh_policy == REFRESH_IMMEDIATE and hasattr(table, "add_update_hook"):
            table.add_update_hook(self._on_update)

    def _compute(self) -> Table:
        values = np.unique(self.source.column(self.column))
        return Table.from_arrays(self.name, {self.column: values})

    def _on_update(self, table, event) -> None:
        self.refresh()

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Recompute the view from the base table."""
        self.view = self._compute()
        self._source_version = getattr(self.source, "version", 0)
        self.refresh_count += 1

    @property
    def is_stale(self) -> bool:
        """Whether base-table updates postdate the last refresh."""
        return getattr(self.source, "version", 0) != self._source_version

    def scan_values(self) -> np.ndarray:
        """The materialized distinct values (the rewritten query)."""
        return self.view.column(self.column)

    def memory_bytes(self) -> int:
        """Bytes held by the materialized values (Table 3 comparison)."""
        col = self.view.column(self.column)
        if col.dtype == object:
            return int(sum(len(str(v)) for v in col)) + col.nbytes
        return col.nbytes

    def detach(self) -> None:
        """Stop auto-refreshing."""
        if self.refresh_policy == REFRESH_IMMEDIATE and hasattr(self.source, "remove_update_hook"):
            self.source.remove_update_hook(self._on_update)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MaterializedView({self.source.name}.{self.column}, rows={self.view.num_rows})"
