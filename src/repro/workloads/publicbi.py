"""Synthetic PublicBI-like datasets for Figure 1.

The paper profiles three PublicBI workbooks — USCensus_1 (nearly sorted
columns), IGlocations2_1 and IUBlibrary_1 (nearly unique columns) — and
plots a histogram of how many columns match an approximate constraint
for what fraction of their tuples.  The real workbooks are multi-GB
Tableau extracts we cannot ship, so we synthesize datasets whose
per-column constraint match rates follow the published histogram and
run our own discovery on them: the code path (profile every column,
bucket by match rate) is identical, only the bytes differ.

Match rates below are read off Figure 1 (bucket midpoints).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.storage.table import Table

__all__ = ["PUBLICBI_SPECS", "DatasetSpec", "generate_publicbi_dataset", "profile_histogram"]


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Shape of one synthesized PublicBI-like dataset."""

    name: str
    constraint: str  # 'nuc' or 'nsc'
    #: match rate (= 1 - exception rate) per approximate-constraint column
    match_rates: Tuple[float, ...]
    #: additional columns that match essentially nowhere (noise columns)
    noise_columns: int


#: Figure 1 approximations: USCensus_1 has 15 NSC columns (9 above 60 %),
#: the other two workbooks have a large share of nearly perfect NUCs.
PUBLICBI_SPECS: Dict[str, DatasetSpec] = {
    "USCensus_1": DatasetSpec(
        name="USCensus_1",
        constraint="nsc",
        match_rates=(0.95, 0.9, 0.85, 0.8, 0.75, 0.72, 0.68, 0.65, 0.62,
                     0.55, 0.45, 0.35, 0.28, 0.18, 0.12),
        noise_columns=10,
    ),
    "IGlocations2_1": DatasetSpec(
        name="IGlocations2_1",
        constraint="nuc",
        match_rates=(0.99, 0.98, 0.96, 0.93, 0.75),
        noise_columns=3,
    ),
    "IUBlibrary_1": DatasetSpec(
        name="IUBlibrary_1",
        constraint="nuc",
        match_rates=(0.995, 0.99, 0.985, 0.97, 0.95, 0.92, 0.88, 0.55),
        noise_columns=4,
    ),
}


def generate_publicbi_dataset(
    spec: DatasetSpec, num_rows: int = 20_000, seed: int = 0
) -> Table:
    """Materialize one synthetic workbook as a table."""
    rng = np.random.default_rng(seed)
    columns: Dict[str, np.ndarray] = {}
    for i, rate in enumerate(spec.match_rates):
        columns[f"c{i:03d}"] = _column_with_match_rate(
            spec.constraint, rate, num_rows, rng
        )
    for j in range(spec.noise_columns):
        columns[f"noise{j:03d}"] = _column_with_match_rate(
            spec.constraint, 0.02, num_rows, rng
        )
    return Table.from_arrays(spec.name, columns)


def _column_with_match_rate(
    constraint: str, rate: float, num_rows: int, rng: np.random.Generator
) -> np.ndarray:
    n_exc = int(round((1.0 - rate) * num_rows))
    if constraint == "nsc":
        values = np.arange(num_rows, dtype=np.int64)
        if n_exc:
            pos = rng.choice(num_rows, size=n_exc, replace=False)
            values[pos] = rng.integers(0, num_rows, size=n_exc)
        return values
    values = np.arange(num_rows, dtype=np.int64) + num_rows
    if n_exc >= 2:
        pool = max(1, n_exc // 4)
        pos = rng.choice(num_rows, size=n_exc, replace=False)
        values[pos] = np.arange(n_exc, dtype=np.int64) % pool
    return values


def profile_histogram(
    match_rates: List[float], bucket_width: float = 0.2
) -> Dict[str, int]:
    """Bucket measured per-column match rates like Figure 1's x-axis."""
    edges = np.arange(0.0, 1.0 + 1e-9, bucket_width)
    counts: Dict[str, int] = {}
    for lo in edges[:-1]:
        hi = lo + bucket_width
        label = f"{int(lo * 100)}-{int(hi * 100)}%"
        counts[label] = int(
            sum(1 for r in match_rates if lo <= r < hi or (hi >= 1.0 and r == 1.0))
        )
    return counts
