"""Workload and dataset generators used by the evaluation (§6)."""

from repro.workloads.generator import (
    GeneratedDataset,
    generate_dataset,
    insert_batch,
    modify_batch,
)
from repro.workloads.publicbi import PUBLICBI_SPECS, generate_publicbi_dataset
from repro.workloads.tpch import TPCHData, generate_tpch, perturb_order

__all__ = [
    "GeneratedDataset",
    "generate_dataset",
    "insert_batch",
    "modify_batch",
    "PUBLICBI_SPECS",
    "generate_publicbi_dataset",
    "TPCHData",
    "generate_tpch",
    "perturb_order",
]
