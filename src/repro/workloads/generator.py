"""Microbenchmark data generator (paper §6.2, [1]).

Reimplements the paper's generator at laptop scale: two-column datasets
(a unique key and a value column) whose value column violates a given
constraint at a configurable exception rate *e*.

* **NUC datasets** — ``e·n`` exception tuples draw their values from a
  small pool of ``num_exception_values`` shared values (each pool value
  occurs at least twice, so all its occurrences are exceptions); the
  remaining tuples carry globally unique values disjoint from the pool.
* **NSC datasets** — the value column is ascending except at ``e·n``
  randomly chosen, randomly revalued positions.

Exceptions are placed uniformly at random, as in the paper.  The key
column is unique and contiguous, so range partitioning on it yields
near-equal partitions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Union

import numpy as np

from repro.storage.partition import PartitionedTable
from repro.storage.table import Table

__all__ = ["GeneratedDataset", "generate_dataset", "insert_batch", "modify_batch"]


@dataclasses.dataclass
class GeneratedDataset:
    """A generated table plus its generation parameters."""

    table: Union[Table, PartitionedTable]
    constraint: str
    exception_rate: float
    num_rows: int
    seed: int

    @property
    def key_column(self) -> str:
        return "k"

    @property
    def value_column(self) -> str:
        return "v"


def generate_dataset(
    num_rows: int,
    exception_rate: float,
    constraint: str = "nuc",
    num_exception_values: Optional[int] = None,
    num_partitions: int = 1,
    seed: int = 0,
    name: str = "gen",
    payload_columns: int = 0,
) -> GeneratedDataset:
    """Build a §6.2 microbenchmark dataset.

    ``num_exception_values`` defaults to a pool scaled like the paper's
    100 K values at 1 B tuples (but never larger than ``e·n/2`` so every
    pool value repeats).  ``payload_columns`` adds int64 payload columns
    (the paper's tuples are 128 bytes wide; 14 payloads reproduce that),
    which is what makes physically reordering materializations pay for
    the full tuple width.
    """
    if not 0.0 <= exception_rate <= 1.0:
        raise ValueError("exception_rate must be in [0, 1]")
    if constraint not in ("nuc", "nsc"):
        raise ValueError("constraint must be 'nuc' or 'nsc'")
    rng = np.random.default_rng(seed)
    keys = np.arange(num_rows, dtype=np.int64)
    n_exc = int(round(exception_rate * num_rows))
    if constraint == "nuc":
        values = _nuc_values(num_rows, n_exc, num_exception_values, rng)
    else:
        values = _nsc_values(num_rows, n_exc, rng)
    columns: Dict[str, np.ndarray] = {"k": keys, "v": values}
    for p in range(payload_columns):
        columns[f"p{p:02d}"] = rng.integers(0, 1 << 30, num_rows).astype(np.int64)
    table: Union[Table, PartitionedTable] = Table.from_arrays(name, columns)
    if num_partitions > 1:
        table = PartitionedTable.from_table(table, "k", num_partitions)
    return GeneratedDataset(
        table=table,
        constraint=constraint,
        exception_rate=exception_rate,
        num_rows=num_rows,
        seed=seed,
    )


def _nuc_values(
    num_rows: int, n_exc: int, pool_size: Optional[int], rng: np.random.Generator
) -> np.ndarray:
    values = np.arange(num_rows, dtype=np.int64) + num_rows  # unique, >= n
    if n_exc < 2:
        return values
    if pool_size is None:
        # the paper uses 100K values for 1B tuples; scale proportionally
        pool_size = max(1, int(num_rows * 1e5 / 1e9))
    pool_size = max(1, min(pool_size, n_exc // 2))
    positions = rng.choice(num_rows, size=n_exc, replace=False)
    # round-robin over the pool guarantees every value repeats
    values[positions] = np.arange(n_exc, dtype=np.int64) % pool_size
    return values


def _nsc_values(num_rows: int, n_exc: int, rng: np.random.Generator) -> np.ndarray:
    values = np.arange(num_rows, dtype=np.int64)
    if n_exc == 0:
        return values
    positions = rng.choice(num_rows, size=n_exc, replace=False)
    values[positions] = rng.integers(0, num_rows, size=n_exc)
    return values


def insert_batch(
    dataset: GeneratedDataset,
    count: int,
    collide_fraction: float = 0.0,
    seed: int = 1,
) -> Dict[str, np.ndarray]:
    """New tuples to insert: fresh keys, mostly-fresh values.

    ``collide_fraction`` of the values intentionally duplicate existing
    ones (NUC) or fall below the sorted boundary (NSC), exercising the
    patch-adding paths.
    """
    rng = np.random.default_rng(seed)
    next_key = int(dataset.table.column("k").max()) + 1 if dataset.table.num_rows else 0
    keys = np.arange(next_key, next_key + count, dtype=np.int64)
    hi = int(dataset.table.column("v").max()) if dataset.table.num_rows else 0
    values = hi + 1 + np.arange(count, dtype=np.int64)
    n_collide = int(round(collide_fraction * count))
    if n_collide:
        idx = rng.choice(count, size=n_collide, replace=False)
        existing = dataset.table.column("v")
        values[idx] = existing[rng.integers(0, len(existing), size=n_collide)]
    return {"k": keys, "v": values}


def modify_batch(
    dataset: GeneratedDataset, count: int, seed: int = 2
) -> Dict[str, np.ndarray]:
    """Rowids and new values for a modify statement."""
    rng = np.random.default_rng(seed)
    n = dataset.table.num_rows
    rowids = np.sort(rng.choice(n, size=min(count, n), replace=False))
    values = rng.integers(0, n, size=len(rowids)).astype(np.int64)
    return {"rowids": rowids, "v": values}
