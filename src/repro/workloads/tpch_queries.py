"""TPC-H Q3, Q7 and Q12 as logical plans (paper §6.3).

All three queries contain the lineitem ⨝ orders join the paper targets.
The plans are built so the PatchIndex join rewrite's side conditions
hold: orders is stored (and registered) sorted on ``o_orderkey``, and
wherever orders passes through an upstream join it is placed on the
probe side of a hash join, which preserves its order (§3.3).

Each builder also has a JoinIndex variant executing the same query over
the materialized join (the paper's comparison baseline).
"""

from __future__ import annotations

import numpy as np

from repro.engine import Relation, col, lit, where
from repro.engine.operators import GroupAggregate, Limit, RelationSource, Sort
from repro.materialization.joinindex import JoinIndex
from repro.plan import nodes

__all__ = [
    "Q3_DATE",
    "q3_plan",
    "q7_plan",
    "q12_plan",
    "q3_joinindex",
    "q7_joinindex",
    "q12_joinindex",
]

Q3_DATE = 19950315
Q7_SHIP_LO, Q7_SHIP_HI = 19950101, 19961231
Q12_RECEIPT_LO, Q12_RECEIPT_HI = 19940101, 19950101
Q12_MODES = ["MAIL", "SHIP"]
HIGH_PRIORITIES = ["1-URGENT", "2-HIGH"]
Q7_NATIONS = ["FRANCE", "GERMANY"]


# ----------------------------------------------------------------------
# Q3 — shipping priority
# ----------------------------------------------------------------------
def q3_plan() -> nodes.PlanNode:
    """Revenue of undelivered orders of BUILDING customers."""
    cust = nodes.ScanNode(
        "customer",
        ["c_custkey", "c_mktsegment"],
        predicate=col("c_mktsegment") == lit("BUILDING"),
    )
    ords = nodes.ScanNode(
        "orders",
        ["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
        predicate=col("o_orderdate") < Q3_DATE,
    )
    # customer is the build side: orders' o_orderkey order is preserved
    x_side = nodes.JoinNode(cust, ords, "c_custkey", "o_custkey", build_side="left")
    line = nodes.ScanNode(
        "lineitem",
        ["l_orderkey", "l_extendedprice", "l_discount"],
        predicate=col("l_shipdate") > Q3_DATE,
    )
    core = nodes.JoinNode(x_side, line, "o_orderkey", "l_orderkey")
    agg = nodes.AggregateNode(
        core,
        ["l_orderkey", "o_orderdate", "o_shippriority"],
        {"revenue": ("sum", col("l_extendedprice") * (lit(1.0) - col("l_discount")))},
    )
    return nodes.LimitNode(
        nodes.SortNode(agg, ["revenue", "o_orderdate"], [False, True]), 10
    )


# ----------------------------------------------------------------------
# Q7 — volume shipping
# ----------------------------------------------------------------------
def q7_plan() -> nodes.PlanNode:
    """Trade volume between FRANCE and GERMANY by year."""
    supp_nation = nodes.ProjectNode(
        nodes.FilterNode(
            nodes.ScanNode("nation"), col("n_name").isin(Q7_NATIONS)
        ),
        {"supp_nationkey": "n_nationkey", "supp_nation": "n_name"},
    )
    suppliers = nodes.JoinNode(
        supp_nation, nodes.ScanNode("supplier"), "supp_nationkey", "s_nationkey",
        build_side="left",
    )
    cust_nation = nodes.ProjectNode(
        nodes.FilterNode(
            nodes.ScanNode("nation"), col("n_name").isin(Q7_NATIONS)
        ),
        {"cust_nationkey": "n_nationkey", "cust_nation": "n_name"},
    )
    customers = nodes.JoinNode(
        cust_nation, nodes.ScanNode("customer"), "cust_nationkey", "c_nationkey",
        build_side="left",
    )
    # orders on the probe side keeps o_orderkey order for the core join
    x_side = nodes.JoinNode(
        customers,
        nodes.ScanNode("orders", ["o_orderkey", "o_custkey"]),
        "c_custkey",
        "o_custkey",
        build_side="left",
    )
    line = nodes.ScanNode(
        "lineitem",
        ["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"],
        predicate=(col("l_shipdate") >= Q7_SHIP_LO) & (col("l_shipdate") <= Q7_SHIP_HI),
    )
    core = nodes.JoinNode(x_side, line, "o_orderkey", "l_orderkey")
    with_supp = nodes.JoinNode(suppliers, core, "s_suppkey", "l_suppkey", build_side="left")
    cross = nodes.FilterNode(
        with_supp,
        ((col("supp_nation") == lit(Q7_NATIONS[0])) & (col("cust_nation") == lit(Q7_NATIONS[1])))
        | ((col("supp_nation") == lit(Q7_NATIONS[1])) & (col("cust_nation") == lit(Q7_NATIONS[0]))),
    )
    shaped = nodes.ProjectNode(
        cross,
        {
            "supp_nation": "supp_nation",
            "cust_nation": "cust_nation",
            "l_year": col("l_shipdate") // 10_000,
            "volume": col("l_extendedprice") * (lit(1.0) - col("l_discount")),
        },
    )
    agg = nodes.AggregateNode(
        shaped,
        ["supp_nation", "cust_nation", "l_year"],
        {"revenue": ("sum", "volume")},
    )
    return nodes.SortNode(agg, ["supp_nation", "cust_nation", "l_year"])


# ----------------------------------------------------------------------
# Q12 — shipping modes and order priority
# ----------------------------------------------------------------------
def q12_predicate():
    return (
        col("l_shipmode").isin(Q12_MODES)
        & (col("l_commitdate") < col("l_receiptdate"))
        & (col("l_shipdate") < col("l_commitdate"))
        & (col("l_receiptdate") >= Q12_RECEIPT_LO)
        & (col("l_receiptdate") < Q12_RECEIPT_HI)
    )


def q12_plan() -> nodes.PlanNode:
    """Late lineitems per ship mode, split by order priority."""
    line = nodes.ScanNode(
        "lineitem",
        ["l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate", "l_receiptdate"],
        predicate=q12_predicate(),
    )
    ords = nodes.ScanNode("orders", ["o_orderkey", "o_orderpriority"])
    core = nodes.JoinNode(ords, line, "o_orderkey", "l_orderkey")
    high = col("o_orderpriority").isin(HIGH_PRIORITIES)
    agg = nodes.AggregateNode(
        core,
        ["l_shipmode"],
        {
            "high_line_count": ("sum", where(high, 1, 0)),
            "low_line_count": ("sum", where(high, 0, 1)),
        },
    )
    return nodes.SortNode(agg, ["l_shipmode"])


# ----------------------------------------------------------------------
# JoinIndex variants: gather instead of join, same aggregations
# ----------------------------------------------------------------------
def q3_joinindex(ji: JoinIndex, catalog) -> Relation:
    """Q3 over the materialized lineitem→orders join."""
    line = ji.fact
    mask = line.column("l_shipdate") > Q3_DATE
    joined = ji.join(
        ["l_orderkey", "l_extendedprice", "l_discount"],
        ["o_custkey", "o_orderdate", "o_shippriority"],
        fact_mask=mask,
    )
    rel = Relation(joined).filter(joined["o_orderdate"] < Q3_DATE)
    cust = catalog.table("customer")
    seg = cust.column("c_mktsegment")
    building = cust.column("c_custkey")[_str_eq(seg, "BUILDING")]
    rel = rel.filter(np.isin(rel.column("o_custkey"), building))
    agg = GroupAggregate(
        RelationSource(rel),
        ["l_orderkey", "o_orderdate", "o_shippriority"],
        {"revenue": ("sum", col("l_extendedprice") * (lit(1.0) - col("l_discount")))},
    )
    return Limit(Sort(agg, ["revenue", "o_orderdate"], [False, True]), 10).execute()


def q7_joinindex(ji: JoinIndex, catalog) -> Relation:
    """Q7 over the materialized lineitem→orders join."""
    line = ji.fact
    ship = line.column("l_shipdate")
    mask = (ship >= Q7_SHIP_LO) & (ship <= Q7_SHIP_HI)
    joined = ji.join(
        ["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"],
        ["o_custkey"],
        fact_mask=mask,
    )
    rel = Relation(joined)
    nation_names = catalog.table("nation").column("n_name")
    nation_keys = catalog.table("nation").column("n_nationkey")
    fr_de = nation_keys[np.isin(nation_names, Q7_NATIONS)]
    cust = catalog.table("customer")
    cust_sel = np.isin(cust.column("c_nationkey"), fr_de)
    cust_keys = cust.column("c_custkey")[cust_sel]
    cust_nation = cust.column("c_nationkey")[cust_sel]
    order_pos = np.searchsorted(cust_keys, rel.column("o_custkey"))
    order_pos = np.clip(order_pos, 0, max(len(cust_keys) - 1, 0))
    keep = (
        np.zeros(rel.num_rows, dtype=bool)
        if len(cust_keys) == 0
        else cust_keys[order_pos] == rel.column("o_custkey")
    )
    rel = rel.filter(keep).with_column(
        "cust_nationkey",
        cust_nation[order_pos[keep]] if keep.any() else np.zeros(0, dtype=np.int64),
    )
    supp = catalog.table("supplier")
    supp_sel = np.isin(supp.column("s_nationkey"), fr_de)
    supp_keys = supp.column("s_suppkey")[supp_sel]
    supp_nation = supp.column("s_nationkey")[supp_sel]
    pos = np.searchsorted(supp_keys, rel.column("l_suppkey"))
    pos = np.clip(pos, 0, max(len(supp_keys) - 1, 0))
    keep = (
        np.zeros(rel.num_rows, dtype=bool)
        if len(supp_keys) == 0
        else supp_keys[pos] == rel.column("l_suppkey")
    )
    rel = rel.filter(keep).with_column(
        "supp_nationkey", supp_nation[pos[keep]] if keep.any() else np.zeros(0, dtype=np.int64)
    )
    rel = rel.filter(rel.column("supp_nationkey") != rel.column("cust_nationkey"))
    name_of = {int(k): str(v) for k, v in zip(nation_keys, nation_names)}
    rel = rel.with_column(
        "supp_nation", _map_names(rel.column("supp_nationkey"), name_of)
    ).with_column(
        "cust_nation", _map_names(rel.column("cust_nationkey"), name_of)
    ).with_column("l_year", rel.column("l_shipdate") // 10_000).with_column(
        "volume",
        rel.column("l_extendedprice") * (1.0 - rel.column("l_discount")),
    )
    agg = GroupAggregate(
        RelationSource(rel),
        ["supp_nation", "cust_nation", "l_year"],
        {"revenue": ("sum", "volume")},
    )
    return Sort(agg, ["supp_nation", "cust_nation", "l_year"]).execute()


def q12_joinindex(ji: JoinIndex, catalog) -> Relation:
    """Q12 over the materialized lineitem→orders join."""
    line = ji.fact
    ship = line.column("l_shipdate")
    commit = line.column("l_commitdate")
    receipt = line.column("l_receiptdate")
    mode = line.column("l_shipmode")
    mask = (
        np.isin(mode, Q12_MODES)
        & (commit < receipt)
        & (ship < commit)
        & (receipt >= Q12_RECEIPT_LO)
        & (receipt < Q12_RECEIPT_HI)
    )
    joined = ji.join(["l_shipmode"], ["o_orderpriority"], fact_mask=mask)
    rel = Relation(joined)
    high = col("o_orderpriority").isin(HIGH_PRIORITIES)
    agg = GroupAggregate(
        RelationSource(rel),
        ["l_shipmode"],
        {
            "high_line_count": ("sum", where(high, 1, 0)),
            "low_line_count": ("sum", where(high, 0, 1)),
        },
    )
    return Sort(agg, ["l_shipmode"]).execute()


def _str_eq(arr: np.ndarray, value: str) -> np.ndarray:
    return np.array([v == value for v in arr], dtype=bool)


def _map_names(keys: np.ndarray, name_of: dict) -> np.ndarray:
    out = np.empty(len(keys), dtype=object)
    out[:] = [name_of[int(k)] for k in keys]
    return out
