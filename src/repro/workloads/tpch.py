"""TPC-H subset generator and refresh sets (paper §6.3).

The paper evaluates PatchIndexes on TPC-H SF1000, focusing on the
largest join (lineitem ⨝ orders) via Q3, Q7 and Q12, plus the insert
and delete refresh sets.  This module generates the six tables those
queries touch at a configurable scale factor, with orders stored sorted
on ``o_orderkey`` and lineitem clustered on ``l_orderkey`` (the order a
dbgen load produces).  ``perturb_order`` then shuffles a fraction of
lineitem rows to introduce exceptions to the sorting constraint —
exactly the paper's manual data-order manipulation producing the 0 %,
5 % and 10 % datasets.

Dates are stored as int64 ``YYYYMMDD``; predicate comparisons and
``date // 10000`` year extraction behave like the SQL originals.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.storage.catalog import Catalog
from repro.storage.table import Table

__all__ = ["TPCHData", "generate_tpch", "perturb_order", "NATIONS", "SHIP_MODES", "SEGMENTS"]

NATIONS = ["FRANCE", "GERMANY", "UNITED STATES", "JAPAN", "BRAZIL"]
SHIP_MODES = ["MAIL", "SHIP", "AIR", "RAIL", "TRUCK", "FOB", "REG AIR"]
SEGMENTS = ["BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

_DATE_LO = 19920101
_YEARS = list(range(1992, 1999))


@dataclasses.dataclass
class TPCHData:
    """Generated TPC-H subset plus refresh-set payloads."""

    customer: Table
    orders: Table
    lineitem: Table
    supplier: Table
    nation: Table
    scale: float
    seed: int

    def register(self, catalog: Catalog) -> None:
        """Register all tables."""
        for t in (self.customer, self.orders, self.lineitem, self.supplier, self.nation):
            catalog.register(t)

    def refresh_insert_payload(
        self, fraction: float = 0.001, seed: int = 99
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """RF1: new orders and their lineitems (≈ ``fraction`` of SF)."""
        rng = np.random.default_rng(seed)
        n_orders = max(1, int(round(fraction * self.orders.num_rows)))
        next_key = int(self.orders.column("o_orderkey").max()) + 1
        n_cust = self.customer.num_rows
        n_supp = self.supplier.num_rows
        order_cols = _gen_orders(next_key, n_orders, n_cust, rng)
        line_cols = _gen_lineitems(order_cols["o_orderkey"], order_cols["o_orderdate"], n_supp, rng)
        return order_cols, line_cols

    def refresh_delete_rowids(
        self, fraction: float = 0.001, seed: int = 77
    ) -> Tuple[np.ndarray, np.ndarray]:
        """RF2: rowids of orders (and their lineitems) to delete."""
        rng = np.random.default_rng(seed)
        n_orders = max(1, int(round(fraction * self.orders.num_rows)))
        order_rows = np.sort(rng.choice(self.orders.num_rows, size=n_orders, replace=False))
        victim_keys = self.orders.column("o_orderkey")[order_rows]
        line_keys = self.lineitem.column("l_orderkey")
        line_rows = np.flatnonzero(np.isin(line_keys, victim_keys))
        return order_rows, line_rows


def generate_tpch(scale: float = 0.01, seed: int = 0) -> TPCHData:
    """Generate the TPC-H subset at ``scale`` (SF1 = 6 M lineitems)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    n_nation = len(NATIONS)
    n_supplier = max(5, int(10_000 * scale))
    n_customer = max(10, int(150_000 * scale))
    n_orders = max(20, int(1_500_000 * scale))

    nation = Table.from_arrays(
        "nation",
        {
            "n_nationkey": np.arange(n_nation, dtype=np.int64),
            "n_name": np.array(NATIONS, dtype=object),
        },
    )
    supplier = Table.from_arrays(
        "supplier",
        {
            "s_suppkey": np.arange(n_supplier, dtype=np.int64),
            "s_nationkey": rng.integers(0, n_nation, n_supplier).astype(np.int64),
        },
    )
    customer = Table.from_arrays(
        "customer",
        {
            "c_custkey": np.arange(n_customer, dtype=np.int64),
            "c_mktsegment": _choice_obj(rng, SEGMENTS, n_customer),
            "c_nationkey": rng.integers(0, n_nation, n_customer).astype(np.int64),
        },
    )
    order_cols = _gen_orders(0, n_orders, n_customer, rng)
    orders = Table.from_arrays("orders", order_cols)
    line_cols = _gen_lineitems(
        order_cols["o_orderkey"], order_cols["o_orderdate"], n_supplier, rng
    )
    lineitem = Table.from_arrays("lineitem", line_cols)
    return TPCHData(
        customer=customer,
        orders=orders,
        lineitem=lineitem,
        supplier=supplier,
        nation=nation,
        scale=scale,
        seed=seed,
    )


def perturb_order(lineitem: Table, fraction: float, seed: int = 5) -> Table:
    """Shuffle ``fraction`` of lineitem rows in place (paper §6.3).

    Whole tuples move, so relational content is unchanged; only the
    physical order — and thereby the sorting constraint on
    ``l_orderkey`` — degrades, yielding roughly ``fraction`` exceptions.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    n = lineitem.num_rows
    cols = {c: lineitem.column(c).copy() for c in lineitem.schema.names}
    if fraction > 0 and n > 1:
        rng = np.random.default_rng(seed)
        idx = rng.choice(n, size=max(2, int(round(fraction * n))), replace=False)
        shuffled = rng.permutation(idx)
        for c in cols:
            cols[c][idx] = cols[c][shuffled]
    return Table.from_arrays(lineitem.name, cols)


# ----------------------------------------------------------------------
# generation helpers
# ----------------------------------------------------------------------
def _gen_orders(
    first_key: int, n_orders: int, n_customer: int, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    keys = np.arange(first_key, first_key + n_orders, dtype=np.int64)
    return {
        "o_orderkey": keys,  # stored sorted: dbgen clustering
        "o_custkey": rng.integers(0, n_customer, n_orders).astype(np.int64),
        "o_orderdate": _random_dates(rng, n_orders),
        "o_shippriority": np.zeros(n_orders, dtype=np.int64),
        "o_orderpriority": _choice_obj(rng, ORDER_PRIORITIES, n_orders),
    }


def _gen_lineitems(
    order_keys: np.ndarray, order_dates: np.ndarray, n_supplier: int,
    rng: np.random.Generator,
) -> Dict[str, np.ndarray]:
    per_order = rng.integers(1, 8, len(order_keys))
    l_orderkey = np.repeat(order_keys, per_order)
    o_date = np.repeat(order_dates, per_order)
    n = len(l_orderkey)
    ship_delay = rng.integers(1, 122, n)
    commit_delay = rng.integers(30, 91, n)
    receipt_delay = rng.integers(1, 31, n)
    l_shipdate = _add_days(o_date, ship_delay)
    l_commitdate = _add_days(o_date, commit_delay)
    l_receiptdate = _add_days(l_shipdate, receipt_delay)
    return {
        "l_orderkey": l_orderkey,
        "l_suppkey": rng.integers(0, n_supplier, n).astype(np.int64),
        "l_extendedprice": (rng.random(n) * 90_000 + 1_000).round(2),
        "l_discount": (rng.integers(0, 11, n) / 100.0),
        "l_shipdate": l_shipdate,
        "l_commitdate": l_commitdate,
        "l_receiptdate": l_receiptdate,
        "l_shipmode": _choice_obj(rng, SHIP_MODES, n),
    }


def _choice_obj(rng: np.random.Generator, values: List[str], n: int) -> np.ndarray:
    idx = rng.integers(0, len(values), n)
    out = np.empty(n, dtype=object)
    for i, v in enumerate(values):
        out[idx == i] = v
    return out


def _random_dates(rng: np.random.Generator, n: int) -> np.ndarray:
    years = rng.integers(_YEARS[0], _YEARS[-1], n)  # 1992..1997
    months = rng.integers(1, 13, n)
    days = rng.integers(1, 29, n)
    return (years * 10_000 + months * 100 + days).astype(np.int64)


def _add_days(dates: np.ndarray, delta: np.ndarray) -> np.ndarray:
    """Approximate date arithmetic on YYYYMMDD ints (month-precision).

    Good enough for the benchmark predicates: we only compare dates and
    extract years, never render calendars.
    """
    years = dates // 10_000
    months = (dates // 100) % 100
    days = (dates % 100) + delta
    months = months + days // 28
    days = days % 28 + 1
    years = years + (months - 1) // 12
    months = (months - 1) % 12 + 1
    return (years * 10_000 + months * 100 + days).astype(np.int64)
