"""Rule-driving optimizer.

Walks a logical plan bottom-up and applies the PatchIndex rewrites of
§3.3 wherever their patterns match, consulting the cost model (§3.5)
before accepting a transformation.  Zero-branch pruning (§6.3) and
forced application (for reproducing the paper's forced-plan
experiments) are switchable.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.parallel import DEFAULT_MORSEL_ROWS
from repro.plan import nodes
from repro.plan.cost import CostModel
from repro.plan.rules import is_sorted_on, rewrite_distinct, rewrite_join, rewrite_sort
from repro.storage.catalog import Catalog

__all__ = ["Optimizer"]


class Optimizer:
    """Applies PatchIndex rewrites over logical plans.

    Parameters
    ----------
    catalog:
        Table/structure registry.
    index_manager:
        A :class:`~repro.core.manager.PatchIndexManager` (or anything
        with a ``get(table, column)`` returning index handles).
    zero_branch_pruning:
        Drop patch subtrees when the patch count is known to be zero.
    use_cost_model:
        Gate rewrites on estimated cost; when False, every matching
        rewrite is applied (the paper's forced plans).
    parallelism / morsel_rows:
        Worker count and morsel size the cost model should assume (see
        :class:`~repro.plan.cost.CostModel`); both feed the parallel
        payoff gates, e.g. ``sort_parallel_payoff`` deciding whether a
        SortNode is costed as a fanned-out chunk-sort.
    """

    def __init__(
        self,
        catalog: Catalog,
        index_manager,
        zero_branch_pruning: bool = False,
        use_cost_model: bool = True,
        parallelism: int = 1,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
    ) -> None:
        self.catalog = catalog
        self.index_manager = index_manager
        self.zero_branch_pruning = zero_branch_pruning
        self.use_cost_model = use_cost_model
        self.cost_model = CostModel(
            catalog, parallelism=parallelism, morsel_rows=morsel_rows
        )

    # ------------------------------------------------------------------
    def optimize(self, plan: nodes.PlanNode) -> nodes.PlanNode:
        """Return the (possibly rewritten) plan."""
        plan = self._optimize_children(plan)
        return self._apply_rules(plan)

    def _optimize_children(self, plan: nodes.PlanNode) -> nodes.PlanNode:
        kids = plan.children()
        if not kids:
            return plan
        new_kids = [self.optimize(c) for c in kids]
        if all(a is b for a, b in zip(kids, new_kids)):
            return plan
        return _rebuild(plan, new_kids)

    def _apply_rules(self, plan: nodes.PlanNode) -> nodes.PlanNode:
        lookup = self.index_manager.get
        cost_model = self.cost_model if self.use_cost_model else None
        force = not self.use_cost_model
        out: Optional[nodes.PlanNode]
        out = rewrite_distinct(
            plan, lookup, cost_model, self.zero_branch_pruning, force
        )
        if out is not None:
            return out
        out = rewrite_sort(plan, lookup, cost_model, self.zero_branch_pruning, force)
        if out is not None:
            return out
        out = rewrite_join(
            plan,
            lookup,
            lambda node, key: is_sorted_on(node, key, self.catalog),
            cost_model,
            self.zero_branch_pruning,
            force,
        )
        if out is not None:
            return out
        return plan


def _rebuild(plan: nodes.PlanNode, kids) -> nodes.PlanNode:
    """Copy a node with new children (structural rebuild)."""
    if isinstance(plan, nodes.FilterNode):
        return nodes.FilterNode(kids[0], plan.predicate)
    if isinstance(plan, nodes.ProjectNode):
        return nodes.ProjectNode(kids[0], plan.outputs)
    if isinstance(plan, nodes.JoinNode):
        return nodes.JoinNode(
            kids[0], kids[1], plan.left_key, plan.right_key,
            algorithm=plan.algorithm, build_side=plan.build_side,
            dynamic_range_propagation=plan.dynamic_range_propagation,
        )
    if isinstance(plan, nodes.DistinctNode):
        return nodes.DistinctNode(kids[0], plan.columns)
    if isinstance(plan, nodes.AggregateNode):
        return nodes.AggregateNode(kids[0], plan.group_keys, plan.aggregates)
    if isinstance(plan, nodes.SortNode):
        return nodes.SortNode(kids[0], plan.keys, plan.ascending)
    if isinstance(plan, nodes.LimitNode):
        return nodes.LimitNode(kids[0], plan.n)
    if isinstance(plan, nodes.UnionNode):
        return nodes.UnionNode(kids)
    if isinstance(plan, nodes.MergeCombineNode):
        return nodes.MergeCombineNode(kids, plan.key, plan.ascending)
    if isinstance(plan, nodes.ReuseCacheNode):
        return nodes.ReuseCacheNode(kids[0], plan.slot_id)
    raise TypeError(f"cannot rebuild {type(plan).__name__}")
