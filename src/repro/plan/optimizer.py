"""Staged optimizer driver.

Optimization runs in two stages (the PostBOUND-style split ROADMAP
item 3 calls for):

1. **Join ordering** (:mod:`repro.plan.joinorder`) — multi-join regions
   are flattened into a join graph and re-ordered by DP (≤6 relations)
   or greedily, keeping the parser's order unless an enumerated order's
   modeled cost is strictly lower.
2. **Physical operator selection** (:mod:`repro.plan.selection`) — a
   chain of ``PhysicalOperatorSelection`` links assigns physical
   operators per logical node: the PatchIndex rewrites of §3.3 (first
   link), join algorithm/build side, TopN pushdown and serial/parallel
   execution modes.

:meth:`Optimizer.optimize` returns just the plan (the seed API);
:meth:`Optimizer.optimize_staged` additionally returns the
:class:`OptimizationReport` EXPLAIN surfaces.  With
``use_cost_model=False`` (the paper's forced-plan experiments) both
stages collapse to the forced PatchIndex rewrites alone, reproducing
the pre-staged optimizer exactly.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.engine.parallel import DEFAULT_MORSEL_ROWS
from repro.plan import nodes
from repro.plan.cost import CostModel
from repro.plan.joinorder import (
    JOIN_ORDER_STRATEGIES,
    JoinOrderDecision,
    reorder_joins,
)
from repro.plan.selection import (
    PhysicalOperatorAssignment,
    default_selection_chain,
)
from repro.storage.catalog import Catalog

__all__ = ["Optimizer", "OptimizationReport", "rebuild_node"]


@dataclasses.dataclass
class OptimizationReport:
    """What the staged optimizer decided, for EXPLAIN introspection."""

    join_orders: List[JoinOrderDecision]
    assignment: PhysicalOperatorAssignment

    def describe(self, plan: nodes.PlanNode) -> List[str]:
        """Readable report lines (joined under the plan rendering)."""
        lines: List[str] = []
        if self.join_orders:
            lines.append("join order search:")
            for decision in self.join_orders:
                lines.append(f"  {decision.describe()}")
        choices = self.assignment.describe(plan)
        if choices:
            lines.append("operator assignments:")
            lines.extend(choices)
        return lines


class Optimizer:
    """Two-stage plan optimizer (join order, then operator selection).

    Parameters
    ----------
    catalog:
        Table/structure registry.
    index_manager:
        A :class:`~repro.core.manager.PatchIndexManager` (or anything
        with a ``get(table, column)`` returning index handles).
    zero_branch_pruning:
        Drop patch subtrees when the patch count is known to be zero.
    use_cost_model:
        Gate rewrites on estimated cost; when False, every matching
        PatchIndex rewrite is applied (the paper's forced plans) and the
        join-order/operator stages are disabled.
    parallelism / morsel_rows:
        Worker count and morsel size the cost model should assume (see
        :class:`~repro.plan.cost.CostModel`); both feed the parallel
        payoff gates, e.g. ``sort_parallel_payoff`` deciding whether a
        SortNode is costed as a fanned-out chunk-sort.
    join_order_search:
        Stage-1 strategy: ``"dp"`` (default), ``"greedy"`` or ``"off"``.
    """

    def __init__(
        self,
        catalog: Catalog,
        index_manager,
        zero_branch_pruning: bool = False,
        use_cost_model: bool = True,
        parallelism: int = 1,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        join_order_search: str = "dp",
    ) -> None:
        if join_order_search not in JOIN_ORDER_STRATEGIES:
            raise ValueError(
                f"unknown join_order_search strategy {join_order_search!r}; "
                f"expected one of {', '.join(JOIN_ORDER_STRATEGIES)}"
            )
        self.catalog = catalog
        self.index_manager = index_manager
        self.zero_branch_pruning = zero_branch_pruning
        self.use_cost_model = use_cost_model
        self.join_order_search = join_order_search
        self.cost_model = CostModel(
            catalog, parallelism=parallelism, morsel_rows=morsel_rows
        )

    # ------------------------------------------------------------------
    def optimize(self, plan: nodes.PlanNode) -> nodes.PlanNode:
        """Return the (possibly rewritten) plan."""
        plan, _ = self.optimize_staged(plan)
        return plan

    def optimize_staged(
        self, plan: nodes.PlanNode
    ) -> Tuple[nodes.PlanNode, OptimizationReport]:
        """Run both stages, returning the plan plus the decision report."""
        decisions: List[JoinOrderDecision] = []
        if self.use_cost_model and self.join_order_search != "off":
            plan, decisions = reorder_joins(
                plan, self.catalog, self.cost_model, self.join_order_search
            )
        assignment = PhysicalOperatorAssignment()
        chain = default_selection_chain(
            self.catalog,
            self.index_manager,
            self.cost_model if self.use_cost_model else None,
            zero_branch_pruning=self.zero_branch_pruning,
            force=not self.use_cost_model,
        )
        plan = chain.select_physical_operators(plan, assignment)
        return plan, OptimizationReport(decisions, assignment)


def rebuild_node(plan: nodes.PlanNode, kids) -> nodes.PlanNode:
    """Copy a node with new children (structural rebuild)."""
    if isinstance(plan, nodes.FilterNode):
        return nodes.FilterNode(kids[0], plan.predicate)
    if isinstance(plan, nodes.ProjectNode):
        return nodes.ProjectNode(kids[0], plan.outputs)
    if isinstance(plan, nodes.JoinNode):
        return nodes.JoinNode(
            kids[0], kids[1], plan.left_key, plan.right_key,
            algorithm=plan.algorithm, build_side=plan.build_side,
            dynamic_range_propagation=plan.dynamic_range_propagation,
        )
    if isinstance(plan, nodes.DistinctNode):
        return nodes.DistinctNode(kids[0], plan.columns)
    if isinstance(plan, nodes.AggregateNode):
        return nodes.AggregateNode(kids[0], plan.group_keys, plan.aggregates)
    if isinstance(plan, nodes.SortNode):
        return nodes.SortNode(kids[0], plan.keys, plan.ascending)
    if isinstance(plan, nodes.TopNNode):
        return nodes.TopNNode(kids[0], plan.keys, plan.ascending, plan.n)
    if isinstance(plan, nodes.LimitNode):
        return nodes.LimitNode(kids[0], plan.n, plan.offset)
    if isinstance(plan, nodes.UnionNode):
        return nodes.UnionNode(kids)
    if isinstance(plan, nodes.MergeCombineNode):
        return nodes.MergeCombineNode(kids, plan.key, plan.ascending)
    if isinstance(plan, nodes.ReuseCacheNode):
        return nodes.ReuseCacheNode(kids[0], plan.slot_id)
    raise TypeError(f"cannot rebuild {type(plan).__name__}")
