"""Logical plan algebra.

Plan nodes are immutable descriptions; rewrite rules produce new trees.
``PatchScanNode`` and ``MergeCombineNode`` only appear in optimized
plans (they are what the PatchIndex rewrites of §3.3 insert).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.expressions import Expression

__all__ = [
    "PlanNode",
    "ScanNode",
    "PatchScanNode",
    "FilterNode",
    "ProjectNode",
    "JoinNode",
    "DistinctNode",
    "AggregateNode",
    "SortNode",
    "TopNNode",
    "LimitNode",
    "UnionNode",
    "MergeCombineNode",
    "ReuseCacheNode",
    "ReuseLoadNode",
]


class PlanNode:
    """Base class for logical plan nodes.

    ``exec_mode`` is an operator-assignment annotation written by the
    stage-2 physical operator selection (:mod:`repro.plan.selection`):
    ``"serial"`` pins the lowered operator to the serial path,
    ``"parallel"`` marks it eligible for morsel fan-out, and ``None``
    (the default) leaves the decision to the executor's runtime gates.
    """

    #: Physical execution-mode annotation ("serial" / "parallel" / None).
    exec_mode: Optional[str] = None

    def children(self) -> List["PlanNode"]:
        """Child nodes, left to right (empty for leaves)."""
        return []

    def label(self) -> str:
        """One-line node description used in plan renderings."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Readable plan rendering."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class ScanNode(PlanNode):
    """Scan of a named table, optionally filtered."""

    def __init__(
        self,
        table: str,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Expression] = None,
    ) -> None:
        self.table = table
        self.columns = list(columns) if columns is not None else None
        self.predicate = predicate

    def label(self) -> str:
        """One-line node description."""
        pred = f", pred={self.predicate!r}" if self.predicate is not None else ""
        return f"Scan({self.table}{pred})"


class PatchScanNode(PlanNode):
    """PatchIndex scan: table scan plus patch selection (§3.3).

    ``mode`` is ``"exclude_patches"`` or ``"use_patches"``; ``index`` is
    the maintained index handle whose bitmap the selection merges into
    the flow.  ``sorted_output`` marks the NSC exclude-side flow whose
    per-partition streams must be merged to a global order.
    """

    def __init__(
        self,
        table: str,
        index,
        mode: str,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Expression] = None,
        sorted_output: bool = False,
        sort_ascending: bool = True,
    ) -> None:
        self.table = table
        self.index = index
        self.mode = mode
        self.columns = list(columns) if columns is not None else None
        self.predicate = predicate
        self.sorted_output = sorted_output
        self.sort_ascending = sort_ascending

    def label(self) -> str:
        """One-line node description."""
        return f"PatchScan({self.table}.{self.index.column}, {self.mode})"


class FilterNode(PlanNode):
    """Predicate selection."""

    def __init__(self, child: PlanNode, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return [self.child]

    def label(self) -> str:
        """One-line node description."""
        return f"Filter({self.predicate!r})"


class ProjectNode(PlanNode):
    """Projection / computed columns."""

    def __init__(self, child: PlanNode, outputs: Dict[str, Union[str, Expression]]) -> None:
        self.child = child
        self.outputs = dict(outputs)

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return [self.child]

    def label(self) -> str:
        """One-line node description."""
        return f"Project({list(self.outputs)})"


class JoinNode(PlanNode):
    """Inner equi-join.

    ``algorithm`` is decided by the optimizer: ``"hash"`` (default) or
    ``"merge"``; ``build_side`` follows the paper's lowest-cardinality
    heuristic when ``"auto"``.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: str,
        right_key: str,
        algorithm: str = "hash",
        build_side: str = "auto",
        dynamic_range_propagation: bool = False,
    ) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.algorithm = algorithm
        self.build_side = build_side
        self.dynamic_range_propagation = dynamic_range_propagation

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return [self.left, self.right]

    def label(self) -> str:
        """One-line node description."""
        return f"Join[{self.algorithm}]({self.left_key}={self.right_key})"


class DistinctNode(PlanNode):
    """Duplicate elimination."""

    def __init__(self, child: PlanNode, columns: Optional[Sequence[str]] = None) -> None:
        self.child = child
        self.columns = list(columns) if columns is not None else None

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return [self.child]

    def label(self) -> str:
        """One-line node description."""
        return f"Distinct({self.columns or 'all'})"


class AggregateNode(PlanNode):
    """Group-by aggregation (same spec as the physical operator)."""

    def __init__(
        self,
        child: PlanNode,
        group_keys: Sequence[str],
        aggregates: Dict[str, Tuple[str, object]],
    ) -> None:
        self.child = child
        self.group_keys = list(group_keys)
        self.aggregates = dict(aggregates)

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return [self.child]

    def label(self) -> str:
        """One-line node description."""
        return f"Aggregate(by={self.group_keys})"


class SortNode(PlanNode):
    """Multi-key sort."""

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        ascending: Optional[Sequence[bool]] = None,
    ) -> None:
        self.child = child
        self.keys = list(keys)
        self.ascending = list(ascending) if ascending is not None else [True] * len(self.keys)

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return [self.child]

    def label(self) -> str:
        """One-line node description."""
        return f"Sort({self.keys})"


class TopNNode(PlanNode):
    """First ``n`` rows under a sort order (ORDER BY … LIMIT n).

    A *physical* pushdown of Limit-over-Sort chosen by the stage-2
    operator selection: per-chunk selection of the n best rows plus a
    merge of the candidates, bit-identical to the full sort followed by
    the limit.
    """

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        ascending: Optional[Sequence[bool]],
        n: int,
    ) -> None:
        self.child = child
        self.keys = list(keys)
        self.ascending = list(ascending) if ascending is not None else [True] * len(self.keys)
        self.n = n

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return [self.child]

    def label(self) -> str:
        """One-line node description."""
        return f"TopN({self.keys}, n={self.n})"


class LimitNode(PlanNode):
    """First-n, after skipping ``offset`` rows."""

    def __init__(self, child: PlanNode, n: int, offset: int = 0) -> None:
        self.child = child
        self.n = n
        self.offset = offset

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return [self.child]

    def label(self) -> str:
        """One-line node description."""
        if self.offset:
            return f"Limit({self.n}, offset={self.offset})"
        return f"Limit({self.n})"


class UnionNode(PlanNode):
    """Bag union of the children's outputs."""

    def __init__(self, inputs: Sequence[PlanNode]) -> None:
        self.inputs = list(inputs)

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return list(self.inputs)

    def label(self) -> str:
        """One-line node description."""
        return f"Union(n={len(self.inputs)})"


class MergeCombineNode(PlanNode):
    """Order-preserving merge of sorted children (§3.3 sort plan)."""

    def __init__(self, inputs: Sequence[PlanNode], key: str, ascending: bool = True) -> None:
        self.inputs = list(inputs)
        self.key = key
        self.ascending = ascending

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return list(self.inputs)

    def label(self) -> str:
        """One-line node description."""
        return f"MergeCombine(key={self.key})"


class ReuseCacheNode(PlanNode):
    """Materializes the child result under ``slot_id`` (§5's ReuseCache)."""

    def __init__(self, child: PlanNode, slot_id: str) -> None:
        self.child = child
        self.slot_id = slot_id

    def children(self) -> List[PlanNode]:
        """Child nodes, left to right."""
        return [self.child]

    def label(self) -> str:
        """One-line node description."""
        return f"ReuseCache({self.slot_id})"


class ReuseLoadNode(PlanNode):
    """Reads a result materialized by a ReuseCacheNode (§5's ReuseLoad).

    ``hint_rows`` carries the producer's cardinality estimate so the
    cost model can reason about plans that read the cached result.
    """

    def __init__(self, slot_id: str, hint_rows: float = 1000.0) -> None:
        self.slot_id = slot_id
        self.hint_rows = hint_rows

    def label(self) -> str:
        """One-line node description."""
        return f"ReuseLoad({self.slot_id})"
