"""Logical plans, the PatchIndex optimizer rules and plan execution.

Queries are expressed as logical plan trees (:mod:`repro.plan.nodes`).
The :class:`~repro.plan.optimizer.Optimizer` applies the PatchIndex
rewrites of §3.3 — distinct, sort and join optimization via subtree
cloning, plus zero-branch pruning (§6.3) — gated by the cost model of
§3.5, and the :mod:`~repro.plan.executor` lowers logical plans onto the
physical operators of :mod:`repro.engine`.
"""

from repro.plan.nodes import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    MergeCombineNode,
    PatchScanNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionNode,
)
from repro.plan.stats import estimate_rows
from repro.plan.cost import CostModel
from repro.plan.rules import (
    rewrite_distinct,
    rewrite_join,
    rewrite_sort,
)
from repro.plan.optimizer import Optimizer
from repro.plan.executor import build_operator_tree, execute_plan

__all__ = [
    "PlanNode",
    "ScanNode",
    "PatchScanNode",
    "FilterNode",
    "ProjectNode",
    "JoinNode",
    "DistinctNode",
    "AggregateNode",
    "SortNode",
    "LimitNode",
    "UnionNode",
    "MergeCombineNode",
    "estimate_rows",
    "CostModel",
    "rewrite_distinct",
    "rewrite_sort",
    "rewrite_join",
    "Optimizer",
    "build_operator_tree",
    "execute_plan",
]
