"""Logical plans, the staged optimizer and plan execution.

Queries are expressed as logical plan trees (:mod:`repro.plan.nodes`).
The :class:`~repro.plan.optimizer.Optimizer` runs in two stages: join
orders are enumerated over the join graph first
(:mod:`repro.plan.joinorder`), then a chain of
:class:`~repro.plan.selection.PhysicalOperatorSelection` links — the
PatchIndex rewrites of §3.3, join algorithm/build side, TopN pushdown,
serial/parallel variants — assigns physical operators, gated by the
cost model of §3.5.  The :mod:`~repro.plan.executor` lowers the
annotated plans onto the physical operators of :mod:`repro.engine`.
"""

from repro.plan.nodes import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    MergeCombineNode,
    PatchScanNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    TopNNode,
    UnionNode,
)
from repro.plan.stats import analyze_table, distinct_count, estimate_rows
from repro.plan.cost import CostModel
from repro.plan.rules import (
    rewrite_distinct,
    rewrite_join,
    rewrite_sort,
)
from repro.plan.joinorder import (
    JoinGraph,
    build_join_tree,
    dp_order,
    enumerate_orders,
    extract_join_graph,
    greedy_order,
    reorder_joins,
)
from repro.plan.selection import (
    JoinOperatorSelection,
    ParallelVariantSelection,
    PatchIndexSelection,
    PhysicalOperatorAssignment,
    PhysicalOperatorSelection,
    TopNSelection,
    default_selection_chain,
)
from repro.plan.optimizer import OptimizationReport, Optimizer
from repro.plan.executor import build_operator_tree, execute_plan

__all__ = [
    "PlanNode",
    "ScanNode",
    "PatchScanNode",
    "FilterNode",
    "ProjectNode",
    "JoinNode",
    "DistinctNode",
    "AggregateNode",
    "SortNode",
    "TopNNode",
    "LimitNode",
    "UnionNode",
    "MergeCombineNode",
    "estimate_rows",
    "analyze_table",
    "distinct_count",
    "CostModel",
    "rewrite_distinct",
    "rewrite_sort",
    "rewrite_join",
    "JoinGraph",
    "extract_join_graph",
    "enumerate_orders",
    "build_join_tree",
    "dp_order",
    "greedy_order",
    "reorder_joins",
    "PhysicalOperatorSelection",
    "PhysicalOperatorAssignment",
    "PatchIndexSelection",
    "JoinOperatorSelection",
    "TopNSelection",
    "ParallelVariantSelection",
    "default_selection_chain",
    "Optimizer",
    "OptimizationReport",
    "build_operator_tree",
    "execute_plan",
]
