"""Stage 2 of the staged optimizer: physical operator selection.

A chain of :class:`PhysicalOperatorSelection` policies (PostBOUND's
abstraction: links composed with :meth:`~PhysicalOperatorSelection.chain_with`,
each link may *assign* operators or *defer* to the next) maps the
logical plan produced by stage 1 (:mod:`repro.plan.joinorder`) onto
physical operators:

* :class:`PatchIndexSelection` — the PatchIndex rewrites of §3.3
  (:mod:`repro.plan.rules`), recast as the first link of the chain;
* :class:`JoinOperatorSelection` — MergeJoin over SortKey-ordered inputs
  vs HashJoin, and an explicit build side when both input cardinalities
  are exact;
* :class:`TopNSelection` — Limit-over-Sort collapsed into the physical
  TopN operator when the pushdown undercuts the full sort;
* :class:`ParallelVariantSelection` — serial vs parallel execution-mode
  annotations (``PlanNode.exec_mode``) for morsel-eligible operators.

Decisions are recorded in a :class:`PhysicalOperatorAssignment` keyed by
node identity, with the per-operator cost dicts of
:meth:`repro.plan.cost.CostModel.operator_cost`, so EXPLAIN can surface
what each link chose and why.  Every link is bound by the engine's
bit-identity contract: an assignment may only change *how* a node
executes, never the rows (or row order) it returns — which is why the
build-side and serial pins only fire on exact cardinalities, where the
plan-time decision provably matches the one the runtime would take.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.engine.parallel import DEFAULT_MIN_PARALLEL_ROWS
from repro.plan import nodes
from repro.plan.cost import CostModel, OperatorCost
from repro.plan.rules import (
    is_sorted_on,
    rewrite_distinct,
    rewrite_join,
    rewrite_sort,
)
from repro.plan.stats import estimate_rows
from repro.storage.catalog import Catalog

__all__ = [
    "OperatorChoice",
    "PhysicalOperatorAssignment",
    "PhysicalOperatorSelection",
    "PatchIndexSelection",
    "JoinOperatorSelection",
    "TopNSelection",
    "ParallelVariantSelection",
    "default_selection_chain",
]


@dataclasses.dataclass
class OperatorChoice:
    """One physical operator decision: what was picked, at what cost, by whom."""

    operator: str
    cost: OperatorCost
    source: str

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        note = ""
        if self.cost:
            note = (
                f" (rows~{float(self.cost['cardinality']):,.0f}"
                f", per-row~{float(self.cost['time_per_row']):.2f}"
                f", startup~{float(self.cost['startup']):,.1f}"
                f", total~{float(self.cost['total']):,.1f})"
            )
        return f"{self.operator} [{self.source}]{note}"


class PhysicalOperatorAssignment:
    """Log of stage-2 decisions, keyed by plan-node identity.

    The plan nodes themselves carry the operative annotations
    (``JoinNode.algorithm`` / ``build_side``, ``PlanNode.exec_mode``,
    rewritten subtrees); this log is the introspection side — which link
    decided what, with the operator's cost entry — surfaced through
    ``EXPLAIN (costs)``.
    """

    def __init__(self) -> None:
        # Keyed by id(node), with the node pinned alongside the choice:
        # without the reference, a freed node's id could be recycled by a
        # fresh allocation and inherit its entry.
        self._choices: Dict[int, Tuple[nodes.PlanNode, OperatorChoice]] = {}

    def assign(
        self,
        node: nodes.PlanNode,
        operator: str,
        cost_model: Optional[CostModel],
        source: str,
    ) -> None:
        """Record that ``source`` picked ``operator`` for ``node``."""
        cost: OperatorCost = {}
        if cost_model is not None:
            try:
                cost = cost_model.operator_cost(node)
            except (TypeError, KeyError, ValueError):
                cost = {}
        self._choices[id(node)] = (node, OperatorChoice(operator, cost, source))

    def get(self, node: nodes.PlanNode) -> Optional[OperatorChoice]:
        """The choice recorded for ``node``, or None."""
        entry = self._choices.get(id(node))
        return None if entry is None else entry[1]

    def __len__(self) -> int:
        """Number of nodes with recorded choices."""
        return len(self._choices)

    def describe(self, plan: nodes.PlanNode) -> List[str]:
        """Per-node decision lines in plan (pre-)order."""
        lines: List[str] = []

        def walk(node: nodes.PlanNode, indent: int) -> None:
            """Emit this node's decision line (if any) and recurse."""
            choice = self.get(node)
            if choice is not None:
                lines.append("  " * indent + f"{node.label()}: {choice.describe()}")
            for child in node.children():
                walk(child, indent)

        walk(plan, 1)
        return lines


class PhysicalOperatorSelection(abc.ABC):
    """One link of the chainable operator-selection policy.

    Mirrors PostBOUND's ``PhysicalOperatorSelection``: links form a
    singly-linked chain; each link applies its own selection and then
    delegates the (possibly rewritten) plan to ``next_selection``.  A
    link *assigns* by annotating nodes and recording the choice, or
    *defers* by leaving a node untouched for later links (or the
    executor's runtime heuristics).
    """

    def __init__(self) -> None:
        self.next_selection: Optional[PhysicalOperatorSelection] = None

    def chain_with(
        self, next_selection: "PhysicalOperatorSelection"
    ) -> "PhysicalOperatorSelection":
        """Append a link at the end of this chain; returns the chain head."""
        if self.next_selection is None:
            self.next_selection = next_selection
        else:
            self.next_selection.chain_with(next_selection)
        return self

    def select_physical_operators(
        self, plan: nodes.PlanNode, assignment: PhysicalOperatorAssignment
    ) -> nodes.PlanNode:
        """Run this link, then the rest of the chain."""
        plan = self._apply_selection(plan, assignment)
        if self.next_selection is not None:
            plan = self.next_selection.select_physical_operators(plan, assignment)
        return plan

    @abc.abstractmethod
    def _apply_selection(
        self, plan: nodes.PlanNode, assignment: PhysicalOperatorAssignment
    ) -> nodes.PlanNode:
        """This link's own selection pass (without chain delegation)."""


class PatchIndexSelection(PhysicalOperatorSelection):
    """The PatchIndex rewrites of §3.3 as the first chain link.

    Wraps the bottom-up rules walk that used to *be* the optimizer:
    distinct/sort/join patterns over constraint-carrying scans are
    rewritten into exclude-patches / use-patches flows, gated by the
    cost model unless ``force`` reproduces the paper's forced plans.
    """

    def __init__(
        self,
        catalog: Catalog,
        index_manager,
        cost_model: Optional[CostModel],
        zero_branch_pruning: bool = False,
        force: bool = False,
    ) -> None:
        super().__init__()
        self.catalog = catalog
        self.index_manager = index_manager
        self.cost_model = cost_model
        self.zero_branch_pruning = zero_branch_pruning
        self.force = force

    def _apply_selection(
        self, plan: nodes.PlanNode, assignment: PhysicalOperatorAssignment
    ) -> nodes.PlanNode:
        kids = plan.children()
        if kids:
            new_kids = [self._apply_selection(c, assignment) for c in kids]
            if not all(a is b for a, b in zip(kids, new_kids)):
                from repro.plan.optimizer import rebuild_node

                plan = rebuild_node(plan, new_kids)
        return self._apply_rules(plan, assignment)

    def _apply_rules(
        self, plan: nodes.PlanNode, assignment: PhysicalOperatorAssignment
    ) -> nodes.PlanNode:
        lookup = self.index_manager.get
        for kind, rewrite in (
            ("distinct", rewrite_distinct),
            ("sort", rewrite_sort),
        ):
            out = rewrite(
                plan, lookup, self.cost_model, self.zero_branch_pruning, self.force
            )
            if out is not None:
                assignment.assign(
                    out, f"PatchIndex[{kind}]", self.cost_model, type(self).__name__
                )
                return out
        out = rewrite_join(
            plan,
            lookup,
            lambda node, key: is_sorted_on(node, key, self.catalog),
            self.cost_model,
            self.zero_branch_pruning,
            self.force,
        )
        if out is not None:
            assignment.assign(
                out, "PatchIndex[join]", self.cost_model, type(self).__name__
            )
            return out
        return plan


class JoinOperatorSelection(PhysicalOperatorSelection):
    """Per-join algorithm and build-side selection.

    For each plain hash join the link considers a MergeJoin when *both*
    inputs are already ordered on their keys (SortKey structures or NSC
    exclude flows, via :func:`repro.plan.rules.is_sorted_on`) and the
    modeled merge cost undercuts the hash cost; otherwise it pins the
    hash build side explicitly.  Both moves fire only when both input
    cardinalities are exact (unfiltered scans), where the plan-time
    decision provably equals the runtime ``auto`` decision — estimates
    defer to the runtime heuristic instead of risking a row-order
    divergence from the seed plan.
    """

    def __init__(self, catalog: Catalog, cost_model: CostModel) -> None:
        super().__init__()
        self.catalog = catalog
        self.cost_model = cost_model

    def _exact_rows(self, node: nodes.PlanNode) -> Optional[float]:
        """Output cardinality when it is exact at plan time, else None."""
        if isinstance(node, nodes.ScanNode) and node.predicate is None:
            try:
                return float(self.catalog.table(node.table).num_rows)
            except KeyError:
                return None
        if isinstance(node, nodes.PatchScanNode) and node.predicate is None:
            patches = float(node.index.num_patches)
            total = float(node.index.num_rows)
            return patches if node.mode == "use_patches" else total - patches
        return None

    def _apply_selection(
        self, plan: nodes.PlanNode, assignment: PhysicalOperatorAssignment
    ) -> nodes.PlanNode:
        for child in plan.children():
            self._apply_selection(child, assignment)
        if (
            not isinstance(plan, nodes.JoinNode)
            or plan.algorithm != "hash"
            or plan.build_side != "auto"
            or plan.dynamic_range_propagation
        ):
            return plan
        left_rows = self._exact_rows(plan.left)
        right_rows = self._exact_rows(plan.right)
        if left_rows is None or right_rows is None:
            return plan  # defer to the runtime heuristic
        if (
            left_rows <= right_rows
            and is_sorted_on(plan.left, plan.left_key, self.catalog)
            and is_sorted_on(plan.right, plan.right_key, self.catalog)
        ):
            hash_cost = float(self.cost_model.operator_cost(plan)["total"])
            trial = nodes.JoinNode(
                plan.left, plan.right, plan.left_key, plan.right_key, algorithm="merge"
            )
            if float(self.cost_model.operator_cost(trial)["total"]) < hash_cost:
                # sorted build side + sorted probe side: the merge output
                # equals the hash output ordering (probe-major, build
                # rows in key/original order), so the flip is free
                plan.algorithm = "merge"
                assignment.assign(
                    plan, "MergeJoin[sortkey]", self.cost_model, type(self).__name__
                )
                return plan
        plan.build_side = "left" if left_rows <= right_rows else "right"
        assignment.assign(
            plan,
            f"HashJoin[build={plan.build_side}]",
            self.cost_model,
            type(self).__name__,
        )
        return plan


class TopNSelection(PhysicalOperatorSelection):
    """Collapses ``Limit(Sort)`` into the physical TopN operator.

    Matches ``Limit(Sort(x))`` and ``Limit(Project(Sort(x)))`` (the
    shapes the parser emits for ``ORDER BY … LIMIT n``) and substitutes
    a :class:`~repro.plan.nodes.TopNNode` when the per-chunk selection
    cost undercuts the full sort.  Projections are row-wise, so hoisting
    them above the TopN preserves rows and order exactly.
    """

    def __init__(self, catalog: Catalog, cost_model: CostModel) -> None:
        super().__init__()
        self.catalog = catalog
        self.cost_model = cost_model

    def _apply_selection(
        self, plan: nodes.PlanNode, assignment: PhysicalOperatorAssignment
    ) -> nodes.PlanNode:
        kids = plan.children()
        if kids:
            new_kids = [self._apply_selection(c, assignment) for c in kids]
            if not all(a is b for a, b in zip(kids, new_kids)):
                from repro.plan.optimizer import rebuild_node

                plan = rebuild_node(plan, new_kids)
        if not isinstance(plan, nodes.LimitNode):
            return plan
        if plan.offset:
            # TopN keeps only the first n rows; an OFFSET needs the rows
            # it skips, so the rewrite does not apply
            return plan
        project: Optional[nodes.ProjectNode] = None
        target = plan.child
        if isinstance(target, nodes.ProjectNode):
            project = target
            target = target.child
        if not isinstance(target, nodes.SortNode):
            return plan
        child_rows = estimate_rows(target.child, self.catalog)
        if self.cost_model.topn_cost(child_rows, float(plan.n)) >= self.cost_model.sort_cost(
            child_rows
        ):
            return plan
        topn = nodes.TopNNode(target.child, target.keys, target.ascending, plan.n)
        assignment.assign(
            topn, f"TopN[n={plan.n}]", self.cost_model, type(self).__name__
        )
        if project is not None:
            return nodes.ProjectNode(topn, project.outputs)
        return topn


class ParallelVariantSelection(PhysicalOperatorSelection):
    """Serial vs parallel execution-mode annotations.

    Writes ``PlanNode.exec_mode``: ``"serial"`` pins an operator to the
    serial path — only where the runtime gate would provably stay serial
    anyway (exact driving cardinality below the parallel threshold, or a
    one-worker model), so the pin documents and hard-wires a decision
    without changing it — and ``"parallel"`` marks eligibility for
    morsel fan-out (the runtime payoff gates still apply).  Everything
    else defers to the executor's heuristics.
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel,
        min_parallel_rows: int = DEFAULT_MIN_PARALLEL_ROWS,
    ) -> None:
        super().__init__()
        self.catalog = catalog
        self.cost_model = cost_model
        self.min_parallel_rows = int(min_parallel_rows)

    def _driving_rows(self, node: nodes.PlanNode) -> Optional[float]:
        """Exact morsel-pipeline driving cardinality, or None.

        Scan-rooted pipelines are gated by the *table* cardinality (the
        morsel source), which is exact no matter what predicates sit in
        the pipeline.
        """
        if isinstance(node, nodes.ScanNode):
            try:
                return float(self.catalog.table(node.table).num_rows)
            except KeyError:
                return None
        if isinstance(node, nodes.PatchScanNode):
            return float(node.index.num_rows)
        if isinstance(node, nodes.FilterNode) and isinstance(node.child, nodes.ScanNode):
            return self._driving_rows(node.child)
        return None

    def _apply_selection(
        self, plan: nodes.PlanNode, assignment: PhysicalOperatorAssignment
    ) -> nodes.PlanNode:
        for child in plan.children():
            self._apply_selection(child, assignment)
        if not isinstance(
            plan, (nodes.ScanNode, nodes.PatchScanNode, nodes.FilterNode)
        ):
            return plan
        rows = self._driving_rows(plan)
        if rows is None:
            return plan
        name = type(plan).__name__
        name = name[:-4] if name.endswith("Node") else name
        if self.cost_model.parallelism <= 1 or rows < self.min_parallel_rows:
            plan.exec_mode = "serial"
            assignment.assign(
                plan, f"{name}[serial]", self.cost_model, type(self).__name__
            )
        else:
            plan.exec_mode = "parallel"
            assignment.assign(
                plan, f"{name}[parallel]", self.cost_model, type(self).__name__
            )
        return plan


def default_selection_chain(
    catalog: Catalog,
    index_manager,
    cost_model: Optional[CostModel],
    zero_branch_pruning: bool = False,
    force: bool = False,
) -> PhysicalOperatorSelection:
    """The standard stage-2 chain: PatchIndex → joins → TopN → parallel.

    In ``force`` mode (the paper's forced-plan experiments) the chain is
    the PatchIndex link alone, reproducing the pre-staged optimizer's
    behavior exactly.
    """
    head: PhysicalOperatorSelection = PatchIndexSelection(
        catalog, index_manager, cost_model, zero_branch_pruning, force
    )
    if force or cost_model is None:
        return head
    return (
        head.chain_with(JoinOperatorSelection(catalog, cost_model))
        .chain_with(TopNSelection(catalog, cost_model))
        .chain_with(ParallelVariantSelection(catalog, cost_model))
    )
