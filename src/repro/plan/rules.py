"""PatchIndex rewrite rules (paper §3.3, Figure 2).

Each rule recognizes a pattern over a scan subtree "X" (no joins or
aggregations between the constraint-carrying scan and the optimized
operator), clones the subtree into an *exclude-patches* and a
*use-patches* flow, exploits the constraint in the exclude flow and
recombines:

* **distinct** — the exclude flow is already duplicate-free, so its
  aggregation is dropped; the patch flow keeps the distinct; a plain
  Union combines (value sets are disjoint by the NUC invariant).
* **sort** — the exclude flow is already sorted, so its sort operator
  is dropped; only patches are sorted; a Merge recombines in order.
* **join** — the exclude flow of an NSC join column joins via the
  cheaper MergeJoin against the sorted other side "X"; the patches join
  via a HashJoin built on the (small) patch side; "X" is buffered with
  Reuse operators instead of being computed twice.

Zero-branch pruning (§6.3) drops the patch subtree entirely when the
known patch count is zero.  The cost model (§3.5) gates each rewrite
unless ``force=True`` (used to reproduce the paper's forced plans).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Tuple

from repro.core.constraints import (
    NearlyConstantColumn,
    NearlySortedColumn,
    NearlyUniqueColumn,
)
from repro.engine.expressions import BinaryExpr, ColumnRef, Literal
from repro.plan import nodes
from repro.plan.cost import CostModel

__all__ = [
    "rewrite_distinct",
    "rewrite_sort",
    "rewrite_join",
    "rewrite_constant_filter",
    "find_single_scan",
    "is_sorted_on",
]

EXCLUDE = "exclude_patches"
USE = "use_patches"

_slot_counter = itertools.count()


def find_single_scan(node: nodes.PlanNode) -> Optional[nodes.ScanNode]:
    """The unique ScanNode of a join/aggregation-free subtree, or None.

    This is the paper's side condition on "X": only order-preserving,
    tuple-local operators (filters, projections) may sit between the
    scan and the rewritten operator.
    """
    if isinstance(node, nodes.ScanNode):
        return node
    if isinstance(node, (nodes.FilterNode, nodes.ProjectNode)):
        return find_single_scan(node.children()[0])
    return None


def _clone_replacing_scan(
    node: nodes.PlanNode, replacement: nodes.PlanNode
) -> nodes.PlanNode:
    """Copy a Filter/Project chain, substituting its ScanNode."""
    if isinstance(node, nodes.ScanNode):
        return replacement
    if isinstance(node, nodes.FilterNode):
        return nodes.FilterNode(
            _clone_replacing_scan(node.child, replacement), node.predicate
        )
    if isinstance(node, nodes.ProjectNode):
        return nodes.ProjectNode(
            _clone_replacing_scan(node.child, replacement), node.outputs
        )
    raise TypeError(f"cannot clone {type(node).__name__} in a scan subtree")


def _patch_scan(
    scan: nodes.ScanNode, index, mode: str, sorted_output: bool = False,
    sort_ascending: bool = True,
) -> nodes.PatchScanNode:
    return nodes.PatchScanNode(
        scan.table,
        index,
        mode,
        columns=scan.columns,
        predicate=scan.predicate,
        sorted_output=sorted_output,
        sort_ascending=sort_ascending,
    )


def _accept(
    original: nodes.PlanNode,
    candidate: nodes.PlanNode,
    cost_model: Optional[CostModel],
    force: bool,
) -> Optional[nodes.PlanNode]:
    if force or cost_model is None:
        return candidate
    if cost_model.cost(candidate) < cost_model.cost(original):
        return candidate
    return None


# ----------------------------------------------------------------------
# distinct rewrite (Figure 2, left)
# ----------------------------------------------------------------------
def rewrite_distinct(
    plan: nodes.PlanNode,
    index_lookup: Callable[[str, str], Optional[object]],
    cost_model: Optional[CostModel] = None,
    zero_branch_pruning: bool = False,
    force: bool = False,
) -> Optional[nodes.PlanNode]:
    """Rewrite a DistinctNode using a NUC PatchIndex, or return None."""
    if not isinstance(plan, nodes.DistinctNode):
        return None
    if plan.columns is None or len(plan.columns) != 1:
        return None
    column = plan.columns[0]
    scan = find_single_scan(plan.child)
    if scan is None:
        return None
    index = index_lookup(scan.table, column)
    if index is None or not isinstance(index.constraint, NearlyUniqueColumn):
        return None
    exclude_flow = nodes.ProjectNode(
        _clone_replacing_scan(plan.child, _patch_scan(scan, index, EXCLUDE)),
        {column: column},
    )
    if zero_branch_pruning and index.num_patches == 0:
        return _accept(plan, exclude_flow, cost_model, force)
    use_flow = nodes.DistinctNode(
        _clone_replacing_scan(plan.child, _patch_scan(scan, index, USE)),
        [column],
    )
    candidate = nodes.UnionNode([exclude_flow, use_flow])
    return _accept(plan, candidate, cost_model, force)


# ----------------------------------------------------------------------
# sort rewrite (Figure 2, left, with Merge instead of Union)
# ----------------------------------------------------------------------
def rewrite_sort(
    plan: nodes.PlanNode,
    index_lookup: Callable[[str, str], Optional[object]],
    cost_model: Optional[CostModel] = None,
    zero_branch_pruning: bool = False,
    force: bool = False,
) -> Optional[nodes.PlanNode]:
    """Rewrite a SortNode using an NSC PatchIndex, or return None."""
    if not isinstance(plan, nodes.SortNode):
        return None
    if len(plan.keys) != 1:
        return None
    column = plan.keys[0]
    ascending = plan.ascending[0]
    scan = find_single_scan(plan.child)
    if scan is None:
        return None
    index = index_lookup(scan.table, column)
    if index is None or not isinstance(index.constraint, NearlySortedColumn):
        return None
    if index.constraint.ascending != ascending:
        return None  # the materialized order must match the query order
    exclude_flow = _clone_replacing_scan(
        plan.child,
        _patch_scan(scan, index, EXCLUDE, sorted_output=True, sort_ascending=ascending),
    )
    if zero_branch_pruning and index.num_patches == 0:
        return _accept(plan, exclude_flow, cost_model, force)
    use_flow = nodes.SortNode(
        _clone_replacing_scan(plan.child, _patch_scan(scan, index, USE)),
        [column],
        [ascending],
    )
    candidate = nodes.MergeCombineNode([exclude_flow, use_flow], column, ascending)
    return _accept(plan, candidate, cost_model, force)


# ----------------------------------------------------------------------
# join rewrite (Figure 2, right)
# ----------------------------------------------------------------------
def rewrite_join(
    plan: nodes.PlanNode,
    index_lookup: Callable[[str, str], Optional[object]],
    sorted_side_check: Callable[[nodes.PlanNode, str], bool],
    cost_model: Optional[CostModel] = None,
    zero_branch_pruning: bool = False,
    force: bool = False,
) -> Optional[nodes.PlanNode]:
    """Rewrite a hash JoinNode into MergeJoin + patch HashJoin, or None.

    One join input ("Y") must be a scan subtree over a table with an NSC
    PatchIndex on its join key; the other input ("X") must be sorted on
    its join key (``sorted_side_check``).  Y's order is preserved by
    construction (scan order, Filter/Project only).
    """
    if not isinstance(plan, nodes.JoinNode) or plan.algorithm != "hash":
        return None
    for x_side, y_side, x_key, y_key in (
        (plan.left, plan.right, plan.left_key, plan.right_key),
        (plan.right, plan.left, plan.right_key, plan.left_key),
    ):
        scan = find_single_scan(y_side)
        if scan is None:
            continue
        index = index_lookup(scan.table, y_key)
        if index is None or not isinstance(index.constraint, NearlySortedColumn):
            continue
        if not sorted_side_check(x_side, x_key):
            continue
        return _build_join_rewrite(
            plan, x_side, y_side, x_key, y_key, scan, index,
            cost_model, zero_branch_pruning, force,
        )
    return None


def _build_join_rewrite(
    plan: nodes.JoinNode,
    x_side: nodes.PlanNode,
    y_side: nodes.PlanNode,
    x_key: str,
    y_key: str,
    scan: nodes.ScanNode,
    index,
    cost_model: Optional[CostModel],
    zero_branch_pruning: bool,
    force: bool,
) -> Optional[nodes.PlanNode]:
    ascending = index.constraint.ascending
    y_exclude = _clone_replacing_scan(
        y_side,
        _patch_scan(scan, index, EXCLUDE, sorted_output=True, sort_ascending=ascending),
    )
    if zero_branch_pruning and index.num_patches == 0:
        candidate: nodes.PlanNode = nodes.JoinNode(
            x_side, y_exclude, x_key, y_key, algorithm="merge"
        )
        return _accept(plan, candidate, cost_model, force)
    slot_id = f"x-side-{next(_slot_counter)}"
    x_cached = nodes.ReuseCacheNode(x_side, slot_id)
    if cost_model is not None:
        from repro.plan.stats import estimate_rows

        hint = estimate_rows(x_side, cost_model.catalog)
    else:
        hint = 1000.0
    x_again = nodes.ReuseLoadNode(slot_id, hint_rows=hint)
    merge_part = nodes.JoinNode(x_cached, y_exclude, x_key, y_key, algorithm="merge")
    y_use = _clone_replacing_scan(y_side, _patch_scan(scan, index, USE))
    # hash table built on the patches: the lowest-cardinality side (§3.3)
    hash_part = nodes.JoinNode(
        y_use, x_again, y_key, x_key, algorithm="hash", build_side="left"
    )
    candidate = nodes.UnionNode([merge_part, hash_part])
    return _accept(plan, candidate, cost_model, force)


# ----------------------------------------------------------------------
# constant-filter rewrite (§5.5 / §7 extension: nearly constant columns)
# ----------------------------------------------------------------------
def rewrite_constant_filter(
    plan: nodes.PlanNode,
    index_lookup: Callable[[str, str], Optional[object]],
    cost_model: Optional[CostModel] = None,
    zero_branch_pruning: bool = False,
    force: bool = False,
) -> Optional[nodes.PlanNode]:
    """Rewrite an equality filter on an NCC column, or return None.

    Non-patch tuples all carry the constant, so their predicate outcome
    is known at optimization time: for ``column = constant`` the whole
    exclude-patches flow qualifies without evaluating the predicate;
    for any other comparison value the exclude flow is provably empty
    and only the patches need to be checked.
    """
    if not isinstance(plan, nodes.FilterNode):
        return None
    match = _match_column_eq_literal(plan.predicate)
    if match is None:
        return None
    column, value = match
    if not isinstance(plan.child, nodes.ScanNode):
        return None
    scan = plan.child
    index = index_lookup(scan.table, column)
    if index is None or not isinstance(index.constraint, NearlyConstantColumn):
        return None
    constant = getattr(index, "constant_value", None)
    if constant is None:
        return None
    use_flow = nodes.FilterNode(
        _patch_scan(scan, index, USE), plan.predicate
    )
    if value != constant:
        # the exclude flow cannot match: only patches can
        return _accept(plan, use_flow, cost_model, force)
    exclude_flow = _patch_scan(scan, index, EXCLUDE)
    if zero_branch_pruning and index.num_patches == 0:
        return _accept(plan, exclude_flow, cost_model, force)
    candidate = nodes.UnionNode([exclude_flow, use_flow])
    return _accept(plan, candidate, cost_model, force)


def _match_column_eq_literal(pred) -> Optional[Tuple[str, object]]:
    """Decompose ``col(X) == lit(v)`` (either operand order), else None."""
    if not isinstance(pred, BinaryExpr) or pred.symbol != "=":
        return None
    left, right = pred.left, pred.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left.name, right.value
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        return right.name, left.value
    return None


# ----------------------------------------------------------------------
# sortedness propagation
# ----------------------------------------------------------------------
def is_sorted_on(node: nodes.PlanNode, key: str, catalog) -> bool:
    """Whether a plan node's output is sorted on ``key``.

    True for scans of tables with a registered SortKey on the column,
    for NSC exclude-patches flows, and propagated through
    order-preserving operators (filters, projections keeping the key,
    and the probe side of a hash join, §3.3).
    """
    if isinstance(node, nodes.ScanNode):
        return catalog.structure("sortkey", node.table, key) is not None
    if isinstance(node, nodes.PatchScanNode):
        return (
            node.mode == EXCLUDE
            and isinstance(node.index.constraint, NearlySortedColumn)
            and node.index.column == key
        )
    if isinstance(node, nodes.FilterNode):
        return is_sorted_on(node.child, key, catalog)
    if isinstance(node, nodes.ProjectNode):
        passed = node.outputs.get(key)
        if passed is None or (isinstance(passed, str) and passed != key):
            return False
        if not isinstance(passed, str):
            return False
        return is_sorted_on(node.child, key, catalog)
    if isinstance(node, nodes.JoinNode) and node.algorithm == "hash":
        # the probe side's order survives a hash join
        if node.build_side == "left":
            return is_sorted_on(node.right, key, catalog)
        if node.build_side == "right":
            return is_sorted_on(node.left, key, catalog)
        return False
    if isinstance(node, nodes.JoinNode) and node.algorithm == "merge":
        # merge join output follows the probe (right) input's order
        return is_sorted_on(node.right, key, catalog)
    if isinstance(node, nodes.ReuseCacheNode):
        return is_sorted_on(node.child, key, catalog)
    return False
