"""Lowering logical plans onto physical operators and running them."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.engine.batch import ROWID, Relation
from repro.engine import operators as ops
from repro.engine.parallel import ExecutionContext
from repro.plan import nodes
from repro.storage.catalog import Catalog
from repro.storage.partition import PartitionedTable

__all__ = ["build_operator_tree", "execute_plan", "explain_plan"]


class _LoweringContext:
    """Per-plan state: shared Reuse slots."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.slots: Dict[str, ops.ReuseSlot] = {}

    def slot(self, slot_id: str) -> ops.ReuseSlot:
        if slot_id not in self.slots:
            self.slots[slot_id] = ops.ReuseSlot()
        return self.slots[slot_id]


def build_operator_tree(
    plan: nodes.PlanNode,
    catalog: Catalog,
    context: Optional[ExecutionContext] = None,
) -> ops.Operator:
    """Translate a logical plan into a physical operator tree.

    ``context`` attaches a morsel-parallel execution context to every
    operator of the tree; ``None`` keeps execution serial.
    """
    root = _lower(plan, _LoweringContext(catalog))
    if context is not None:
        root.bind_context(context)
    return root


def execute_plan(
    plan: nodes.PlanNode,
    catalog: Catalog,
    context: Optional[ExecutionContext] = None,
) -> Relation:
    """Build and run a plan; internal rowID columns are stripped."""
    result = build_operator_tree(plan, catalog, context).execute()
    if ROWID in result:
        result = result.drop([ROWID])
    return result


def explain_plan(plan: nodes.PlanNode, catalog: Catalog, cost_model=None, report=None) -> str:
    """Readable plan rendering annotated with optimizer estimates.

    Extends ``plan.explain()`` with per-node estimated cardinalities
    and, given a :class:`~repro.plan.cost.CostModel`, per-subtree cost
    plus a closing ``admission cost hint`` line — the figure the async
    session records for every query it admits.  A staged
    :class:`~repro.plan.optimizer.OptimizationReport` appends the
    join-order decisions and per-node operator assignments (with their
    cost dicts).  Nodes the estimators cannot handle render without
    annotations instead of failing, so the introspection surface never
    breaks a working plan.
    """
    from repro.plan.stats import estimate_rows

    lines = []

    def walk(node: nodes.PlanNode, indent: int) -> None:
        """Render one node (plus annotations) and recurse."""
        note = ""
        try:
            note = f"  [rows~{estimate_rows(node, catalog):,.0f}"
            if cost_model is not None:
                note += f", cost~{cost_model.cost(node):,.1f}"
            note += "]"
        except (TypeError, KeyError, ValueError):
            note = ""
        lines.append("  " * indent + node.label() + note)
        for child in node.children():
            walk(child, indent + 1)

    walk(plan, 0)
    if report is not None:
        lines.extend(report.describe(plan))
    if cost_model is not None:
        lines.append(
            f"admission cost hint: {cost_model.admission_cost(plan):,.1f} units"
        )
    return "\n".join(lines)


def _lower(plan: nodes.PlanNode, ctx: _LoweringContext) -> ops.Operator:
    op = _lower_node(plan, ctx)
    if plan.exec_mode is not None:
        # stage-2 operator assignment: honor the planned execution mode
        # instead of re-deriving it ("serial" keeps the operator off the
        # parallel paths; "parallel" marks eligibility)
        op.forced_mode = plan.exec_mode
    return op


def _lower_node(plan: nodes.PlanNode, ctx: _LoweringContext) -> ops.Operator:
    if isinstance(plan, nodes.ScanNode):
        table = ctx.catalog.table(plan.table)
        return ops.Scan(table, columns=plan.columns, predicate=plan.predicate)
    if isinstance(plan, nodes.PatchScanNode):
        return _lower_patch_scan(plan, ctx)
    if isinstance(plan, nodes.FilterNode):
        return ops.Filter(_lower(plan.child, ctx), plan.predicate)
    if isinstance(plan, nodes.ProjectNode):
        return ops.Project(_lower(plan.child, ctx), plan.outputs)
    if isinstance(plan, nodes.JoinNode):
        left = _lower(plan.left, ctx)
        right = _lower(plan.right, ctx)
        if plan.algorithm == "merge":
            return ops.MergeJoin(left, right, plan.left_key, plan.right_key)
        return ops.HashJoin(
            left,
            right,
            plan.left_key,
            plan.right_key,
            build_side=plan.build_side,
            dynamic_range_propagation=plan.dynamic_range_propagation,
        )
    if isinstance(plan, nodes.DistinctNode):
        return ops.Distinct(_lower(plan.child, ctx), plan.columns)
    if isinstance(plan, nodes.AggregateNode):
        return ops.GroupAggregate(_lower(plan.child, ctx), plan.group_keys, plan.aggregates)
    if isinstance(plan, nodes.SortNode):
        return ops.Sort(_lower(plan.child, ctx), plan.keys, plan.ascending)
    if isinstance(plan, nodes.TopNNode):
        return ops.TopN(_lower(plan.child, ctx), plan.keys, plan.ascending, plan.n)
    if isinstance(plan, nodes.LimitNode):
        return ops.Limit(_lower(plan.child, ctx), plan.n, plan.offset)
    if isinstance(plan, nodes.UnionNode):
        return _ColumnAligningUnion([_lower(c, ctx) for c in plan.inputs])
    if isinstance(plan, nodes.MergeCombineNode):
        return _ColumnAligningMergeUnion(
            [_lower(c, ctx) for c in plan.inputs], plan.key, plan.ascending
        )
    if isinstance(plan, nodes.ReuseCacheNode):
        return ops.ReuseCache(_lower(plan.child, ctx), ctx.slot(plan.slot_id))
    if isinstance(plan, nodes.ReuseLoadNode):
        return ops.ReuseLoad(ctx.slot(plan.slot_id))
    raise TypeError(f"cannot lower {type(plan).__name__}")


def _lower_patch_scan(plan: nodes.PatchScanNode, ctx: _LoweringContext) -> ops.Operator:
    table = ctx.catalog.table(plan.table)
    index = plan.index
    if (
        plan.sorted_output
        and plan.mode == "exclude_patches"
        and isinstance(table, PartitionedTable)
        and table.num_partitions > 1
    ):
        # NSC exclude flows are sorted *per partition*; merge them into a
        # global order (the partition merge step of §6.2).
        parts = []
        for i, part in enumerate(table.partitions):
            scan = ops.Scan(part, columns=plan.columns, predicate=plan.predicate,
                            with_rowids=True)
            part_index = index.parts[i].index
            parts.append(ops.PatchSelect(scan, part_index.patch_mask, plan.mode))
        key = index.column
        return _ColumnAligningMergeUnion(parts, key, plan.sort_ascending)
    scan = ops.Scan(table, columns=plan.columns, predicate=plan.predicate,
                    with_rowids=True)
    return ops.PatchSelect(scan, index.patch_mask, plan.mode)


class _ColumnAligningUnion(ops.Union):
    """Union tolerant of rowID-column mismatches between cloned flows."""

    def execute(self) -> Relation:
        rels = [op.execute() for op in self.inputs]
        rels = _strip_unshared_rowid(rels)
        return Relation.concat(rels)


class _ColumnAligningMergeUnion(ops.MergeUnion):
    """MergeUnion tolerant of rowID-column mismatches between flows."""

    def execute(self) -> Relation:
        rels_all = [op.execute() for op in self.inputs]
        return self._merge_all(_strip_unshared_rowid(rels_all))


def _strip_unshared_rowid(rels) -> list:
    """Drop the internal rowID column unless every input carries it.

    RowIDs from different flows do not combine meaningfully anyway (they
    are scan-local); keeping them only when universally present keeps
    single-flow plans debuggable.
    """
    have = [ROWID in r for r in rels]
    if all(have) or not any(have):
        return list(rels)
    return [r.drop([ROWID]) for r in rels]
