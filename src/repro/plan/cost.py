"""Cost model for PatchIndex plan decisions (paper §3.5).

The paper stresses that PatchIndex plans are costable by ordinary
optimizers: all operators are standard, cardinalities (including the
patch counts) are known, and the selection operators add a fixed,
type-independent per-tuple overhead.  This model assigns abstract cost
units per tuple per operator; the rewrite rules accept a transformed
plan only when its estimated cost undercuts the original's (unless
forced, as done for the paper's forced-plan experiments).
"""

from __future__ import annotations

from typing import Dict, Union

from repro.engine.parallel import DEFAULT_MORSEL_ROWS
from repro.engine import parallel_sort
from repro.plan import nodes
from repro.plan.stats import estimate_rows
from repro.storage.catalog import Catalog

__all__ = ["CostModel", "OperatorCost"]

#: Shape of one per-operator cost entry (see :meth:`CostModel.operator_cost`).
OperatorCost = Dict[str, Union[str, float]]


class CostModel:
    """Abstract per-tuple operator costs.

    The defaults encode the orderings the paper's engine exhibits:
    hashing a tuple costs more than merging it, sorting pays an extra
    log factor, and the PatchSelect overhead is a small constant (the
    "typically below 1 % of query runtime" observation of §3.5).

    ``parallelism`` makes the model aware of the morsel-parallel
    executor: per-tuple costs of the data-parallel operators (scans,
    filters, patch selections, hash joins, aggregations) are divided by
    the worker count achievable for the operator's input cardinality —
    an input smaller than a morsel cannot use more than one worker —
    plus a per-worker dispatch overhead.  Sorts cost the cheaper of the
    serial n-log-n path and the parallel chunk-sort + k-way merge
    pipeline (``sort_parallel_payoff``); the remaining order-sensitive
    operators (merge join/combine) keep their serial cost.
    """

    COST_SCAN = 1.0
    COST_PATCH_SELECT = 0.1
    COST_FILTER = 0.3
    COST_PROJECT = 0.1
    COST_HASH_BUILD = 4.0
    COST_HASH_PROBE = 2.0
    COST_MERGE_JOIN = 1.0
    #: Sort/merge/dispatch units alias the parallel-sort module's
    #: constants so the runtime payoff gate and this model cannot drift
    #: apart (they are documented as sharing one formula).
    COST_SORT = parallel_sort.SORT_UNIT
    COST_DISTINCT = 3.0
    COST_AGGREGATE = 3.0
    COST_UNION = 0.05
    COST_MERGE_COMBINE = parallel_sort.MERGE_UNIT
    #: Per-tuple cost of applying a modify/delete to storage (serial:
    #: positional deltas are order-sensitive, so writes never fan out).
    COST_DML_WRITE = 0.5
    #: Fixed cost of dispatching work to one parallel worker.
    COST_WORKER_DISPATCH = parallel_sort.DISPATCH_UNIT

    def __init__(
        self,
        catalog: Catalog,
        parallelism: int = 1,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
    ) -> None:
        self.catalog = catalog
        self.parallelism = max(1, int(parallelism))
        self.morsel_rows = max(1, int(morsel_rows))

    def cost(self, node: nodes.PlanNode) -> float:
        """Total estimated cost of a plan subtree."""
        child_cost = sum(self.cost(c) for c in node.children())
        return child_cost + self._local_cost(node)

    def admission_cost(self, node: nodes.PlanNode) -> float:
        """Cost hint for multi-client admission control.

        The async session front-end
        (:class:`repro.sql.async_session.AsyncSQLSession`) stamps every
        prepared SELECT with this estimate at parse/plan time: it rides
        along through the FIFO admission queue into the per-query stats,
        so EXPLAIN-style introspection can relate a statement's queueing
        delay to how much work the planner expected it to be.  It is a
        *hint*, never a gate — a plan shape the model cannot cost (or a
        stale statistics lookup) degrades to ``0.0`` rather than failing
        admission of a perfectly executable query.
        """
        try:
            return float(self.cost(node))
        except (TypeError, KeyError, ValueError):
            return 0.0

    def _parallel(self, cost_units: float, rows: float) -> float:
        """Scale a data-parallel operator's cost by achievable workers.

        Inputs smaller than a morsel run serially in the executor, so
        they keep the serial cost — no phantom dispatch overhead.
        """
        if self.parallelism <= 1 or rows <= 0:
            return cost_units
        workers = min(float(self.parallelism), rows / self.morsel_rows)
        if workers <= 1.0:
            return cost_units
        return cost_units / workers + self.COST_WORKER_DISPATCH * workers

    def _dml_scan_units(self, num_rows: float, num_predicate_columns: int) -> float:
        """Serial cost units of an UPDATE/DELETE predicate scan."""
        rows = float(num_rows)
        return (
            self.COST_SCAN * rows * max(1, num_predicate_columns)
            + self.COST_FILTER * rows
        )

    def dml_scan_cost(self, num_rows: float, num_predicate_columns: int = 1) -> float:
        """Cost of an UPDATE/DELETE predicate scan.

        The scan reads only the columns the predicate references and is
        data-parallel (the session evaluates it per morsel), so it
        scales with the worker count exactly like a SELECT scan+filter.
        """
        units = self._dml_scan_units(num_rows, num_predicate_columns)
        return self._parallel(units, float(num_rows))

    def dml_cost(
        self,
        num_rows: float,
        matched_rows: float,
        num_predicate_columns: int = 1,
    ) -> float:
        """Total cost of one UPDATE/DELETE statement.

        Predicate scan (parallel) plus the per-matched-tuple write,
        which stays serial: positional delta maintenance is
        order-sensitive.
        """
        return (
            self.dml_scan_cost(num_rows, num_predicate_columns)
            + self.COST_DML_WRITE * float(matched_rows)
        )

    def dml_parallel_payoff(self, num_rows: float, num_predicate_columns: int = 1) -> bool:
        """Whether the parallel DML scan undercuts the serial scan.

        The session consults this before fanning a predicate scan out to
        the worker pool: dispatch overhead must be amortized by the
        per-worker cost reduction, otherwise the statement stays serial.
        """
        if self.parallelism <= 1:
            return False
        units = self._dml_scan_units(num_rows, num_predicate_columns)
        return self._parallel(units, float(num_rows)) < units

    def sort_cost(self, num_rows: float) -> float:
        """Cost of sorting ``num_rows``: the cheaper of the serial
        n-log-n sort and the chunk-sort + k-way merge pipeline.

        Shares the formula the runtime gate uses (see
        :func:`repro.engine.parallel_sort.parallel_sort_cost`), so plan
        decisions and execution agree on when a sort fans out.
        """
        serial = parallel_sort.serial_sort_cost(num_rows, self.COST_SORT)
        if not self.sort_parallel_payoff(num_rows):
            return serial
        return parallel_sort.parallel_sort_cost(
            num_rows,
            self.parallelism,
            self.morsel_rows,
            sort_unit=self.COST_SORT,
            merge_unit=self.COST_MERGE_COMBINE,
            dispatch_unit=self.COST_WORKER_DISPATCH,
        )

    def sort_parallel_payoff(self, num_rows: float) -> bool:
        """Whether a parallel chunk-sort undercuts the serial sort
        (mirrors ``dml_parallel_payoff`` for the ORDER BY path)."""
        if self.parallelism <= 1:
            return False
        return parallel_sort.sort_parallel_payoff(
            num_rows,
            self.parallelism,
            self.morsel_rows,
            sort_unit=self.COST_SORT,
            merge_unit=self.COST_MERGE_COMBINE,
            dispatch_unit=self.COST_WORKER_DISPATCH,
        )

    def topn_cost(self, num_rows: float, n: float) -> float:
        """Cost of selecting the first ``n`` rows under a sort order.

        One linear selection pass over the input (per-chunk top-n) plus
        a full sort of the surviving candidates.  Undercuts
        :meth:`sort_cost` whenever ``n`` is small relative to the input,
        which is what lets the TopN selection link replace
        Limit-over-Sort only when the pushdown actually pays off.
        """
        candidates = min(float(n), float(num_rows))
        return self.COST_SORT * float(num_rows) + parallel_sort.serial_sort_cost(
            candidates, self.COST_SORT
        )

    def operator_cost(self, node: nodes.PlanNode) -> OperatorCost:
        """Per-operator cost entry for one plan node.

        Returns a dict with keys ``operator`` (short name),
        ``cardinality`` (estimated output rows), ``time_per_row``
        (marginal units per driving input row), ``startup`` (fixed units
        spent before the first output row — hash-build work, blocking
        sorts) and ``total``.  ``total`` is the authoritative figure the
        optimizer compares (it includes parallel scaling, so it is not
        always ``startup + time_per_row * cardinality``); the other keys
        decompose it for EXPLAIN and the stage-2 selection links.
        """
        rows = estimate_rows(node, self.catalog)
        startup = 0.0
        driving = rows
        if isinstance(node, nodes.ScanNode):
            driving = float(self.catalog.table(node.table).num_rows)
            total = self._parallel(self.COST_SCAN * driving, driving)
        elif isinstance(node, nodes.PatchScanNode):
            driving = float(node.index.num_rows)
            total = self._parallel(
                self.COST_SCAN * driving + self.COST_PATCH_SELECT * driving, driving
            )
        elif isinstance(node, nodes.FilterNode):
            driving = estimate_rows(node.child, self.catalog)
            total = self._parallel(self.COST_FILTER * driving, driving)
        elif isinstance(node, nodes.ProjectNode):
            total = self.COST_PROJECT * rows
        elif isinstance(node, nodes.JoinNode):
            left = estimate_rows(node.left, self.catalog)
            right = estimate_rows(node.right, self.catalog)
            if node.algorithm == "merge":
                driving = left + right
                total = self.COST_MERGE_JOIN * (left + right)
            else:
                build, probe = min(left, right), max(left, right)
                driving = probe
                startup = self.COST_HASH_BUILD * build
                total = self._parallel(
                    self.COST_HASH_BUILD * build + self.COST_HASH_PROBE * probe, probe
                )
        elif isinstance(node, nodes.SortNode):
            driving = estimate_rows(node.child, self.catalog)
            total = self.sort_cost(driving)
            startup = total  # blocking: all work happens before the first row
        elif isinstance(node, nodes.TopNNode):
            driving = estimate_rows(node.child, self.catalog)
            total = self.topn_cost(driving, float(node.n))
            startup = total  # blocking, like the sort it replaces
        elif isinstance(node, nodes.DistinctNode):
            driving = estimate_rows(node.child, self.catalog)
            total = self.COST_DISTINCT * driving
        elif isinstance(node, nodes.AggregateNode):
            driving = estimate_rows(node.child, self.catalog)
            total = self._parallel(self.COST_AGGREGATE * driving, driving)
        elif isinstance(node, nodes.LimitNode):
            total = 0.0
        elif isinstance(node, nodes.UnionNode):
            total = self.COST_UNION * rows
        elif isinstance(node, nodes.MergeCombineNode):
            total = self.COST_MERGE_COMBINE * rows
        elif isinstance(node, nodes.ReuseCacheNode):
            # materialization write (the child's cost is added separately)
            total = self.COST_PROJECT * rows
        elif isinstance(node, nodes.ReuseLoadNode):
            # read of an already-materialized result
            total = self.COST_PROJECT * rows
        else:
            raise TypeError(f"no cost formula for {type(node).__name__}")
        name = type(node).__name__
        per_row = max(0.0, total - startup) / driving if driving > 0 else 0.0
        return {
            "operator": name[:-4] if name.endswith("Node") else name,
            "cardinality": rows,
            "time_per_row": per_row,
            "startup": startup,
            "total": total,
        }

    def _local_cost(self, node: nodes.PlanNode) -> float:
        return float(self.operator_cost(node)["total"])
