"""Stage 1 of the staged optimizer: join-order enumeration.

The parser emits joins in syntactic order; this module extracts the
*join graph* of a multi-join region (base relations as vertices,
equi-join predicates as edges) and searches for a cheaper order under
the cost model:

* **dp** — exhaustive left-deep dynamic programming over connected
  subsets (no cross products), exact up to :data:`DP_MAX_RELATIONS`
  relations, falling back to greedy above;
* **greedy** — repeatedly joins the relation that minimizes the
  estimated intermediate cardinality (a classic GOO-style heuristic);
* **off** — keep the parser's order.

A reordered tree is adopted only when its modeled cost is *strictly*
lower than the parser plan's, and reordering never crosses anything but
plain inner hash joins — explicitly configured joins (merge algorithm,
pinned build sides, range propagation) are treated as opaque leaves.
Inner equi-joins are freely reorderable by commutativity/associativity,
so every enumerated order returns the same rows; the equivalence suite
additionally pins the bit-identical contract on TPC-H shapes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.engine.expressions import col
from repro.plan import nodes
from repro.plan.stats import estimate_rows, output_columns
from repro.storage.catalog import Catalog

__all__ = [
    "JoinEdge",
    "JoinGraph",
    "JoinOrderDecision",
    "extract_join_graph",
    "enumerate_orders",
    "build_join_tree",
    "dp_order",
    "greedy_order",
    "reorder_joins",
    "DP_MAX_RELATIONS",
    "JOIN_ORDER_STRATEGIES",
]

#: Largest relation count the exhaustive DP enumerates; larger regions
#: fall back to the greedy heuristic.
DP_MAX_RELATIONS = 6

#: Valid values of the ``join_order_search`` session knob.
JOIN_ORDER_STRATEGIES = ("dp", "greedy", "off")


@dataclasses.dataclass(frozen=True)
class JoinEdge:
    """One equi-join predicate between base relations ``a`` and ``b``."""

    a: int
    a_key: str
    b: int
    b_key: str

    def touches(self, rel: int) -> bool:
        """Whether this edge is incident to relation index ``rel``."""
        return self.a == rel or self.b == rel


@dataclasses.dataclass
class JoinGraph:
    """Join graph of one multi-join region.

    ``relations`` hold the join-free base subtrees in parser order;
    ``columns`` their output column sets (used to resolve key
    ownership); ``edges`` the equi-join predicates between them.
    """

    relations: List[nodes.PlanNode]
    columns: List[Set[str]]
    edges: List[JoinEdge]

    @property
    def num_relations(self) -> int:
        """Number of base relations in the region."""
        return len(self.relations)

    def neighbors(self, rel: int) -> Set[int]:
        """Relation indices directly joined to ``rel``."""
        out: Set[int] = set()
        for e in self.edges:
            if e.a == rel:
                out.add(e.b)
            elif e.b == rel:
                out.add(e.a)
        return out

    def relation_name(self, rel: int) -> str:
        """Readable name of a base relation (its scan's table if any)."""
        node = self.relations[rel]
        while True:
            if isinstance(node, (nodes.ScanNode, nodes.PatchScanNode)):
                return node.table
            kids = node.children()
            if len(kids) != 1:
                return node.label()
            node = kids[0]


@dataclasses.dataclass
class JoinOrderDecision:
    """Outcome of the stage-1 search over one join region (for EXPLAIN)."""

    strategy: str
    relations: List[str]
    order: List[str]
    parser_cost: float
    chosen_cost: float
    applied: bool

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        chain = " ⨝ ".join(self.order)
        if self.applied:
            return (
                f"join order [{self.strategy}]: {chain} "
                f"(cost {self.chosen_cost:,.1f} < parser {self.parser_cost:,.1f})"
            )
        return (
            f"join order [{self.strategy}]: parser order kept "
            f"(best enumerated {chain} at {self.chosen_cost:,.1f} "
            f">= parser {self.parser_cost:,.1f})"
        )


def _flattenable(node: nodes.PlanNode) -> bool:
    """Whether a join node may be dissolved into the join graph.

    Only plain inner hash joins with runtime build-side selection and no
    range propagation are reorderable; anything explicitly configured is
    kept as an opaque leaf so hand-tuned plans survive stage 1.
    """
    return (
        isinstance(node, nodes.JoinNode)
        and node.algorithm == "hash"
        and node.build_side == "auto"
        and not node.dynamic_range_propagation
    )


def extract_join_graph(plan: nodes.PlanNode, catalog: Catalog) -> Optional[JoinGraph]:
    """Join graph of the region rooted at ``plan``, or None.

    Returns None when the root is not a reorderable join or when a join
    key cannot be attributed to exactly one base relation on its side of
    the join (ambiguous column names defer to the parser's order).
    """
    if not _flattenable(plan):
        return None
    relations: List[nodes.PlanNode] = []
    columns: List[Set[str]] = []
    raw: List[Tuple[str, str, List[int], List[int]]] = []

    def collect(node: nodes.PlanNode) -> List[int]:
        """Flatten a subtree; returns the base-relation indices in it."""
        if _flattenable(node):
            left = collect(node.left)
            right = collect(node.right)
            raw.append((node.left_key, node.right_key, left, right))
            return left + right
        idx = len(relations)
        relations.append(node)
        try:
            columns.append(output_columns(node, catalog))
        except KeyError:
            columns.append(set())
        return [idx]

    collect(plan)
    edges: List[JoinEdge] = []
    for left_key, right_key, left_rels, right_rels in raw:
        edge = _resolve_edge(left_key, right_key, left_rels, right_rels, columns)
        if edge is None:
            return None
        edges.append(edge)
    return JoinGraph(relations, columns, edges)


def _resolve_edge(
    left_key: str,
    right_key: str,
    left_rels: Sequence[int],
    right_rels: Sequence[int],
    columns: Sequence[Set[str]],
) -> Optional[JoinEdge]:
    """Attribute a join predicate's keys to their owning base relations.

    Keys are first resolved positionally (left key on the join's left
    subtree); if that fails the swapped attribution is tried, since the
    SQL dialect does not require ON operands in table order.
    """

    def owner(key: str, rels: Sequence[int]) -> Optional[int]:
        """The unique relation among ``rels`` carrying ``key``, or None."""
        owners = [r for r in rels if key in columns[r]]
        return owners[0] if len(owners) == 1 else None

    a = owner(left_key, left_rels)
    b = owner(right_key, right_rels)
    if a is not None and b is not None:
        return JoinEdge(a, left_key, b, right_key)
    a = owner(right_key, left_rels)
    b = owner(left_key, right_rels)
    if a is not None and b is not None:
        return JoinEdge(a, right_key, b, left_key)
    return None


def enumerate_orders(graph: JoinGraph) -> Iterator[Tuple[int, ...]]:
    """All left-deep, cross-product-free join orders of the graph.

    Every yielded permutation keeps each prefix connected, so building
    it never introduces a cross product.  A disconnected graph yields
    nothing (callers keep the parser's order).
    """
    n = graph.num_relations
    adjacency = [graph.neighbors(r) for r in range(n)]

    def extend(order: List[int], used: Set[int]) -> Iterator[Tuple[int, ...]]:
        """Yield completions of a connected partial order."""
        if len(order) == n:
            yield tuple(order)
            return
        for r in range(n):
            if r in used:
                continue
            if order and not (adjacency[r] & used):
                continue
            order.append(r)
            used.add(r)
            yield from extend(order, used)
            order.pop()
            used.remove(r)

    yield from extend([], set())


def build_join_tree(graph: JoinGraph, order: Sequence[int]) -> nodes.PlanNode:
    """Left-deep join tree realizing ``order`` over the graph.

    The first connecting edge supplies each join's keys; further edges
    between the new relation and the accumulated prefix (cycles in the
    join graph) become equality filters on top, preserving the original
    predicate set exactly.  A partial order builds the corresponding
    prefix subtree (the DP costs subsets this way).
    """
    if not order or len(set(order)) != len(order) or not all(
        0 <= r < graph.num_relations for r in order
    ):
        raise ValueError(f"order {order!r} is not a relation sequence of the graph")
    used: Set[int] = set()
    placed: Set[int] = {order[0]}
    current: nodes.PlanNode = graph.relations[order[0]]
    for rel in order[1:]:
        connecting = [
            (i, e)
            for i, e in enumerate(graph.edges)
            if i not in used
            and ((e.a in placed and e.b == rel) or (e.b in placed and e.a == rel))
        ]
        if not connecting:
            raise ValueError(f"order {order!r} introduces a cross product at {rel}")
        idx, edge = connecting[0]
        if edge.a in placed:
            left_key, right_key = edge.a_key, edge.b_key
        else:
            left_key, right_key = edge.b_key, edge.a_key
        current = nodes.JoinNode(current, graph.relations[rel], left_key, right_key)
        used.add(idx)
        for idx, edge in connecting[1:]:
            current = nodes.FilterNode(current, col(edge.a_key) == col(edge.b_key))
            used.add(idx)
        placed.add(rel)
    return current


def dp_order(graph: JoinGraph, cost_model) -> Optional[Tuple[int, ...]]:
    """Cheapest left-deep order by exhaustive DP over connected subsets.

    Classic System-R style enumeration: the best order of every
    connected relation subset is extended one relation at a time, cost
    taken from the full cost model over the realized subtree.  Returns
    None when the graph is disconnected or larger than
    :data:`DP_MAX_RELATIONS`.
    """
    n = graph.num_relations
    if n < 2 or n > DP_MAX_RELATIONS:
        return None
    adjacency = [graph.neighbors(r) for r in range(n)]
    best: Dict[FrozenSet[int], Tuple[float, Tuple[int, ...]]] = {
        frozenset({r}): (0.0, (r,)) for r in range(n)
    }
    for size in range(1, n):
        for subset in [s for s in best if len(s) == size]:
            _, order = best[subset]
            for rel in range(n):
                if rel in subset or not (adjacency[rel] & subset):
                    continue
                candidate = order + (rel,)
                cost = cost_model.cost(build_join_tree(graph, candidate))
                key = frozenset(candidate)
                if key not in best or cost < best[key][0]:
                    best[key] = (cost, candidate)
    full = best.get(frozenset(range(n)))
    return full[1] if full is not None else None


def greedy_order(graph: JoinGraph, catalog: Catalog) -> Optional[Tuple[int, ...]]:
    """Order by greedily minimizing intermediate result cardinality.

    Starts from the edge with the smallest estimated join output, then
    repeatedly appends the connected relation whose join keeps the
    estimated intermediate smallest.  Linear in joins per step, so it
    scales past the DP cutoff.
    """
    n = graph.num_relations
    if n < 2 or not graph.edges:
        return None

    def rows_of(order: Sequence[int]) -> float:
        """Estimated output cardinality of a (partial) order's tree."""
        return estimate_rows(build_join_tree(graph, order), catalog)

    seeds = {(min(e.a, e.b), max(e.a, e.b)) for e in graph.edges}
    order = list(min(seeds, key=lambda pair: (rows_of(pair), pair)))
    used = set(order)
    while len(order) < n:
        frontier = [
            r for r in range(n) if r not in used and (graph.neighbors(r) & used)
        ]
        if not frontier:
            return None  # disconnected graph
        nxt = min(frontier, key=lambda r: (rows_of(order + [r]), r))
        order.append(nxt)
        used.add(nxt)
    return tuple(order)


def reorder_joins(
    plan: nodes.PlanNode,
    catalog: Catalog,
    cost_model,
    strategy: str,
) -> Tuple[nodes.PlanNode, List[JoinOrderDecision]]:
    """Run the stage-1 search over every join region of a plan.

    Returns the (possibly rebuilt) plan plus one
    :class:`JoinOrderDecision` per region of three or more relations.
    Regions keep the parser's order unless an enumerated order's
    modeled cost is strictly lower.
    """
    if strategy not in JOIN_ORDER_STRATEGIES:
        raise ValueError(
            f"unknown join_order_search strategy {strategy!r}; "
            f"expected one of {', '.join(JOIN_ORDER_STRATEGIES)}"
        )
    decisions: List[JoinOrderDecision] = []
    if strategy == "off":
        return plan, decisions

    def walk(node: nodes.PlanNode) -> nodes.PlanNode:
        """Reorder every maximal join region under ``node``."""
        graph = extract_join_graph(node, catalog)
        if graph is not None and graph.num_relations >= 3:
            reordered = _search_region(node, graph, cost_model, strategy, decisions)
            if reordered is not node:
                return reordered
            return node
        kids = node.children()
        if not kids:
            return node
        new_kids = [walk(c) for c in kids]
        if all(a is b for a, b in zip(kids, new_kids)):
            return node
        from repro.plan.optimizer import rebuild_node

        return rebuild_node(node, new_kids)

    return walk(plan), decisions


def _search_region(
    node: nodes.PlanNode,
    graph: JoinGraph,
    cost_model,
    strategy: str,
    decisions: List[JoinOrderDecision],
) -> nodes.PlanNode:
    """Search one join region, recording the decision taken."""
    effective = strategy
    if strategy == "dp" and graph.num_relations > DP_MAX_RELATIONS:
        effective = "greedy"
    if effective == "dp":
        order = dp_order(graph, cost_model)
    else:
        order = greedy_order(graph, cost_model.catalog)
    if order is None:
        return node
    candidate = build_join_tree(graph, order)
    parser_cost = cost_model.cost(node)
    chosen_cost = cost_model.cost(candidate)
    applied = chosen_cost < parser_cost
    decisions.append(
        JoinOrderDecision(
            strategy=effective,
            relations=[graph.relation_name(r) for r in range(graph.num_relations)],
            order=[graph.relation_name(r) for r in order],
            parser_cost=parser_cost,
            chosen_cost=chosen_cost,
            applied=applied,
        )
    )
    return candidate if applied else node
