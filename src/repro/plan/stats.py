"""Cardinality estimation over logical plans.

Estimates feed the cost model of §3.5.  Scans read exact table
cardinalities from the catalog; PatchIndex scan estimates are *exact*
because the number of patches is known at optimization time — the
property the paper exploits for build-side selection and zero-branch
pruning.

Join estimates additionally consult *distinct-count statistics* when
the catalog carries them (see :func:`analyze_table`): an equi-join's
selectivity is then ``1 / max(d_left, d_right)`` over the join keys'
distinct counts — the classic System-R formula — instead of the flat
FK-join assumption.  Stats are versioned against the table they were
collected from, so a stale ANALYZE degrades to the heuristic rather
than misleading the join-order search.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Set

import numpy as np

from repro.plan import nodes
from repro.storage.catalog import Catalog

__all__ = [
    "estimate_rows",
    "analyze_table",
    "distinct_count",
    "join_selectivity",
    "output_columns",
    "DEFAULT_FILTER_SELECTIVITY",
    "DISTINCT_STAT_KIND",
]

#: Heuristic selectivity for arbitrary predicates.
DEFAULT_FILTER_SELECTIVITY = 0.33

#: Catalog structure kind under which ANALYZE registers column stats.
DISTINCT_STAT_KIND = "distinct_count"


@dataclasses.dataclass(frozen=True)
class ColumnStats:
    """Distinct-count statistic for one column, stamped with the table
    version it was collected at (stale stats are ignored)."""

    distinct: int
    version: Optional[int]


def analyze_table(
    catalog: Catalog, table_name: str, columns: Optional[Iterable[str]] = None
) -> List[str]:
    """Collect distinct-count stats for a table's columns (ANALYZE).

    Registers one :class:`ColumnStats` per column under the
    ``distinct_count`` structure kind, stamped with the table's current
    version so later DML invalidates it implicitly.  Returns the list
    of analyzed column names.
    """
    table = catalog.table(table_name)
    names = list(columns) if columns is not None else list(table.schema.names)
    version = getattr(table, "version", None)
    for name in names:
        values = table.column(name)
        count = int(len(np.unique(values))) if len(values) else 0
        catalog.add_structure(
            DISTINCT_STAT_KIND, table_name, name, ColumnStats(count, version)
        )
    return names


def distinct_count(catalog: Catalog, table_name: str, column: str) -> Optional[int]:
    """Distinct count of a column if fresh stats exist, else None.

    Stats collected at an older table version than the current one are
    treated as absent: DML may have changed the value distribution.
    """
    stat = catalog.structure(DISTINCT_STAT_KIND, table_name, column)
    if not isinstance(stat, ColumnStats):
        return None
    try:
        current = getattr(catalog.table(table_name), "version", None)
    except KeyError:
        return None
    if stat.version is not None and current is not None and stat.version != current:
        return None
    return stat.distinct


def output_columns(node: nodes.PlanNode, catalog: Catalog) -> Set[str]:
    """Column names a plan node's output carries.

    Used by the join-order search to resolve which base relation owns a
    join key (the repo's SQL dialect keeps column names unique across
    joined tables).  Nodes the walk cannot see through report the union
    of their children's columns.
    """
    if isinstance(node, nodes.ScanNode):
        if node.columns is not None:
            return set(node.columns)
        return set(catalog.table(node.table).schema.names)
    if isinstance(node, nodes.PatchScanNode):
        if node.columns is not None:
            return set(node.columns)
        return set(catalog.table(node.table).schema.names)
    if isinstance(node, nodes.ProjectNode):
        return set(node.outputs)
    if isinstance(node, nodes.AggregateNode):
        return set(node.group_keys) | set(node.aggregates)
    out: Set[str] = set()
    for child in node.children():
        out |= output_columns(child, catalog)
    return out


def estimate_rows(node: nodes.PlanNode, catalog: Catalog) -> float:
    """Estimated output cardinality of a plan node."""
    if isinstance(node, nodes.ScanNode):
        rows = float(catalog.table(node.table).num_rows)
        if node.predicate is not None:
            rows *= DEFAULT_FILTER_SELECTIVITY
        return rows
    if isinstance(node, nodes.PatchScanNode):
        patches = float(node.index.num_patches)
        total = float(node.index.num_rows)
        rows = patches if node.mode == "use_patches" else total - patches
        if node.predicate is not None:
            rows *= DEFAULT_FILTER_SELECTIVITY
        return rows
    if isinstance(node, nodes.FilterNode):
        return DEFAULT_FILTER_SELECTIVITY * estimate_rows(node.child, catalog)
    if isinstance(node, (nodes.ProjectNode, nodes.SortNode)):
        return estimate_rows(node.children()[0], catalog)
    if isinstance(node, nodes.JoinNode):
        left = estimate_rows(node.left, catalog)
        right = estimate_rows(node.right, catalog)
        sel = join_selectivity(node, catalog)
        if sel is not None:
            return max(1.0, left * right * sel)
        # FK-join assumption: output bounded by the larger input.
        return max(left, right)
    if isinstance(node, nodes.DistinctNode):
        return 0.5 * estimate_rows(node.child, catalog)
    if isinstance(node, nodes.AggregateNode):
        child = estimate_rows(node.child, catalog)
        return child if not node.group_keys else max(1.0, 0.1 * child)
    if isinstance(node, nodes.LimitNode):
        child = estimate_rows(node.child, catalog)
        return min(float(node.n), max(0.0, child - float(node.offset)))
    if isinstance(node, nodes.TopNNode):
        return min(float(node.n), estimate_rows(node.child, catalog))
    if isinstance(node, (nodes.UnionNode, nodes.MergeCombineNode)):
        return sum(estimate_rows(c, catalog) for c in node.children())
    if isinstance(node, nodes.ReuseCacheNode):
        return estimate_rows(node.child, catalog)
    if isinstance(node, nodes.ReuseLoadNode):
        return node.hint_rows
    raise TypeError(f"no estimator for {type(node).__name__}")


def join_selectivity(node: nodes.JoinNode, catalog: Catalog) -> Optional[float]:
    """Equi-join selectivity from distinct-count stats, or None.

    ``1 / max(d_left, d_right)`` over the join keys' distinct counts
    (System R): each tuple of the side with fewer key values matches
    ``|other| / d_other`` partners on average.  Returns None — caller
    falls back to the FK heuristic — when neither side's key has fresh
    stats (the former behavior was a flat constant regardless of
    stats, which made every join order look equally good).
    """
    d_left = _key_distinct(node.left, node.left_key, catalog)
    d_right = _key_distinct(node.right, node.right_key, catalog)
    known = [d for d in (d_left, d_right) if d is not None and d > 0]
    if not known:
        return None
    return 1.0 / float(max(known))


def _key_distinct(node: nodes.PlanNode, key: str, catalog: Catalog) -> Optional[int]:
    """Distinct count of a join key within a plan subtree, or None.

    Walks to the base Scan/PatchScan owning the column and reads the
    catalog stats for it.  The base-table count is an upper bound for
    any filtered subtree above it, which is the standard System-R
    treatment.
    """
    if isinstance(node, (nodes.ScanNode, nodes.PatchScanNode)):
        if key in output_columns(node, catalog):
            return distinct_count(catalog, node.table, key)
        return None
    for child in node.children():
        if key in output_columns(child, catalog):
            return _key_distinct(child, key, catalog)
    return None
