"""Cardinality estimation over logical plans.

Estimates feed the cost model of §3.5.  Scans read exact table
cardinalities from the catalog; PatchIndex scan estimates are *exact*
because the number of patches is known at optimization time — the
property the paper exploits for build-side selection and zero-branch
pruning.
"""

from __future__ import annotations

from repro.plan import nodes
from repro.storage.catalog import Catalog

__all__ = ["estimate_rows", "DEFAULT_FILTER_SELECTIVITY"]

#: Heuristic selectivity for arbitrary predicates.
DEFAULT_FILTER_SELECTIVITY = 0.33


def estimate_rows(node: nodes.PlanNode, catalog: Catalog) -> float:
    """Estimated output cardinality of a plan node."""
    if isinstance(node, nodes.ScanNode):
        rows = float(catalog.table(node.table).num_rows)
        if node.predicate is not None:
            rows *= DEFAULT_FILTER_SELECTIVITY
        return rows
    if isinstance(node, nodes.PatchScanNode):
        patches = float(node.index.num_patches)
        total = float(node.index.num_rows)
        rows = patches if node.mode == "use_patches" else total - patches
        if node.predicate is not None:
            rows *= DEFAULT_FILTER_SELECTIVITY
        return rows
    if isinstance(node, nodes.FilterNode):
        return DEFAULT_FILTER_SELECTIVITY * estimate_rows(node.child, catalog)
    if isinstance(node, (nodes.ProjectNode, nodes.SortNode)):
        return estimate_rows(node.children()[0], catalog)
    if isinstance(node, nodes.JoinNode):
        left = estimate_rows(node.left, catalog)
        right = estimate_rows(node.right, catalog)
        # FK-join assumption: output bounded by the larger input.
        return max(left, right) * _join_selectivity(node)
    if isinstance(node, nodes.DistinctNode):
        return 0.5 * estimate_rows(node.child, catalog)
    if isinstance(node, nodes.AggregateNode):
        child = estimate_rows(node.child, catalog)
        return child if not node.group_keys else max(1.0, 0.1 * child)
    if isinstance(node, nodes.LimitNode):
        return min(float(node.n), estimate_rows(node.child, catalog))
    if isinstance(node, (nodes.UnionNode, nodes.MergeCombineNode)):
        return sum(estimate_rows(c, catalog) for c in node.children())
    if isinstance(node, nodes.ReuseCacheNode):
        return estimate_rows(node.child, catalog)
    if isinstance(node, nodes.ReuseLoadNode):
        return node.hint_rows
    raise TypeError(f"no estimator for {type(node).__name__}")


def _join_selectivity(node: nodes.JoinNode) -> float:
    # Equi-joins on keys: roughly one match per FK tuple.
    return 1.0
