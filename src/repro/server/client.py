"""Client drivers for the SQL server: blocking and asyncio variants.

The shape follows PostBOUND's minimal SQL-over-connection drivers
(connect → execute → rows): a few lines to issue a statement and read
rows back, no ORM.  Both clients speak the ``docs/protocol.md`` wire
protocol through the same codec the server uses
(:mod:`repro.server.protocol`).

* :class:`SQLClient` — blocking, one statement at a time; for scripts
  and the quickstart example.
* :class:`AsyncSQLClient` — asyncio, pipelined: many in-flight
  statements per connection, matched to replies by statement id, with
  cooperative :meth:`AsyncSQLClient.cancel`.

Statement results arrive as :class:`ClientResult`; server-reported
failures raise :class:`ServerError` carrying the wire error code.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import socket
from typing import Any, Dict, List, Optional

from repro.server import protocol
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER,
    PROTOCOL_VERSION,
    ConnectionClosedError,
    FrameTooLargeError,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
    validate_message,
    write_frame,
)

__all__ = ["ClientResult", "ServerError", "SQLClient", "AsyncSQLClient"]


@dataclasses.dataclass(frozen=True)
class ClientResult:
    """One statement's outcome as decoded from a ``result`` frame.

    ``columns``/``rows`` are present for SELECTs and ``None`` for
    DML/SET (whose ``row_count`` is the affected-row / setting value);
    ``stats`` is the server session's per-query record (``queued_ns``,
    ``exec_ns``, ``cost_hint``, ``write_seq``, ``kind``) when the
    statement executed, ``None`` for ``prepare`` acknowledgements.
    """

    row_count: int
    columns: Optional[List[str]] = None
    rows: Optional[List[List[Any]]] = None
    stats: Optional[Dict[str, Any]] = None

    def scalar(self) -> Any:
        """First column of the first row (convenience for aggregates)."""
        if not self.rows or not self.rows[0]:
            raise ValueError("result has no rows")
        return self.rows[0][0]


class ServerError(RuntimeError):
    """A typed ``error`` frame from the server.

    ``code`` is one of the spec's error codes (``auth``, ``protocol``,
    ``too-large``, ``capacity``, ``sql``, ``unknown-prepared``,
    ``cancelled``, ``server-closed``); ``fatal`` mirrors whether the
    server closes the connection after it.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.fatal = code in protocol.FATAL_ERROR_CODES


def _result_from_frame(frame: Dict) -> ClientResult:
    """Convert a validated ``result`` frame into a :class:`ClientResult`."""
    return ClientResult(
        row_count=frame["row_count"],
        columns=frame.get("columns"),
        rows=frame.get("rows"),
        stats=frame.get("stats"),
    )


def _hello(token: Optional[str]) -> Dict:
    """Build the handshake frame."""
    message: Dict = {"type": "hello", "version": PROTOCOL_VERSION}
    if token is not None:
        message["token"] = token
    return message


class SQLClient:
    """Blocking driver: connect, execute, read rows — one at a time.

    Usage::

        with SQLClient("127.0.0.1", port, token="s3cret") as cli:
            n = cli.execute("SELECT COUNT(*) AS n FROM t").scalar()

    Parameters mirror the wire spec: ``token`` is the ``hello`` auth
    token, ``timeout`` the socket timeout in seconds (``None`` blocks
    indefinitely), ``max_frame_bytes`` the frame cap applied to both
    directions.
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: Optional[str] = None,
        timeout: Optional[float] = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._closed = False
        try:
            self._send(_hello(token))
            frame = self._recv()
            if frame.get("type") != "hello_ok":
                self._raise_error(frame)
            self.server_info = frame
        except BaseException:
            self._sock.close()
            self._closed = True
            raise

    # ------------------------------------------------------------------
    def _send(self, message: Dict) -> None:
        self._sock.sendall(encode_frame(message, self._max_frame_bytes))

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        while n:
            chunk = self._sock.recv(n)
            if not chunk:
                raise ConnectionClosedError("server closed the connection")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def _recv(self) -> Dict:
        (length,) = HEADER.unpack(self._recv_exact(HEADER.size))
        if length > self._max_frame_bytes:
            raise FrameTooLargeError(f"server frame of {length} bytes exceeds cap")
        frame = decode_frame(self._recv_exact(length))
        validate_message(frame, protocol.SERVER_MESSAGES)
        return frame

    def _raise_error(self, frame: Dict) -> None:
        if frame.get("type") == "error":
            raise ServerError(frame["code"], frame["error"])
        if frame.get("type") == "goodbye":
            raise ConnectionClosedError("server said goodbye")
        raise ProtocolError(f"unexpected frame {frame.get('type')!r}")

    def _roundtrip(self, message: Dict) -> ClientResult:
        """Send one statement frame and block for its reply by id."""
        if self._closed:
            raise ConnectionClosedError("client is closed")
        self._send(message)
        while True:
            frame = self._recv()
            if frame.get("id") == message["id"]:
                if frame["type"] == "result":
                    return _result_from_frame(frame)
                self._raise_error(frame)
            elif frame.get("type") in ("error", "goodbye"):
                # connection-level failure (no id): fatal
                self._raise_error(frame)
            # stale reply to an older (cancelled/errored) id: skip

    # ------------------------------------------------------------------
    def execute(self, sql: str) -> ClientResult:
        """Run one statement; blocks until its typed reply arrives."""
        return self._roundtrip({"type": "query", "id": next(self._ids), "sql": sql})

    def prepare(self, name: str, sql: str) -> ClientResult:
        """Parse + classify ``sql`` server-side under ``name``."""
        return self._roundtrip(
            {"type": "prepare", "id": next(self._ids), "name": name, "sql": sql}
        )

    def run_prepared(self, name: str) -> ClientResult:
        """Execute the statement previously :meth:`prepare`-d as ``name``."""
        return self._roundtrip(
            {"type": "run_prepared", "id": next(self._ids), "name": name}
        )

    def close(self) -> None:
        """Send ``close``, wait for ``goodbye``, drop the socket."""
        if self._closed:
            return
        self._closed = True
        try:
            self._send({"type": "close"})
            while True:
                frame = self._recv()
                if frame.get("type") == "goodbye":
                    break
        except (ConnectionError, OSError, ProtocolError, socket.timeout):
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "SQLClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncSQLClient:
    """Asyncio driver with statement pipelining and cancellation.

    Replies are matched to in-flight statements by id on a background
    reader task, so many :meth:`execute` coroutines can overlap on one
    connection — the client-side mirror of the server's per-connection
    ``max_inflight``.  Build instances with :meth:`connect`::

        cli = await AsyncSQLClient.connect("127.0.0.1", port)
        rows = (await cli.execute("SELECT ... ")).rows
        await cli.aclose()
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        server_info: Dict,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.server_info = server_info
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._closed = False
        self._goodbye = asyncio.get_running_loop().create_future()
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        token: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncSQLClient":
        """Open a connection and complete the ``hello`` handshake."""
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await write_frame(writer, _hello(token), max_frame_bytes)
            frame = await read_frame(reader, max_frame_bytes)
            if frame is None:
                raise ConnectionClosedError("server closed during handshake")
            validate_message(frame, protocol.SERVER_MESSAGES)
            if frame["type"] == "error":
                raise ServerError(frame["code"], frame["error"])
            if frame["type"] != "hello_ok":
                raise ProtocolError(f"expected hello_ok, got {frame['type']!r}")
        except BaseException:
            writer.close()
            raise
        return cls(reader, writer, frame, max_frame_bytes)

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        """Dispatch incoming frames to the waiting statement futures."""
        error: Optional[BaseException] = None
        try:
            while True:
                frame = await read_frame(self._reader, self._max_frame_bytes)
                if frame is None:
                    break
                validate_message(frame, protocol.SERVER_MESSAGES)
                mtype = frame["type"]
                if mtype == "goodbye":
                    if not self._goodbye.done():
                        self._goodbye.set_result(None)
                    break
                sid = frame.get("id")
                # resolve but do not pop: the reply stays claimable by a
                # later wait(); waiters remove their own entry
                future = self._pending.get(sid) if sid is not None else None
                if future is not None and not future.done():
                    if mtype == "result":
                        future.set_result(_result_from_frame(frame))
                    else:
                        future.set_exception(ServerError(frame["code"], frame["error"]))
                elif mtype == "error" and sid is None:
                    error = ServerError(frame["code"], frame["error"])
                    break
        except (ConnectionError, OSError, ProtocolError, asyncio.CancelledError) as exc:
            error = exc
        finally:
            if error is None:
                error = ConnectionClosedError("connection closed")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()
            if not self._goodbye.done():
                self._goodbye.set_result(None)

    async def _send(self, message: Dict) -> None:
        if self._closed:
            raise ConnectionClosedError("client is closed")
        await write_frame(self._writer, message, self._max_frame_bytes)

    def _register(self, sid: int) -> asyncio.Future:
        future = asyncio.get_running_loop().create_future()
        self._pending[sid] = future
        return future

    async def _await_reply(self, sid: int) -> ClientResult:
        """Claim the reply of ``sid`` (each reply is claimable once)."""
        future = self._pending.get(sid)
        if future is None:
            raise KeyError(f"no in-flight statement with id {sid}")
        try:
            return await asyncio.shield(future)
        finally:
            self._pending.pop(sid, None)

    # ------------------------------------------------------------------
    async def submit(self, sql: str) -> int:
        """Fire one ``query`` frame, returning its statement id.

        The reply is claimed later with :meth:`wait` — the split lets a
        caller overlap statements or :meth:`cancel` one in flight.
        """
        sid = next(self._ids)
        self._register(sid)
        await self._send({"type": "query", "id": sid, "sql": sql})
        return sid

    async def wait(self, sid: int) -> ClientResult:
        """Await the reply of a :meth:`submit`-ted statement."""
        return await self._await_reply(sid)

    async def execute(self, sql: str) -> ClientResult:
        """Run one statement (``submit`` + ``wait``)."""
        return await self.wait(await self.submit(sql))

    async def prepare(self, name: str, sql: str) -> ClientResult:
        """Parse + classify ``sql`` server-side under ``name``."""
        sid = next(self._ids)
        self._register(sid)
        await self._send({"type": "prepare", "id": sid, "name": name, "sql": sql})
        return await self._await_reply(sid)

    async def run_prepared(self, name: str) -> ClientResult:
        """Execute the statement previously :meth:`prepare`-d as ``name``."""
        sid = next(self._ids)
        self._register(sid)
        await self._send({"type": "run_prepared", "id": sid, "name": name})
        return await self._await_reply(sid)

    async def cancel(self, sid: int) -> None:
        """Request cooperative cancellation of an in-flight statement.

        Best-effort (spec §3.5): a queued statement is aborted and its
        :meth:`wait` raises :class:`ServerError` with code
        ``cancelled``; a statement already executing finishes atomically
        server-side and may reply with its normal result instead.
        """
        await self._send({"type": "cancel", "target": sid})

    async def aclose(self) -> None:
        """Send ``close``, await the server's ``goodbye``, drop streams."""
        if self._closed:
            return
        self._closed = True
        try:
            await write_frame(self._writer, {"type": "close"}, self._max_frame_bytes)
            await asyncio.wait_for(asyncio.shield(self._goodbye), 10.0)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncSQLClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
