"""Client drivers for the SQL server: blocking and asyncio variants.

The shape follows PostBOUND's minimal SQL-over-connection drivers
(connect → execute → rows): a few lines to issue a statement and read
rows back, no ORM.  Both clients speak the ``docs/protocol.md`` wire
protocol through the same codec the server uses
(:mod:`repro.server.protocol`).

* :class:`SQLClient` — blocking, one statement at a time; for scripts
  and the quickstart example.
* :class:`AsyncSQLClient` — asyncio, pipelined: many in-flight
  statements per connection, matched to replies by statement id, with
  cooperative :meth:`AsyncSQLClient.cancel`.

Statement results arrive as :class:`ClientResult`; server-reported
failures raise :class:`ServerError` carrying the wire error code.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import random
import socket
import time
from typing import Any, Callable, Dict, List, Optional

from repro.server import protocol
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER,
    PROTOCOL_VERSION,
    ConnectionClosedError,
    FrameTooLargeError,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
    validate_message,
    write_frame,
)

__all__ = [
    "ClientResult",
    "RetryPolicy",
    "ServerError",
    "SQLClient",
    "AsyncSQLClient",
]

#: statements safe to resend even when the original may have reached the
#: server — re-running them cannot double-apply a write
_IDEMPOTENT_PREFIXES = ("select", "set", "explain")


def _statement_is_idempotent(sql: str) -> bool:
    head = sql.lstrip().split(None, 1)
    return bool(head) and head[0].lower() in _IDEMPOTENT_PREFIXES


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for retryable statement failures.

    Attempt ``n`` (0-based) sleeps ``base_backoff_ms * multiplier**n``
    milliseconds, capped at ``max_backoff_ms``; a server ``backoff_ms``
    hint (from an ``overloaded`` frame) raises the floor for that
    attempt.  ``jitter`` spreads sleeps by ``±jitter`` relative to the
    computed delay so a thundering herd of shed clients decorrelates.
    ``seed`` makes the jitter deterministic for tests.
    """

    max_attempts: int = 4
    base_backoff_ms: float = 25.0
    max_backoff_ms: float = 2_000.0
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or isinstance(self.max_attempts, bool):
            raise TypeError("max_attempts must be an int")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_ms <= 0 or self.max_backoff_ms <= 0:
            raise ValueError("backoff bounds must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0.0, 1.0)")

    def delay_ms(
        self,
        attempt: int,
        hint_ms: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> float:
        """Backoff before retry ``attempt`` (0-based), in milliseconds."""
        delay = self.base_backoff_ms * self.multiplier**attempt
        if hint_ms is not None:
            delay = max(delay, float(hint_ms))
        delay = min(delay, self.max_backoff_ms)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


@dataclasses.dataclass(frozen=True)
class ClientResult:
    """One statement's outcome as decoded from a ``result`` frame.

    ``columns``/``rows`` are present for SELECTs and ``None`` for
    DML/SET (whose ``row_count`` is the affected-row / setting value);
    ``stats`` is the server session's per-query record (``queued_ns``,
    ``exec_ns``, ``cost_hint``, ``write_seq``, ``kind``) when the
    statement executed, ``None`` for ``prepare`` acknowledgements.
    """

    row_count: int
    columns: Optional[List[str]] = None
    rows: Optional[List[List[Any]]] = None
    stats: Optional[Dict[str, Any]] = None

    def scalar(self) -> Any:
        """First column of the first row (convenience for aggregates)."""
        if not self.rows or not self.rows[0]:
            raise ValueError("result has no rows")
        return self.rows[0][0]


class ServerError(RuntimeError):
    """A typed ``error`` frame from the server.

    ``code`` is one of the spec's error codes (``auth``, ``protocol``,
    ``too-large``, ``capacity``, ``sql``, ``unknown-prepared``,
    ``query-cancelled``, ``query-timeout``, ``overloaded``,
    ``server-closed``); ``fatal`` mirrors whether the server closes the
    connection after it, ``retryable`` whether the statement may simply
    be resent (the server guarantees it left no trace), and
    ``backoff_ms`` the server's optional wait-before-retry hint.
    """

    def __init__(
        self, code: str, message: str, backoff_ms: Optional[int] = None
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.fatal = code in protocol.FATAL_ERROR_CODES
        self.retryable = code in protocol.RETRYABLE_ERROR_CODES
        self.backoff_ms = backoff_ms


def _result_from_frame(frame: Dict) -> ClientResult:
    """Convert a validated ``result`` frame into a :class:`ClientResult`."""
    return ClientResult(
        row_count=frame["row_count"],
        columns=frame.get("columns"),
        rows=frame.get("rows"),
        stats=frame.get("stats"),
    )


def _hello(token: Optional[str]) -> Dict:
    """Build the handshake frame."""
    message: Dict = {"type": "hello", "version": PROTOCOL_VERSION}
    if token is not None:
        message["token"] = token
    return message


class SQLClient:
    """Blocking driver: connect, execute, read rows — one at a time.

    Usage::

        with SQLClient("127.0.0.1", port, token="s3cret") as cli:
            n = cli.execute("SELECT COUNT(*) AS n FROM t").scalar()

    Parameters mirror the wire spec: ``token`` is the ``hello`` auth
    token, ``timeout`` the socket timeout in seconds (``None`` blocks
    indefinitely), ``max_frame_bytes`` the frame cap applied to both
    directions.
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: Optional[str] = None,
        timeout: Optional[float] = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._token = token
        self._timeout = timeout
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._retry = retry
        self._retry_rng = random.Random(retry.seed) if retry is not None else None
        self._sock: Optional[socket.socket] = None
        self._closed = False
        self._connect()

    def _connect(self) -> None:
        """Open the socket and complete the ``hello`` handshake."""
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        try:
            self._send(_hello(self._token))
            frame = self._recv()
            if frame.get("type") != "hello_ok":
                self._raise_error(frame)
            self.server_info = frame
        except BaseException:
            self._drop_connection()
            raise

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _send(self, message: Dict) -> None:
        if self._sock is None:
            raise ConnectionClosedError("client is not connected")
        self._sock.sendall(encode_frame(message, self._max_frame_bytes))

    def _recv_exact(self, n: int) -> bytes:
        if self._sock is None:
            raise ConnectionClosedError("client is not connected")
        chunks = []
        while n:
            chunk = self._sock.recv(n)
            if not chunk:
                raise ConnectionClosedError("server closed the connection")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def _recv(self) -> Dict:
        (length,) = HEADER.unpack(self._recv_exact(HEADER.size))
        if length > self._max_frame_bytes:
            raise FrameTooLargeError(f"server frame of {length} bytes exceeds cap")
        frame = decode_frame(self._recv_exact(length))
        validate_message(frame, protocol.SERVER_MESSAGES)
        return frame

    def _raise_error(self, frame: Dict) -> None:
        if frame.get("type") == "error":
            raise ServerError(
                frame["code"], frame["error"], backoff_ms=frame.get("backoff_ms")
            )
        if frame.get("type") == "goodbye":
            raise ConnectionClosedError("server said goodbye")
        raise ProtocolError(f"unexpected frame {frame.get('type')!r}")

    def _recv_reply(self, sid: int) -> ClientResult:
        """Block for the reply of statement ``sid``."""
        while True:
            frame = self._recv()
            if frame.get("id") == sid:
                if frame["type"] == "result":
                    return _result_from_frame(frame)
                self._raise_error(frame)
            elif frame.get("type") in ("error", "goodbye"):
                # connection-level failure (no id): fatal
                self._raise_error(frame)
            # stale reply to an older (cancelled/errored) id: skip

    def _roundtrip(self, message: Dict) -> ClientResult:
        """Send one statement frame and block for its reply by id."""
        if self._closed:
            raise ConnectionClosedError("client is closed")
        self._send(message)
        return self._recv_reply(message["id"])

    def _roundtrip_with_retry(
        self, make_message: Callable[[], Dict], idempotent: bool
    ) -> ClientResult:
        """Retry loop around :meth:`_roundtrip` per the client's policy.

        Retryable error frames (``query-timeout``, ``overloaded``,
        ``capacity``) are safe to resend for *any* statement — the
        server guarantees a shed or timed-out statement left no trace
        (timed-out writes unwind before the atomic mutation).  A broken
        connection is retried (with a transparent reconnect) only for
        idempotent statements, or when the statement frame provably
        never went out — a write that may have reached the server could
        otherwise be applied twice.
        """
        policy = self._retry
        assert policy is not None
        attempt = 0
        while True:
            if self._closed:
                raise ConnectionClosedError("client is closed")
            submitted = False
            hint: Optional[int] = None
            try:
                if self._sock is None:
                    self._connect()
                message = make_message()
                self._send(message)
                submitted = True
                return self._recv_reply(message["id"])
            except ServerError as exc:
                if not exc.retryable or attempt + 1 >= policy.max_attempts:
                    raise
                hint = exc.backoff_ms
                if exc.fatal:
                    self._drop_connection()
            except (ConnectionError, OSError, socket.timeout):
                self._drop_connection()
                if (submitted and not idempotent) or attempt + 1 >= policy.max_attempts:
                    raise
            time.sleep(policy.delay_ms(attempt, hint, self._retry_rng) / 1000.0)
            attempt += 1

    # ------------------------------------------------------------------
    def execute(self, sql: str, timeout_ms: Optional[int] = None) -> ClientResult:
        """Run one statement; blocks until its typed reply arrives.

        ``timeout_ms`` rides the wire as the per-statement deadline
        override (spec §3.2); when a :class:`RetryPolicy` was given,
        retryable failures are resent per :meth:`_roundtrip_with_retry`.
        """

        def make() -> Dict:
            message: Dict = {"type": "query", "id": next(self._ids), "sql": sql}
            if timeout_ms is not None:
                message["timeout_ms"] = timeout_ms
            return message

        if self._retry is None:
            return self._roundtrip(make())
        return self._roundtrip_with_retry(make, _statement_is_idempotent(sql))

    def prepare(self, name: str, sql: str) -> ClientResult:
        """Parse + classify ``sql`` server-side under ``name``."""
        return self._roundtrip(
            {"type": "prepare", "id": next(self._ids), "name": name, "sql": sql}
        )

    def run_prepared(self, name: str) -> ClientResult:
        """Execute the statement previously :meth:`prepare`-d as ``name``."""
        return self._roundtrip(
            {"type": "run_prepared", "id": next(self._ids), "name": name}
        )

    def close(self) -> None:
        """Send ``close``, wait for ``goodbye``, drop the socket."""
        if self._closed:
            return
        self._closed = True
        try:
            self._send({"type": "close"})
            while True:
                frame = self._recv()
                if frame.get("type") == "goodbye":
                    break
        except (ConnectionError, OSError, ProtocolError, socket.timeout):
            pass
        finally:
            self._drop_connection()

    def __enter__(self) -> "SQLClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncSQLClient:
    """Asyncio driver with statement pipelining and cancellation.

    Replies are matched to in-flight statements by id on a background
    reader task, so many :meth:`execute` coroutines can overlap on one
    connection — the client-side mirror of the server's per-connection
    ``max_inflight``.  Build instances with :meth:`connect`::

        cli = await AsyncSQLClient.connect("127.0.0.1", port)
        rows = (await cli.execute("SELECT ... ")).rows
        await cli.aclose()
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        server_info: Dict,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        token: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._token = token
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._closed = False
        self._retry = retry
        self._retry_rng = random.Random(retry.seed) if retry is not None else None
        self._conn_lock = asyncio.Lock()
        self._bind(reader, writer, server_info)

    def _bind(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        server_info: Dict,
    ) -> None:
        """Adopt a fresh (reader, writer) pair and restart the read loop."""
        self._reader = reader
        self._writer = writer
        self.server_info = server_info
        self._connected = True
        self._goodbye = asyncio.get_running_loop().create_future()
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @staticmethod
    async def _handshake(
        host: str, port: int, token: Optional[str], max_frame_bytes: int
    ):
        """Open a connection and complete the ``hello`` exchange."""
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await write_frame(writer, _hello(token), max_frame_bytes)
            frame = await read_frame(reader, max_frame_bytes)
            if frame is None:
                raise ConnectionClosedError("server closed during handshake")
            validate_message(frame, protocol.SERVER_MESSAGES)
            if frame["type"] == "error":
                raise ServerError(
                    frame["code"], frame["error"], backoff_ms=frame.get("backoff_ms")
                )
            if frame["type"] != "hello_ok":
                raise ProtocolError(f"expected hello_ok, got {frame['type']!r}")
        except BaseException:
            writer.close()
            raise
        return reader, writer, frame

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        token: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        retry: Optional[RetryPolicy] = None,
    ) -> "AsyncSQLClient":
        """Open a connection and complete the ``hello`` handshake."""
        reader, writer, frame = await cls._handshake(host, port, token, max_frame_bytes)
        return cls(
            reader,
            writer,
            frame,
            max_frame_bytes,
            host=host,
            port=port,
            token=token,
            retry=retry,
        )

    async def _ensure_connected(self) -> None:
        """Transparently re-open a dropped connection (lock-guarded).

        Only possible when the client was built via :meth:`connect` —
        a directly-constructed client has no address to redial.
        """
        if self._closed:
            raise ConnectionClosedError("client is closed")
        if self._connected:
            return
        async with self._conn_lock:
            if self._closed:
                raise ConnectionClosedError("client is closed")
            if self._connected:
                return
            if self._host is None or self._port is None:
                raise ConnectionClosedError("connection lost and no address to redial")
            # old reader task already unwound (it cleared _connected);
            # just drop the dead writer before redialing
            try:
                self._writer.close()
            except (ConnectionError, OSError):
                pass
            reader, writer, frame = await self._handshake(
                self._host, self._port, self._token, self._max_frame_bytes
            )
            self._bind(reader, writer, frame)

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        """Dispatch incoming frames to the waiting statement futures."""
        error: Optional[BaseException] = None
        try:
            while True:
                frame = await read_frame(self._reader, self._max_frame_bytes)
                if frame is None:
                    break
                validate_message(frame, protocol.SERVER_MESSAGES)
                mtype = frame["type"]
                if mtype == "goodbye":
                    if not self._goodbye.done():
                        self._goodbye.set_result(None)
                    break
                sid = frame.get("id")
                # resolve but do not pop: the reply stays claimable by a
                # later wait(); waiters remove their own entry
                future = self._pending.get(sid) if sid is not None else None
                if future is not None and not future.done():
                    if mtype == "result":
                        future.set_result(_result_from_frame(frame))
                    else:
                        future.set_exception(
                            ServerError(
                                frame["code"],
                                frame["error"],
                                backoff_ms=frame.get("backoff_ms"),
                            )
                        )
                elif mtype == "error" and sid is None:
                    error = ServerError(
                        frame["code"], frame["error"], backoff_ms=frame.get("backoff_ms")
                    )
                    break
        except (ConnectionError, OSError, ProtocolError, asyncio.CancelledError) as exc:
            error = exc
        finally:
            self._connected = False
            if error is None:
                error = ConnectionClosedError("connection closed")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()
            if not self._goodbye.done():
                self._goodbye.set_result(None)

    async def _send(self, message: Dict) -> None:
        if self._closed:
            raise ConnectionClosedError("client is closed")
        await write_frame(self._writer, message, self._max_frame_bytes)

    def _register(self, sid: int) -> asyncio.Future:
        future = asyncio.get_running_loop().create_future()
        self._pending[sid] = future
        return future

    async def _await_reply(self, sid: int) -> ClientResult:
        """Claim the reply of ``sid`` (each reply is claimable once)."""
        future = self._pending.get(sid)
        if future is None:
            raise KeyError(f"no in-flight statement with id {sid}")
        try:
            return await asyncio.shield(future)
        finally:
            self._pending.pop(sid, None)

    # ------------------------------------------------------------------
    async def submit(self, sql: str, timeout_ms: Optional[int] = None) -> int:
        """Fire one ``query`` frame, returning its statement id.

        The reply is claimed later with :meth:`wait` — the split lets a
        caller overlap statements or :meth:`cancel` one in flight.
        ``timeout_ms`` rides the wire as the per-statement deadline
        override (spec §3.2).
        """
        sid = next(self._ids)
        message: Dict = {"type": "query", "id": sid, "sql": sql}
        if timeout_ms is not None:
            message["timeout_ms"] = timeout_ms
        self._register(sid)
        try:
            await self._send(message)
        except BaseException:
            self._pending.pop(sid, None)
            raise
        return sid

    async def wait(self, sid: int) -> ClientResult:
        """Await the reply of a :meth:`submit`-ted statement."""
        return await self._await_reply(sid)

    async def execute(
        self, sql: str, timeout_ms: Optional[int] = None
    ) -> ClientResult:
        """Run one statement (``submit`` + ``wait``).

        With a :class:`RetryPolicy`, retryable error frames
        (``query-timeout``, ``overloaded``, ``capacity``) are resent
        after a jittered backoff for any statement — the server
        guarantees they left no trace — and a broken connection is
        transparently redialed, resending only idempotent statements or
        ones whose frame provably never went out.
        """
        if self._retry is None:
            return await self.wait(await self.submit(sql, timeout_ms))
        policy = self._retry
        attempt = 0
        while True:
            submitted = False
            hint: Optional[int] = None
            try:
                await self._ensure_connected()
                sid = await self.submit(sql, timeout_ms)
                submitted = True
                return await self.wait(sid)
            except ServerError as exc:
                if not exc.retryable or attempt + 1 >= policy.max_attempts:
                    raise
                hint = exc.backoff_ms
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                if (submitted and not _statement_is_idempotent(sql)) or (
                    attempt + 1 >= policy.max_attempts
                ):
                    raise
            await asyncio.sleep(policy.delay_ms(attempt, hint, self._retry_rng) / 1000.0)
            attempt += 1

    async def prepare(self, name: str, sql: str) -> ClientResult:
        """Parse + classify ``sql`` server-side under ``name``."""
        sid = next(self._ids)
        self._register(sid)
        await self._send({"type": "prepare", "id": sid, "name": name, "sql": sql})
        return await self._await_reply(sid)

    async def run_prepared(self, name: str) -> ClientResult:
        """Execute the statement previously :meth:`prepare`-d as ``name``."""
        sid = next(self._ids)
        self._register(sid)
        await self._send({"type": "run_prepared", "id": sid, "name": name})
        return await self._await_reply(sid)

    async def cancel(self, sid: int) -> None:
        """Request cooperative cancellation of an in-flight statement.

        Best-effort (spec §3.5): a queued statement is aborted and its
        :meth:`wait` raises :class:`ServerError` with code
        ``query-cancelled``; a statement already executing has its
        cancellation token fired and unwinds at the next morsel
        checkpoint (writes atomically un-applied) — it may still reply
        with its normal result if it was already past the final
        checkpoint.
        """
        await self._send({"type": "cancel", "target": sid})

    async def aclose(self) -> None:
        """Send ``close``, await the server's ``goodbye``, drop streams."""
        if self._closed:
            return
        self._closed = True
        try:
            await write_frame(self._writer, {"type": "close"}, self._max_frame_bytes)
            await asyncio.wait_for(asyncio.shield(self._goodbye), 10.0)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncSQLClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
