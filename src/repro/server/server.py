"""Asyncio TCP server fronting one shared session core.

The network front door of the ROADMAP's "millions of users" leg: an
:mod:`asyncio` server speaking the length-prefixed JSON protocol of
``docs/protocol.md`` (normative; see :mod:`repro.server.protocol` for
the codec), multiplexing every connection onto **one**
:class:`~repro.sql.async_session.AsyncSQLSession` — and therefore one
:class:`~repro.engine.parallel.ExecutionContext` worker pool and one
write order.  ``docs/architecture.md`` places this layer in the system
and explains why connections share the session core: per-connection
session cores would each carry their own writer lock over the same
catalog, which is exactly the unsynchronized concurrent DML the
blocking session rejects.

Scheduling and limits
---------------------
* ``max_connections`` bounds accepted connections; the connection that
  would exceed it receives a fatal ``capacity`` error frame.
* ``max_inflight`` is the **per-connection** statement bound, mapped
  onto the session's global FIFO admission: each connection holds an
  :class:`asyncio.Semaphore` of that size, so one chatty client queues
  behind its own limit while the session's fair FIFO (its own
  ``session_max_inflight`` bound) arbitrates *between* connections.
* Statements are submitted to the session in frame-arrival order per
  connection, so one connection's writes commit in the order it sent
  them; the global write order is the session's FIFO admission order.

Lifecycle
---------
* ``prepare`` parses and classifies once, per connection;
  ``run_prepared`` re-runs the stored statement through
  :meth:`AsyncSQLSession.execute_parsed` (the optimizer half still runs
  per execution, under the statement's admission slot).
* ``cancel`` is cooperative, with the session's semantics: a
  still-queued statement is removed and never runs; a statement already
  *executing* has its
  :class:`~repro.engine.interrupt.CancellationToken` fired and unwinds
  at its next between-morsel checkpoint — reads leave tables untouched,
  writes are atomically un-applied (the last checkpoint sits
  immediately before the mutation).  The reply carries the
  ``query-cancelled`` error code either way.  Statement deadlines ride
  the same token: a ``timeout_ms`` field on ``query``/``run_prepared``
  (or the server-wide ``statement_timeout_ms``) surfaces as the
  retryable ``query-timeout`` code, and a full admission queue
  (``session_max_queued``) is shed with the retryable ``overloaded``
  code carrying a ``backoff_ms`` hint.
* A client disconnect cancels that connection's statements the same
  way: queued ones never run, running ones unwind at a checkpoint (or
  commit whole if already past the final one), so the committed write
  order never tears (fuzz-tested in
  ``tests/server/test_server_fuzz.py``).
* :meth:`SQLServer.aclose` drains gracefully: stop accepting, abort
  *queued* statements with typed ``server-closed`` error frames
  (:class:`~repro.sql.async_session.ServerClosedError` underneath), let
  in-flight statements commit and deliver their results, then say
  ``goodbye`` on every connection and release the pools.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hmac
import operator
from typing import Dict, List, Optional, Set

from repro.engine.batch import Relation
from repro.engine.interrupt import (
    QueryCancelledError,
    QueryTimeoutError,
    validate_timeout_ms,
)
from repro.engine.parallel import DEFAULT_MORSEL_ROWS, validate_parallelism
from repro.sql.async_session import (
    AsyncSQLSession,
    QueryStats,
    ServerClosedError,
    SessionOverloadedError,
)
from repro.sql.parser import parse_statement
from repro.sql.session import classify_statement
from repro.server import protocol
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ERR_AUTH,
    ERR_CANCELLED,
    ERR_CAPACITY,
    ERR_OVERLOADED,
    ERR_QUERY_TIMEOUT,
    ERR_SERVER_CLOSED,
    ERR_SQL,
    ERR_UNKNOWN_PREPARED,
    PROTOCOL_VERSION,
    ConnectionClosedError,
    ProtocolError,
    encode_frame,
    error_frame,
    read_frame,
    validate_message,
)
from repro.testing import faults
from repro.storage.catalog import Catalog

__all__ = ["SQLServer", "validate_port"]

#: Reported in ``hello_ok`` frames.
SERVER_NAME = "patchindex-repro/0.1.0"

#: Seconds a fresh connection gets to complete the handshake.
HANDSHAKE_TIMEOUT = 10.0


def validate_port(value: object, name: str = "port") -> int:
    """Validate a TCP port knob, returning it as a plain int.

    Accepts integers in ``[0, 65535]`` (``0`` binds an ephemeral port);
    rejects bools, non-integers and out-of-range values up front, the
    same discipline :func:`~repro.engine.parallel.validate_parallelism`
    applies to worker-count knobs.
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    try:
        port = operator.index(value)
    except TypeError:
        raise TypeError(f"{name} must be an integer, got {value!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"{name} must be in [0, 65535], got {port}")
    return int(port)


def _result_payload(result):
    """Split a session result into ``(columns, rows, row_count)``.

    SELECTs yield a :class:`Relation` — serialized column-name list plus
    row-major values (numpy scalars converted to plain Python via
    ``tolist``); DML and SET yield a plain count with no row block.
    """
    if isinstance(result, Relation):
        names = result.column_names
        columns = [result.column(n).tolist() for n in names]
        rows = [list(row) for row in zip(*columns)] if names else []
        return names, rows, result.num_rows
    return None, None, int(result)


class _Connection:
    """Per-connection state: streams, limits, prepared statements."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, reader, writer, max_inflight: int) -> None:
        self.id = next(self._ids)
        self.reader = reader
        self.writer = writer
        self.slots = asyncio.Semaphore(max_inflight)
        self.write_lock = asyncio.Lock()
        self.inflight: Dict[int, asyncio.Task] = {}
        self.prepared: Dict[str, tuple] = {}
        self.closing = False

    async def send(self, message: Dict, max_frame_bytes: int) -> None:
        """Write one frame, serialized against concurrent statement tasks."""
        async with self.write_lock:
            data = encode_frame(message, max_frame_bytes)
            if faults.ACTIVE:
                # chaos-suite injection points: corrupt the outgoing
                # frame or drop the connection mid-send
                data = faults.mutate("server.frame", data)
                faults.fire("server.send")
            self.writer.write(data)
            await self.writer.drain()

    async def close_transport(self) -> None:
        """Close the socket, swallowing transport teardown errors."""
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class SQLServer:
    """Serve SQL over TCP on top of one shared async session.

    Parameters
    ----------
    catalog / index_manager / zero_branch_pruning / use_cost_model /
    parallelism / morsel_rows / session_max_inflight /
    session_max_queued / statement_timeout_ms / stall_timeout_s /
    stats_history:
        Forwarded to the single shared :class:`AsyncSQLSession`
        (``session_max_inflight`` is its global ``max_inflight``
        admission bound, ``session_max_queued`` its overload-shedding
        queue bound, ``statement_timeout_ms`` the default per-statement
        deadline clients may override per statement, and
        ``stall_timeout_s`` the wedged-pool self-heal trigger).
    data_dir / wal_sync / checkpoint_interval / checkpoint_retain:
        Durability knobs, forwarded to the shared session.  With
        ``data_dir`` set, the server recovers the directory's committed
        state before accepting connections, WAL-logs every commit, and
        the graceful drain of :meth:`aclose` syncs and checkpoints (via
        the session core's close), so a clean restart replays nothing.
    host / port:
        Bind address; ``port=0`` (the default) binds an ephemeral port,
        exposed as :attr:`port` after :meth:`start`.
    auth_token:
        When set, ``hello.token`` must match it (compared in constant
        time); when ``None`` the server accepts any token, absent
        included.
    max_connections:
        Accepted-connection cap; the connection that would exceed it is
        turned away with a fatal ``capacity`` error frame.
    max_inflight:
        Per-connection statement bound (see the module docstring for
        how it maps onto the session's FIFO admission).
    max_frame_bytes:
        Frame-size cap, enforced on receive before a body is buffered
        and advertised to clients in ``hello_ok``.

    Usage::

        async with SQLServer(catalog, port=0) as server:
            ...  # server.port is bound; connect SQLClient / AsyncSQLClient
    """

    def __init__(
        self,
        catalog: Catalog,
        index_manager=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: Optional[str] = None,
        max_connections: int = 64,
        max_inflight: int = 16,
        zero_branch_pruning: bool = False,
        use_cost_model: bool = True,
        parallelism: int = 1,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        session_max_inflight: int = 8,
        session_max_queued: Optional[int] = None,
        statement_timeout_ms: Optional[int] = None,
        stall_timeout_s: Optional[float] = None,
        stats_history: int = 256,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        data_dir: Optional[str] = None,
        wal_sync: str = "fsync",
        checkpoint_interval: Optional[int] = None,
        checkpoint_retain: int = 2,
    ) -> None:
        self._host = host
        self._port = validate_port(port)
        self._auth_token = auth_token
        self._max_connections = validate_parallelism(
            max_connections, name="max_connections"
        )
        self._max_inflight = validate_parallelism(max_inflight, name="max_inflight")
        if max_frame_bytes < protocol.HEADER.size:
            raise ValueError(f"max_frame_bytes too small: {max_frame_bytes}")
        self._max_frame_bytes = int(max_frame_bytes)
        self._db = AsyncSQLSession(
            catalog,
            index_manager,
            zero_branch_pruning=zero_branch_pruning,
            use_cost_model=use_cost_model,
            parallelism=parallelism,
            morsel_rows=morsel_rows,
            max_inflight=session_max_inflight,
            max_queued=session_max_queued,
            statement_timeout_ms=statement_timeout_ms,
            stall_timeout_s=stall_timeout_s,
            stats_history=stats_history,
            data_dir=data_dir,
            wal_sync=wal_sync,
            checkpoint_interval=checkpoint_interval,
            checkpoint_retain=checkpoint_retain,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._closing = False
        self._closed = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def session(self) -> AsyncSQLSession:
        """The shared session core (in-process introspection: stats,
        commit_count; the load tests replay its committed write log)."""
        return self._db

    @property
    def host(self) -> str:
        """Bind host."""
        return self._host

    @property
    def port(self) -> int:
        """Bound port (the ephemeral one once started with ``port=0``)."""
        return self._port

    @property
    def max_connections(self) -> int:
        """Accepted-connection cap."""
        return self._max_connections

    @property
    def max_inflight(self) -> int:
        """Per-connection in-flight statement cap."""
        return self._max_inflight

    @property
    def connections(self) -> int:
        """Connections currently accepted (post-handshake included)."""
        return len(self._connections)

    def stats(self) -> List[QueryStats]:
        """Per-statement records of the shared session, oldest first."""
        return self._db.stats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SQLServer":
        """Bind and start accepting connections; returns ``self``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._closed:
            raise ServerClosedError("server is closed")
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self

    async def aclose(self) -> None:
        """Graceful drain (idempotent; see the module docstring).

        Stops accepting, aborts statements still queued for admission
        with typed ``server-closed`` errors, waits for in-flight
        statements to commit *and their result frames to be written*,
        then says ``goodbye`` on every connection and releases the
        session's worker pools.
        """
        if self._closed:
            return
        self._closing = True
        self._closed = True
        if self._server is not None:
            self._server.close()
        # Abort queued statements (their tasks send server-closed
        # frames) and wait for admitted ones to finish executing.
        await self._db.shutdown()
        # Let every statement task deliver its final frame.  Re-snapshot
        # until quiescent: a statement task created while the drain was
        # in flight (the frame loop keeps serving until the goodbye)
        # would otherwise miss the gather and get its terminal frame
        # cut off by the connection-task cancellation below — every
        # statement id must see exactly one of result /
        # error(query-cancelled) / error(server-closed).
        while True:
            pending = [t for c in self._connections for t in c.inflight.values()]
            if not pending:
                break
            await asyncio.gather(*pending, return_exceptions=True)
        for conn in list(self._connections):
            conn.closing = True
            try:
                await conn.send({"type": "goodbye"}, self._max_frame_bytes)
            except (ConnectionError, OSError):
                pass
            await conn.close_transport()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()

    async def __aenter__(self) -> "SQLServer":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        """Accept → handshake → serve → teardown, for one connection."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        conn = _Connection(reader, writer, self._max_inflight)
        try:
            if self._closing:
                await self._refuse(conn, ERR_SERVER_CLOSED, "server is shutting down")
                return
            if len(self._connections) >= self._max_connections:
                await self._refuse(
                    conn,
                    ERR_CAPACITY,
                    f"connection limit reached ({self._max_connections})",
                )
                return
            self._connections.add(conn)
            if not await self._handshake(conn):
                return
            await self._serve(conn)
        except asyncio.CancelledError:
            pass
        finally:
            self._connections.discard(conn)
            if task is not None:
                self._conn_tasks.discard(task)
            # disconnect (or teardown): cancel this connection's
            # statements — queued ones never run, running ones finish
            # atomically on their worker thread (session semantics), so
            # committed write order is preserved.
            for stmt_task in list(conn.inflight.values()):
                stmt_task.cancel()
            conn.closing = True
            await conn.close_transport()

    async def _refuse(self, conn: _Connection, code: str, reason: str) -> None:
        """Turn a connection away with one fatal error frame."""
        try:
            await conn.send(error_frame(code, reason), self._max_frame_bytes)
        except (ConnectionError, OSError):
            pass

    async def _handshake(self, conn: _Connection) -> bool:
        """Require a valid ``hello`` as the first frame (spec §2)."""
        try:
            message = await asyncio.wait_for(
                read_frame(conn.reader, self._max_frame_bytes), HANDSHAKE_TIMEOUT
            )
        except ProtocolError as exc:
            await self._refuse(conn, exc.code, str(exc))
            return False
        except (asyncio.TimeoutError, ConnectionClosedError, ConnectionError, OSError):
            return False
        if message is None:
            return False
        try:
            mtype = validate_message(message, protocol.CLIENT_MESSAGES)
            if mtype != "hello":
                raise ProtocolError(f"first frame must be 'hello', got {mtype!r}")
            if message["version"] != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {message['version']!r}; "
                    f"server speaks {PROTOCOL_VERSION}"
                )
        except ProtocolError as exc:
            await self._refuse(conn, exc.code, str(exc))
            return False
        if self._auth_token is not None:
            token = message.get("token")
            ok = isinstance(token, str) and hmac.compare_digest(
                token.encode(), self._auth_token.encode()
            )
            if not ok:
                await self._refuse(conn, ERR_AUTH, "invalid auth token")
                return False
        await conn.send(
            {
                "type": "hello_ok",
                "version": PROTOCOL_VERSION,
                "server": SERVER_NAME,
                "max_frame_bytes": self._max_frame_bytes,
                "max_inflight": self._max_inflight,
            },
            self._max_frame_bytes,
        )
        return True

    async def _serve(self, conn: _Connection) -> None:
        """Frame dispatch loop for one authenticated connection."""
        while True:
            try:
                message = await read_frame(conn.reader, self._max_frame_bytes)
            except ProtocolError as exc:
                await self._refuse(conn, exc.code, str(exc))
                return
            except (ConnectionClosedError, ConnectionError, OSError):
                return
            if message is None:
                return
            try:
                mtype = validate_message(message, protocol.CLIENT_MESSAGES)
                if mtype == "close":
                    await self._close_connection(conn)
                    return
                if mtype == "cancel":
                    target = conn.inflight.get(message["target"])
                    if target is not None:
                        target.cancel()
                    continue
                if mtype == "hello":
                    raise ProtocolError("duplicate 'hello'")
                sid = message["id"]
                if sid in conn.inflight:
                    raise ProtocolError(f"statement id {sid} is already in flight")
                if mtype == "prepare":
                    await self._prepare(conn, message)
                    continue
                # query / run_prepared: run concurrently, reply by id
                task = asyncio.get_running_loop().create_task(
                    self._run_statement(conn, mtype, message)
                )
                conn.inflight[sid] = task
                task.add_done_callback(lambda _t, c=conn, i=sid: c.inflight.pop(i, None))
            except ProtocolError as exc:
                # statement-independent violation: fatal (spec §5)
                await self._refuse(conn, exc.code, str(exc))
                return

    async def _close_connection(self, conn: _Connection) -> None:
        """Graceful per-connection close: finish in-flight, say goodbye."""
        conn.closing = True
        pending = list(conn.inflight.values())
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        try:
            await conn.send({"type": "goodbye"}, self._max_frame_bytes)
        except (ConnectionError, OSError):
            pass

    async def _prepare(self, conn: _Connection, message: Dict) -> None:
        """Parse + classify once; store under the connection-local name."""
        sid = message["id"]
        try:
            stmt = parse_statement(message["sql"])
            kind = classify_statement(stmt)
        except Exception as exc:
            await self._send_statement_error(conn, sid, ERR_SQL, exc)
            return
        conn.prepared[message["name"]] = (stmt, message["sql"])
        await conn.send(
            {
                "type": "result",
                "id": sid,
                "row_count": 0,
                "prepared": message["name"],
                "kind": kind,
            },
            self._max_frame_bytes,
        )

    async def _run_statement(self, conn: _Connection, mtype: str, message: Dict) -> None:
        """One statement task: admit under the per-connection bound,
        execute through the shared session, reply with a typed frame."""
        sid = message["id"]
        try:
            timeout_ms = message.get("timeout_ms")
            if timeout_ms is not None:
                # type-checked by validate_message; the value range is a
                # statement-level error, not a protocol violation
                try:
                    timeout_ms = validate_timeout_ms(timeout_ms)
                except (TypeError, ValueError) as exc:
                    raise _StatementError(ERR_SQL, f"invalid timeout_ms: {exc}") from exc
            async with conn.slots:
                if mtype == "run_prepared":
                    entry = conn.prepared.get(message["name"])
                    if entry is None:
                        raise _StatementError(
                            ERR_UNKNOWN_PREPARED,
                            f"no prepared statement named {message['name']!r}",
                        )
                    stmt, sql = entry
                else:
                    sql = message["sql"]
                    try:
                        stmt = parse_statement(sql)
                    except Exception as exc:
                        raise _StatementError(ERR_SQL, str(exc)) from exc
                result, stats = await self._db.execute_parsed(
                    stmt, sql, with_stats=True, timeout_ms=timeout_ms
                )
            columns, rows, row_count = _result_payload(result)
            frame: Dict = {
                "type": "result",
                "id": sid,
                "row_count": row_count,
                "stats": dataclasses.asdict(stats),
            }
            if columns is not None:
                frame["columns"] = columns
                frame["rows"] = rows
        except asyncio.CancelledError:
            # cancel message or disconnect; keep serving the connection
            task = asyncio.current_task()
            if task is not None and hasattr(task, "uncancel"):
                task.uncancel()
            frame = error_frame(ERR_CANCELLED, "statement cancelled", id=sid)
        except _StatementError as exc:
            frame = error_frame(exc.code, exc.reason, id=sid)
        except QueryTimeoutError as exc:
            frame = error_frame(ERR_QUERY_TIMEOUT, str(exc), id=sid)
        except QueryCancelledError:
            # belt-and-braces: a token fired without the task being
            # cancelled (e.g. a racing interrupt) still reports as a
            # cancellation, not a generic sql error
            frame = error_frame(ERR_CANCELLED, "statement cancelled", id=sid)
        except SessionOverloadedError as exc:
            frame = error_frame(
                ERR_OVERLOADED, str(exc), id=sid, backoff_ms=exc.backoff_ms
            )
        except ServerClosedError as exc:
            frame = error_frame(ERR_SERVER_CLOSED, str(exc), id=sid)
        except Exception as exc:
            frame = error_frame(ERR_SQL, f"{type(exc).__name__}: {exc}", id=sid)
        try:
            await conn.send(frame, self._max_frame_bytes)
        except (ConnectionError, OSError, ProtocolError):
            # peer vanished mid-reply (or the result outgrew the frame
            # cap); the statement's effect, if any, is already durable
            pass

    async def _send_statement_error(
        self, conn: _Connection, sid: int, code: str, exc: Exception
    ) -> None:
        """Reply to ``sid`` with a non-fatal typed error frame."""
        await conn.send(error_frame(code, str(exc), id=sid), self._max_frame_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else ("live" if self._server else "unstarted")
        return (
            f"SQLServer({self._host}:{self._port}, {state}, "
            f"connections={len(self._connections)}/{self._max_connections})"
        )


class _StatementError(Exception):
    """Internal: a statement-level failure with its wire error code."""

    def __init__(self, code: str, reason: str) -> None:
        super().__init__(reason)
        self.code = code
        self.reason = reason
