"""Network front door: SQL over TCP on one shared session core.

The server layer (see ``docs/architecture.md`` for where it sits and
``docs/protocol.md`` for the normative wire protocol):

* :mod:`repro.server.protocol` — length-prefixed JSON frame codec,
  message tables, error codes.
* :mod:`repro.server.server` — :class:`SQLServer`, the asyncio acceptor
  multiplexing connections onto one
  :class:`~repro.sql.async_session.AsyncSQLSession`.
* :mod:`repro.server.client` — :class:`SQLClient` (blocking) and
  :class:`AsyncSQLClient` (pipelined asyncio) drivers.
"""

from repro.server.client import (
    AsyncSQLClient,
    ClientResult,
    RetryPolicy,
    ServerError,
    SQLClient,
)
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    RETRYABLE_ERROR_CODES,
    ConnectionClosedError,
    FrameTooLargeError,
    ProtocolError,
)
from repro.server.server import SQLServer, validate_port
from repro.sql.async_session import ServerClosedError

__all__ = [
    "SQLServer",
    "SQLClient",
    "AsyncSQLClient",
    "ClientResult",
    "ServerError",
    "ServerClosedError",
    "RetryPolicy",
    "RETRYABLE_ERROR_CODES",
    "ProtocolError",
    "FrameTooLargeError",
    "ConnectionClosedError",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "validate_port",
]
