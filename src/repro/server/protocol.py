"""Length-prefixed JSON wire protocol: framing, message specs, codec.

This module implements the protocol **specified in** ``docs/protocol.md``
— the spec is normative, the code follows it, and the doc's embedded
frame examples are parsed through this codec by
``tests/server/test_protocol_doc.py``.

A frame is a 4-byte big-endian unsigned length ``N`` followed by ``N``
bytes of UTF-8 JSON encoding one message object.  Encoding is
deterministic (sorted keys, no whitespace) so a message has exactly one
canonical frame — the property the spec's byte-level examples rely on.
Non-finite floats use Python's ``NaN`` / ``Infinity`` JSON extension,
as the spec documents.

Message validation is table-driven: :data:`CLIENT_MESSAGES` /
:data:`SERVER_MESSAGES` name the message types each side may send and
the required fields (with types) of each; unknown *fields* are ignored
for forward compatibility, unknown *types* and missing or mistyped
required fields are :class:`ProtocolError`\\ s.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "HEADER",
    "CLIENT_MESSAGES",
    "SERVER_MESSAGES",
    "ERR_AUTH",
    "ERR_PROTOCOL",
    "ERR_TOO_LARGE",
    "ERR_CAPACITY",
    "ERR_SQL",
    "ERR_UNKNOWN_PREPARED",
    "ERR_CANCELLED",
    "ERR_QUERY_TIMEOUT",
    "ERR_OVERLOADED",
    "ERR_SERVER_CLOSED",
    "ERROR_CODES",
    "FATAL_ERROR_CODES",
    "RETRYABLE_ERROR_CODES",
    "OPTIONAL_CLIENT_FIELDS",
    "ProtocolError",
    "FrameTooLargeError",
    "ConnectionClosedError",
    "encode_frame",
    "decode_frame",
    "validate_message",
    "read_frame",
    "write_frame",
    "error_frame",
]

#: Wire protocol version; ``hello.version`` must match exactly (§2 of
#: the spec — v1 has no negotiation, a mismatch is a fatal error).
PROTOCOL_VERSION = 2

#: Default cap on one frame's JSON body.  Larger frames are rejected
#: with the fatal ``too-large`` error code before the body is read.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

#: The 4-byte big-endian unsigned length prefix.
HEADER = struct.Struct(">I")

# --- error codes (spec §5) -------------------------------------------
ERR_AUTH = "auth"
ERR_PROTOCOL = "protocol"
ERR_TOO_LARGE = "too-large"
ERR_CAPACITY = "capacity"
ERR_SQL = "sql"
ERR_UNKNOWN_PREPARED = "unknown-prepared"
ERR_CANCELLED = "query-cancelled"
ERR_QUERY_TIMEOUT = "query-timeout"
ERR_OVERLOADED = "overloaded"
ERR_SERVER_CLOSED = "server-closed"

#: Every error code the server may emit.
ERROR_CODES = frozenset(
    {
        ERR_AUTH,
        ERR_PROTOCOL,
        ERR_TOO_LARGE,
        ERR_CAPACITY,
        ERR_SQL,
        ERR_UNKNOWN_PREPARED,
        ERR_CANCELLED,
        ERR_QUERY_TIMEOUT,
        ERR_OVERLOADED,
        ERR_SERVER_CLOSED,
    }
)

#: Codes after which the server closes the connection (spec §5): the
#: stream can no longer be trusted (framing/auth violations) or the
#: server is going away.  Statement-level codes are non-fatal.
FATAL_ERROR_CODES = frozenset({ERR_AUTH, ERR_PROTOCOL, ERR_TOO_LARGE, ERR_CAPACITY})

#: Codes a client may transparently retry (spec §5): the statement
#: provably did not apply.  ``query-timeout`` qualifies because engine
#: checkpoints only fire between morsels and before a write's atomic
#: mutation; ``overloaded`` and ``capacity`` were refused before
#: admission.  ``query-cancelled`` is deliberately NOT retryable — the
#: cancel expressed user intent.  Retryable error frames may carry an
#: optional integer ``backoff_ms`` hint.
RETRYABLE_ERROR_CODES = frozenset({ERR_QUERY_TIMEOUT, ERR_OVERLOADED, ERR_CAPACITY})

#: Required fields per client→server message type (spec §3).
CLIENT_MESSAGES: Mapping[str, Tuple[Tuple[str, type], ...]] = {
    "hello": (("version", int),),
    "query": (("id", int), ("sql", str)),
    "prepare": (("id", int), ("name", str), ("sql", str)),
    "run_prepared": (("id", int), ("name", str)),
    "cancel": (("target", int),),
    "close": (),
}

#: Optional typed fields per client→server message type (spec §3): when
#: present they must have the listed type (``ProtocolError`` otherwise);
#: absent is always fine.  Value-range checks (e.g. a non-positive
#: ``timeout_ms``) are statement-level ``sql`` errors, not protocol
#: violations.
OPTIONAL_CLIENT_FIELDS: Mapping[str, Tuple[Tuple[str, type], ...]] = {
    "query": (("timeout_ms", int),),
    "run_prepared": (("timeout_ms", int),),
}

#: Required fields per server→client message type (spec §4).
SERVER_MESSAGES: Mapping[str, Tuple[Tuple[str, type], ...]] = {
    "hello_ok": (("version", int),),
    "result": (("id", int), ("row_count", int)),
    "error": (("code", str), ("error", str)),
    "goodbye": (),
}


class ProtocolError(ValueError):
    """A frame or message violating the wire protocol.

    Carries the wire error ``code`` the server reports for it; protocol
    violations are fatal to the connection (spec §5).
    """

    code = ERR_PROTOCOL


class FrameTooLargeError(ProtocolError):
    """A frame whose declared length exceeds the negotiated cap."""

    code = ERR_TOO_LARGE


class ConnectionClosedError(ConnectionError):
    """The peer closed the connection (possibly mid-frame)."""


def encode_frame(message: Mapping, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Serialize one message into its canonical frame bytes.

    Deterministic: keys are sorted and no whitespace is emitted, so the
    same message always produces the same bytes (the spec's examples
    are literal).  Raises :class:`FrameTooLargeError` when the body
    exceeds ``max_frame_bytes``.
    """
    if "type" not in message:
        raise ProtocolError("message has no 'type' field")
    body = json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame body is {len(body)} bytes, cap is {max_frame_bytes}"
        )
    return HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> Dict:
    """Parse one frame body (the bytes after the length prefix).

    Returns the message dict; raises :class:`ProtocolError` for
    non-UTF-8, non-JSON, non-object bodies or a missing ``type``.
    """
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    if not isinstance(message.get("type"), str):
        raise ProtocolError("message has no string 'type' field")
    return message


def validate_message(
    message: Mapping, direction: Mapping[str, Tuple[Tuple[str, type], ...]]
) -> str:
    """Check a decoded message against one side's message table.

    ``direction`` is :data:`CLIENT_MESSAGES` or :data:`SERVER_MESSAGES`.
    Returns the message type; raises :class:`ProtocolError` for unknown
    types and missing or mistyped required fields.  ``bool`` is never
    accepted where an ``int`` is required (JSON ``true`` is not an id).
    """
    mtype = message.get("type")
    spec = direction.get(mtype)
    if spec is None:
        raise ProtocolError(f"unknown message type {mtype!r}")
    for field, ftype in spec:
        if field not in message:
            raise ProtocolError(f"{mtype!r} message missing field {field!r}")
        _check_field_type(mtype, field, message[field], ftype)
    if direction is CLIENT_MESSAGES:
        for field, ftype in OPTIONAL_CLIENT_FIELDS.get(mtype, ()):
            if field in message:
                _check_field_type(mtype, field, message[field], ftype)
    return mtype


def _check_field_type(mtype: str, field: str, value, ftype: type) -> None:
    """One field's type check; ``bool`` never satisfies ``int``."""
    if not isinstance(value, ftype) or (ftype is int and isinstance(value, bool)):
        raise ProtocolError(
            f"{mtype!r} field {field!r} must be {ftype.__name__}, "
            f"got {type(value).__name__}"
        )


async def read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[Dict]:
    """Read one frame from a stream; ``None`` on clean EOF.

    Clean EOF means the stream ended exactly on a frame boundary; EOF
    inside a frame raises :class:`ConnectionClosedError`.  A declared
    length above ``max_frame_bytes`` raises :class:`FrameTooLargeError`
    *before* the body is read, so an oversized payload never buffers.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionClosedError("connection closed inside a frame header") from None
    (length,) = HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"declared frame length {length} exceeds cap {max_frame_bytes}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ConnectionClosedError("connection closed inside a frame body") from None
    return decode_frame(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    message: Mapping,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Encode and send one message, waiting for the transport to drain."""
    writer.write(encode_frame(message, max_frame_bytes))
    await writer.drain()


def error_frame(
    code: str,
    error: str,
    id: Optional[int] = None,
    backoff_ms: Optional[int] = None,
) -> Dict:
    """Build an ``error`` message (statement-level when ``id`` is set).

    ``backoff_ms`` attaches the retry hint retryable codes may carry
    (spec §5); rejecting it on non-retryable codes keeps the taxonomy
    honest.
    """
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    message: Dict = {"type": "error", "code": code, "error": error}
    if id is not None:
        message["id"] = id
    if backoff_ms is not None:
        if code not in RETRYABLE_ERROR_CODES:
            raise ValueError(
                f"backoff_ms is only valid on retryable codes, not {code!r}"
            )
        message["backoff_ms"] = int(backoff_ms)
    return message
