"""Test-only instrumentation shipped with the library.

Production code imports :mod:`repro.testing.faults` for its injection
points; with no injector armed every point is a single module-level
boolean read, so the harness costs nothing outside the chaos suites.
:mod:`repro.testing.differential` is the cross-engine correctness
oracle: it replays a versioned SQL corpus through :class:`SQLSession`
and stdlib ``sqlite3`` side by side and reports row-level divergences.
Its names are re-exported lazily — the differential module pulls in the
whole SQL stack, while :mod:`repro.engine.parallel` imports *this*
package for the fault points, so an eager import would be circular.
"""

from repro.testing.faults import (
    KNOWN_POINTS,
    FaultInjector,
    FaultRule,
    InjectedDisconnectError,
    InjectedFaultError,
    InjectedWorkerError,
    inject,
)

_DIFFERENTIAL_NAMES = frozenset(
    {
        "CORPUS_VERSION",
        "XFAIL_MANIFEST",
        "DifferentialPair",
        "DifferentialReport",
        "Query",
        "ResultMismatch",
        "UnsupportedSQL",
        "build_reference_catalog",
        "default_corpus",
        "mirror_catalog",
        "run_corpus",
    }
)

__all__ = [
    "KNOWN_POINTS",
    "FaultInjector",
    "FaultRule",
    "InjectedDisconnectError",
    "InjectedFaultError",
    "InjectedWorkerError",
    "inject",
    *sorted(_DIFFERENTIAL_NAMES),
]


def __getattr__(name: str):
    """Resolve differential names on first use (PEP 562)."""
    if name in _DIFFERENTIAL_NAMES:
        from repro.testing import differential

        return getattr(differential, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
