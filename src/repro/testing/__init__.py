"""Test-only instrumentation shipped with the library.

Production code imports :mod:`repro.testing.faults` for its injection
points; with no injector armed every point is a single module-level
boolean read, so the harness costs nothing outside the chaos suites.
"""

from repro.testing.faults import (
    KNOWN_POINTS,
    FaultInjector,
    FaultRule,
    InjectedDisconnectError,
    InjectedFaultError,
    InjectedWorkerError,
    inject,
)

__all__ = [
    "KNOWN_POINTS",
    "FaultInjector",
    "FaultRule",
    "InjectedDisconnectError",
    "InjectedFaultError",
    "InjectedWorkerError",
    "inject",
]
