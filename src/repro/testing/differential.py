"""Cross-engine differential regression harness (the correctness oracle).

Runs a versioned workload corpus through **our** SQL engine
(:class:`repro.sql.SQLSession`) and through a reference engine — the
stdlib :mod:`sqlite3` by default — on identically loaded schemas, and
asserts row-level result equality under a canonical comparator.  The
idea follows the differential-testing style of optimizer/engine research
harnesses: the reference engine is the oracle, every divergence is
either a bug or a *documented* semantic gap.

Three moving parts:

* **Mirroring** — :func:`mirror_catalog` recreates every catalog table
  inside a reference connection (INT64→INTEGER, FLOAT64→REAL,
  STRING→TEXT; our NaN-as-NULL float representation maps onto SQL NULL
  both ways).
* **Comparison** — :func:`compare_rows` canonicalizes both result sets
  (NaN↔NULL unification, numeric widening, canonical row order) and
  compares cell-wise with a float tolerance, raising a typed
  :class:`ResultMismatch` carrying the first differing rows.  SQL our
  engine rejects but the reference accepts surfaces as
  :class:`UnsupportedSQL` — honest "not implemented", never a silent
  skip.
* **The corpus** — :func:`default_corpus` assembles TPC-H Q-shapes,
  PublicBI-style profile probes, NULL-semantics probes and seeded
  randomized SELECT / DML mixes (:func:`random_select_corpus`,
  :func:`random_dml_corpus`).  ``CORPUS_VERSION`` names the corpus
  revision: bump it whenever a query is added, removed or reworded so
  stored expectations (e.g. timing baselines keyed by query id) are
  invalidated explicitly rather than silently compared across
  revisions.

Known, deliberate semantic gaps live in :data:`XFAIL_MANIFEST` — each
entry says *why* the engines diverge.  :func:`run_corpus` enforces the
manifest strictly: an unexplained mismatch fails, and so does an entry
that unexpectedly passes (so stale excuses cannot linger).
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import random
import sqlite3
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sql.session import SQLSession
from repro.storage.catalog import Catalog
from repro.storage.column import ColumnType
from repro.storage.table import Table
from repro.workloads.tpch import generate_tpch

__all__ = [
    "CORPUS_VERSION",
    "Query",
    "ResultMismatch",
    "UnsupportedSQL",
    "XFAIL_MANIFEST",
    "DifferentialPair",
    "DifferentialReport",
    "build_reference_catalog",
    "mirror_catalog",
    "canonical_value",
    "canonical_rows",
    "compare_rows",
    "tpch_corpus",
    "publicbi_corpus",
    "null_corpus",
    "feature_corpus",
    "random_select_corpus",
    "random_dml_corpus",
    "default_corpus",
    "run_corpus",
]

#: Corpus revision; bump on any query add/remove/reword (see module doc).
CORPUS_VERSION = 1

#: Relative float tolerance of the comparator (absolute 1e-12 floor).
FLOAT_RTOL = 1e-9


class ResultMismatch(AssertionError):
    """Our engine and the reference returned different result sets.

    Carries the query id, its SQL and a human-readable diff of the
    first divergent canonical rows.
    """

    def __init__(self, qid: str, sql: str, detail: str) -> None:
        super().__init__(f"[{qid}] result mismatch for {sql!r}: {detail}")
        self.qid = qid
        self.sql = sql
        self.detail = detail


class UnsupportedSQL(Exception):
    """Our engine rejected SQL that the reference engine accepts.

    Wraps the engine's own error so corpus runs can separate "wrong
    answer" (a bug) from "no answer" (a feature gap) — only the former
    fails a differential run outright.
    """

    def __init__(self, qid: str, sql: str, error: Exception) -> None:
        super().__init__(f"[{qid}] unsupported by our engine: {sql!r} ({error})")
        self.qid = qid
        self.sql = sql
        self.error = error


@dataclasses.dataclass(frozen=True)
class Query:
    """One corpus entry: a stable id, its SQL, and its statement kind.

    ``kind`` is ``select`` (compare result sets) or ``dml`` (compare
    affected-row counts, then compare the mutated table's full content).
    For ``dml`` entries ``table`` names the mutated table.
    """

    qid: str
    sql: str
    kind: str = "select"
    table: Optional[str] = None


#: Known, explained divergences from the reference engine.  Keys are
#: query ids; values say why the engines disagree.  ``run_corpus``
#: treats an entry that *passes* as an error (stale excuse).
XFAIL_MANIFEST: Dict[str, str] = {
    "null/agg-count-col": (
        "COUNT(col) counts NULLs in our engine (count is row-count per "
        "group, not non-NULL count as SQL requires)"
    ),
    "null/agg-sum-nan": (
        "SUM/AVG over a NULL-holding float column propagates NaN "
        "(numpy accumulation) where SQL ignores NULLs"
    ),
    "null/agg-min-nan": (
        "MIN/MAX over a NULL-holding float column propagates NaN "
        "(numpy accumulation) where SQL ignores NULLs"
    ),
    "null/agg-empty-sum": (
        "SUM over an empty input returns the dtype zero in our engine "
        "(numpy reduction identity) where SQL returns NULL"
    ),
    "rand/s7-01": (
        "seeded query hits the SUM-over-empty-set gap: our engine "
        "returns 0 where SQLite returns NULL (see null/agg-empty-sum)"
    ),
    "null/order-by-null-first": (
        "ORDER BY + LIMIT over a NULL-holding column: NaN sorts last in "
        "numpy, NULL sorts first in SQLite, so the limited prefix differs"
    ),
    "null/not-over-null-comparison": (
        "NOT (x = y) with NULL x is two-valued in our engine (NULL "
        "comparison -> false, NOT -> true) where SQL three-valued logic "
        "keeps the row excluded"
    ),
}


# ----------------------------------------------------------------------
# schema mirroring
# ----------------------------------------------------------------------
_SQLITE_TYPE = {
    ColumnType.INT64: "INTEGER",
    ColumnType.FLOAT64: "REAL",
    ColumnType.STRING: "TEXT",
}


def mirror_catalog(catalog: Catalog, conn: sqlite3.Connection) -> None:
    """Recreate every catalog table, with its rows, in ``conn``.

    Column types map INT64→INTEGER, FLOAT64→REAL, STRING→TEXT.  Float
    NaN (our NULL representation) is converted to SQL NULL explicitly,
    so both engines start from the same logical content.
    """
    for table in catalog:
        names = table.schema.names
        cols = ", ".join(
            f"{f.name} {_SQLITE_TYPE[f.type]}" for f in table.schema.fields
        )
        conn.execute(f"DROP TABLE IF EXISTS {table.name}")
        conn.execute(f"CREATE TABLE {table.name} ({cols})")
        arrays = [table.column(n) for n in names]
        rows = []
        for i in range(table.num_rows):
            row = []
            for arr in arrays:
                v = arr[i]
                if v is None:
                    row.append(None)
                elif isinstance(v, (float, np.floating)):
                    row.append(None if math.isnan(v) else float(v))
                elif isinstance(v, (int, np.integer)):
                    row.append(int(v))
                else:
                    row.append(str(v))
            rows.append(tuple(row))
        placeholders = ", ".join("?" for _ in names)
        conn.executemany(
            f"INSERT INTO {table.name} VALUES ({placeholders})", rows
        )
    conn.commit()


# ----------------------------------------------------------------------
# canonical comparison
# ----------------------------------------------------------------------
def canonical_value(v: object) -> object:
    """Collapse a cell to the comparator's canonical domain.

    ``None`` and float NaN both become ``None`` (one NULL); numpy
    scalars widen to python ints/floats; everything else becomes its
    string form.
    """
    if v is None:
        return None
    if isinstance(v, (bool, np.bool_)):
        return int(v)
    if isinstance(v, (int, np.integer)):
        return int(v)
    if isinstance(v, (float, np.floating)):
        return None if math.isnan(v) else float(v)
    return str(v)


def _row_sort_key(row: Tuple) -> Tuple:
    """Total order over canonical rows (NULL first, then by type).

    Floats are keyed on a rounded value so two cells that are equal
    within the comparator's tolerance sort to the same position in both
    result sets.
    """
    key = []
    for v in row:
        if v is None:
            key.append((0, "", 0.0))
        elif isinstance(v, str):
            key.append((1, v, 0.0))
        else:
            key.append((2, "", round(float(v), 7)))
    return tuple(key)


def canonical_rows(rows: Iterable[Sequence]) -> List[Tuple]:
    """Canonicalize and sort a result set for order-insensitive diffing."""
    canon = [tuple(canonical_value(v) for v in row) for row in rows]
    return sorted(canon, key=_row_sort_key)


def _cells_equal(a: object, b: object) -> bool:
    """Cell equality with float tolerance (exact for everything else)."""
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    return math.isclose(float(a), float(b), rel_tol=FLOAT_RTOL, abs_tol=1e-12)


def compare_rows(
    qid: str, sql: str, ours: Iterable[Sequence], reference: Iterable[Sequence]
) -> None:
    """Assert two result sets are equal under the canonical comparator.

    Raises :class:`ResultMismatch` with the first few divergent rows;
    returns ``None`` when the sets agree.
    """
    a = canonical_rows(ours)
    b = canonical_rows(reference)
    if len(a) != len(b):
        raise ResultMismatch(
            qid, sql,
            f"row count {len(a)} (ours) vs {len(b)} (reference); "
            f"ours[:3]={a[:3]} reference[:3]={b[:3]}",
        )
    diffs = []
    for i, (ra, rb) in enumerate(zip(a, b)):
        if len(ra) != len(rb):
            raise ResultMismatch(
                qid, sql, f"column count {len(ra)} vs {len(rb)} at row {i}"
            )
        if not all(_cells_equal(x, y) for x, y in zip(ra, rb)):
            diffs.append(f"row {i}: ours={ra} reference={rb}")
            if len(diffs) >= 5:
                break
    if diffs:
        raise ResultMismatch(qid, sql, "; ".join(diffs))


# ----------------------------------------------------------------------
# the paired runner
# ----------------------------------------------------------------------
class DifferentialPair:
    """One :class:`SQLSession` and its reference mirror, run in lockstep.

    Construct from a loaded catalog; :meth:`check` compares a SELECT,
    :meth:`apply` runs a DML statement on both sides and compares the
    affected-row count plus the mutated table's full content.  The
    reference connection is owned by the pair (closed by :meth:`close`)
    unless one is passed in.
    """

    def __init__(
        self,
        catalog: Catalog,
        session: Optional[SQLSession] = None,
        conn: Optional[sqlite3.Connection] = None,
    ) -> None:
        self.catalog = catalog
        self.session = session if session is not None else SQLSession(catalog)
        self._owns_conn = conn is None
        self.conn = conn if conn is not None else sqlite3.connect(":memory:")
        mirror_catalog(catalog, self.conn)

    def close(self) -> None:
        """Release the session pool and (if owned) the reference connection."""
        self.session.close()
        if self._owns_conn:
            self.conn.close()

    def __enter__(self) -> "DifferentialPair":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _run_ours(self, query: Query):
        """Run on our engine, wrapping rejections as :class:`UnsupportedSQL`."""
        try:
            return self.session.execute(query.sql)
        except (AssertionError, KeyboardInterrupt):
            raise
        except Exception as exc:
            raise UnsupportedSQL(query.qid, query.sql, exc) from exc

    def check(self, query: Query) -> None:
        """Run one SELECT on both engines and compare the result sets."""
        rel = self._run_ours(query)
        ours = rel.to_rows()
        reference = self.conn.execute(query.sql).fetchall()
        compare_rows(query.qid, query.sql, ours, reference)

    def apply(self, query: Query) -> None:
        """Run one DML statement on both engines and compare the effects.

        Compares the affected-row count (INSERT/UPDATE/DELETE) and then
        the full content of the mutated table, so a statement that
        touches the right number of the wrong rows still fails.
        """
        count = self._run_ours(query)
        cur = self.conn.execute(query.sql)
        self.conn.commit()
        if int(count) != int(cur.rowcount):
            raise ResultMismatch(
                query.qid, query.sql,
                f"affected-row count {count} (ours) vs {cur.rowcount} (reference)",
            )
        if query.table is not None:
            self.check_table(query.qid, query.table)

    def check_table(self, qid: str, table: str) -> None:
        """Compare a table's full content across the two engines."""
        probe = Query(f"{qid}/content", f"SELECT * FROM {table}")
        self.check(probe)


# ----------------------------------------------------------------------
# reference dataset
# ----------------------------------------------------------------------
def build_reference_catalog(seed: int = 0) -> Catalog:
    """The corpus's shared dataset: TPC-H tiny + profiles + events.

    * the five TPC-H tables at scale 0.001 (≈1.5 k orders, ≈6 k
      lineitems) from :func:`repro.workloads.tpch.generate_tpch`;
    * ``profiles`` — a PublicBI-style wide-ish table whose string and
      float columns contain NULLs at known positions;
    * ``events`` — a small int-keyed table the DML mixes mutate.

    Everything derives from ``seed`` so a corpus run is reproducible.
    """
    catalog = Catalog()
    generate_tpch(scale=0.001, seed=seed).register(catalog)
    rng = np.random.default_rng(seed + 1)
    n = 400
    names = np.empty(n, dtype=object)
    cities = ["amsterdam", "berlin", "chicago", "dresden", "espoo"]
    for i in range(n):
        names[i] = None if i % 11 == 0 else f"user{i:03d}"
    city = np.empty(n, dtype=object)
    for i in range(n):
        city[i] = None if i % 17 == 0 else cities[i % len(cities)]
    score = rng.random(n).round(4) * 100.0
    score[::13] = np.nan  # NULLs in the float column
    catalog.register(
        Table.from_arrays(
            "profiles",
            {
                "pid": np.arange(n, dtype=np.int64),
                "pname": names,
                "city": city,
                "score": score,
                "visits": rng.integers(0, 50, n).astype(np.int64),
            },
        )
    )
    m = 300
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(m, dtype=np.int64),
                "etype": np.array(
                    [["click", "view", "buy"][i % 3] for i in range(m)],
                    dtype=object,
                ),
                "amount": (rng.random(m) * 50).round(2),
                "flag": rng.integers(0, 2, m).astype(np.int64),
            },
        )
    )
    return catalog


# ----------------------------------------------------------------------
# corpus sections
# ----------------------------------------------------------------------
def tpch_corpus() -> List[Query]:
    """TPC-H Q-shapes (joins, group-bys, date-range filters, top-n)."""
    queries = [
        # Q1-shape: grouped aggregation over a date filter
        ("q01-shape", "SELECT l_shipmode, COUNT(*) AS cnt, SUM(l_extendedprice) AS total "
                      "FROM lineitem WHERE l_shipdate <= 19980801 GROUP BY l_shipmode "
                      "ORDER BY l_shipmode"),
        # Q3-shape: 3-way join with segment filter and top-n
        ("q03-shape", "SELECT o_orderkey, SUM(l_extendedprice) AS revenue FROM customer "
                      "JOIN orders ON c_custkey = o_custkey "
                      "JOIN lineitem ON o_orderkey = l_orderkey "
                      "WHERE c_mktsegment = 'BUILDING' GROUP BY o_orderkey "
                      "ORDER BY o_orderkey LIMIT 20"),
        # Q6-shape: range + discount band aggregate
        ("q06-shape", "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
                      "WHERE l_shipdate >= 19940101 AND l_shipdate < 19950101 "
                      "AND l_discount BETWEEN 0.05 AND 0.07"),
        # Q12-shape: shipmode IN-list with late/commit comparison
        ("q12-shape", "SELECT l_shipmode, COUNT(*) AS cnt FROM lineitem "
                      "WHERE l_shipmode IN ('MAIL', 'SHIP') AND l_commitdate < l_receiptdate "
                      "GROUP BY l_shipmode ORDER BY l_shipmode"),
        ("join-nation", "SELECT n_name, COUNT(*) AS suppliers FROM supplier "
                        "JOIN nation ON s_nationkey = n_nationkey "
                        "GROUP BY n_name ORDER BY n_name"),
        ("orders-prio", "SELECT o_orderpriority, COUNT(*) AS cnt FROM orders "
                        "GROUP BY o_orderpriority ORDER BY o_orderpriority"),
        ("lineitem-topn", "SELECT l_orderkey, l_extendedprice FROM lineitem "
                          "ORDER BY l_extendedprice DESC LIMIT 15"),
        ("orders-distinct", "SELECT DISTINCT o_shippriority FROM orders"),
        ("orders-filter-proj", "SELECT o_orderkey, o_custkey FROM orders "
                               "WHERE o_orderdate > 19970601 ORDER BY o_orderkey LIMIT 50"),
        ("customer-seg", "SELECT c_mktsegment, COUNT(*) AS cnt FROM customer "
                         "GROUP BY c_mktsegment ORDER BY c_mktsegment"),
        ("lineitem-case", "SELECT SUM(CASE WHEN l_discount > 0.05 THEN 1 ELSE 0 END) "
                          "AS discounted FROM lineitem"),
        ("join-qualified", "SELECT o.o_orderkey, l.l_extendedprice FROM orders o "
                           "JOIN lineitem l ON o_orderkey = l_orderkey "
                           "WHERE l.l_discount >= 0.10 ORDER BY o.o_orderkey, "
                           "l.l_extendedprice LIMIT 25"),
        ("agg-minmax", "SELECT MIN(l_shipdate) AS lo, MAX(l_shipdate) AS hi, "
                       "AVG(l_discount) AS mid FROM lineitem"),
    ]
    return [Query(f"tpch/{qid}", sql) for qid, sql in queries]


def publicbi_corpus() -> List[Query]:
    """PublicBI-style profile probes over the ``profiles`` table."""
    queries = [
        ("city-counts", "SELECT city, COUNT(*) AS cnt FROM profiles "
                        "WHERE city IS NOT NULL GROUP BY city ORDER BY city"),
        ("score-band", "SELECT pid, score FROM profiles "
                       "WHERE score BETWEEN 25.0 AND 75.0 ORDER BY pid"),
        ("visit-histogram", "SELECT visits, COUNT(*) AS cnt FROM profiles "
                            "GROUP BY visits ORDER BY visits"),
        ("distinct-city", "SELECT DISTINCT city FROM profiles WHERE city IS NOT NULL"),
        ("named-top", "SELECT pname, visits FROM profiles WHERE pname IS NOT NULL "
                      "ORDER BY visits DESC, pname LIMIT 10"),
        ("score-sum-visitors", "SELECT SUM(visits) AS total FROM profiles "
                               "WHERE score IS NOT NULL"),
    ]
    return [Query(f"publicbi/{qid}", sql) for qid, sql in queries]


def null_corpus() -> List[Query]:
    """NULL-semantics probes (several are manifest-tracked gaps)."""
    queries = [
        ("is-null", "SELECT pid FROM profiles WHERE pname IS NULL ORDER BY pid"),
        ("is-not-null", "SELECT pid FROM profiles WHERE city IS NOT NULL ORDER BY pid"),
        ("eq-null-literal", "SELECT pid FROM profiles WHERE pname = NULL"),
        ("null-excluded-eq", "SELECT pid FROM profiles WHERE city = 'berlin' ORDER BY pid"),
        ("null-excluded-ne", "SELECT pid FROM profiles WHERE city <> 'berlin' ORDER BY pid"),
        ("null-excluded-lt", "SELECT pid FROM profiles WHERE score < 50.0 ORDER BY pid"),
        ("null-in-list", "SELECT pid FROM profiles WHERE city IN ('berlin', 'espoo') "
                         "ORDER BY pid"),
        ("float-null-filter", "SELECT pid, score FROM profiles WHERE score IS NULL "
                              "ORDER BY pid"),
        ("agg-count-col", "SELECT COUNT(pname) AS named FROM profiles"),
        ("agg-sum-nan", "SELECT SUM(score) AS total FROM profiles"),
        ("agg-min-nan", "SELECT MIN(score) AS lo, MAX(score) AS hi FROM profiles"),
        ("agg-empty-sum", "SELECT SUM(visits) AS total FROM profiles WHERE pid < 0"),
        ("order-by-null-first", "SELECT pid, score FROM profiles ORDER BY score, pid LIMIT 5"),
        ("not-over-null-comparison", "SELECT pid FROM profiles "
                                     "WHERE NOT (city = 'berlin') ORDER BY pid"),
    ]
    return [Query(f"null/{qid}", sql) for qid, sql in queries]


def feature_corpus() -> List[Query]:
    """Grammar-feature probes: LIMIT/OFFSET, qualifiers, expressions."""
    queries = [
        ("limit-zero", "SELECT eid FROM events ORDER BY eid LIMIT 0"),
        ("limit-offset", "SELECT eid FROM events ORDER BY eid LIMIT 10 OFFSET 25"),
        ("limit-comma", "SELECT eid FROM events ORDER BY eid LIMIT 25, 10"),
        ("offset-past-end", "SELECT eid FROM events ORDER BY eid LIMIT 10 OFFSET 10000"),
        ("qualified-simple", "SELECT e.eid FROM events e WHERE e.flag = 1 "
                             "ORDER BY e.eid LIMIT 20"),
        ("arith-expr", "SELECT eid, amount * 2.0 + 1.0 AS adjusted FROM events "
                       "WHERE eid < 20 ORDER BY eid"),
        ("neg-literal", "SELECT eid FROM events WHERE amount > -1 ORDER BY eid LIMIT 5"),
        ("case-projection", "SELECT eid, CASE WHEN flag = 1 THEN 'on' ELSE 'off' END "
                            "AS state FROM events WHERE eid < 15 ORDER BY eid"),
        ("between-ints", "SELECT eid FROM events WHERE eid BETWEEN 40 AND 49 ORDER BY eid"),
        ("in-strings", "SELECT eid, etype FROM events WHERE etype IN ('click', 'buy') "
                       "ORDER BY eid LIMIT 30"),
        ("distinct-pair", "SELECT DISTINCT etype, flag FROM events"),
        ("or-predicate", "SELECT eid FROM events WHERE eid < 5 OR eid > 295 ORDER BY eid"),
    ]
    return [Query(f"feature/{qid}", sql) for qid, sql in queries]


def random_select_corpus(seed: int = 7, count: int = 12) -> List[Query]:
    """Seeded randomized SELECTs over ``events`` and ``profiles``.

    The generator draws from the supported grammar only (filters,
    IN-lists, BETWEEN, aggregates, ORDER BY + LIMIT/OFFSET) and from the
    tables' actual value domains, so every generated query is
    executable on both engines.  Same seed → same corpus.
    """
    rng = random.Random(seed)
    tables = {
        "events": {
            "int": ["eid", "flag"],
            "float": ["amount"],
            "str": [("etype", ["click", "view", "buy"])],
        },
        "profiles": {
            "int": ["pid", "visits"],
            "float": ["score"],
            "str": [("city", ["amsterdam", "berlin", "chicago", "dresden", "espoo"])],
        },
    }
    queries: List[Query] = []
    for i in range(count):
        tname = rng.choice(sorted(tables))
        spec = tables[tname]
        preds = []
        for _ in range(rng.randint(1, 2)):
            kind = rng.choice(["int", "float", "str"])
            if kind == "int":
                column = rng.choice(spec["int"])
                op = rng.choice(["<", "<=", ">", ">=", "=", "<>"])
                preds.append(f"{column} {op} {rng.randint(0, 60)}")
            elif kind == "float":
                column = rng.choice(spec["float"])
                lo = round(rng.uniform(0, 40), 2)
                preds.append(f"{column} BETWEEN {lo} AND {round(lo + 30.0, 2)}")
            else:
                column, domain = rng.choice(spec["str"])
                chosen = rng.sample(domain, rng.randint(1, 2))
                quoted = ", ".join(f"'{v}'" for v in chosen)
                preds.append(f"{column} IN ({quoted})")
        connector = rng.choice([" AND ", " OR "])
        where = connector.join(preds)
        key = spec["int"][0]
        if rng.random() < 0.4:
            agg = rng.choice(["COUNT(*)", f"SUM({spec['int'][1]})", f"MIN({key})"])
            sql = f"SELECT {agg} AS v FROM {tname} WHERE {where}"
        else:
            limit = rng.randint(5, 40)
            offset = rng.choice([0, 0, rng.randint(1, 20)])
            tail = f" LIMIT {limit}" + (f" OFFSET {offset}" if offset else "")
            sql = (
                f"SELECT {key} FROM {tname} WHERE {where} ORDER BY {key}{tail}"
            )
        queries.append(Query(f"rand/s{seed}-{i:02d}", sql))
    return queries


def random_dml_corpus(seed: int = 11, rounds: int = 6) -> List[Query]:
    """Seeded randomized DML mix over ``events`` (INSERT/UPDATE/DELETE).

    Each statement names its target table so :meth:`DifferentialPair.apply`
    verifies full table content after every mutation — an UPDATE that
    touches the right number of the wrong rows is caught.  Same seed →
    same mix.  NULL-free: ``events`` has an INT64 key column and the mix
    must be applicable on both engines identically.
    """
    rng = random.Random(seed)
    queries: List[Query] = []
    next_eid = 100_000  # far above the loaded key range
    for i in range(rounds):
        roll = rng.random()
        if roll < 0.4:
            rows = ", ".join(
                f"({next_eid + j}, '{rng.choice(['click', 'view', 'buy'])}', "
                f"{round(rng.uniform(0, 50), 2)}, {rng.randint(0, 1)})"
                for j in range(rng.randint(1, 3))
            )
            next_eid += 3
            sql = f"INSERT INTO events (eid, etype, amount, flag) VALUES {rows}"
        elif roll < 0.75:
            bump = round(rng.uniform(0.5, 5.0), 2)
            lo = rng.randint(0, 250)
            sql = (
                f"UPDATE events SET amount = amount + {bump} "
                f"WHERE eid >= {lo} AND eid < {lo + rng.randint(5, 40)}"
            )
        else:
            victim = rng.randint(0, 280)
            sql = f"DELETE FROM events WHERE eid = {victim}"
        queries.append(Query(f"dml/s{seed}-{i:02d}", sql, kind="dml", table="events"))
    return queries


def default_corpus(seed: int = 7) -> List[Query]:
    """The full versioned corpus (see ``CORPUS_VERSION``)."""
    corpus = list(
        itertools.chain(
            tpch_corpus(),
            publicbi_corpus(),
            null_corpus(),
            feature_corpus(),
            random_select_corpus(seed=seed),
            random_dml_corpus(seed=seed + 4),
        )
    )
    ids = [q.qid for q in corpus]
    if len(set(ids)) != len(ids):
        dupes = sorted({q for q in ids if ids.count(q) > 1})
        raise ValueError(f"duplicate corpus query ids: {dupes}")
    return corpus


# ----------------------------------------------------------------------
# corpus runner
# ----------------------------------------------------------------------
@dataclasses.dataclass
class DifferentialReport:
    """Outcome of one corpus run, strict about the xfail manifest.

    ``passed`` / ``xfailed`` collect query ids; ``mismatches`` holds
    *unexplained* divergences, ``unsupported`` holds rejected SQL, and
    ``xpassed`` holds manifest entries that no longer diverge (stale
    excuses — also a failure).
    """

    passed: List[str] = dataclasses.field(default_factory=list)
    xfailed: Dict[str, str] = dataclasses.field(default_factory=dict)
    xpassed: List[str] = dataclasses.field(default_factory=list)
    mismatches: List[ResultMismatch] = dataclasses.field(default_factory=list)
    unsupported: List[UnsupportedSQL] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing unexplained happened (strict xfail)."""
        return not self.mismatches and not self.unsupported and not self.xpassed

    def summary(self) -> str:
        """One-line human-readable tally."""
        return (
            f"differential corpus v{CORPUS_VERSION}: {len(self.passed)} passed, "
            f"{len(self.xfailed)} xfailed, {len(self.xpassed)} XPASS, "
            f"{len(self.mismatches)} mismatched, {len(self.unsupported)} unsupported"
        )


def run_corpus(
    pair: DifferentialPair,
    corpus: Optional[Sequence[Query]] = None,
    manifest: Optional[Dict[str, str]] = None,
) -> DifferentialReport:
    """Run a corpus through a pair and tally outcomes (strict xfail).

    A query in the manifest must diverge (else it lands in ``xpassed``);
    a query outside it must agree (else ``mismatches``/``unsupported``).
    """
    corpus = default_corpus() if corpus is None else corpus
    manifest = XFAIL_MANIFEST if manifest is None else manifest
    report = DifferentialReport()
    for query in corpus:
        expected_reason = manifest.get(query.qid)
        try:
            if query.kind == "dml":
                pair.apply(query)
            else:
                pair.check(query)
        except ResultMismatch as exc:
            if expected_reason is not None:
                report.xfailed[query.qid] = expected_reason
            else:
                report.mismatches.append(exc)
        except UnsupportedSQL as exc:
            if expected_reason is not None:
                report.xfailed[query.qid] = expected_reason
            else:
                report.unsupported.append(exc)
        else:
            if expected_reason is not None:
                report.xpassed.append(query.qid)
            else:
                report.passed.append(query.qid)
    return report
