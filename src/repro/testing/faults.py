"""Seeded, deterministic fault injection behind zero-cost no-ops.

Production code marks *injection points* like this::

    from repro.testing import faults

    if faults.ACTIVE:
        faults.fire("worker.morsel")

With no injector armed (``ACTIVE`` is False, the default and the only
production state) a point is one module-global boolean read.  The chaos
suites arm a :class:`FaultInjector` — a seeded RNG plus per-point
:class:`FaultRule` s — via the :func:`inject` context manager, and every
draw is made from that single seeded stream, so a failing schedule is
reproduced by re-running with the same seed.

Supported actions:

``raise``
    Raise ``rule.exc`` (default :class:`InjectedWorkerError`) at the
    point — a worker crash, a dropped connection, a poisoned task.
``sleep``
    Sleep ``rule.sleep_s`` — a slow morsel or a laggy peer.
``block``
    Park the calling thread on an event until the test calls
    :meth:`FaultInjector.release` (or a safety cap expires) — a wedged
    pool worker, used to drive the stall-quarantine path.

Byte corruption is separate: codecs call :func:`mutate` on outgoing
frames, and a ``corrupt`` rule flips one deterministically chosen byte.

Known injection points (the :data:`KNOWN_POINTS` registry; grep for
``faults.fire`` / ``faults.mutate`` — a test asserts the two agree):

- ``worker.morsel`` — inside every pool/inline morsel task
  (:meth:`repro.engine.parallel.ExecutionContext.map`).
- ``session.dispatch`` — at the top of the async session's worker-thread
  statement body.
- ``server.send`` — before a server frame is written to a connection.
- ``server.frame`` — mutate point for outgoing server frames.
- ``wal.append`` — before a WAL frame is written
  (:meth:`repro.storage.wal.WriteAheadLog.append`); a ``raise`` rule
  here is a crash at the commit point, before the statement logged.
- ``wal.fsync`` — before ``os.fsync`` of the WAL
  (:meth:`repro.storage.wal.WriteAheadLog.sync`); a crash between a
  record's flush and its fsync, the window group/off policies leave
  open under power loss.
- ``checkpoint.write`` — after a checkpoint temp file is written and
  fsynced but before its atomic rename
  (:meth:`repro.storage.wal.DurabilityManager.checkpoint`); a crash
  here must leave the previous checkpoint + un-rotated WAL fully
  recoverable.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

__all__ = [
    "ACTIVE",
    "KNOWN_POINTS",
    "FaultInjector",
    "FaultRule",
    "InjectedDisconnectError",
    "InjectedFaultError",
    "InjectedWorkerError",
    "fire",
    "inject",
    "mutate",
]

#: Fast-path guard read by every injection point.  Only :func:`inject`
#: flips it, and only for the duration of a test block.
ACTIVE = False

#: Every injection point compiled into the codebase, in rough
#: request-path order.  The chaos suites iterate this to kill at every
#: point, and ``tests/testing/test_faults_registry.py`` asserts it
#: matches the ``faults.fire``/``faults.mutate`` call sites *and* the
#: module docstring, so the registry cannot drift.
KNOWN_POINTS = (
    "server.frame",
    "server.send",
    "session.dispatch",
    "worker.morsel",
    "wal.append",
    "wal.fsync",
    "checkpoint.write",
)

_INJECTOR: Optional["FaultInjector"] = None

#: Upper bound on how long a ``block`` action may park a thread, so a
#: test that forgets to release an injector cannot hang the suite.
BLOCK_CAP_S = 30.0


class InjectedFaultError(RuntimeError):
    """Base class for every deliberately injected failure."""


class InjectedWorkerError(InjectedFaultError):
    """An injected crash inside a worker task."""


class InjectedDisconnectError(ConnectionError):
    """An injected connection drop (a :class:`ConnectionError` so the
    normal peer-vanished handling applies)."""


@dataclass
class FaultRule:
    """How one injection point misbehaves under an armed injector."""

    probability: float = 1.0
    max_fires: Optional[int] = None
    action: str = "raise"  # raise | sleep | block | corrupt
    exc: Optional[type] = None
    sleep_s: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ("raise", "sleep", "block", "corrupt"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


@dataclass
class FaultInjector:
    """A seeded schedule of faults over named injection points.

    All randomness flows through one ``random.Random(seed)`` guarded by
    a lock: given the same seed and the same *sequence* of point visits,
    the injector makes the same decisions.  ``fired`` counts decisions
    per point for post-hoc assertions.
    """

    seed: int
    rules: Mapping[str, FaultRule] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self.fired: Dict[str, int] = {}
        self._blocks: Dict[str, threading.Event] = {}

    def decide(self, point: str) -> Optional[FaultRule]:
        """Draw for ``point``; return the rule to apply, or None."""
        rule = self.rules.get(point)
        if rule is None:
            return None
        with self._lock:
            if rule.max_fires is not None and self.fired.get(point, 0) >= rule.max_fires:
                return None
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                return None
            self.fired[point] = self.fired.get(point, 0) + 1
        return rule

    def block_event(self, point: str) -> threading.Event:
        """The event a ``block`` action at ``point`` parks on."""
        with self._lock:
            if point not in self._blocks:
                self._blocks[point] = threading.Event()
            return self._blocks[point]

    def release(self, point: str) -> None:
        """Unpark threads blocked at ``point``."""
        self.block_event(point).set()

    def release_all(self) -> None:
        """Unpark every blocked thread (always call from test teardown)."""
        with self._lock:
            events = list(self._blocks.values())
        for event in events:
            event.set()

    def corrupt(self, data: bytes) -> bytes:
        """Flip one deterministically chosen byte of ``data``."""
        if not data:
            return data
        with self._lock:
            pos = self._rng.randrange(len(data))
            bit = 1 << self._rng.randrange(8)
        out = bytearray(data)
        out[pos] ^= bit
        return bytes(out)


def fire(point: str) -> None:
    """Apply the armed injector's rule for ``point``, if any.

    Call only behind an ``if faults.ACTIVE:`` guard so production code
    pays a single boolean read.
    """
    injector = _INJECTOR
    if injector is None:
        return
    rule = injector.decide(point)
    if rule is None or rule.action == "corrupt":
        return
    if rule.action == "sleep":
        import time

        time.sleep(rule.sleep_s)
        return
    if rule.action == "block":
        injector.block_event(point).wait(BLOCK_CAP_S)
        return
    exc = rule.exc if rule.exc is not None else InjectedWorkerError
    raise exc(f"injected fault at {point!r}")


def mutate(point: str, data: bytes) -> bytes:
    """Return ``data``, corrupted if a ``corrupt`` rule fires at ``point``."""
    injector = _INJECTOR
    if injector is None:
        return data
    rule = injector.decide(point)
    if rule is None or rule.action != "corrupt":
        return data
    return injector.corrupt(data)


@contextmanager
def inject(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Arm ``injector`` for the block; restores the no-op state on exit.

    Not reentrant (one injector at a time, enforced), and the exit path
    releases any still-blocked threads before disarming.
    """
    global ACTIVE, _INJECTOR
    if _INJECTOR is not None:
        raise RuntimeError("a FaultInjector is already armed")
    _INJECTOR = injector
    ACTIVE = True
    try:
        yield injector
    finally:
        ACTIVE = False
        _INJECTOR = None
        injector.release_all()
