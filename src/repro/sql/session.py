"""SQL session: parse, optimize (PatchIndex rewrites) and execute."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.batch import ROWID, Relation
from repro.engine.expressions import expression_columns
from repro.engine.parallel import (
    DEFAULT_MORSEL_ROWS,
    ExecutionContext,
    row_chunks,
    validate_parallelism,
)
from repro.plan.cost import CostModel
from repro.plan.executor import execute_plan
from repro.plan.optimizer import Optimizer
from repro.sql.parser import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    SetStatement,
    UpdateStatement,
    parse_statement,
)
from repro.storage.catalog import Catalog
from repro.storage.partition import PartitionedTable

__all__ = ["SQLSession"]


class SQLSession:
    """Executes SQL against a catalog, with PatchIndex optimization.

    Parameters
    ----------
    catalog:
        Table registry.
    index_manager:
        Optional :class:`~repro.core.manager.PatchIndexManager`; when
        given, SELECT plans run through the optimizer so the §3.3
        rewrites fire on plain SQL text.
    zero_branch_pruning / use_cost_model:
        Forwarded to the optimizer.
    parallelism:
        Worker count for morsel-parallel execution of SELECT statements
        (including ORDER BY, which runs as parallel chunk-sorts plus a
        deterministic k-way merge gated by ``sort_parallel_payoff``)
        and UPDATE/DELETE predicate scans; ``1`` (the default) runs
        serially.  Also settable per session via the SQL statement
        ``SET parallelism = N``.  Parallel results are bit-identical to
        serial execution.  DML addresses plain and partitioned tables
        alike: matched global rowids route through
        ``PartitionedTable.modify_global``/``delete_global``.
    morsel_rows:
        Rows per parallel work unit (see :mod:`repro.engine.parallel`).
    """

    def __init__(
        self,
        catalog: Catalog,
        index_manager=None,
        zero_branch_pruning: bool = False,
        use_cost_model: bool = True,
        parallelism: int = 1,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
    ) -> None:
        self.catalog = catalog
        self._morsel_rows = morsel_rows
        self._context: Optional[ExecutionContext] = None
        self.optimizer: Optional[Optimizer] = None
        if index_manager is not None:
            self.optimizer = Optimizer(
                catalog,
                index_manager,
                zero_branch_pruning=zero_branch_pruning,
                use_cost_model=use_cost_model,
                parallelism=parallelism,
                morsel_rows=morsel_rows,
            )
        self.set_parallelism(parallelism)

    # ------------------------------------------------------------------
    # parallelism knob
    # ------------------------------------------------------------------
    @property
    def parallelism(self) -> int:
        """Current worker count (1 = serial)."""
        return self._context.parallelism if self._context is not None else 1

    def set_parallelism(self, parallelism: int) -> None:
        """Reconfigure the session's worker count.

        Replaces the execution context (shutting the old worker pool
        down) and updates the optimizer's cost model so plan decisions
        reflect the new worker count.  The worker count covers SELECT
        and DML alike: UPDATE/DELETE predicate scans run morsel-parallel
        on the same context.  Rejects non-integers and values below 1.
        """
        parallelism = validate_parallelism(parallelism)
        old, self._context = self._context, None
        if old is not None:
            old.close()
        if parallelism > 1:
            self._context = ExecutionContext(
                parallelism=parallelism, morsel_rows=self._morsel_rows
            )
        #: costs the DML predicate scan at the session's morsel size
        #: (the optimizer's model keeps the plan-level default)
        self._dml_cost_model = CostModel(
            self.catalog, parallelism=parallelism, morsel_rows=self._morsel_rows
        )
        if self.optimizer is not None:
            self.optimizer.cost_model.parallelism = parallelism

    def close(self) -> None:
        """Release the session's worker pool (the session stays usable
        serially)."""
        old, self._context = self._context, None
        if old is not None:
            old.close()

    def __enter__(self) -> "SQLSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def execute(self, sql: str):
        """Run one statement; returns a Relation (SELECT) or a row count."""
        stmt = parse_statement(sql)
        if isinstance(stmt, SelectStatement):
            return self._run_select(stmt)
        if isinstance(stmt, InsertStatement):
            return self._run_insert(stmt)
        if isinstance(stmt, UpdateStatement):
            return self._run_update(stmt)
        if isinstance(stmt, DeleteStatement):
            return self._run_delete(stmt)
        if isinstance(stmt, SetStatement):
            return self._run_set(stmt)
        raise TypeError(f"unhandled statement {type(stmt).__name__}")

    def explain(self, sql: str) -> str:
        """The (optimized) logical plan for a SELECT."""
        stmt = parse_statement(sql)
        if not isinstance(stmt, SelectStatement):
            raise ValueError("EXPLAIN supports SELECT statements only")
        plan = stmt.plan
        if self.optimizer is not None:
            plan = self.optimizer.optimize(plan)
        return plan.explain()

    # ------------------------------------------------------------------
    def _run_select(self, stmt: SelectStatement) -> Relation:
        plan = stmt.plan
        if self.optimizer is not None:
            plan = self.optimizer.optimize(plan)
        return execute_plan(plan, self.catalog, context=self._context)

    def _run_set(self, stmt: SetStatement) -> int:
        name = stmt.name.lower()
        if name == "parallelism":
            self.set_parallelism(stmt.value)
            return self.parallelism
        raise ValueError(f"unknown session setting {stmt.name!r}")

    def _run_insert(self, stmt: InsertStatement) -> int:
        table = self.catalog.table(stmt.table)
        values = {}
        for i, column in enumerate(stmt.columns):
            field = table.schema.field(column)
            raw = [row[i] for row in stmt.rows]
            if field.type.numpy_dtype is object:
                arr = np.empty(len(raw), dtype=object)
                arr[:] = [str(v) for v in raw]
            else:
                arr = np.asarray(raw, dtype=field.type.numpy_dtype)
            values[column] = arr
        missing = set(table.schema.names) - set(stmt.columns)
        if missing:
            raise ValueError(f"INSERT must provide all columns; missing {sorted(missing)}")
        table.insert(values)
        return len(stmt.rows)

    def _predicate_rowids(self, table, predicate) -> np.ndarray:
        """RowIDs of the tuples matching a DML predicate.

        Only the columns the predicate references are materialized —
        untouched columns never leave storage.  With an active execution
        context — and when the cost model says the fan-out pays for its
        dispatch overhead — the predicate is evaluated per morsel on the
        shared worker pool and the per-morsel rowid arrays are
        concatenated in morsel order, so the result is bit-identical to
        the serial scan.
        """
        if predicate is None:
            return table.rowids()
        referenced = sorted(expression_columns(predicate))
        for name in referenced:
            table.schema.field(name)  # unknown columns fail before any scan
        if not referenced:
            # column-free predicate (e.g. WHERE 1 = 0): broadcast over
            # the rowid domain without touching any stored column
            rel = Relation({ROWID: table.rowids()})
            mask = np.asarray(predicate.evaluate(rel), dtype=bool)
            return np.flatnonzero(mask).astype(np.int64)
        arrays = table.columns(referenced)
        num_rows = table.num_rows
        ctx = self._context
        if ctx is not None and ctx.active:
            chunks = row_chunks(num_rows, ctx.morsel_rows)
            if ctx.should_parallelize(num_rows, len(chunks)) and (
                self._dml_cost_model.dml_parallel_payoff(num_rows, len(referenced))
            ):
                pieces = ctx.map(
                    lambda chunk: _morsel_predicate_rowids(arrays, predicate, chunk),
                    chunks,
                )
                return np.concatenate(pieces)
        mask = np.asarray(predicate.evaluate(Relation(arrays)), dtype=bool)
        return np.flatnonzero(mask).astype(np.int64)

    def _run_update(self, stmt: UpdateStatement) -> int:
        table = self.catalog.table(stmt.table)
        rowids = self._predicate_rowids(table, stmt.predicate)
        if len(rowids) == 0:
            return 0
        referenced = set()
        for expr in stmt.assignments.values():
            referenced |= expression_columns(expr)
        if referenced:
            rel = Relation(table.columns(sorted(referenced))).take(rowids)
        else:
            # literal-only assignments: broadcast over the matched rows
            rel = Relation({ROWID: rowids})
        new_values = {
            column: np.asarray(expr.evaluate(rel))
            for column, expr in stmt.assignments.items()
        }
        if isinstance(table, PartitionedTable):
            # matched rowids are global: split them onto the partitions'
            # local rowid spaces (partition offsets are computed before
            # any partition mutates, so the statement is atomic per §3.2)
            table.modify_global(rowids, new_values)
        else:
            table.modify(rowids, new_values)
        return len(rowids)

    def _run_delete(self, stmt: DeleteStatement) -> int:
        table = self.catalog.table(stmt.table)
        rowids = self._predicate_rowids(table, stmt.predicate)
        if len(rowids) == 0:
            return 0
        if isinstance(table, PartitionedTable):
            table.delete_global(rowids)
        else:
            table.delete(rowids)
        return len(rowids)


def _morsel_predicate_rowids(arrays, predicate, chunk) -> np.ndarray:
    """Matching rowids of one morsel (global rowid space).

    ``arrays`` are whole-table column views materialized once on the
    calling thread; the morsel task only slices them (zero-copy) and
    runs the vectorized predicate kernels, which release the GIL.
    """
    start, stop = chunk
    rel = Relation({name: arr[start:stop] for name, arr in arrays.items()})
    mask = np.asarray(predicate.evaluate(rel), dtype=bool)
    return np.flatnonzero(mask).astype(np.int64) + start
