"""SQL session: parse, optimize (PatchIndex rewrites) and execute.

The execute pipeline is factored into two reusable halves so a
concurrent front-end can multiplex many clients onto one session core:

* :meth:`SQLSession.prepare` — parse, classify (read / write / session,
  see :func:`classify_statement`), run the PatchIndex optimizer and
  stamp an admission cost hint; pure and cheap, safe on an event loop.
* :meth:`SQLSession.run_prepared` — execute a prepared statement; this
  half carries no reentrancy guard and is the building block
  :class:`repro.sql.async_session.AsyncSQLSession` schedules under its
  own reader/writer discipline.

:meth:`SQLSession.execute` composes the two behind a thread-ownership
guard: the blocking session is **not thread-safe** (interleaved DML
from several threads used to silently corrupt positional-delta state)
and now rejects concurrent use with :class:`ConcurrentSessionError`
instead.  Concurrent clients belong on ``AsyncSQLSession``.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Optional

import numpy as np

from repro.engine.batch import ROWID, Relation
from repro.engine.expressions import expression_columns
from repro.engine.interrupt import (
    CancellationToken,
    cancellation_scope,
    checkpoint,
    current_token,
    validate_timeout_ms,
)
from repro.engine.parallel import (
    DEFAULT_MORSEL_ROWS,
    ExecutionContext,
    row_chunks,
    validate_parallelism,
)
from repro.plan import nodes
from repro.plan.cost import CostModel
from repro.plan.executor import execute_plan, explain_plan
from repro.plan.joinorder import JOIN_ORDER_STRATEGIES
from repro.plan.optimizer import Optimizer
from repro.sql.binder import bind_statement
from repro.sql.parser import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    SetStatement,
    Statement,
    UpdateStatement,
    parse_statement,
)
from repro.storage.catalog import Catalog
from repro.storage.partition import PartitionedTable
from repro.storage.wal import (
    DurabilityManager,
    validate_checkpoint_interval,
    validate_wal_sync,
)

__all__ = [
    "SQLSession",
    "PreparedStatement",
    "ConcurrentSessionError",
    "NullStorageError",
    "classify_statement",
    "KIND_READ",
    "KIND_WRITE",
    "KIND_SESSION",
]

#: Statement classes for concurrent scheduling: reads may run alongside
#: other reads; writes (and session knobs) require exclusive access.
KIND_READ = "read"
KIND_WRITE = "write"
KIND_SESSION = "session"


class NullStorageError(ValueError):
    """A NULL was routed at a column type that cannot represent it.

    NULL is stored as ``None`` in object (STRING) columns and as NaN in
    FLOAT64 columns; INT64 columns have no NULL representation, so
    inserting or assigning NULL there raises this instead of numpy's
    opaque conversion error.
    """


class ConcurrentSessionError(RuntimeError):
    """A second thread entered a blocking :class:`SQLSession`.

    The blocking session owns mutable per-statement state (positional
    delta maintenance, the execution-context swap of ``SET
    parallelism``) and is strictly one-statement-at-a-time; interleaved
    use from several threads used to corrupt DML state silently.  Use
    :class:`repro.sql.async_session.AsyncSQLSession` for concurrent
    clients — it multiplexes onto one session core with a proper
    reader/writer discipline.
    """


def classify_statement(stmt: Statement) -> str:
    """Concurrency class of a parsed statement.

    ``read`` statements (SELECT) only observe table state and may run
    concurrently with each other; ``write`` statements (INSERT / UPDATE
    / DELETE) mutate storage and require exclusive access; ``session``
    statements (SET) reconfigure the session itself — also exclusive,
    since e.g. ``SET parallelism`` swaps the live execution context.
    """
    if isinstance(stmt, SelectStatement):
        return KIND_READ
    if isinstance(stmt, (InsertStatement, UpdateStatement, DeleteStatement)):
        return KIND_WRITE
    if isinstance(stmt, SetStatement):
        return KIND_SESSION
    raise TypeError(f"unhandled statement {type(stmt).__name__}")


@dataclasses.dataclass(frozen=True)
class PreparedStatement:
    """A parsed, classified, optimized statement ready to run.

    ``plan`` is the (optimizer-rewritten) logical plan for SELECTs and
    ``None`` otherwise; ``cost_hint`` is the admission cost estimate
    (see :meth:`repro.plan.cost.CostModel.admission_cost`) the async
    front-end records per query.
    """

    sql: str
    statement: Statement
    kind: str
    plan: Optional[nodes.PlanNode] = None
    cost_hint: float = 0.0


class SQLSession:
    """Executes SQL against a catalog, with PatchIndex optimization.

    Parameters
    ----------
    catalog:
        Table registry.
    index_manager:
        Optional :class:`~repro.core.manager.PatchIndexManager`; when
        given, SELECT plans run through the optimizer so the §3.3
        rewrites fire on plain SQL text.
    zero_branch_pruning / use_cost_model:
        Forwarded to the optimizer.
    parallelism:
        Worker count for morsel-parallel execution of SELECT statements
        (including ORDER BY, which runs as parallel chunk-sorts plus a
        deterministic k-way merge gated by ``sort_parallel_payoff``)
        and UPDATE/DELETE predicate scans; ``1`` (the default) runs
        serially.  Also settable per session via the SQL statement
        ``SET parallelism = N``.  Parallel results are bit-identical to
        serial execution.  DML addresses plain and partitioned tables
        alike: matched global rowids route through
        ``PartitionedTable.modify_global``/``delete_global``.
    morsel_rows:
        Rows per parallel work unit (see :mod:`repro.engine.parallel`).
    context:
        An externally-owned :class:`ExecutionContext` to share (pool
        handle sharing): the session runs its morsel work on the given
        context instead of creating one, never closes it, and takes its
        ``parallelism``/``morsel_rows`` knobs from it.  This is how
        ``AsyncSQLSession`` multiplexes many clients onto one pool.
    statement_timeout_ms:
        Default per-statement deadline in milliseconds; ``None`` (the
        default) disables it.  :meth:`execute` arms a
        :class:`~repro.engine.interrupt.CancellationToken` with this
        deadline, and morsel pipelines unwind with
        :class:`~repro.engine.interrupt.QueryTimeoutError` when it
        expires — reads leave tables untouched, DML either fully
        applies or raises before mutating anything.  Also settable per
        session via ``SET statement_timeout_ms = N`` (``= off``
        disables).
    data_dir:
        Directory for the write-ahead log and checkpoints (created on
        demand).  When given, the session recovers whatever committed
        state the directory holds at construction (newest valid
        checkpoint + WAL-tail replay, see
        :mod:`repro.storage.recovery`) and from then on logs every
        committed write statement *before* its table mutation applies.
        ``None`` (the default) keeps the session purely in-memory.
        Constructor-only: ``SET data_dir`` is rejected because the
        recovery/replay handshake only makes sense at startup.
    wal_sync:
        WAL durability policy — ``fsync`` (default; fsync per commit),
        ``group`` (piggybacked fsync on an interval) or ``off`` (flush
        per commit only).  Validated even without ``data_dir`` so
        misconfiguration fails fast; also settable via ``SET wal_sync``.
    checkpoint_interval:
        Commits between automatic checkpoints (``None`` disables; the
        close-time checkpoint still runs).  Positive integers only;
        also settable via ``SET checkpoint_interval = N`` (``= off``
        disables).
    checkpoint_retain:
        Checkpoint files kept on disk (WAL segments are pruned only
        once no retained checkpoint needs them).

    The blocking session executes one statement at a time; concurrent
    :meth:`execute` calls from other threads raise
    :class:`ConcurrentSessionError` (see the module docstring).
    """

    def __init__(
        self,
        catalog: Catalog,
        index_manager=None,
        zero_branch_pruning: bool = False,
        use_cost_model: bool = True,
        parallelism: int = 1,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        context: Optional[ExecutionContext] = None,
        statement_timeout_ms: Optional[int] = None,
        data_dir: Optional[str] = None,
        wal_sync: str = "fsync",
        checkpoint_interval: Optional[int] = None,
        checkpoint_retain: int = 2,
    ) -> None:
        self.catalog = catalog
        if context is not None:
            parallelism = context.parallelism
            morsel_rows = context.morsel_rows
        self._morsel_rows = morsel_rows
        self._statement_timeout_ms: Optional[int] = None
        self.set_statement_timeout_ms(statement_timeout_ms)
        self._context: Optional[ExecutionContext] = None
        self._owns_context = True
        self._exec_guard = threading.Lock()
        self._join_order_search = "dp"
        # durability knobs validate up front even without a data_dir,
        # so a misconfigured server fails at construction, not first use
        self._wal_sync = validate_wal_sync(wal_sync)
        self._checkpoint_interval = (
            None
            if checkpoint_interval is None
            else validate_checkpoint_interval(checkpoint_interval)
        )
        self._durability: Optional[DurabilityManager] = None
        self.optimizer: Optional[Optimizer] = None
        if index_manager is not None:
            self.optimizer = Optimizer(
                catalog,
                index_manager,
                zero_branch_pruning=zero_branch_pruning,
                use_cost_model=use_cost_model,
                parallelism=parallelism,
                morsel_rows=morsel_rows,
            )
        if context is not None:
            self._attach_context(context)
        else:
            self.set_parallelism(parallelism)
        if data_dir is not None:
            self._durability = DurabilityManager(
                catalog,
                data_dir,
                wal_sync=self._wal_sync,
                checkpoint_interval=self._checkpoint_interval,
                checkpoint_retain=checkpoint_retain,
            )
            # replays the WAL tail through this very session (replay
            # mode: nothing re-logs), then arms commit-point logging
            self._durability.recover(self)

    # ------------------------------------------------------------------
    # parallelism knob
    # ------------------------------------------------------------------
    @property
    def parallelism(self) -> int:
        """Current worker count (1 = serial)."""
        return self._context.parallelism if self._context is not None else 1

    @property
    def context(self) -> Optional[ExecutionContext]:
        """The live execution context handle (``None`` when serial).

        Exposed for pool handle sharing: a front-end may dispatch
        statement-granular work onto the same context via
        :meth:`ExecutionContext.submit_external`.
        """
        return self._context

    def _refresh_cost_models(self, parallelism: int) -> None:
        #: costs the DML predicate scan at the session's morsel size
        #: (the optimizer's model keeps the plan-level default)
        self._dml_cost_model = CostModel(
            self.catalog, parallelism=parallelism, morsel_rows=self._morsel_rows
        )
        if self.optimizer is not None:
            self.optimizer.cost_model.parallelism = parallelism

    def _attach_context(self, context: ExecutionContext) -> None:
        """Adopt a shared, externally-owned execution context."""
        self._context = context
        self._owns_context = False
        self._refresh_cost_models(context.parallelism)

    def set_parallelism(self, parallelism: int) -> None:
        """Reconfigure the session's worker count.

        Replaces the execution context (shutting the old worker pool
        down when the session owns it; a shared context is merely
        detached and stays open for its owner) and updates the
        optimizer's cost model so plan decisions reflect the new worker
        count.  The worker count covers SELECT and DML alike:
        UPDATE/DELETE predicate scans run morsel-parallel on the same
        context.  Rejects non-integers and values below 1.
        """
        parallelism = validate_parallelism(parallelism)
        old, self._context = self._context, None
        if old is not None and self._owns_context:
            old.close()
        self._owns_context = True
        if parallelism > 1:
            self._context = ExecutionContext(
                parallelism=parallelism, morsel_rows=self._morsel_rows
            )
        self._refresh_cost_models(parallelism)

    def close(self) -> None:
        """Release the worker pool and seal durability.

        The session stays usable serially (a shared context is
        detached, not closed — its owner decides its lifetime), but a
        durable session's WAL is synced, checkpointed (when any commit
        happened since the last checkpoint) and closed: this is the
        graceful-shutdown flush the server drain relies on.  Writes
        after close on a durable session raise
        :class:`~repro.storage.wal.WALError`.
        """
        old, self._context = self._context, None
        if old is not None and self._owns_context:
            old.close()
        self._owns_context = True
        if self._durability is not None:
            self._durability.close(checkpoint=True)

    def __enter__(self) -> "SQLSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the reusable sync core: prepare + run_prepared
    # ------------------------------------------------------------------
    def prepare(self, sql: str) -> PreparedStatement:
        """Parse, classify and optimize one statement without running it.

        Cheap relative to execution (no table data is touched), so a
        concurrent front-end can prepare on its event loop and dispatch
        only :meth:`run_prepared` to worker threads.  SELECT plans go
        through the PatchIndex optimizer here, exactly as
        :meth:`execute` would, and are stamped with the admission cost
        hint; DML statements are costed from the target table's
        cardinality and predicate width.
        """
        return self.prepare_parsed(parse_statement(sql), sql)

    def prepare_parsed(self, stmt: Statement, sql: str = "") -> PreparedStatement:
        """:meth:`prepare` for an already-parsed statement.

        Lets a scheduler parse/classify at arrival but defer the
        optimizer (whose rewrites snapshot live index state, e.g. patch
        counts for zero-branch pruning) until the statement actually
        holds its execution slot — so a read queued behind a write is
        planned against the post-write state it will observe.
        """
        kind = classify_statement(stmt)
        # catalog-aware reference check: ambiguous / unknown / unresolvable
        # qualified column refs fail here with typed errors, at prepare
        # time, instead of resolving to whichever join side happens to win
        bind_statement(stmt, self.catalog)
        plan: Optional[nodes.PlanNode] = None
        cost_hint = 0.0
        if isinstance(stmt, SelectStatement):
            plan = stmt.plan
            if self.optimizer is not None:
                plan = self.optimizer.optimize(plan)
            cost_hint = self._dml_cost_model.admission_cost(plan)
        elif isinstance(stmt, (UpdateStatement, DeleteStatement)):
            try:
                table = self.catalog.table(stmt.table)
            except KeyError:
                table = None  # run_prepared raises the real error
            if table is not None:
                width = (
                    len(expression_columns(stmt.predicate))
                    if stmt.predicate is not None
                    else 0
                )
                cost_hint = self._dml_cost_model.dml_scan_cost(
                    table.num_rows, max(1, width)
                )
        return PreparedStatement(
            sql=sql, statement=stmt, kind=kind, plan=plan, cost_hint=cost_hint
        )

    def run_prepared(self, prepared: PreparedStatement):
        """Execute a prepared statement (no reentrancy guard).

        This is the scheduling primitive: callers are responsible for
        the concurrency discipline — ``AsyncSQLSession`` admits reads
        concurrently and serializes writes behind its writer lock before
        calling in here from worker threads.  Direct users should go
        through :meth:`execute`.
        """
        stmt = prepared.statement
        if isinstance(stmt, SelectStatement):
            plan = prepared.plan if prepared.plan is not None else stmt.plan
            return execute_plan(plan, self.catalog, context=self._context)
        if isinstance(stmt, InsertStatement):
            return self._run_insert(stmt, prepared.sql)
        if isinstance(stmt, UpdateStatement):
            return self._run_update(stmt, prepared.sql)
        if isinstance(stmt, DeleteStatement):
            return self._run_delete(stmt, prepared.sql)
        if isinstance(stmt, SetStatement):
            return self._run_set(stmt)
        raise TypeError(f"unhandled statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    def execute(self, sql: str):
        """Run one statement; returns a Relation (SELECT) or a row count.

        One statement at a time: a second thread calling in while a
        statement is in flight gets :class:`ConcurrentSessionError`
        (the blocking session is not thread-safe; concurrent clients
        belong on ``AsyncSQLSession``).

        With ``statement_timeout_ms`` set (constructor or ``SET``), the
        statement runs under a deadline-armed
        :class:`~repro.engine.interrupt.CancellationToken` and raises
        :class:`~repro.engine.interrupt.QueryTimeoutError` if it runs
        past it — always from *between* morsels, so storage is never
        half-mutated.  A token already installed by the caller (via
        :func:`~repro.engine.interrupt.cancellation_scope`) takes
        precedence; the session never overrides an explicit scope.
        """
        if not self._exec_guard.acquire(blocking=False):
            raise ConcurrentSessionError(
                "another statement is already executing on this SQLSession; "
                "the blocking session is not thread-safe — use "
                "repro.sql.async_session.AsyncSQLSession for concurrent clients"
            )
        try:
            prepared = self.prepare(sql)
            if self._statement_timeout_ms is None or current_token() is not None:
                return self.run_prepared(prepared)
            token = CancellationToken(timeout_ms=self._statement_timeout_ms)
            with cancellation_scope(token):
                return self.run_prepared(prepared)
        finally:
            self._exec_guard.release()

    def explain(self, sql: str, costs: bool = False) -> str:
        """The (optimized) logical plan for a SELECT.

        ``costs=True`` annotates each node with estimated cardinality
        and cost, appends the staged optimizer's report — the join-order
        decision (chosen order and modeled cost vs the parser order) and
        the per-node physical operator assignments with their cost
        dicts — and closes with the admission cost hint (the figure the
        async front-end records per admitted query).
        """
        stmt = parse_statement(sql)
        if not isinstance(stmt, SelectStatement):
            raise ValueError("EXPLAIN supports SELECT statements only")
        plan = stmt.plan
        report = None
        if self.optimizer is not None:
            plan, report = self.optimizer.optimize_staged(plan)
        if costs:
            return explain_plan(
                plan, self.catalog, cost_model=self._dml_cost_model, report=report
            )
        return plan.explain()

    def set_join_order_search(self, strategy: str) -> str:
        """Reconfigure the stage-1 join-order search (``dp|greedy|off``).

        Validated even without an optimizer attached (the knob then
        records the preference for a later optimizer), mirroring the SQL
        statement ``SET join_order_search = dp``.
        """
        if not isinstance(strategy, str):
            raise TypeError(
                f"join_order_search must be a string, got {strategy!r}"
            )
        strategy = strategy.lower()
        if strategy not in JOIN_ORDER_STRATEGIES:
            raise ValueError(
                f"unknown join_order_search strategy {strategy!r}; "
                f"expected one of {', '.join(JOIN_ORDER_STRATEGIES)}"
            )
        self._join_order_search = strategy
        if self.optimizer is not None:
            self.optimizer.join_order_search = strategy
        return strategy

    @property
    def join_order_search(self) -> str:
        """Current stage-1 join-order search strategy."""
        return self._join_order_search

    def set_statement_timeout_ms(self, timeout_ms: Optional[int]) -> Optional[int]:
        """Reconfigure the default statement deadline (None disables).

        Validated like every knob: positive integers only (see
        :func:`~repro.engine.interrupt.validate_timeout_ms`).
        """
        if timeout_ms is not None:
            timeout_ms = validate_timeout_ms(timeout_ms)
        self._statement_timeout_ms = timeout_ms
        return timeout_ms

    @property
    def statement_timeout_ms(self) -> Optional[int]:
        """Current default statement deadline in ms (None = disabled)."""
        return self._statement_timeout_ms

    # ------------------------------------------------------------------
    # durability knobs
    # ------------------------------------------------------------------
    @property
    def data_dir(self) -> Optional[str]:
        """The durable data directory (None = in-memory session)."""
        return self._durability.data_dir if self._durability is not None else None

    @property
    def durability(self) -> Optional[DurabilityManager]:
        """The durability manager (None = in-memory session)."""
        return self._durability

    def set_wal_sync(self, policy: str) -> str:
        """Reconfigure the WAL sync policy (``off|group|fsync``).

        Validated even without a data directory (the knob then records
        the preference for a durable restart), mirroring ``SET
        wal_sync = fsync``; on a durable session the new policy applies
        from the next commit.
        """
        self._wal_sync = validate_wal_sync(policy)
        if self._durability is not None:
            self._durability.set_wal_sync(self._wal_sync)
        return self._wal_sync

    @property
    def wal_sync(self) -> str:
        """Current WAL sync policy (meaningful once ``data_dir`` is set)."""
        return self._wal_sync

    def set_checkpoint_interval(self, interval: Optional[int]) -> Optional[int]:
        """Reconfigure the automatic checkpoint cadence (None disables).

        Validated like every knob: positive integers only (see
        :func:`~repro.storage.wal.validate_checkpoint_interval`).
        """
        if interval is not None:
            interval = validate_checkpoint_interval(interval)
        self._checkpoint_interval = interval
        if self._durability is not None:
            self._durability.set_checkpoint_interval(interval)
        return interval

    @property
    def checkpoint_interval(self) -> Optional[int]:
        """Commits between automatic checkpoints (None = disabled)."""
        return self._checkpoint_interval

    def checkpoint(self) -> Optional[str]:
        """Force a checkpoint now; returns its path (None if in-memory).

        Snapshots every table, rotates the WAL and prunes segments no
        retained checkpoint needs (see
        :meth:`~repro.storage.wal.DurabilityManager.checkpoint`).
        """
        if self._durability is None:
            return None
        return self._durability.checkpoint()

    def _log_write(self, sql: str) -> Optional[int]:
        """Log a committed write at the commit point (no-op in-memory).

        Must be called *after* the last interruption window and
        *immediately before* the atomic table mutation: a logged record
        without its mutation can then only mean a process crash, which
        recovery resolves by replaying the record.
        """
        if self._durability is None:
            return None
        return self._durability.log_write(sql)

    def _rollback_logged(self, seq: Optional[int]) -> None:
        """Un-log a write whose table mutation raised (see ``_log_write``)."""
        if seq is not None and self._durability is not None:
            self._durability.rollback_record(seq)

    def _run_set(self, stmt: SetStatement) -> int:
        name = stmt.name.lower()
        if name == "parallelism":
            self.set_parallelism(stmt.value)
            return self.parallelism
        if name == "join_order_search":
            self.set_join_order_search(stmt.value)
            return self._join_order_search
        if name == "statement_timeout_ms":
            value = stmt.value
            if isinstance(value, str) and value.lower() in ("off", "none"):
                self.set_statement_timeout_ms(None)
                return 0
            self.set_statement_timeout_ms(value)
            return self._statement_timeout_ms
        if name == "wal_sync":
            self.set_wal_sync(stmt.value)
            if self._durability is not None:
                # logged so a restart replays into the same policy
                self._durability.log_set(f"SET wal_sync = {self._wal_sync}")
            return 0
        if name == "checkpoint_interval":
            value = stmt.value
            if isinstance(value, str) and value.lower() in ("off", "none"):
                value = None
            self.set_checkpoint_interval(value)
            if self._durability is not None:
                logged = "off" if value is None else value
                self._durability.log_set(f"SET checkpoint_interval = {logged}")
            return 0
        if name == "data_dir":
            raise ValueError(
                "data_dir is constructor-only: recovery and WAL replay are "
                "bound to session startup, so SET data_dir is rejected"
            )
        raise ValueError(f"unknown session setting {stmt.name!r}")

    def _run_insert(self, stmt: InsertStatement, sql: str = "") -> int:
        table = self.catalog.table(stmt.table)
        # INSERT mutates in one atomic step; the only interruption
        # window is before it starts
        checkpoint()
        values = {}
        for i, column in enumerate(stmt.columns):
            field = table.schema.field(column)
            raw = [row[i] for row in stmt.rows]
            values[column] = _coerce_for_storage(column, field, raw)
        missing = set(table.schema.names) - set(stmt.columns)
        if missing:
            raise ValueError(f"INSERT must provide all columns; missing {sorted(missing)}")
        # commit point: log-before-apply, no interruption window between
        seq = self._log_write(sql)
        try:
            table.insert(values)
        except BaseException:
            self._rollback_logged(seq)
            raise
        return len(stmt.rows)

    def _predicate_rowids(self, table, predicate) -> np.ndarray:
        """RowIDs of the tuples matching a DML predicate.

        Only the columns the predicate references are materialized —
        untouched columns never leave storage.  With an active execution
        context — and when the cost model says the fan-out pays for its
        dispatch overhead — the predicate is evaluated per morsel on the
        shared worker pool and the per-morsel rowid arrays are
        concatenated in morsel order, so the result is bit-identical to
        the serial scan.
        """
        if predicate is None:
            return table.rowids()
        referenced = sorted(expression_columns(predicate))
        for name in referenced:
            table.schema.field(name)  # unknown columns fail before any scan
        if not referenced:
            # column-free predicate (e.g. WHERE 1 = 0): broadcast over
            # the rowid domain without touching any stored column
            rel = Relation({ROWID: table.rowids()})
            mask = np.asarray(predicate.evaluate(rel), dtype=bool)
            return np.flatnonzero(mask).astype(np.int64)
        arrays = table.columns(referenced)
        num_rows = table.num_rows
        ctx = self._context
        if ctx is not None and ctx.active:
            chunks = row_chunks(num_rows, ctx.morsel_rows)
            if ctx.should_parallelize(num_rows, len(chunks)) and (
                self._dml_cost_model.dml_parallel_payoff(num_rows, len(referenced))
            ):
                pieces = ctx.map(
                    lambda chunk: _morsel_predicate_rowids(arrays, predicate, chunk),
                    chunks,
                )
                return np.concatenate(pieces)
        if current_token() is not None:
            # interruptible serial path: same morsel loop, checkpointed.
            # Concatenating per-chunk rowids in chunk order is the
            # parallel path's own bit-identity property.
            morsel_rows = ctx.morsel_rows if ctx is not None else self._morsel_rows
            chunks = row_chunks(num_rows, max(1, morsel_rows))
            if len(chunks) > 1:
                pieces = []
                for chunk in chunks:
                    checkpoint()
                    pieces.append(_morsel_predicate_rowids(arrays, predicate, chunk))
                return np.concatenate(pieces)
        mask = np.asarray(predicate.evaluate(Relation(arrays)), dtype=bool)
        return np.flatnonzero(mask).astype(np.int64)

    def _run_update(self, stmt: UpdateStatement, sql: str = "") -> int:
        table = self.catalog.table(stmt.table)
        rowids = self._predicate_rowids(table, stmt.predicate)
        if len(rowids) == 0:
            # zero-row writes still commit (and are acked with a commit
            # sequence), so they log too: the WAL stays 1:1 with the
            # commit log and replay re-derives the same zero matches
            self._log_write(sql)
            return 0
        referenced = set()
        for expr in stmt.assignments.values():
            referenced |= expression_columns(expr)
        if referenced:
            rel = Relation(table.columns(sorted(referenced))).take(rowids)
        else:
            # literal-only assignments: broadcast over the matched rows
            rel = Relation({ROWID: rowids})
        new_values = {}
        for column, expr in stmt.assignments.items():
            arr = np.asarray(expr.evaluate(rel))
            if arr.dtype == object:
                # NULL assignments surface as None in an object array;
                # route them at the column's storage representation
                field = table.schema.field(column)
                arr = _coerce_for_storage(column, field, list(arr))
            new_values[column] = arr
        # last interruption window: past this point the mutation applies
        # atomically, so an interrupted UPDATE is provably un-applied
        checkpoint()
        # commit point: the WAL append sits after the final interrupt
        # checkpoint and immediately before the atomic mutation, so a
        # logged-but-unapplied record can only mean a process crash
        seq = self._log_write(sql)
        try:
            if isinstance(table, PartitionedTable):
                # matched rowids are global: split them onto the partitions'
                # local rowid spaces (partition offsets are computed before
                # any partition mutates, so the statement is atomic per §3.2)
                table.modify_global(rowids, new_values)
            else:
                table.modify(rowids, new_values)
        except BaseException:
            self._rollback_logged(seq)
            raise
        return len(rowids)

    def _run_delete(self, stmt: DeleteStatement, sql: str = "") -> int:
        table = self.catalog.table(stmt.table)
        rowids = self._predicate_rowids(table, stmt.predicate)
        if len(rowids) == 0:
            self._log_write(sql)  # see _run_update: no-op writes commit
            return 0
        # last interruption window before the atomic mutation (see
        # _run_update)
        checkpoint()
        seq = self._log_write(sql)
        try:
            if isinstance(table, PartitionedTable):
                table.delete_global(rowids)
            else:
                table.delete(rowids)
        except BaseException:
            self._rollback_logged(seq)
            raise
        return len(rowids)


def _coerce_for_storage(column: str, field, raw) -> np.ndarray:
    """Coerce a python value list to a column's storage array.

    NULL (python ``None``) maps to the column type's representation —
    ``None`` in object (STRING) columns, NaN in FLOAT64 columns — and
    raises :class:`NullStorageError` for INT64 columns, which have no
    NULL representation.  Non-NULL values coerce exactly as before
    (strings via ``str``, numerics via ``np.asarray``).
    """
    dtype = field.type.numpy_dtype
    if dtype is object:
        arr = np.empty(len(raw), dtype=object)
        arr[:] = [None if v is None else str(v) for v in raw]
        return arr
    if any(v is None for v in raw):
        if not np.issubdtype(dtype, np.floating):
            raise NullStorageError(
                f"cannot store NULL in column {column!r}: its type "
                f"({field.type.name}) has no NULL representation; only "
                "STRING (None) and FLOAT64 (NaN) columns are nullable"
            )
        raw = [np.nan if v is None else v for v in raw]
    return np.asarray(raw, dtype=dtype)


def _morsel_predicate_rowids(arrays, predicate, chunk) -> np.ndarray:
    """Matching rowids of one morsel (global rowid space).

    ``arrays`` are whole-table column views materialized once on the
    calling thread; the morsel task only slices them (zero-copy) and
    runs the vectorized predicate kernels, which release the GIL.
    """
    start, stop = chunk
    rel = Relation({name: arr[start:stop] for name, arr in arrays.items()})
    mask = np.asarray(predicate.evaluate(rel), dtype=bool)
    return np.flatnonzero(mask).astype(np.int64) + start
