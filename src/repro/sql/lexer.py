"""SQL tokenizer."""

from __future__ import annotations

import dataclasses
import enum
from typing import List

__all__ = ["TokenKind", "Token", "tokenize", "SQLSyntaxError"]


class SQLSyntaxError(ValueError):
    """Raised for malformed SQL text."""


class TokenKind(enum.Enum):
    """Lexical category of a :class:`Token`."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT",
    "JOIN", "INNER", "ON", "AND", "OR", "NOT", "IN", "AS", "ASC", "DESC",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "SUM", "COUNT",
    "MIN", "MAX", "AVG", "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END",
    "NULL", "IS", "OFFSET",
}

OPERATORS = ["<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%"]
PUNCT = ["(", ")", ",", ".", ";"]


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexeme: its kind, source text, and character offset."""

    kind: TokenKind
    value: str
    position: int

    def matches(self, kind: TokenKind, value: str | None = None) -> bool:
        """True if the token has this kind (and, if given, this value)."""
        if self.kind is not kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> List[Token]:
    """Split SQL text into tokens (keywords upper-cased)."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise SQLSyntaxError(f"unterminated string literal at {i}")
            tokens.append(Token(TokenKind.STRING, text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                seen_dot = seen_dot or text[j] == "."
                j += 1
            tokens.append(Token(TokenKind.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenKind.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
