"""A small SQL front-end over the plan layer.

Supports the query shapes the paper's evaluation uses — SELECT
[DISTINCT] with WHERE / JOIN ... ON / GROUP BY / ORDER BY / LIMIT — and
the update statements (INSERT / UPDATE / DELETE) that drive PatchIndex
maintenance.  Parsed queries lower onto :mod:`repro.plan` logical plans,
so every PatchIndex rewrite applies transparently to SQL text.
"""

from repro.sql.async_session import (
    AsyncSQLSession,
    QueryStats,
    ServerClosedError,
    SessionOverloadedError,
)
from repro.sql.lexer import Token, TokenKind, tokenize
from repro.sql.parser import SetStatement, parse_statement
from repro.sql.session import (
    ConcurrentSessionError,
    PreparedStatement,
    SQLSession,
    classify_statement,
)

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse_statement",
    "SetStatement",
    "SQLSession",
    "AsyncSQLSession",
    "QueryStats",
    "ServerClosedError",
    "SessionOverloadedError",
    "PreparedStatement",
    "ConcurrentSessionError",
    "classify_statement",
]
