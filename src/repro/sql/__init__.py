"""A small SQL front-end over the plan layer.

Supports the query shapes the paper's evaluation uses — SELECT
[DISTINCT] with WHERE / JOIN ... ON / GROUP BY / ORDER BY / LIMIT
[OFFSET] — and the update statements (INSERT / UPDATE / DELETE) that
drive PatchIndex maintenance.  Parsed queries lower onto
:mod:`repro.plan` logical plans, so every PatchIndex rewrite applies
transparently to SQL text.  Column references are validated against the
catalog at prepare time (:mod:`repro.sql.binder`), and NULL flows
through literals, storage and predicates with SQLite-compatible
semantics (see :class:`repro.engine.expressions.ComparisonExpr`).
"""

from repro.sql.async_session import (
    AsyncSQLSession,
    QueryStats,
    ServerClosedError,
    SessionOverloadedError,
)
from repro.sql.binder import (
    AmbiguousColumnError,
    BindError,
    QualifiedRefUnsupportedError,
    UnknownColumnError,
    UnknownQualifierError,
    bind_statement,
)
from repro.sql.lexer import Token, TokenKind, tokenize
from repro.sql.parser import ColumnRefInfo, SetStatement, parse_statement
from repro.sql.session import (
    ConcurrentSessionError,
    NullStorageError,
    PreparedStatement,
    SQLSession,
    classify_statement,
)

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse_statement",
    "SetStatement",
    "ColumnRefInfo",
    "BindError",
    "AmbiguousColumnError",
    "UnknownColumnError",
    "UnknownQualifierError",
    "QualifiedRefUnsupportedError",
    "bind_statement",
    "SQLSession",
    "AsyncSQLSession",
    "QueryStats",
    "ServerClosedError",
    "SessionOverloadedError",
    "PreparedStatement",
    "ConcurrentSessionError",
    "NullStorageError",
    "classify_statement",
]
