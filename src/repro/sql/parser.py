"""Recursive-descent SQL parser lowering onto logical plans.

The engine resolves columns by bare name, so column names must be
unique across joined tables (the TPC-H style this repo uses
throughout).  Qualified references like ``l.l_orderkey`` keep their
qualifier in the parsed statement's ``column_refs``; the binder
(:mod:`repro.sql.binder`) validates them against the catalog at
prepare time and raises typed errors for ambiguous or unresolvable
references instead of silently resolving to whichever side wins.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.expressions import Expression, col, is_null, lit, where
from repro.plan import nodes
from repro.sql.lexer import SQLSyntaxError, Token, TokenKind, tokenize

__all__ = [
    "parse_statement",
    "ColumnRefInfo",
    "SelectStatement",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "SetStatement",
]

AGG_FUNCS = {"SUM": "sum", "COUNT": "count", "MIN": "min", "MAX": "max", "AVG": "avg"}


@dataclasses.dataclass(frozen=True)
class ColumnRefInfo:
    """One column reference as written: optional qualifier + column.

    ``position`` is the character offset of the reference in the
    statement text, for error messages.
    """

    qualifier: Optional[str]
    column: str
    position: int


@dataclasses.dataclass
class SelectStatement:
    """A parsed SELECT, lowered to a logical plan.

    ``sources`` maps each FROM range variable (the alias when one is
    given, else the table name) to its table; ``column_refs`` lists
    every column reference as written (qualifiers preserved);
    ``derived_names`` are select-list outputs that introduce NEW names
    (explicit aliases, aggregate/expression defaults) — ORDER BY may
    legally reference these.  A bare passthrough column is deliberately
    excluded: its output name cannot excuse the reference it came from.
    """

    plan: nodes.PlanNode
    tables: List[str]
    sources: Dict[str, str] = dataclasses.field(default_factory=dict)
    column_refs: List[ColumnRefInfo] = dataclasses.field(default_factory=list)
    derived_names: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class InsertStatement:
    """A parsed ``INSERT INTO ... VALUES`` with literal rows."""

    table: str
    columns: List[str]
    rows: List[List[object]]


@dataclasses.dataclass
class UpdateStatement:
    """A parsed ``UPDATE ... SET`` with an optional predicate."""

    table: str
    assignments: Dict[str, Expression]
    predicate: Optional[Expression]
    column_refs: List[ColumnRefInfo] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class DeleteStatement:
    """A parsed ``DELETE FROM`` with an optional predicate."""

    table: str
    predicate: Optional[Expression]
    column_refs: List[ColumnRefInfo] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class SetStatement:
    """``SET <name> = <value>`` — a session configuration knob."""

    name: str
    value: object


Statement = Union[
    SelectStatement, InsertStatement, UpdateStatement, DeleteStatement, SetStatement
]


def parse_statement(sql: str) -> Statement:
    """Parse one SQL statement."""
    return _Parser(tokenize(sql)).parse()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._refs: List[ColumnRefInfo] = []
        self._sources: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _accept(self, kind: TokenKind, value: Optional[str] = None) -> Optional[Token]:
        if self._peek().matches(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, value: Optional[str] = None) -> Token:
        tok = self._accept(kind, value)
        if tok is None:
            actual = self._peek()
            raise SQLSyntaxError(
                f"expected {value or kind.value}, found {actual.value!r} "
                f"at position {actual.position}"
            )
        return tok

    def _keyword(self, word: str) -> bool:
        return self._accept(TokenKind.KEYWORD, word) is not None

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse(self) -> Statement:
        """Parse the token stream into exactly one statement."""
        if self._peek().matches(TokenKind.KEYWORD, "SELECT"):
            stmt = self._parse_select()
        elif self._peek().matches(TokenKind.KEYWORD, "INSERT"):
            stmt = self._parse_insert()
        elif self._peek().matches(TokenKind.KEYWORD, "UPDATE"):
            stmt = self._parse_update()
        elif self._peek().matches(TokenKind.KEYWORD, "DELETE"):
            stmt = self._parse_delete()
        elif self._peek().matches(TokenKind.KEYWORD, "SET"):
            stmt = self._parse_set()
        else:
            raise SQLSyntaxError(f"unsupported statement start {self._peek().value!r}")
        self._accept(TokenKind.PUNCT, ";")
        self._expect(TokenKind.EOF)
        return stmt

    # -- SELECT ----------------------------------------------------------
    def _parse_select(self) -> SelectStatement:
        self._expect(TokenKind.KEYWORD, "SELECT")
        distinct = self._keyword("DISTINCT")
        items = self._parse_select_items()
        self._expect(TokenKind.KEYWORD, "FROM")
        plan, tables = self._parse_from()
        if self._keyword("WHERE"):
            predicate = self._parse_expr()
            plan = self._push_predicate(plan, predicate)
        group_keys: List[str] = []
        if self._keyword("GROUP"):
            self._expect(TokenKind.KEYWORD, "BY")
            group_keys = self._parse_column_list()
        plan = self._apply_projection(plan, items, distinct, group_keys)
        if self._keyword("ORDER"):
            self._expect(TokenKind.KEYWORD, "BY")
            keys, ascending = self._parse_order_list()
            plan = self._apply_order_by(plan, keys, ascending)
        if self._keyword("LIMIT"):
            n = self._parse_count("LIMIT")
            offset = 0
            if self._accept(TokenKind.PUNCT, ","):
                # SQLite's LIMIT <offset>, <count> form
                offset, n = n, self._parse_count("LIMIT")
            elif self._keyword("OFFSET"):
                offset = self._parse_count("OFFSET")
            plan = nodes.LimitNode(plan, n, offset)
        derived_names = [
            name
            for name, spec in items
            if spec != "*" and getattr(spec, "name", None) != name
        ]
        return SelectStatement(
            plan=plan,
            tables=tables,
            sources=dict(self._sources),
            column_refs=list(self._refs),
            derived_names=derived_names,
        )

    def _parse_count(self, clause: str) -> int:
        """A validated non-negative integer for LIMIT/OFFSET."""
        negative = self._accept(TokenKind.OPERATOR, "-") is not None
        tok = self._expect(TokenKind.NUMBER)
        if negative or "." in tok.value:
            sign = "-" if negative else ""
            raise SQLSyntaxError(
                f"{clause} requires a non-negative integer, got "
                f"{sign}{tok.value} at position {tok.position}"
            )
        return int(tok.value)

    def _parse_select_items(self) -> List[Tuple[str, object]]:
        """List of (output name, spec) where spec is '*', an Expression,
        or an aggregate tuple (func, input expr or None)."""
        if self._accept(TokenKind.OPERATOR, "*"):
            return [("*", "*")]
        items: List[Tuple[str, object]] = []
        while True:
            spec: object
            tok = self._peek()
            if tok.kind is TokenKind.KEYWORD and tok.value in AGG_FUNCS:
                self._advance()
                self._expect(TokenKind.PUNCT, "(")
                if self._accept(TokenKind.OPERATOR, "*"):
                    inner: Optional[Expression] = None
                else:
                    inner = self._parse_expr()
                self._expect(TokenKind.PUNCT, ")")
                spec = (AGG_FUNCS[tok.value], inner)
                default_name = tok.value.lower()
            else:
                expr = self._parse_expr()
                spec = expr
                default_name = expr.name if hasattr(expr, "name") else "expr"
            if self._keyword("AS"):
                name = self._expect(TokenKind.IDENT).value
            else:
                name = default_name
            items.append((name, spec))
            if not self._accept(TokenKind.PUNCT, ","):
                return items

    def _parse_from(self) -> Tuple[nodes.PlanNode, List[str]]:
        table = self._expect(TokenKind.IDENT).value
        self._register_source(table, self._maybe_alias())
        plan: nodes.PlanNode = nodes.ScanNode(table)
        tables = [table]
        while True:
            if self._keyword("INNER"):
                self._expect(TokenKind.KEYWORD, "JOIN")
            elif not self._keyword("JOIN"):
                break
            right = self._expect(TokenKind.IDENT).value
            self._register_source(right, self._maybe_alias())
            self._expect(TokenKind.KEYWORD, "ON")
            left_key = self._parse_column_ref()
            self._expect(TokenKind.OPERATOR, "=")
            right_key = self._parse_column_ref()
            plan = nodes.JoinNode(plan, nodes.ScanNode(right), left_key, right_key)
            tables.append(right)
        return plan, tables

    def _register_source(self, table: str, alias: Optional[str]) -> None:
        """Record one FROM range variable (the alias hides the table name)."""
        self._sources[alias or table] = table

    def _maybe_alias(self) -> Optional[str]:
        # accept "table alias" and "table AS alias"; returns the alias
        if self._keyword("AS"):
            return self._expect(TokenKind.IDENT).value
        if self._peek().kind is TokenKind.IDENT:
            nxt = self._tokens[self._pos + 1]
            # a bare identifier followed by something that cannot start a
            # clause is an alias
            if nxt.kind in (TokenKind.KEYWORD, TokenKind.EOF) or nxt.matches(
                TokenKind.PUNCT, ";"
            ):
                return self._advance().value
        return None

    def _push_predicate(
        self, plan: nodes.PlanNode, predicate: Expression
    ) -> nodes.PlanNode:
        if isinstance(plan, nodes.ScanNode) and plan.predicate is None:
            return nodes.ScanNode(plan.table, plan.columns, predicate)
        return nodes.FilterNode(plan, predicate)

    def _apply_projection(
        self,
        plan: nodes.PlanNode,
        items: List[Tuple[str, object]],
        distinct: bool,
        group_keys: List[str],
    ) -> nodes.PlanNode:
        has_aggs = any(isinstance(spec, tuple) for _, spec in items)
        if group_keys or has_aggs:
            aggs = {
                name: spec for name, spec in items if isinstance(spec, tuple)
            }
            for name, spec in items:
                if not isinstance(spec, tuple):
                    if not hasattr(spec, "name") or spec.name not in group_keys:
                        raise SQLSyntaxError(
                            f"non-aggregate select item {name!r} must be a "
                            "GROUP BY column"
                        )
            return nodes.AggregateNode(plan, group_keys, aggs)
        if items == [("*", "*")]:
            if distinct:
                return nodes.DistinctNode(plan)
            return plan
        simple = all(hasattr(spec, "name") and name == spec.name for name, spec in items)
        columns = [name for name, _ in items]
        if distinct and simple:
            # keep the scan subtree bare so the distinct rewrite matches
            return nodes.DistinctNode(plan, columns)
        outputs: Dict[str, object] = {}
        for name, spec in items:
            outputs[name] = spec.name if hasattr(spec, "name") else spec
        projected = nodes.ProjectNode(plan, outputs)
        if distinct:
            return nodes.DistinctNode(projected, columns)
        return projected

    def _apply_order_by(
        self, plan: nodes.PlanNode, keys: List[str], ascending: List[bool]
    ) -> nodes.PlanNode:
        # SQL permits ordering by columns the projection drops; sort
        # beneath the projection in that case.
        if isinstance(plan, nodes.ProjectNode) and any(
            k not in plan.outputs for k in keys
        ):
            return nodes.ProjectNode(
                nodes.SortNode(plan.child, keys, ascending), plan.outputs
            )
        return nodes.SortNode(plan, keys, ascending)

    def _parse_column_list(self) -> List[str]:
        cols = [self._parse_column_ref()]
        while self._accept(TokenKind.PUNCT, ","):
            cols.append(self._parse_column_ref())
        return cols

    def _parse_order_list(self) -> Tuple[List[str], List[bool]]:
        keys: List[str] = []
        ascending: List[bool] = []
        while True:
            keys.append(self._parse_column_ref())
            if self._keyword("DESC"):
                ascending.append(False)
            else:
                self._keyword("ASC")
                ascending.append(True)
            if not self._accept(TokenKind.PUNCT, ","):
                return keys, ascending

    def _parse_column_ref(self) -> str:
        tok = self._expect(TokenKind.IDENT)
        name = tok.value
        qualifier: Optional[str] = None
        if self._accept(TokenKind.PUNCT, "."):
            qualifier = name
            name = self._expect(TokenKind.IDENT).value
        # the engine resolves by bare name; the qualifier is preserved
        # here and validated by the binder against the FROM sources
        self._refs.append(ColumnRefInfo(qualifier, name, tok.position))
        return name

    # -- INSERT ----------------------------------------------------------
    def _parse_insert(self) -> InsertStatement:
        self._expect(TokenKind.KEYWORD, "INSERT")
        self._expect(TokenKind.KEYWORD, "INTO")
        table = self._expect(TokenKind.IDENT).value
        self._expect(TokenKind.PUNCT, "(")
        columns = [self._expect(TokenKind.IDENT).value]
        while self._accept(TokenKind.PUNCT, ","):
            columns.append(self._expect(TokenKind.IDENT).value)
        self._expect(TokenKind.PUNCT, ")")
        self._expect(TokenKind.KEYWORD, "VALUES")
        rows: List[List[object]] = []
        while True:
            self._expect(TokenKind.PUNCT, "(")
            row = [self._parse_literal()]
            while self._accept(TokenKind.PUNCT, ","):
                row.append(self._parse_literal())
            self._expect(TokenKind.PUNCT, ")")
            if len(row) != len(columns):
                raise SQLSyntaxError(
                    f"VALUES row has {len(row)} items, expected {len(columns)}"
                )
            rows.append(row)
            if not self._accept(TokenKind.PUNCT, ","):
                return InsertStatement(table, columns, rows)

    def _parse_literal(self) -> object:
        if self._accept(TokenKind.KEYWORD, "NULL"):
            return None
        negative = self._accept(TokenKind.OPERATOR, "-") is not None
        tok = self._advance()
        if tok.kind is TokenKind.NUMBER:
            value: object = float(tok.value) if "." in tok.value else int(tok.value)
            return -value if negative else value
        if tok.kind is TokenKind.STRING:
            if negative:
                raise SQLSyntaxError(
                    f"cannot negate string literal {tok.value!r} "
                    f"at position {tok.position}"
                )
            return tok.value
        if tok.matches(TokenKind.KEYWORD, "NULL"):
            raise SQLSyntaxError(f"cannot negate NULL at position {tok.position}")
        raise SQLSyntaxError(
            f"expected literal, found {tok.value!r} at position {tok.position}"
        )

    # -- UPDATE ----------------------------------------------------------
    def _parse_update(self) -> UpdateStatement:
        self._expect(TokenKind.KEYWORD, "UPDATE")
        table = self._expect(TokenKind.IDENT).value
        self._expect(TokenKind.KEYWORD, "SET")
        assignments: Dict[str, Expression] = {}
        while True:
            column = self._expect(TokenKind.IDENT).value
            self._expect(TokenKind.OPERATOR, "=")
            assignments[column] = self._parse_expr()
            if not self._accept(TokenKind.PUNCT, ","):
                break
        predicate = self._parse_expr() if self._keyword("WHERE") else None
        return UpdateStatement(table, assignments, predicate, column_refs=list(self._refs))

    # -- DELETE ----------------------------------------------------------
    def _parse_delete(self) -> DeleteStatement:
        self._expect(TokenKind.KEYWORD, "DELETE")
        self._expect(TokenKind.KEYWORD, "FROM")
        table = self._expect(TokenKind.IDENT).value
        predicate = self._parse_expr() if self._keyword("WHERE") else None
        return DeleteStatement(table, predicate, column_refs=list(self._refs))

    # -- SET -------------------------------------------------------------
    def _parse_set(self) -> SetStatement:
        self._expect(TokenKind.KEYWORD, "SET")
        name = self._expect(TokenKind.IDENT).value
        self._expect(TokenKind.OPERATOR, "=")
        tok = self._advance()
        if tok.kind is TokenKind.NUMBER:
            value: object = float(tok.value) if "." in tok.value else int(tok.value)
        elif tok.kind in (TokenKind.STRING, TokenKind.IDENT, TokenKind.KEYWORD):
            # KEYWORD covers bare enum values that collide with SQL
            # keywords, e.g. ``SET wal_sync = group``.
            value = tok.value.lower() if tok.kind is TokenKind.KEYWORD else tok.value
        else:
            raise SQLSyntaxError(
                f"expected a literal SET value, found {tok.value!r} "
                f"at position {tok.position}"
            )
        return SetStatement(name, value)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        expr = self._parse_and()
        while self._keyword("OR"):
            expr = expr | self._parse_and()
        return expr

    def _parse_and(self) -> Expression:
        expr = self._parse_not()
        while self._keyword("AND"):
            expr = expr & self._parse_not()
        return expr

    def _parse_not(self) -> Expression:
        if self._keyword("NOT"):
            return ~self._parse_not()
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        expr = self._parse_additive()
        tok = self._peek()
        if tok.kind is TokenKind.OPERATOR and tok.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self._advance()
            right = self._parse_additive()
            ops = {
                "=": lambda a, b: a == b,
                "<>": lambda a, b: a != b,
                "!=": lambda a, b: a != b,
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }
            return ops[tok.value](expr, right)
        if tok.matches(TokenKind.KEYWORD, "IS"):
            self._advance()
            negate = self._keyword("NOT")
            self._expect(TokenKind.KEYWORD, "NULL")
            return is_null(expr, negate)
        if tok.matches(TokenKind.KEYWORD, "IN"):
            self._advance()
            self._expect(TokenKind.PUNCT, "(")
            values = [self._parse_literal()]
            while self._accept(TokenKind.PUNCT, ","):
                values.append(self._parse_literal())
            self._expect(TokenKind.PUNCT, ")")
            return expr.isin(values)
        if tok.matches(TokenKind.KEYWORD, "BETWEEN"):
            self._advance()
            lo = self._parse_additive()
            self._expect(TokenKind.KEYWORD, "AND")
            hi = self._parse_additive()
            return (expr >= lo) & (expr <= hi)
        return expr

    def _parse_additive(self) -> Expression:
        expr = self._parse_multiplicative()
        while True:
            if self._accept(TokenKind.OPERATOR, "+"):
                expr = expr + self._parse_multiplicative()
            elif self._accept(TokenKind.OPERATOR, "-"):
                expr = expr - self._parse_multiplicative()
            else:
                return expr

    def _parse_multiplicative(self) -> Expression:
        expr = self._parse_unary()
        while True:
            if self._accept(TokenKind.OPERATOR, "*"):
                expr = expr * self._parse_unary()
            elif self._accept(TokenKind.OPERATOR, "/"):
                expr = expr / self._parse_unary()
            elif self._accept(TokenKind.OPERATOR, "%"):
                expr = expr % self._parse_unary()
            else:
                return expr

    def _parse_unary(self) -> Expression:
        if self._accept(TokenKind.OPERATOR, "-"):
            tok = self._peek()
            if tok.kind is TokenKind.STRING:
                raise SQLSyntaxError(
                    f"cannot negate string literal {tok.value!r} "
                    f"at position {tok.position}"
                )
            if tok.matches(TokenKind.KEYWORD, "NULL"):
                raise SQLSyntaxError(f"cannot negate NULL at position {tok.position}")
            return lit(0) - self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            return lit(float(tok.value) if "." in tok.value else int(tok.value))
        if tok.kind is TokenKind.STRING:
            self._advance()
            return lit(tok.value)
        if tok.matches(TokenKind.KEYWORD, "NULL"):
            self._advance()
            return lit(None)
        if tok.kind is TokenKind.IDENT:
            return col(self._parse_column_ref())
        if tok.matches(TokenKind.PUNCT, "("):
            self._advance()
            inner = self._parse_expr()
            self._expect(TokenKind.PUNCT, ")")
            return inner
        if tok.matches(TokenKind.KEYWORD, "CASE"):
            self._advance()
            self._expect(TokenKind.KEYWORD, "WHEN")
            cond = self._parse_expr()
            self._expect(TokenKind.KEYWORD, "THEN")
            then = self._parse_expr()
            self._expect(TokenKind.KEYWORD, "ELSE")
            otherwise = self._parse_expr()
            self._expect(TokenKind.KEYWORD, "END")
            return where(cond, then, otherwise)
        raise SQLSyntaxError(f"unexpected token {tok.value!r} at {tok.position}")
