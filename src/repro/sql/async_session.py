"""Async multi-client session layer over the blocking SQL core.

The ROADMAP's north star — heavy traffic from many concurrent clients —
needs more than one blocking :class:`~repro.sql.session.SQLSession`:
this module multiplexes many ``await session.execute(sql)`` callers
onto **one** session core and **one**
:class:`~repro.engine.parallel.ExecutionContext` worker pool.

Scheduling discipline
---------------------
* Parse / classify / optimize runs on the event loop
  (:meth:`SQLSession.prepare_parsed` is cheap and touches no table
  data): parse and classification happen at arrival, the optimizer
  runs only once the statement holds its execution slot — so rewrites
  that snapshot live index state (zero-branch pruning reads patch
  counts) see exactly the state execution will.  Execution is
  dispatched to worker threads through the context's external lane
  (:meth:`ExecutionContext.submit_external`, the
  ``run_in_executor``-style entry point), where the numpy kernels
  release the GIL.
* Admission is a **fair FIFO queue** bounded by ``max_inflight``:
  statements are admitted strictly in arrival order, so a burst of
  cheap queries cannot starve an earlier expensive one, and at most
  ``max_inflight`` statements occupy worker threads at once
  (backpressure simply queues the rest).
* Statements are classified (:func:`~repro.sql.session.
  classify_statement`): **reads** run concurrently with each other,
  while **writes** (INSERT / UPDATE / DELETE) and **session** knobs
  (SET) serialize behind an async writer lock — a write is admitted
  only once every in-flight statement drained, and admits nothing
  until it commits.  In-flight reads therefore always observe a state
  between two writes, never a half-applied statement: a write arriving
  behind running reads waits for them, it does not interrupt them.
* **Cooperative cancellation**: cancelling an ``execute`` while it is
  still queued removes it before it ever starts (the statement never
  runs); cancelling after dispatch fires the statement's
  :class:`~repro.engine.interrupt.CancellationToken`, so a *running*
  morsel pipeline unwinds at its next between-morsel checkpoint with
  :class:`~repro.engine.interrupt.QueryCancelledError` — reads leave
  tables untouched, writes are atomically un-applied (the last
  checkpoint sits immediately before the mutation).  The awaiting
  caller unblocks immediately either way; the admission slot is
  returned only when the worker thread actually finishes (promptly
  now, at checkpoint granularity), so ``max_inflight`` keeps meaning
  "threads doing work".  Statement deadlines
  (``statement_timeout_ms``) and overload shedding (``max_queued``,
  :class:`SessionOverloadedError` with a backoff hint) ride the same
  machinery.
* Every query is timed: ``queued_ns`` (arrival → admission) and
  ``exec_ns`` (on-thread execution), recorded together with the
  planner's admission cost hint as :class:`QueryStats` and surfaced
  through the EXPLAIN-style introspection (:meth:`AsyncSQLSession.
  explain`, :meth:`AsyncSQLSession.profile`).

Consistency contract
--------------------
Writes commit in admission (FIFO) order; ``commit_count`` numbers them.
A read's :attr:`QueryStats.write_seq` is the number of writes that had
committed when it started — because reads never overlap writes, every
read observes exactly the state produced by that prefix of the write
sequence, which is what the linearizability-style tests replay.

All methods must be called from a single event loop; the blocking
:class:`SQLSession` remains available for single-threaded scripts and
raises :class:`~repro.sql.session.ConcurrentSessionError` when misused
from several threads.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import time
from typing import Deque, List, Optional, Tuple

from repro.engine.interrupt import (
    CancellationToken,
    QueryTimeoutError,
    cancellation_scope,
    validate_timeout_ms,
)
from repro.engine.parallel import (
    DEFAULT_MORSEL_ROWS,
    ExecutionContext,
    validate_parallelism,
)
from repro.sql.parser import parse_statement
from repro.sql.session import (
    KIND_READ,
    KIND_SESSION,
    KIND_WRITE,
    PreparedStatement,
    SQLSession,
    classify_statement,
)
from repro.storage.catalog import Catalog
from repro.testing import faults

__all__ = [
    "AsyncSQLSession",
    "QueryStats",
    "ServerClosedError",
    "SessionOverloadedError",
]


class ServerClosedError(RuntimeError):
    """The session (or the server fronting it) is shutting down.

    Raised instead of a hung ``await`` for statements caught by a drain:
    submitting after :meth:`AsyncSQLSession.aclose`/:meth:`AsyncSQLSession.
    shutdown` began, or sitting in the admission queue when
    :meth:`AsyncSQLSession.shutdown` aborted it.  The network layer maps
    this onto the ``server-closed`` wire error code (see
    ``docs/protocol.md``), so remote clients receive a typed frame
    rather than a dropped connection.

    Subclasses :class:`RuntimeError` for compatibility with callers that
    guarded the pre-network close behavior.
    """


class SessionOverloadedError(RuntimeError):
    """The admission queue is full; the statement was shed, not queued.

    Raised *synchronously* by :meth:`AsyncSQLSession.execute` when
    ``max_queued`` is set and the FIFO queue is at the bound — the
    statement never entered the queue, never ran, and is always safe to
    retry.  ``backoff_ms`` is a deterministic retry hint proportional to
    the current backlog; the network layer forwards it on the retryable
    ``overloaded`` wire error (see ``docs/protocol.md`` §5).
    """

    def __init__(self, message: str, backoff_ms: int) -> None:
        super().__init__(message)
        self.backoff_ms = int(backoff_ms)


@dataclasses.dataclass(frozen=True)
class QueryStats:
    """Timing and ordering record of one executed statement.

    ``write_seq`` is the statement's position in the global write
    order: for a committed write, its 1-based commit index; for a read
    (or session statement), the number of writes committed when it
    started — i.e. the exact write prefix whose state it observed.
    """

    sql: str
    kind: str
    cost_hint: float
    queued_ns: int
    exec_ns: int
    write_seq: int


class _Waiter:
    __slots__ = ("future", "kind")

    def __init__(self, future: "asyncio.Future[None]", kind: str) -> None:
        self.future = future
        self.kind = kind


def _timed_run(
    session: SQLSession,
    prepared: PreparedStatement,
    token: Optional[CancellationToken] = None,
):
    """Worker-thread body: run the statement under its token and clock it.

    The cancellation scope is installed *here*, around the
    ``run_prepared`` call, rather than threading the token through the
    session API — the scope is thread-local, and this is the thread the
    statement (and therefore every checkpoint on it) runs on; morsel
    fan-outs re-capture the token explicitly at dispatch
    (see :meth:`~repro.engine.parallel.ExecutionContext.map`).
    """
    if faults.ACTIVE:
        faults.fire("session.dispatch")
    t0 = time.perf_counter_ns()
    if token is None:
        result = session.run_prepared(prepared)
    else:
        token.check()
        with cancellation_scope(token):
            result = session.run_prepared(prepared)
    return result, time.perf_counter_ns() - t0


class AsyncSQLSession:
    """``asyncio`` front-end multiplexing clients onto one session core.

    Parameters
    ----------
    catalog / index_manager / zero_branch_pruning / use_cost_model:
        Forwarded to the underlying :class:`SQLSession`.
    parallelism / morsel_rows:
        Morsel-parallel execution knobs; the async session creates one
        shared :class:`ExecutionContext` with them and hands it to the
        session core (pool handle sharing), so every client's morsel
        work lands on the same pool.
    max_inflight:
        Admission bound: at most this many statements execute on worker
        threads at once (also the external lane's thread count); the
        rest wait in the FIFO queue.
    max_queued:
        Overload shedding bound: when set, a statement arriving while
        this many are already waiting for admission is refused with
        :class:`SessionOverloadedError` (carrying a backoff hint)
        instead of queueing without bound.  ``None`` (the default)
        keeps the pre-shedding unbounded-queue behavior.
    statement_timeout_ms:
        Default per-statement deadline, measured from *arrival* (queue
        wait counts); ``None`` disables.  Each statement may override
        it via ``execute(..., timeout_ms=...)``.  Expired statements
        raise :class:`~repro.engine.interrupt.QueryTimeoutError`; a
        timed-out write never mutated anything (the engine's
        checkpoints fire only between morsels and before the atomic
        mutation), so timeouts are always safe to retry.
    stall_timeout_s:
        Forwarded to the shared :class:`ExecutionContext`: seconds
        before a silent morsel task is treated as a wedged pool and the
        self-healing serial fallback engages (``None`` disables).
    stats_history:
        How many per-query :class:`QueryStats` records to retain.
    data_dir / wal_sync / checkpoint_interval / checkpoint_retain:
        Durability knobs, forwarded to the underlying
        :class:`SQLSession` (validated there even without a data
        directory).  With ``data_dir`` set, recovery runs during
        construction and every committed write is WAL-logged at its
        commit point — the exclusive-writer admission discipline means
        WAL order *is* commit order, so no extra locking is needed.
        :meth:`shutdown`/:meth:`aclose` drain, sync and checkpoint via
        the session core's ``close()``.

    Usage::

        async with AsyncSQLSession(catalog, parallelism=4) as db:
            rows = await db.execute("SELECT COUNT(*) AS n FROM t")
    """

    def __init__(
        self,
        catalog: Catalog,
        index_manager=None,
        zero_branch_pruning: bool = False,
        use_cost_model: bool = True,
        parallelism: int = 1,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        max_inflight: int = 8,
        max_queued: Optional[int] = None,
        statement_timeout_ms: Optional[int] = None,
        stall_timeout_s: Optional[float] = None,
        stats_history: int = 256,
        data_dir: Optional[str] = None,
        wal_sync: str = "fsync",
        checkpoint_interval: Optional[int] = None,
        checkpoint_retain: int = 2,
    ) -> None:
        self._max_inflight = validate_parallelism(max_inflight, name="max_inflight")
        self._max_queued = (
            None
            if max_queued is None
            else validate_parallelism(max_queued, name="max_queued")
        )
        self._context = ExecutionContext(
            parallelism=parallelism,
            morsel_rows=morsel_rows,
            external_workers=self._max_inflight,
            stall_timeout_s=stall_timeout_s,
        )
        try:
            self._session = SQLSession(
                catalog,
                index_manager,
                zero_branch_pruning=zero_branch_pruning,
                use_cost_model=use_cost_model,
                context=self._context,
                statement_timeout_ms=statement_timeout_ms,
                data_dir=data_dir,
                wal_sync=wal_sync,
                checkpoint_interval=checkpoint_interval,
                checkpoint_retain=checkpoint_retain,
            )
        except BaseException:
            # a failed recovery (or a rejected durability knob) must not
            # leak the just-created worker pool
            self._context.close()
            raise
        self._queue: Deque[_Waiter] = collections.deque()
        self._inflight = 0
        self._active_reads = 0
        self._writer_active = False
        self._commit_seq = 0
        self._stats: Deque[QueryStats] = collections.deque(maxlen=stats_history)
        self._drain_waiters: List["asyncio.Future[None]"] = []
        self._closed = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        """The catalog the shared session core executes against."""
        return self._session.catalog

    @property
    def max_inflight(self) -> int:
        """Admission bound: statements executing concurrently at most."""
        return self._max_inflight

    @property
    def max_queued(self) -> Optional[int]:
        """Shedding bound on the admission queue (None = unbounded)."""
        return self._max_queued

    @property
    def statement_timeout_ms(self) -> Optional[int]:
        """Default statement deadline of the session core (None = off)."""
        return self._session.statement_timeout_ms

    @property
    def parallelism(self) -> int:
        """Morsel worker count of the session core."""
        return self._session.parallelism

    @property
    def join_order_search(self) -> str:
        """Stage-1 join-order strategy of the session core."""
        return self._session.join_order_search

    @property
    def data_dir(self) -> Optional[str]:
        """Durable data directory of the session core (None = in-memory)."""
        return self._session.data_dir

    @property
    def wal_sync(self) -> str:
        """WAL sync policy of the session core."""
        return self._session.wal_sync

    @property
    def checkpoint_interval(self) -> Optional[int]:
        """Automatic checkpoint cadence of the session core (None = off)."""
        return self._session.checkpoint_interval

    @property
    def durability(self):
        """The session core's :class:`DurabilityManager` (None = in-memory)."""
        return self._session.durability

    @property
    def inflight(self) -> int:
        """Statements currently admitted (dispatched or executing)."""
        return self._inflight

    @property
    def queued(self) -> int:
        """Statements waiting in the admission queue."""
        return len(self._queue)

    @property
    def commit_count(self) -> int:
        """Writes committed so far (the global write sequence length)."""
        return self._commit_seq

    def stats(self) -> List[QueryStats]:
        """Per-query records, oldest first (bounded by stats_history)."""
        return list(self._stats)

    def explain(self, sql: str) -> str:
        """EXPLAIN-style introspection of one SELECT.

        The cost-annotated plan (per-node cardinality/cost and the
        admission cost hint), the live admission-queue state, and —
        when this exact statement text ran before — its recorded
        ``queued_ns`` / ``exec_ns`` timings.
        """
        text = self._session.explain(sql, costs=True)
        lines = [
            text,
            (
                f"admission: max_inflight={self._max_inflight} "
                f"inflight={self._inflight} queued={len(self._queue)} "
                f"writes_committed={self._commit_seq}"
            ),
        ]
        runs = [s for s in self._stats if s.sql == sql]
        if runs:
            last = runs[-1]
            lines.append(
                f"last run: queued {last.queued_ns / 1e6:.3f} ms, "
                f"exec {last.exec_ns / 1e6:.3f} ms "
                f"({len(runs)} recorded run(s))"
            )
        return "\n".join(lines)

    def profile(self) -> str:
        """Formatted table of the recorded per-query stats."""
        header = f"{'kind':<8} {'queued ms':>10} {'exec ms':>10} {'seq':>5}  sql"
        lines = [header, "-" * len(header)]
        for s in self._stats:
            sql = s.sql if len(s.sql) <= 60 else s.sql[:57] + "..."
            lines.append(
                f"{s.kind:<8} {s.queued_ns / 1e6:>10.3f} "
                f"{s.exec_ns / 1e6:>10.3f} {s.write_seq:>5}  {sql}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # FIFO admission
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Admit queued statements from the head (loop thread only).

        Strict FIFO: the head is admitted or nothing is.  Consecutive
        reads at the head batch up to ``max_inflight``; a write at the
        head waits for every in-flight statement and then takes the
        session exclusively.
        """
        while self._queue:
            head = self._queue[0]
            if head.future.cancelled():
                self._queue.popleft()
                continue
            if self._inflight >= self._max_inflight:
                break
            if head.kind == KIND_READ:
                if self._writer_active:
                    break
                self._queue.popleft()
                self._inflight += 1
                self._active_reads += 1
                head.future.set_result(None)
            else:
                if self._inflight > 0:
                    break
                self._queue.popleft()
                self._inflight += 1
                self._writer_active = True
                head.future.set_result(None)
                break
        self._notify_drained()

    def _release(self, kind: str) -> None:
        self._inflight -= 1
        if kind == KIND_READ:
            self._active_reads -= 1
        else:
            self._writer_active = False
        self._pump()

    def _notify_drained(self) -> None:
        if self._drain_waiters and not self._queue and self._inflight == 0:
            waiters, self._drain_waiters = self._drain_waiters, []
            for fut in waiters:
                if not fut.done():
                    fut.set_result(None)

    async def _admit(self, kind: str) -> None:
        """Wait in the FIFO queue for an execution slot.

        Cancellation while waiting removes the entry — the statement is
        never dispatched.  Cancellation racing the grant returns the
        just-granted slot.
        """
        loop = asyncio.get_running_loop()
        waiter = _Waiter(loop.create_future(), kind)
        self._queue.append(waiter)
        self._pump()
        try:
            await waiter.future
        except asyncio.CancelledError:
            if waiter.future.cancelled():
                try:
                    self._queue.remove(waiter)
                except ValueError:
                    pass
                self._pump()
            elif waiter.future.exception() is not None:
                # aborted (shutdown's _abort_queued set ServerClosedError
                # on the waiter) concurrently with the task cancel: no
                # slot was ever granted, so there is nothing to give
                # back — releasing here used to corrupt the admission
                # accounting.  Reading exception() also marks it
                # retrieved, silencing the loop's never-retrieved
                # warning.
                pass
            else:
                # granted concurrently with the cancellation: the slot
                # was never used, give it back
                self._release(kind)
            raise

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def execute(
        self,
        sql: str,
        with_stats: bool = False,
        timeout_ms: Optional[int] = None,
    ):
        """Run one statement; returns what :meth:`SQLSession.execute`
        returns (a Relation for SELECT, a row count for DML/SET).

        ``with_stats=True`` returns ``(result, QueryStats)`` instead —
        the hook the concurrency test subsystem uses to relate every
        read to the write prefix it observed.  ``timeout_ms`` overrides
        the session's ``statement_timeout_ms`` for this statement only.
        """
        # parse/classify at arrival (pure); optimize only once the slot
        # is granted, so the plan snapshots index state (patch counts,
        # zero-branch pruning) consistent with what execution will see —
        # a read queued behind a write must be planned *after* it
        return await self.execute_parsed(
            parse_statement(sql), sql, with_stats, timeout_ms=timeout_ms
        )

    async def execute_parsed(
        self,
        stmt,
        sql: str,
        with_stats: bool = False,
        timeout_ms: Optional[int] = None,
    ):
        """:meth:`execute` for an already-parsed statement.

        The server front-end's prepared statements parse once at
        ``prepare`` time and run many times through here — the deferred
        half (optimize, then execute) still happens per run, under the
        same admission discipline as :meth:`execute`, so a prepared
        SELECT is planned against the index state its run will observe.

        Interruption: every dispatched statement runs under its own
        :class:`~repro.engine.interrupt.CancellationToken`.  Cancelling
        the awaiting task fires the token, so a *running* morsel
        pipeline unwinds at its next checkpoint instead of grinding to
        completion; the admission slot is still held until the worker
        thread actually returns.  The effective deadline
        (``timeout_ms`` override, else the session default) is measured
        from arrival and enforced both while queued (the admission wait
        itself times out) and while executing.
        """
        if self._closed:
            raise ServerClosedError("AsyncSQLSession is closed")
        if timeout_ms is not None:
            timeout_ms = validate_timeout_ms(timeout_ms)
        kind = classify_statement(stmt)
        if (
            self._max_queued is not None
            and kind != KIND_SESSION
            and len(self._queue) >= self._max_queued
        ):
            backlog = len(self._queue) + self._inflight
            backoff_ms = min(5_000, 25 * max(1, backlog))
            raise SessionOverloadedError(
                f"admission queue full ({len(self._queue)} queued, "
                f"max_queued={self._max_queued}); retry in ~{backoff_ms} ms",
                backoff_ms=backoff_ms,
            )
        effective_timeout = (
            timeout_ms if timeout_ms is not None else self.statement_timeout_ms
        )
        token = CancellationToken(timeout_ms=effective_timeout)
        t_arrival = time.perf_counter_ns()
        if token.deadline is None:
            await self._admit(kind)
        else:
            remaining = token.remaining()
            if remaining is not None and remaining <= 0:
                raise QueryTimeoutError(
                    f"query timed out after {effective_timeout} ms"
                )
            try:
                await asyncio.wait_for(self._admit(kind), remaining)
            except asyncio.TimeoutError:
                # the deadline expired while queued; _admit's
                # cancellation path already removed the waiter (or
                # returned a just-granted slot)
                raise QueryTimeoutError(
                    f"query timed out after {effective_timeout} ms "
                    "waiting for admission"
                ) from None
        queued_ns = time.perf_counter_ns() - t_arrival
        prepared = self._session.prepare_parsed(stmt, sql)

        if kind == KIND_SESSION:
            # session knobs (SET) run inline on the loop: they are
            # metadata-cheap, and swapping the execution context from a
            # pool thread the context itself owns would be self-joining
            try:
                t0 = time.perf_counter_ns()
                result = self._session.run_prepared(prepared)
                exec_ns = time.perf_counter_ns() - t0
            finally:
                self._release(kind)
            return self._finish(
                prepared, queued_ns, exec_ns, self._commit_seq, result, with_stats
            )

        seq_at_start = self._commit_seq
        future = self._context.submit_external(
            _timed_run, self._session, prepared, token
        )
        try:
            result, exec_ns = await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            # fire the token so the statement's morsel pipeline unwinds
            # at its next checkpoint instead of grinding to completion;
            # the slot is held until the worker thread actually returns
            token.cancel()
            loop = asyncio.get_running_loop()
            future.add_done_callback(
                lambda f: loop.call_soon_threadsafe(
                    self._finish_late, prepared, queued_ns, seq_at_start, f
                )
            )
            raise
        except Exception:
            self._release(kind)
            raise
        if kind == KIND_WRITE:
            self._commit_seq += 1
            seq = self._commit_seq
        else:
            seq = seq_at_start
        self._release(kind)
        return self._finish(prepared, queued_ns, exec_ns, seq, result, with_stats)

    def _finish(
        self,
        prepared: PreparedStatement,
        queued_ns: int,
        exec_ns: int,
        seq: int,
        result,
        with_stats: bool,
    ):
        stats = QueryStats(
            sql=prepared.sql,
            kind=prepared.kind,
            cost_hint=prepared.cost_hint,
            queued_ns=queued_ns,
            exec_ns=exec_ns,
            write_seq=seq,
        )
        self._stats.append(stats)
        return (result, stats) if with_stats else result

    def _finish_late(
        self, prepared: PreparedStatement, queued_ns: int, seq_at_start: int, future
    ) -> None:
        """Completion of a statement whose awaiter was cancelled.

        ``future`` may itself be cancelled (the cancel can win the race
        against the worker picking the item up) — check before touching
        ``exception()``, which raises on a cancelled future; the slot
        must be released on every path or the session deadlocks.

        A statement that did run still lands in :meth:`stats`: a write
        that committed after its client vanished (e.g. a mid-query
        disconnect at the server) must stay visible in the write log,
        or the committed history could not be replayed.
        """
        kind = prepared.kind
        if not future.cancelled() and future.exception() is None:
            # the statement ran to completion even though nobody awaited it
            result, exec_ns = future.result()
            if kind == KIND_WRITE:
                self._commit_seq += 1
                seq = self._commit_seq
            else:
                seq = seq_at_start
            self._finish(prepared, queued_ns, exec_ns, seq, result, False)
        self._release(kind)

    async def gather(self, *statements: str) -> Tuple:
        """Convenience: run several statements concurrently."""
        return tuple(await asyncio.gather(*(self.execute(s) for s in statements)))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until the queue is empty and nothing is in flight."""
        while self._queue or self._inflight:
            fut = asyncio.get_running_loop().create_future()
            self._drain_waiters.append(fut)
            await fut

    def _abort_queued(self) -> int:
        """Fail every statement still waiting for admission.

        Their ``execute`` calls raise :class:`ServerClosedError` instead
        of hanging until the (never-coming) slot grant; statements that
        already hold a slot are untouched.  Returns how many were
        aborted.
        """
        aborted = 0
        while self._queue:
            waiter = self._queue.popleft()
            if not waiter.future.done():
                waiter.future.set_exception(
                    ServerClosedError(
                        "session is draining; queued statement aborted"
                    )
                )
                aborted += 1
        self._notify_drained()
        return aborted

    async def shutdown(self) -> int:
        """Graceful drain: stop admitting, abort queued, finish in-flight.

        The server-shutdown variant of :meth:`aclose`: new statements
        are rejected with :class:`ServerClosedError`, statements still
        *queued* for admission are aborted with the same typed error
        (they never ran, so the committed write order is untouched), and
        statements already in flight run to completion before the worker
        pools are released.  Returns the number of aborted statements.
        Idempotent; :meth:`aclose` after ``shutdown`` is a no-op.
        """
        self._closed = True
        aborted = self._abort_queued()
        await self.drain()
        self._session.close()
        self._context.close()
        return aborted

    async def aclose(self) -> None:
        """Stop admitting new statements, drain, release the pools.

        Queued statements still run to completion; only statements
        submitted after ``aclose`` began are rejected.
        """
        if self._closed:
            return
        self._closed = True
        await self.drain()
        self._session.close()
        self._context.close()

    def close(self) -> None:
        """Synchronous teardown for use outside any event loop.

        Must not be called while statements are queued or in flight —
        use :meth:`aclose` from async code.
        """
        self._closed = True
        if self._queue or self._inflight:
            raise RuntimeError("statements still in flight; use aclose()")
        self._session.close()
        self._context.close()

    async def __aenter__(self) -> "AsyncSQLSession":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AsyncSQLSession(parallelism={self.parallelism}, "
            f"max_inflight={self._max_inflight}, inflight={self._inflight}, "
            f"queued={len(self._queue)}, commits={self._commit_seq})"
        )
