"""Catalog-aware validation of parsed column references.

The parser keeps every column reference as written — qualifier
included (see :class:`~repro.sql.parser.ColumnRefInfo`) — because the
engine itself resolves columns by bare name only.  Binding runs at
prepare time, when the catalog is available, and turns what used to be
silent wrong-answer behavior into typed errors:

* an *unqualified* reference whose bare name lives in more than one
  FROM source raises :class:`AmbiguousColumnError` (SQLite:
  ``ambiguous column name``) instead of resolving to whichever join
  side happens to win;
* a *qualified* reference is checked against its range variable — an
  unknown alias raises :class:`UnknownQualifierError`, a column the
  aliased table does not have raises :class:`UnknownColumnError`;
* a qualified reference that is valid SQL but that the bare-name
  engine cannot honor (the column exists in several joined tables, so
  the qualifier would be the only disambiguator) raises
  :class:`QualifiedRefUnsupportedError` — an honest "unsupported"
  instead of a wrong answer; the differential harness tracks it in the
  xfail manifest.

Statements naming tables the catalog does not know are left unbound;
execution raises the ordinary unknown-table error.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.sql.parser import (
    ColumnRefInfo,
    DeleteStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.storage.catalog import Catalog

__all__ = [
    "BindError",
    "AmbiguousColumnError",
    "UnknownColumnError",
    "UnknownQualifierError",
    "QualifiedRefUnsupportedError",
    "bind_statement",
]


class BindError(ValueError):
    """A column reference failed catalog validation."""


class AmbiguousColumnError(BindError):
    """An unqualified column name matches more than one FROM source."""


class UnknownQualifierError(BindError):
    """A qualifier names no table or alias in the FROM clause."""


class UnknownColumnError(BindError, KeyError):
    """A referenced column exists in no candidate table.

    Subclasses :class:`KeyError` as well: pre-binder code surfaced
    unknown columns as ``KeyError`` from schema lookups, and callers
    catching that keep working.
    """

    def __str__(self) -> str:  # KeyError.__str__ would repr()-quote the message
        return self.args[0] if self.args else ""


class QualifiedRefUnsupportedError(BindError):
    """A qualified reference needs per-table resolution we don't have.

    The engine resolves columns by bare name, so a column duplicated
    across joined tables cannot be disambiguated even by a valid
    qualifier.  Raised instead of silently picking a side.
    """


def bind_statement(stmt: Statement, catalog: Catalog) -> None:
    """Validate every column reference of a parsed statement.

    Raises a :class:`BindError` subclass on the first invalid
    reference; statements without recorded references (INSERT, SET)
    pass through untouched.
    """
    if isinstance(stmt, SelectStatement):
        _bind_refs(stmt.column_refs, stmt.sources, set(stmt.derived_names), catalog)
    elif isinstance(stmt, (UpdateStatement, DeleteStatement)):
        _bind_refs(stmt.column_refs, {stmt.table: stmt.table}, set(), catalog)


def _bind_refs(
    refs: List[ColumnRefInfo],
    sources: Dict[str, str],
    derived: Set[str],
    catalog: Catalog,
) -> None:
    """Check refs against the FROM sources' schemas (see module doc)."""
    schemas = {}
    for range_var, table in sources.items():
        try:
            schemas[range_var] = catalog.table(table).schema
        except KeyError:
            # unknown table: skip binding, execution raises the real error
            return
    for ref in refs:
        if ref.qualifier is not None:
            _bind_qualified(ref, schemas)
        else:
            _bind_bare(ref, schemas, derived)


def _bind_qualified(ref: ColumnRefInfo, schemas: Dict[str, object]) -> None:
    """Validate one qualified reference (``alias.column``)."""
    if ref.qualifier not in schemas:
        raise UnknownQualifierError(
            f"unknown table or alias {ref.qualifier!r} in reference "
            f"{ref.qualifier}.{ref.column} at position {ref.position}; "
            f"FROM sources are {sorted(schemas)}"
        )
    if ref.column not in schemas[ref.qualifier]:
        raise UnknownColumnError(
            f"table {ref.qualifier!r} has no column {ref.column!r} "
            f"(reference at position {ref.position})"
        )
    holders = [rv for rv, schema in schemas.items() if ref.column in schema]
    if len(holders) > 1:
        raise QualifiedRefUnsupportedError(
            f"column {ref.column!r} exists in multiple joined tables "
            f"({', '.join(sorted(holders))}); the engine resolves columns "
            f"by bare name and cannot honor the qualifier "
            f"{ref.qualifier!r} (reference at position {ref.position})"
        )


def _bind_bare(
    ref: ColumnRefInfo, schemas: Dict[str, object], derived: Set[str]
) -> None:
    """Validate one unqualified reference."""
    holders = [rv for rv, schema in schemas.items() if ref.column in schema]
    if len(holders) > 1:
        raise AmbiguousColumnError(
            f"ambiguous column name {ref.column!r}: present in "
            f"{', '.join(sorted(holders))} (reference at position "
            f"{ref.position}); qualify it as <table>.{ref.column}"
        )
    if not holders and ref.column not in derived:
        raise UnknownColumnError(
            f"unknown column {ref.column!r} at position {ref.position}; "
            f"no FROM source or select-list alias provides it"
        )
