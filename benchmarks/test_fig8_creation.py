"""Figure 8 — creation time of materialization vs PatchIndex per e.

Paper setup: for each exception rate, time creating the materialized
view (NUC) / SortKey (NSC) and both PatchIndex designs.

Expected shape: NSC — SortKey creation (physical reorder) is the most
expensive by far, PatchIndex creation cheaper; NUC — matview and
PatchIndex creation are in the same ballpark; the bitmap design builds
no slower than the identifier design (paper: faster, since bits are set
in a pre-allocated bitmap).
"""

from repro.bench import format_table, time_fn, write_report
from repro.core import (
    BITMAP_DESIGN,
    IDENTIFIER_DESIGN,
    NearlySortedColumn,
    NearlyUniqueColumn,
    PatchIndex,
)
from repro.materialization import MaterializedView, SortKey
from repro.workloads import generate_dataset

NUM_ROWS = 200_000
#: 14 payload columns ≈ the paper's 128-byte tuples; what a SortKey
#: physically reorders is the full tuple, the PatchIndex reads one column
PAYLOADS = 14
RATES = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0]


def creation_times(constraint: str):
    rows = []
    for e in RATES:
        ds = generate_dataset(
            NUM_ROWS, e, constraint, seed=4,
            payload_columns=0 if constraint == "nuc" else PAYLOADS,
        )
        cons = NearlyUniqueColumn() if constraint == "nuc" else NearlySortedColumn()
        if constraint == "nuc":
            t_mat = time_fn(
                lambda: MaterializedView(ds.table, "v", refresh_policy="manual"),
                repeats=1,
            )
        else:
            t_mat = time_fn(
                lambda: SortKey(ds.table, "v", refresh_policy="manual"), repeats=1
            )
        t_bitmap = time_fn(
            lambda: PatchIndex(ds.table, "v", cons, design=BITMAP_DESIGN), repeats=1
        )
        t_ident = time_fn(
            lambda: PatchIndex(ds.table, "v", cons, design=IDENTIFIER_DESIGN), repeats=1
        )
        rows.append([e, t_mat, t_bitmap, t_ident])
    return rows


def test_fig8_creation_time(benchmark):
    nuc_rows = creation_times("nuc")
    nsc_rows = creation_times("nsc")
    headers = ["e", "materialization [s]", "PI_bitmap [s]", "PI_identifier [s]"]
    report = (
        format_table(
            headers, nuc_rows, title=f"Figure 8 (NUC: matview vs PatchIndex, n={NUM_ROWS})"
        )
        + "\n\n"
        + format_table(
            headers, nsc_rows, title=f"Figure 8 (NSC: SortKey vs PatchIndex, n={NUM_ROWS})"
        )
    )
    write_report("fig8_creation", report)

    # The paper has PatchIndex creation clearly cheaper than the SortKey
    # reorder.  In this substrate the relation inverts by a constant:
    # numpy's argsort is SIMD-vectorized while the LIS is a pure-Python
    # loop (~100× per-element penalty) — see EXPERIMENTS.md.  We assert
    # the substrate-true band instead of the paper's ordering.
    for row in nsc_rows:
        assert row[2] < row[1] * 60 + 0.1, "NSC creation out of expected band"
        assert row[2] < 1.5, "NSC PatchIndex creation should stay laptop-fast"
    # NUC creation within a small factor of the matview (paper shape:
    # same ballpark, PatchIndex slightly more expensive at most scales)
    for row in nuc_rows:
        assert row[2] < row[1] * 10 + 0.1

    ds = generate_dataset(50_000, 0.2, "nuc", seed=5)
    benchmark.pedantic(
        lambda: PatchIndex(ds.table, "v", NearlyUniqueColumn(), design=BITMAP_DESIGN),
        rounds=1,
        iterations=1,
    )
