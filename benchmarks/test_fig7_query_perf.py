"""Figure 7 — distinct / sort query runtimes for varying exception rates.

Paper setup: 1 B-tuple two-column datasets, 24 partitions; a distinct
query (NUC) and a sort query (NSC) are run without any constraint, with
a specialized materialization (materialized view / SortKey) and with
both PatchIndex designs, for e in 0..1.  Laptop scale: 300 K tuples,
4 partitions.

Expected shape: PatchIndex ≈ materialization ≪ no-constraint for small
e; PatchIndex runtime grows gently with e (more tuples take the patch
path); both PatchIndex designs behave alike.
"""

from repro.bench import format_table, time_fn, write_report
from repro.core import (
    NearlySortedColumn,
    NearlyUniqueColumn,
    PatchIndexManager,
)
from repro.materialization import MaterializedView, SortKey
from repro.plan import DistinctNode, Optimizer, ScanNode, SortNode, execute_plan
from repro.storage import Catalog
from repro.workloads import generate_dataset

NUM_ROWS = 300_000
PARTITIONS = 4
#: payload columns make tuples wide, as in the paper's 128-byte rows
PAYLOADS = 4
RATES = [0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0]


def build_env(constraint: str, e: float, design: str):
    ds = generate_dataset(
        NUM_ROWS, e, constraint, num_partitions=PARTITIONS, seed=3,
        name=f"{constraint}_{int(e * 100)}_{design}",
        payload_columns=0 if constraint == "nuc" else PAYLOADS,
    )
    catalog = Catalog()
    catalog.register(ds.table)
    mgr = PatchIndexManager(catalog)
    cons = NearlyUniqueColumn() if constraint == "nuc" else NearlySortedColumn()
    mgr.create(ds.table, "v", cons, design=design)
    return ds, catalog, mgr


def query_plan(ds, constraint: str):
    if constraint == "nuc":
        return DistinctNode(ScanNode(ds.table.name, ["v"]), ["v"])
    # the sort query returns whole tuples ordered by the value column
    return SortNode(ScanNode(ds.table.name), ["v"])


def reference_time(ds, constraint: str, catalog) -> float:
    plan = query_plan(ds, constraint)
    return time_fn(lambda: execute_plan(plan, catalog), repeats=1)


def patchindex_time(ds, constraint: str, catalog, mgr) -> float:
    opt = Optimizer(catalog, mgr, use_cost_model=False).optimize(
        query_plan(ds, constraint)
    )
    return time_fn(lambda: execute_plan(opt, catalog), repeats=1)


def materialization_time(ds, constraint: str) -> float:
    if constraint == "nuc":
        mv = MaterializedView(ds.table, "v", refresh_policy="manual")
        # the rewritten query scans (reads) the materialized values
        t = time_fn(lambda: mv.scan_values().copy(), repeats=1)
        return t
    sk = SortKey(ds.table, "v", refresh_policy="manual")
    return time_fn(lambda: sk.scan_sorted(), repeats=1)


def run_constraint(constraint: str):
    rows = []
    for e in RATES:
        ds, catalog, mgr = build_env(constraint, e, "bitmap")
        ref = reference_time(ds, constraint, catalog)
        mat = materialization_time(ds, constraint)
        pi_bitmap = patchindex_time(ds, constraint, catalog, mgr)
        ds2, catalog2, mgr2 = build_env(constraint, e, "identifier")
        pi_ident = patchindex_time(ds2, constraint, catalog2, mgr2)
        rows.append([e, ref, mat, pi_bitmap, pi_ident])
    return rows


def check_shape(rows, constraint: str):
    # both designs stay within a reasonable factor of each other
    for row in rows:
        fast, slow = sorted([row[3], row[4]])
        assert slow < fast * 5 + 0.05
    if constraint == "nuc":
        # dropping the aggregation wins clearly at e = 0 and the
        # PatchIndex never regresses vs the reference (paper shape)
        assert rows[0][3] < rows[0][1], "NUC: PI_bitmap should win at e=0"
        for row in rows:
            assert row[3] < row[1] * 3 + 0.05
        return
    # NSC: numpy's sort is nearly memory-bandwidth-bound, so removing it
    # buys less than in the paper's engine; we assert the weaker,
    # substrate-true shape (see EXPERIMENTS.md): bounded overhead and
    # patch-side cost that grows with e over the low-e regime.
    for row in rows:
        assert row[3] < row[1] * 6 + 0.08, "NSC: PatchIndex out of expected band"
    mid = next(r for r in rows if r[0] == 0.5)
    assert mid[3] > rows[0][3] * 0.8, "NSC: patch-side cost should grow with e"


def test_fig7_query_performance(benchmark):
    nuc_rows = run_constraint("nuc")
    nsc_rows = run_constraint("nsc")
    headers = [
        "e", "w/o constraint [s]", "materialization [s]", "PI_bitmap [s]", "PI_identifier [s]"
    ]
    report = (
        format_table(headers, nuc_rows, title=f"Figure 7 (NUC distinct query, n={NUM_ROWS})")
        + "\n\n"
        + format_table(headers, nsc_rows, title=f"Figure 7 (NSC sort query, n={NUM_ROWS})")
    )
    write_report("fig7_query_perf", report)
    check_shape(nuc_rows, "nuc")
    check_shape(nsc_rows, "nsc")

    ds, catalog, mgr = build_env("nuc", 0.1, "bitmap")
    plan = Optimizer(catalog, mgr, use_cost_model=False).optimize(
        DistinctNode(ScanNode(ds.table.name, ["v"]), ["v"])
    )
    benchmark.pedantic(lambda: execute_plan(plan, catalog), rounds=1, iterations=1)
