"""Figure 9 — update performance for varying update granularities.

Paper setup: on the e = 0.5 dataset, insert/modify/delete 1000 tuples
total, split into statements of 5..1000 tuples; compare no constraint,
per-statement materialization refresh, and both PatchIndex designs.

Expected shape: per-statement materialization refresh is dramatically
slower (especially at fine granularities); PatchIndex maintenance adds
modest overhead that amortizes by ~50-tuple statements; delete is the
cheapest PatchIndex path; the identifier design trails the bitmap
design.
"""

import numpy as np

from repro.bench import format_table, time_fn, write_report
from repro.core import (
    NearlySortedColumn,
    NearlyUniqueColumn,
    PatchIndexManager,
)
from repro.materialization import MaterializedView, SortKey
from repro.workloads import generate_dataset, insert_batch, modify_batch

NUM_ROWS = 60_000
TOTAL_TUPLES = 1_000
GRANULARITIES = [5, 10, 50, 100, 500, 1000]
EXCEPTION_RATE = 0.5


def fresh_dataset(constraint: str, name: str):
    return generate_dataset(NUM_ROWS, EXCEPTION_RATE, constraint, seed=6, name=name)


def attach(constraint: str, ds, system: str):
    """Wire the system under test to the dataset; returns a detach fn."""
    if system == "reference":
        return lambda: None
    if system == "materialization":
        if constraint == "nuc":
            mv = MaterializedView(ds.table, "v")  # immediate refresh
            return mv.detach
        sk = SortKey(ds.table, "v")  # immediate re-sort
        return sk.detach
    mgr = PatchIndexManager()
    cons = NearlyUniqueColumn() if constraint == "nuc" else NearlySortedColumn()
    design = "bitmap" if system == "pi_bitmap" else "identifier"
    mgr.create(ds.table, "v", cons, design=design)
    return lambda: mgr.drop(ds.table.name, "v")


def run_update(constraint: str, op: str, system: str, granularity: int) -> float:
    ds = fresh_dataset(constraint, f"{constraint}_{op}_{system}_{granularity}")
    detach = attach(constraint, ds, system)
    statements = TOTAL_TUPLES // granularity

    def work():
        if op == "insert":
            for s in range(statements):
                batch = insert_batch(ds, granularity, collide_fraction=0.2, seed=s)
                ds.table.insert(batch)
        elif op == "modify":
            for s in range(statements):
                batch = modify_batch(ds, granularity, seed=s)
                ds.table.modify(batch["rowids"], {"v": batch["v"]})
        else:  # delete
            rng = np.random.default_rng(123)
            for s in range(statements):
                n = ds.table.num_rows
                rowids = np.sort(rng.choice(n, size=granularity, replace=False))
                ds.table.delete(rowids)

    elapsed = time_fn(work, repeats=1, warmup=0)
    detach()
    return elapsed


SYSTEMS = ["reference", "materialization", "pi_bitmap", "pi_identifier"]


def run_sweep(constraint: str, op: str):
    rows = []
    for g in GRANULARITIES:
        row = [g]
        for system in SYSTEMS:
            row.append(run_update(constraint, op, system, g))
        rows.append(row)
    return rows


def test_fig9_update_performance(benchmark):
    headers = ["granularity"] + [f"{s} [s]" for s in SYSTEMS]
    sections = []
    results = {}
    for constraint in ("nuc", "nsc"):
        for op in ("insert", "modify", "delete"):
            rows = run_sweep(constraint, op)
            results[(constraint, op)] = rows
            sections.append(
                format_table(
                    headers,
                    rows,
                    title=(
                        f"Figure 9 ({constraint.upper()} {op}: {TOTAL_TUPLES} tuples "
                        f"total, n={NUM_ROWS}, e={EXCEPTION_RATE})"
                    ),
                )
            )
    write_report("fig9_updates", "\n\n".join(sections))

    for constraint in ("nuc", "nsc"):
        finest = results[(constraint, "insert")][0]
        ref, mat, pib = finest[1], finest[2], finest[3]
        # materialization refresh per statement is the most expensive path
        assert mat > ref, f"{constraint}: per-statement refresh must cost more than no constraint"
        assert mat > pib, f"{constraint}: PatchIndex must beat per-statement refresh"
        # deletes are the cheapest PatchIndex maintenance path
        del_row = results[(constraint, "delete")][0]
        assert del_row[3] < mat

    benchmark.pedantic(
        lambda: run_update("nsc", "delete", "pi_bitmap", 500), rounds=1, iterations=1
    )
