"""Morsel-parallel executor — serial vs parallel on the Figure 7 suite.

Runs the Figure 7 query shapes (NUC distinct and NSC sort over
PatchIndex plans) plus a scan→filter→aggregate pipeline with a serial
and a morsel-parallel execution context and reports the speedup.

Two properties are asserted:

* parallel results are bit-identical to serial results, and
* parallel execution does not regress vs serial beyond scheduling noise
  (the speedup itself depends on the core count of the machine — on a
  single-core runner the best possible outcome is ≈1×, since threads
  only interleave the GIL-releasing numpy kernels).

Set ``BENCH_QUICK=1`` to shrink the datasets (the CI smoke job).
"""

import os

import numpy as np

from repro.bench import format_table, time_serial_vs_parallel, write_report
from repro.core import NearlySortedColumn, NearlyUniqueColumn, PatchIndexManager
from repro.engine import ExecutionContext, col
from repro.plan import DistinctNode, Optimizer, ScanNode, SortNode, execute_plan, nodes
from repro.storage import Catalog, Table
from repro.workloads import generate_dataset

QUICK = bool(int(os.environ.get("BENCH_QUICK", "0")))
NUM_ROWS = 60_000 if QUICK else 300_000
AGG_ROWS = 200_000 if QUICK else 1_000_000
PARTITIONS = 4
PARALLELISM = min(4, os.cpu_count() or 1) if (os.cpu_count() or 1) > 1 else 2
EXCEPTION_RATE = 0.1
#: Parallel dispatch on an oversubscribed or noisy machine costs a
#: little; the assertion only guards against pathological overhead
#: (many-times-slower), not scheduling noise.
REGRESSION_SLACK = 1.5
ABS_SLACK = 0.1


def fig7_patchindex_plan(constraint: str):
    ds = generate_dataset(
        NUM_ROWS,
        EXCEPTION_RATE,
        constraint,
        num_partitions=PARTITIONS,
        seed=3,
        name=f"par_{constraint}",
        payload_columns=0 if constraint == "nuc" else 4,
    )
    catalog = Catalog()
    catalog.register(ds.table)
    mgr = PatchIndexManager(catalog)
    cons = NearlyUniqueColumn() if constraint == "nuc" else NearlySortedColumn()
    mgr.create(ds.table, "v", cons)
    if constraint == "nuc":
        plan = DistinctNode(ScanNode(ds.table.name, ["v"]), ["v"])
    else:
        plan = SortNode(ScanNode(ds.table.name), ["v"])
    return Optimizer(catalog, mgr, use_cost_model=False).optimize(plan), catalog


def filter_aggregate_plan():
    rng = np.random.default_rng(1)
    table = Table.from_arrays(
        "par_agg",
        {
            "k": np.arange(AGG_ROWS, dtype=np.int64),
            "g": rng.integers(0, 100, AGG_ROWS).astype(np.int64),
            "v": rng.random(AGG_ROWS),
        },
    )
    catalog = Catalog()
    catalog.register(table)
    plan = nodes.AggregateNode(
        nodes.FilterNode(nodes.ScanNode("par_agg"), (col("v") > 0.25) & (col("g") < 80)),
        ["g"],
        {"n": ("count", None), "s": ("sum", "v"), "mx": ("max", "v")},
    )
    return plan, catalog


def assert_identical(serial, parallel, query: str) -> None:
    assert serial.column_names == parallel.column_names, query
    for name in serial.column_names:
        np.testing.assert_array_equal(
            serial.column(name), parallel.column(name), err_msg=f"{query}.{name}"
        )


def test_parallel_speedup(benchmark):
    suite = [
        ("fig7 NUC distinct (PatchIndex)", *fig7_patchindex_plan("nuc")),
        ("fig7 NSC sort (PatchIndex)", *fig7_patchindex_plan("nsc")),
        ("filter+aggregate", *filter_aggregate_plan()),
    ]
    rows = []
    for name, plan, catalog in suite:
        serial_s, parallel_s = time_serial_vs_parallel(
            lambda ctx, plan=plan, catalog=catalog: execute_plan(plan, catalog, context=ctx),
            parallelism=PARALLELISM,
        )
        rows.append([name, serial_s, parallel_s, serial_s / max(parallel_s, 1e-9)])

        with ExecutionContext(parallelism=PARALLELISM) as ctx:
            assert_identical(
                execute_plan(plan, catalog),
                execute_plan(plan, catalog, context=ctx),
                name,
            )

    report = format_table(
        ["query", "serial [s]", "parallel [s]", "speedup"],
        rows,
        title=(
            f"Morsel-parallel executor (parallelism={PARALLELISM}, "
            f"cpus={os.cpu_count()}, n={NUM_ROWS})"
        ),
    )
    write_report("parallel_speedup", report)

    for name, serial_s, parallel_s, _ in rows:
        assert parallel_s <= serial_s * REGRESSION_SLACK + ABS_SLACK, (
            f"{name}: parallel {parallel_s:.4f}s regressed vs serial {serial_s:.4f}s"
        )

    plan, catalog = suite[0][1], suite[0][2]
    benchmark.pedantic(lambda: execute_plan(plan, catalog), rounds=1, iterations=1)
