"""Per-commit cost of the WAL sync policies (durability PR acceptance).

Times single-row INSERT commits through :class:`SQLSession` against
four configurations — no durability at all, then ``wal_sync = off``
(flush only), ``group`` (piggybacked fsync) and ``fsync`` (fsync per
commit) — and reports commit p50/p99 per policy.  The orderings the
report rests on: ``off`` adds only the frame encode + flush over the
in-memory baseline, and ``fsync`` pays the full device sync on every
commit, bounding the other two.

Set ``BENCH_QUICK=1`` to shrink the run (the CI smoke job).
"""

import os
import shutil
import tempfile
import time

import numpy as np

from repro.bench import format_table, write_report
from repro.sql import SQLSession
from repro.storage import Catalog, Table

QUICK = bool(int(os.environ.get("BENCH_QUICK", "0")))
N_COMMITS = 60 if QUICK else 400
WARMUP = 5 if QUICK else 20
N_ROWS = 10_000


def make_catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(N_ROWS, dtype=np.int64),
                "val": np.zeros(N_ROWS),
            },
        )
    )
    return catalog


def percentile(samples, q):
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def time_commits(data_dir, wal_sync):
    kwargs = {}
    if data_dir is not None:
        kwargs = {
            "data_dir": data_dir,
            "wal_sync": wal_sync,
            # keep checkpoints out of the timed loop
            "checkpoint_interval": None,
        }
    session = SQLSession(make_catalog(), **kwargs)
    try:
        samples = []
        for i in range(WARMUP + N_COMMITS):
            sql = f"INSERT INTO events (eid, val) VALUES ({N_ROWS + i}, 0.5)"
            start = time.perf_counter()
            session.execute(sql)
            elapsed = time.perf_counter() - start
            if i >= WARMUP:
                samples.append(elapsed)
        return samples
    finally:
        session.close()


def test_wal_overhead():
    configs = [
        ("none", None),
        ("off", "off"),
        ("group", "group"),
        ("fsync", "fsync"),
    ]
    rows = []
    results = {}
    root = tempfile.mkdtemp(prefix="wal_overhead_")
    try:
        for label, policy in configs:
            data_dir = None if policy is None else os.path.join(root, label)
            samples = time_commits(data_dir, policy)
            p50, p99 = percentile(samples, 50), percentile(samples, 99)
            results[label] = p50
            rows.append([label, len(samples), p50 * 1e6, p99 * 1e6])
    finally:
        shutil.rmtree(root, ignore_errors=True)

    report = format_table(
        ["wal_sync", "commits", "p50 (us)", "p99 (us)"],
        rows,
        title=(
            f"WAL commit overhead: {N_COMMITS} single-row INSERTs per "
            f"policy over {N_ROWS} base rows (durability off = baseline)"
        ),
    )
    write_report("wal_overhead", report)

    # sanity orderings, with generous slack for shared-runner noise:
    # flush-only logging must not blow the in-memory commit up by an
    # order of magnitude, and per-commit fsync must cost at least as
    # much as flush-only logging
    assert results["off"] < results["none"] * 10 + 0.001
    assert results["fsync"] >= results["off"] * 0.5
