"""Table 3 — memory consumption of PatchIndex designs vs materialized view.

Paper formulas for t = 1e9 tuples:
  PI_bitmap      = t/8 · 1.0039 bytes           (constant in e)
  PI_identifier  = e · t · 8 bytes              (linear in e)
  Mat. view NUC  = (1e5 + (1-e) · t) · 8 bytes  (all unique values)

We print the formula table at the paper's scale and validate the
formulas against structures measured at laptop scale.
"""

from repro.bench import format_table, write_report
from repro.core import (
    BITMAP_DESIGN,
    IDENTIFIER_DESIGN,
    NearlyUniqueColumn,
    PatchIndex,
)
from repro.materialization import MaterializedView
from repro.workloads import generate_dataset

PAPER_T = 10**9
MEASURED_T = 2_000_000


def formula_bitmap(t: int) -> float:
    return t / 8 * 1.0039


def formula_identifier(t: int, e: float) -> float:
    return e * t * 8


def formula_matview(t: int, e: float, pool: int = 10**5) -> float:
    return (pool + (1 - e) * t) * 8


def gib(x: float) -> str:
    if x >= 1 << 30:
        return f"{x / (1 << 30):.2f} GB"
    return f"{x / (1 << 20):.2f} MB"


def test_tab3_memory_consumption(benchmark):
    rows = []
    for e in (0.01, 0.2):
        rows.append(
            [
                f"e = {e}",
                gib(formula_bitmap(PAPER_T)),
                gib(formula_identifier(PAPER_T, e)),
                gib(formula_matview(PAPER_T, e)),
            ]
        )
    formula_report = format_table(
        ["", "PI_bitmap", "PI_identifier", "Mat. view (NUC)"],
        rows,
        title=f"Table 3 (formulas at t = {PAPER_T:.0e} tuples)",
    )

    measured_rows = []
    for e in (0.01, 0.2):
        ds = generate_dataset(MEASURED_T, e, "nuc", seed=1)
        bm = PatchIndex(ds.table, "v", NearlyUniqueColumn(), design=BITMAP_DESIGN)
        ids = PatchIndex(ds.table, "v", NearlyUniqueColumn(), design=IDENTIFIER_DESIGN)
        mv = MaterializedView(ds.table, "v", refresh_policy="manual")
        measured_rows.append(
            [f"e = {e}", bm.memory_bytes(), ids.memory_bytes(), mv.memory_bytes()]
        )
        # the bitmap bytes track the formula scaled down to MEASURED_T
        assert bm.memory_bytes() <= formula_bitmap(MEASURED_T) * 1.2
        assert ids.memory_bytes() <= formula_identifier(MEASURED_T, e) * 1.2 + 64
        mv.detach()
    measured_report = format_table(
        ["", "PI_bitmap [B]", "PI_identifier [B]", "Mat. view [B]"],
        measured_rows,
        title=f"Table 3 (measured at t = {MEASURED_T} tuples)",
    )
    write_report("tab3_memory", formula_report + "\n\n" + measured_report)

    # shape: identifier beats bitmap below the 1/64 crossover, loses above
    assert formula_identifier(PAPER_T, 0.01) < formula_bitmap(PAPER_T)
    assert formula_identifier(PAPER_T, 0.2) > formula_bitmap(PAPER_T)
    # the materialized view dwarfs both for realistic e
    for e in (0.01, 0.2):
        assert formula_matview(PAPER_T, e) > 10 * formula_bitmap(PAPER_T)
    # bitmap memory is constant in e (measured)
    assert measured_rows[0][1] == measured_rows[1][1]

    benchmark.pedantic(
        lambda: PatchIndex(
            generate_dataset(100_000, 0.1, "nuc").table,
            "v",
            NearlyUniqueColumn(),
            design=BITMAP_DESIGN,
        ).memory_bytes(),
        rounds=1,
        iterations=1,
    )
