"""Async multi-client throughput vs. sequential blocking sessions.

The point of ``AsyncSQLSession`` is that N concurrent clients sharing
one session core outrun the same statements issued one-by-one through
a blocking session: reads overlap on worker threads (the numpy kernels
release the GIL) while writes serialize behind the writer lock.  This
benchmark times identical statement logs both ways — a read-only mix
and the read-heavy mix of the acceptance criterion (~6 % DML) — at 8
concurrent clients, reports QPS, and asserts:

* the final table state after the async run is bit-identical to the
  sequential run (the consistency contract holds under load), and
* on a machine with cores to use (>= 4 CPUs, full-size run), the
  read-heavy mix reaches >= 2x the sequential QPS; on smaller runners
  the attainable ceiling is ~1x (threads can only interleave), so only
  pathological regressions fail.

Set ``BENCH_QUICK=1`` to shrink the dataset (the CI smoke job).
"""

import asyncio
import os
import time

import numpy as np

from repro.bench import format_table, write_report
from repro.sql import AsyncSQLSession, SQLSession
from repro.storage import Catalog, Table

QUICK = bool(int(os.environ.get("BENCH_QUICK", "0")))
NUM_ROWS = 120_000 if QUICK else 600_000
N_CLIENTS = 8
N_STATEMENTS = 64 if QUICK else 160
REPEATS = 2 if QUICK else 3
#: Full-size runs on a machine with this many cores must hit the 2x
#: acceptance target; below it, threads only interleave GIL-releasing
#: kernels and ~1x is the ceiling.
MIN_CPUS_FOR_TARGET = 4
TARGET_SPEEDUP = 2.0
REGRESSION_SLACK = 2.0
ABS_SLACK = 0.5

READS = [
    "SELECT grp, SUM(val) AS s FROM events GROUP BY grp ORDER BY grp",
    "SELECT COUNT(*) AS n FROM events WHERE val * score > 0.8",
    "SELECT SUM(val) AS s FROM events WHERE grp % 7 = 3",
    "SELECT eid FROM events WHERE val > 0.998 ORDER BY eid",
]
WRITES = [
    "UPDATE events SET val = val * 1.001 WHERE grp = {k}",
    "DELETE FROM events WHERE eid % 100000 = {k}",
]


def fresh_catalog() -> Catalog:
    rng = np.random.default_rng(71)
    catalog = Catalog()
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(NUM_ROWS, dtype=np.int64),
                "grp": rng.integers(0, 500, NUM_ROWS).astype(np.int64),
                "val": rng.random(NUM_ROWS),
                "score": rng.random(NUM_ROWS),
            },
        )
    )
    return catalog


def statement_log(write_every: int | None) -> list:
    """A deterministic statement mix; ``write_every=None`` is read-only."""
    out = []
    for i in range(N_STATEMENTS):
        if write_every is not None and i % write_every == 0:
            # alternate over the write templates by write *ordinal* (the
            # positions i are all multiples of write_every, so indexing
            # by i would pin a single template forever)
            out.append(WRITES[(i // write_every) % len(WRITES)].format(k=i % 17))
        else:
            out.append(READS[i % len(READS)])
    return out


def run_sequential(statements) -> tuple:
    catalog = fresh_catalog()
    with SQLSession(catalog) as session:
        t0 = time.perf_counter()
        for sql in statements:
            session.execute(sql)
        elapsed = time.perf_counter() - t0
    return elapsed, catalog


def run_async_clients(statements) -> tuple:
    catalog = fresh_catalog()

    async def main():
        async with AsyncSQLSession(
            catalog, parallelism=1, max_inflight=N_CLIENTS
        ) as db:

            async def client(slice_):
                for sql in slice_:
                    await db.execute(sql)

            t0 = time.perf_counter()
            await asyncio.gather(
                *(client(statements[i::N_CLIENTS]) for i in range(N_CLIENTS))
            )
            return time.perf_counter() - t0

    elapsed = asyncio.run(main())
    return elapsed, catalog


def assert_states_identical(a: Catalog, b: Catalog) -> None:
    ta, tb = a.table("events"), b.table("events")
    assert ta.num_rows == tb.num_rows
    for name in ta.schema.names:
        np.testing.assert_array_equal(ta.column(name), tb.column(name), err_msg=name)


def test_async_throughput(benchmark):
    mixes = [
        ("read-only", statement_log(None)),
        ("read-heavy (~6% DML)", statement_log(16)),
    ]
    rows = []
    speedups = {}
    for name, statements in mixes:
        seq_s = min(run_sequential(statements)[0] for _ in range(REPEATS))
        async_s = None
        for _ in range(REPEATS):
            elapsed, async_catalog = run_async_clients(statements)
            async_s = elapsed if async_s is None else min(async_s, elapsed)
        # consistency under load: async final state == sequential replay.
        # The write templates are chosen to commute bitwise (updates hit
        # disjoint grp-slices multiplicatively, deletes match by value),
        # so any commit order the scheduler picks must land on the same
        # final state as the sequential log.
        assert_states_identical(async_catalog, run_sequential(statements)[1])
        n = len(statements)
        speedups[name] = seq_s / max(async_s, 1e-9)
        rows.append(
            [name, seq_s, async_s, n / max(seq_s, 1e-9), n / max(async_s, 1e-9),
             speedups[name]]
        )

    cpus = os.cpu_count() or 1
    report = format_table(
        ["mix", "sequential [s]", "async 8 clients [s]", "seq QPS", "async QPS",
         "speedup"],
        rows,
        title=(
            f"Async multi-client throughput (clients={N_CLIENTS}, "
            f"cpus={cpus}, rows={NUM_ROWS}, statements={N_STATEMENTS})"
        ),
    )
    if cpus < MIN_CPUS_FOR_TARGET:
        report += (
            f"\nnote: {cpus} CPU(s) < {MIN_CPUS_FOR_TARGET} -> concurrent "
            "clients only interleave GIL-releasing kernels; ~1x (parity) is "
            f"the attainable ceiling here, the >= {TARGET_SPEEDUP}x target "
            "needs cores."
        )
    write_report("async_throughput", report)

    read_heavy = speedups["read-heavy (~6% DML)"]
    if cpus >= MIN_CPUS_FOR_TARGET and not QUICK:
        assert read_heavy >= TARGET_SPEEDUP, (
            f"read-heavy mix: async {read_heavy:.2f}x < {TARGET_SPEEDUP}x "
            f"target at {N_CLIENTS} clients on {cpus} CPUs"
        )
    else:
        for name, seq_s, async_s, *_ in rows:
            assert async_s <= seq_s * REGRESSION_SLACK + ABS_SLACK, (
                f"{name}: async {async_s:.3f}s pathologically regressed vs "
                f"sequential {seq_s:.3f}s"
            )

    def once():
        run_sequential(statement_log(None)[: max(4, N_STATEMENTS // 8)])

    benchmark.pedantic(once, rounds=1, iterations=1)
