"""Per-query timing baselines over the differential corpus.

Each SELECT in the corpus gets a stored median wall-clock baseline in
``benchmarks/results/baselines.json``; this benchmark re-times them and
applies the noise-tolerant gate from :mod:`repro.bench.baselines` — a
query fails only past ``BENCH_BASELINE_FACTOR``× its baseline (default
5×), so scheduler jitter passes and accidental O(n²) regressions do
not.  ``BENCH_WRITE=1`` refreshes the stored file (after the gate);
``BENCH_BASELINE_RESET=1`` accepts an intentional new perf profile.
"""

from repro.bench import format_table, write_report
from repro.bench.baselines import gate_and_maybe_write, measure_queries
from repro.sql import SQLSession
from repro.testing import build_reference_catalog, default_corpus


def test_corpus_query_baselines():
    catalog = build_reference_catalog(seed=0)
    session = SQLSession(catalog)
    queries = {
        q.qid: q.sql for q in default_corpus(seed=7) if q.kind == "select"
    }
    timings = measure_queries(session.execute, queries, repeats=3, warmup=1)
    diffs = gate_and_maybe_write(timings)

    rows = [
        (
            d.qid,
            f"{d.current_s * 1e3:.2f}",
            "-" if d.baseline_s is None else f"{d.baseline_s * 1e3:.2f}",
            "-" if d.ratio is None else f"{d.ratio:.2f}",
        )
        for d in diffs
    ]
    report = format_table(
        ["query", "now (ms)", "baseline (ms)", "ratio"],
        rows,
        title=f"Differential-corpus query timings ({len(rows)} queries)",
    )
    write_report("regression_baselines", report)
