"""Sort path — serial vs morsel-parallel ORDER BY and SortKey refresh.

Times the parallel sort engine (`repro.engine.parallel_sort`: morsel
chunk-sorts plus the deterministic k-way merge) against the serial
stable sort on the paths the ISSUE routes through it: SQL ORDER BY over
the large TPC-H-style config (single-key, descending, and multi-key)
and SortKey refresh over a partitioned table (partition-affinity
fan-out).

Two properties are asserted:

* parallel sorts return bit-identical relations / sorted parts, and
* parallel execution does not regress vs serial beyond scheduling noise
  (the speedup itself depends on the core count of the machine — on a
  single-core runner the best possible outcome is ≈1×, since threads
  only interleave the GIL-releasing numpy kernels), while inputs below
  ``sort_parallel_payoff`` provably stay on the serial path.

Set ``BENCH_QUICK=1`` to shrink the datasets (the CI smoke job).
"""

import os

import numpy as np

from repro.bench import format_table, time_fn, write_report
from repro.engine.parallel_sort import sort_parallel_payoff
from repro.materialization import SortKey
from repro.sql.session import SQLSession
from repro.storage import Catalog, PartitionedTable, Table
from repro.workloads import generate_tpch

QUICK = bool(int(os.environ.get("BENCH_QUICK", "0")))
#: TPC-H scale: lineitem carries ~6000 rows per 0.001 scale.
TPCH_SCALE = 0.05 if QUICK else 0.2
SORTKEY_ROWS = 200_000 if QUICK else 1_000_000
SORTKEY_PARTS = 8
PARALLELISM = 8
REPEATS = 2 if QUICK else 3
#: Parallel dispatch on an oversubscribed or noisy machine costs a
#: little; the assertion only guards against pathological overhead
#: (many-times-slower), not scheduling noise.  A machine with fewer
#: cores than workers cannot win back the extra merge/rank-encoding
#: passes the parallel pipeline performs (multi-key sorts run ~3 chunked
#: passes where serial runs 2), so the guard widens there — the parallel
#: path is still bounded by its pass count, just not faster.
REGRESSION_SLACK = 1.5 if (os.cpu_count() or 1) >= PARALLELISM else 5.0
ABS_SLACK = 0.1

QUERIES = [
    ("ORDER BY price (float)", "SELECT * FROM lineitem ORDER BY l_extendedprice"),
    ("ORDER BY discount DESC, orderkey",
     "SELECT * FROM lineitem ORDER BY l_discount DESC, l_orderkey"),
    ("ORDER BY orderkey (int)",
     "SELECT l_orderkey, l_suppkey FROM lineitem ORDER BY l_suppkey"),
]


def tpch_catalog() -> Catalog:
    catalog = Catalog()
    generate_tpch(scale=TPCH_SCALE, seed=13).register(catalog)
    return catalog


def sortkey_source() -> PartitionedTable:
    rng = np.random.default_rng(29)
    table = Table.from_arrays(
        "skbench",
        {
            "pk": np.arange(SORTKEY_ROWS, dtype=np.int64),
            "v": rng.integers(0, SORTKEY_ROWS, SORTKEY_ROWS).astype(np.int64),
            "payload": rng.random(SORTKEY_ROWS),
        },
    )
    return PartitionedTable.from_table(table, "pk", SORTKEY_PARTS)


def time_order_by(catalog: Catalog) -> list:
    rows = []
    serial = SQLSession(catalog)
    with SQLSession(catalog, parallelism=PARALLELISM) as parallel:
        for name, sql in QUERIES:
            serial_s = time_fn(lambda: serial.execute(sql), repeats=REPEATS)
            parallel_s = time_fn(lambda: parallel.execute(sql), repeats=REPEATS)
            rows.append([name, serial_s, parallel_s, serial_s / max(parallel_s, 1e-9)])
    return rows


def time_sortkey_refresh() -> list:
    source = sortkey_source()
    serial_sk = SortKey(source, "v", refresh_policy="manual")
    parallel_sk = SortKey(source, "v", refresh_policy="manual", parallelism=PARALLELISM)
    try:
        serial_s = time_fn(serial_sk.refresh, repeats=REPEATS)
        parallel_s = time_fn(parallel_sk.refresh, repeats=REPEATS)

        # drop the cached permutation so every sample pays the merge
        def uncached_scan(sk: SortKey):
            sk._scan_order = None
            sk.scan_sorted(["v"])

        scan_serial = time_fn(lambda: uncached_scan(serial_sk), repeats=REPEATS)
        scan_parallel = time_fn(lambda: uncached_scan(parallel_sk), repeats=REPEATS)
    finally:
        parallel_sk.detach()
        serial_sk.detach()
    return [
        ["SortKey refresh (8 partitions)", serial_s, parallel_s,
         serial_s / max(parallel_s, 1e-9)],
        ["SortKey scan merge", scan_serial, scan_parallel,
         scan_serial / max(scan_parallel, 1e-9)],
    ]


def assert_results_identical(catalog: Catalog) -> None:
    """Parallel ORDER BY returns bit-identical relations."""
    serial = SQLSession(catalog)
    with SQLSession(catalog, parallelism=PARALLELISM) as parallel:
        for _, sql in QUERIES:
            want, got = serial.execute(sql), parallel.execute(sql)
            assert want.column_names == got.column_names, sql
            for name in want.column_names:
                np.testing.assert_array_equal(
                    want.column(name), got.column(name), err_msg=f"{sql} / {name}"
                )


def test_sort_speedup(benchmark):
    catalog = tpch_catalog()
    rows = time_order_by(catalog) + time_sortkey_refresh()
    assert_results_identical(catalog)

    lineitem_rows = catalog.table("lineitem").num_rows
    report = format_table(
        ["workload", "serial [s]", "parallel [s]", "speedup"],
        rows,
        title=(
            f"Parallel sort: chunk-sort + k-way merge "
            f"(parallelism={PARALLELISM}, cpus={os.cpu_count()}, "
            f"lineitem={lineitem_rows}, sortkey_rows={SORTKEY_ROWS})"
        ),
    )
    if (os.cpu_count() or 1) < PARALLELISM:
        report += (
            f"\nnote: {os.cpu_count()} CPU(s) < {PARALLELISM} workers -> "
            "threads only interleave GIL-releasing kernels; ~1x (parity) "
            "is the attainable ceiling here, speedup needs cores."
        )
    write_report("sort_speedup", report)

    for name, serial_s, parallel_s, _ in rows:
        assert parallel_s <= serial_s * REGRESSION_SLACK + ABS_SLACK, (
            f"{name}: parallel {parallel_s:.4f}s regressed vs serial {serial_s:.4f}s"
        )

    # below the payoff point the fan-out is provably skipped, so small
    # ORDER BYs cannot regress by construction
    assert not sort_parallel_payoff(1_000, parallelism=PARALLELISM)
    assert sort_parallel_payoff(lineitem_rows, parallelism=PARALLELISM) or QUICK

    serial = SQLSession(catalog)
    benchmark.pedantic(
        lambda: serial.execute(QUERIES[0][1]), rounds=1, iterations=1
    )
