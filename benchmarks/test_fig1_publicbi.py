"""Figure 1 — histogram of approximate-constraint columns in PublicBI
datasets.

The paper profiles three PublicBI workbooks and plots, per dataset, how
many columns match an approximate constraint for what fraction of their
tuples.  We synthesize datasets with the published per-column match
rates (see :mod:`repro.workloads.publicbi`), run our own discovery over
every column and regenerate the histogram.

Expected shape: USCensus_1 contributes 15 NSC columns with 9 above the
60 % bucket boundary; the other two workbooks show most NUC columns in
the top bucket (nearly perfectly unique).
"""

from repro.bench import format_table, write_report
from repro.core import discover_nsc_patches, discover_nuc_patches
from repro.workloads import PUBLICBI_SPECS, generate_publicbi_dataset
from repro.workloads.publicbi import profile_histogram

NUM_ROWS = 10_000
MATCH_THRESHOLD = 0.05  # columns below this are "no approximate constraint"


def profile_dataset(spec, table):
    """Discovery over every column; returns match rates of matching columns."""
    rates = []
    for name in table.schema.names:
        values = table.column(name)
        if spec.constraint == "nsc":
            patches, _ = discover_nsc_patches(values)
        else:
            patches = discover_nuc_patches(values)
        rate = 1.0 - len(patches) / len(values)
        if rate > MATCH_THRESHOLD:
            rates.append(rate)
    return rates


def test_fig1_publicbi_histogram(benchmark):
    sections = []
    measured = {}
    for name, spec in PUBLICBI_SPECS.items():
        table = generate_publicbi_dataset(spec, num_rows=NUM_ROWS, seed=13)
        rates = profile_dataset(spec, table)
        measured[name] = rates
        hist = profile_histogram(rates)
        sections.append(
            format_table(
                ["match-rate bucket", "#columns"],
                list(hist.items()),
                title=f"Figure 1: {name} ({spec.constraint.upper()}), {NUM_ROWS} rows",
            )
        )
    write_report("fig1_publicbi", "\n\n".join(sections))

    # USCensus_1: 15 NSC columns, 9 of them above 60 % match
    census = measured["USCensus_1"]
    assert len(census) == 15
    assert sum(1 for r in census if r > 0.6) == 9
    # the NUC workbooks are dominated by nearly perfect uniqueness
    for name in ("IGlocations2_1", "IUBlibrary_1"):
        rates = measured[name]
        assert sum(1 for r in rates if r > 0.9) >= len(rates) * 0.5

    table = generate_publicbi_dataset(PUBLICBI_SPECS["IGlocations2_1"], num_rows=5_000)
    benchmark.pedantic(
        lambda: profile_dataset(PUBLICBI_SPECS["IGlocations2_1"], table),
        rounds=1,
        iterations=1,
    )
