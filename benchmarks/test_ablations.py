"""Ablations over the paper's design choices.

Not a paper figure — these isolate the individual mechanisms the paper
motivates qualitatively:

* **dynamic range propagation** (§5.1): insert-handling join with and
  without the minmax-pruned probe scan;
* **parallel bulk delete** (§4.2.3): thread-pool vs sequential
  shard-local shifting;
* **cost-model gating** (§3.5/§6.3): forced rewrites vs cost-gated
  rewrites on a query where cloning does not pay (the Q12 effect);
* **condense** (§4.2.4): bit-access cost before/after reclaiming lost
  capacity.
"""

import numpy as np

from repro.bench import format_table, time_fn, write_report
from repro.bitmap import ParallelBulkDeleter, ShardedBitmap
from repro.core import NearlyUniqueColumn, NearlySortedColumn, PatchIndexManager
from repro.plan import JoinNode, Optimizer, ScanNode, execute_plan
from repro.plan.cost import CostModel
from repro.storage import Catalog
from repro.workloads import generate_dataset, insert_batch


def ablate_drp():
    """Insert maintenance cost with/without dynamic range propagation."""
    rows = []
    for drp in (True, False):
        ds = generate_dataset(150_000, 0.2, "nuc", seed=1, name=f"drp{drp}")
        mgr = PatchIndexManager()
        mgr.create(ds.table, "v", NearlyUniqueColumn(),
                   dynamic_range_propagation=drp)
        # fresh keys & values: the touched range sits beyond the table's
        # blocks, which is what DRP can exploit
        def work():
            for s in range(10):
                ds.table.insert(insert_batch(ds, 20, collide_fraction=0.0, seed=s))
        elapsed = time_fn(work, repeats=1, warmup=0)
        rows.append(["DRP on" if drp else "DRP off", elapsed])
        mgr.drop(ds.table.name, "v")
    return rows


def ablate_parallel_bulk_delete():
    """Thread-pool vs sequential shard-local delete phase."""
    rng = np.random.default_rng(2)
    bits = 1 << 22
    positions = np.sort(rng.choice(bits, size=30_000, replace=False))
    rows = []
    with ParallelBulkDeleter() as executor:
        for label, ex in (("parallel", executor), ("sequential", None)):
            def work():
                bm = ShardedBitmap(bits, shard_bits=1 << 14)
                bm.bulk_delete(positions, executor=ex)
            rows.append([label, time_fn(work, repeats=1, warmup=0)])
    return rows


def ablate_cost_gating():
    """Forced vs cost-gated join rewrite on a tiny join (Q12 effect)."""
    dim_n, fact_n = 200, 2_000
    rng = np.random.default_rng(3)
    from repro.storage import Table

    dim = Table.from_arrays("abl_d", {"dk": np.arange(dim_n, dtype=np.int64)})
    fact = Table.from_arrays(
        "abl_f",
        {"fk": np.sort(rng.integers(0, dim_n, fact_n)).astype(np.int64)},
    )
    catalog = Catalog()
    catalog.register(dim)
    catalog.register(fact)
    catalog.add_structure("sortkey", "abl_d", "dk", object())
    mgr = PatchIndexManager(catalog)
    mgr.create(fact, "fk", NearlySortedColumn())
    plan = JoinNode(ScanNode("abl_d"), ScanNode("abl_f"), "dk", "fk")
    forced = Optimizer(catalog, mgr, use_cost_model=False).optimize(plan)
    gated = Optimizer(catalog, mgr, use_cost_model=True).optimize(plan)
    cm = CostModel(catalog)
    t_plain = time_fn(lambda: execute_plan(plan, catalog), repeats=3)
    t_forced = time_fn(lambda: execute_plan(forced, catalog), repeats=3)
    t_gated = time_fn(lambda: execute_plan(gated, catalog), repeats=3)
    return [
        ["plain hash join", t_plain, cm.cost(plan)],
        ["forced rewrite", t_forced, cm.cost(forced)],
        ["cost-gated", t_gated, cm.cost(gated)],
    ]


def ablate_condense():
    """Bit access latency on a heavily deleted bitmap vs after condense."""
    bits = 1 << 20
    bm = ShardedBitmap(bits, shard_bits=1 << 10)
    rng = np.random.default_rng(4)
    bm.bulk_delete(np.sort(rng.choice(bits, size=100_000, replace=False)))
    probes = rng.integers(0, len(bm), 20_000).astype(np.int64)

    def probe():
        for p in probes:
            bm.get(int(p))

    before = time_fn(probe, repeats=1)
    lost_before = bm.lost_bits()
    bm.condense()
    after = time_fn(probe, repeats=1)
    return [
        ["before condense", before, lost_before],
        ["after condense", after, bm.lost_bits()],
    ]


def test_ablations(benchmark):
    drp_rows = ablate_drp()
    par_rows = ablate_parallel_bulk_delete()
    gate_rows = ablate_cost_gating()
    cond_rows = ablate_condense()
    report = "\n\n".join(
        [
            format_table(["variant", "10 insert stmts [s]"], drp_rows,
                         title="Ablation: dynamic range propagation (§5.1)"),
            format_table(["variant", "bulk delete [s]"], par_rows,
                         title="Ablation: parallel vs sequential bulk delete (§4.2.3)"),
            format_table(["variant", "tiny join [s]", "est. cost"], gate_rows,
                         title="Ablation: cost-model gating of the join rewrite (§3.5)"),
            format_table(["variant", "20k probes [s]", "lost bits"], cond_rows,
                         title="Ablation: condense and bit-access cost (§4.2.4)"),
        ]
    )
    write_report("ablations", report)

    # DRP should not hurt, and usually helps clearly for localized inserts
    assert drp_rows[0][1] <= drp_rows[1][1] * 1.3
    # the cost model never picks a plan it scores worse than the original
    assert gate_rows[2][2] <= gate_rows[0][2]
    # condense reclaims all lost capacity and never slows access down much
    assert cond_rows[1][2] == 0
    assert cond_rows[1][1] <= cond_rows[0][1] * 1.5

    benchmark.pedantic(lambda: ablate_parallel_bulk_delete(), rounds=1, iterations=1)
