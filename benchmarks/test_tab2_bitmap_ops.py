"""Table 2 — bitmap operator runtimes per element, plain vs sharded.

Paper setup: 100 M-element bitmap, shard size 2^14; sequential set/get,
sequential single deletes and bulk delete, reported as latency per
element.  We run at 2^23 bits.

Expected shape: sharded bit access ≈ 2× plain access; sharded single
delete orders of magnitude faster than plain delete (which shifts the
whole bitmap); bulk delete another order faster than single deletes.
"""

import time

import numpy as np

from repro.bench import format_table, write_report
from repro.bitmap import PlainBitmap, ShardedBitmap

BITS = 1 << 23
SHARD_BITS = 1 << 14
ACCESS_OPS = 20_000
DELETE_OPS = 300
BULK_OPS = 40_000


def per_element(fn, n_ops: int) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) / n_ops * 1e9  # ns/element


def test_tab2_bitmap_operator_latencies(benchmark):
    rng = np.random.default_rng(0)
    positions = rng.integers(0, BITS // 2, ACCESS_OPS).astype(np.int64)

    plain = PlainBitmap(BITS)
    sharded = ShardedBitmap(BITS, shard_bits=SHARD_BITS)

    def seq_set(bm):
        def run():
            for p in positions:
                bm.set(int(p))
        return run

    def seq_get(bm):
        def run():
            for p in positions:
                bm.get(int(p))
        return run

    set_plain = per_element(seq_set(plain), ACCESS_OPS)
    set_sharded = per_element(seq_set(sharded), ACCESS_OPS)
    get_plain = per_element(seq_get(plain), ACCESS_OPS)
    get_sharded = per_element(seq_get(sharded), ACCESS_OPS)

    del_positions = np.sort(rng.choice(BITS // 2, DELETE_OPS, replace=False))[::-1]

    def seq_delete(bm):
        def run():
            for p in del_positions:
                bm.delete(int(p))
        return run

    del_plain = per_element(seq_delete(PlainBitmap(BITS)), DELETE_OPS)
    del_sharded = per_element(seq_delete(ShardedBitmap(BITS, shard_bits=SHARD_BITS)), DELETE_OPS)

    bulk_positions = np.sort(rng.choice(BITS, BULK_OPS, replace=False))
    bulk_bm = ShardedBitmap(BITS, shard_bits=SHARD_BITS)
    start = time.perf_counter()
    bulk_bm.bulk_delete(bulk_positions)
    bulk_sharded = (time.perf_counter() - start) / BULK_OPS * 1e9

    rows = [
        ["Sequential Set", f"{set_plain:.1f} ns", f"{set_sharded:.1f} ns"],
        ["Sequential Get", f"{get_plain:.1f} ns", f"{get_sharded:.1f} ns"],
        ["Seq. Delete", f"{del_plain:.1f} ns", f"{del_sharded:.1f} ns"],
        ["Seq. Bulk Delete", "-", f"{bulk_sharded:.1f} ns"],
    ]
    report = format_table(
        ["operation (per element)", "Bitmap", "Sharded bitmap"],
        rows,
        title=f"Table 2: operator latencies, {BITS}-bit bitmap, shard 2^14",
    )
    write_report("tab2_bitmap_ops", report)

    # shape assertions (the paper's qualitative statements)
    assert set_sharded < set_plain * 8, "sharded set should stay within a small factor"
    assert get_sharded < get_plain * 8
    assert del_sharded < del_plain / 10, "sharded delete should be orders faster"
    assert bulk_sharded < del_sharded, "bulk delete amortizes further"

    benchmark.pedantic(
        lambda: ShardedBitmap(BITS, shard_bits=SHARD_BITS).bulk_delete(bulk_positions[:5000]),
        rounds=1,
        iterations=1,
    )
