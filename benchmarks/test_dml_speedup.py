"""DML path — serial vs morsel-parallel UPDATE/DELETE and condense.

Times the three parallel DML paths this repo ships: the UPDATE and
DELETE predicate scans (morsel-parallel on the session's execution
context) and the shard-local parallel condense of §4.2.4.  Each sample
rebuilds its state (DML consumes its input), timed via
:func:`repro.bench.time_dml_serial_vs_parallel`.

Two properties are asserted:

* parallel DML leaves bit-identical table/bitmap state, and
* parallel execution does not regress vs serial beyond scheduling noise
  (the speedup itself depends on the core count of the machine — on a
  single-core runner the best possible outcome is ≈1×, since threads
  only interleave the GIL-releasing numpy kernels).

Set ``BENCH_QUICK=1`` to shrink the datasets (the CI smoke job).
"""

import os

import numpy as np

from repro.bench import format_table, time_dml_serial_vs_parallel, write_report
from repro.bitmap import ShardedBitmap, ShardTaskPool
from repro.sql.session import SQLSession
from repro.storage import Catalog, Table

QUICK = bool(int(os.environ.get("BENCH_QUICK", "0")))
NUM_ROWS = 200_000 if QUICK else 1_000_000
BITMAP_BITS = (1 << 20) if QUICK else (1 << 23)
#: The acceptance target worker count; threads only pay off to the
#: extent the machine has cores, but 8 must at least not regress.
PARALLELISM = 8
REPEATS = 2 if QUICK else 7
#: Parallel dispatch on an oversubscribed or noisy machine costs a
#: little; the assertion only guards against pathological overhead
#: (many-times-slower), not scheduling noise.
REGRESSION_SLACK = 1.5
ABS_SLACK = 0.1

UPDATE_SQL = (
    "UPDATE events SET val = val * 1.01 "
    "WHERE val * score + grp / 2000.0 > 0.85 AND grp % 5 <> 2"
)
DELETE_SQL = "DELETE FROM events WHERE val * score > 0.9"


def fresh_session(parallelism: int) -> SQLSession:
    rng = np.random.default_rng(17)
    table = Table.from_arrays(
        "events",
        {
            "eid": np.arange(NUM_ROWS, dtype=np.int64),
            "grp": rng.integers(0, 1000, NUM_ROWS).astype(np.int64),
            "val": rng.random(NUM_ROWS),
            "score": rng.random(NUM_ROWS),
        },
    )
    catalog = Catalog()
    catalog.register(table)
    return SQLSession(catalog, parallelism=parallelism)


def run_statement(sql):
    def setup(parallelism: int) -> SQLSession:
        return fresh_session(parallelism)

    def run(session: SQLSession) -> None:
        session.execute(sql)

    def teardown(session: SQLSession) -> None:
        session.close()

    return setup, run, teardown


def condense_workload():
    rng = np.random.default_rng(23)
    base_bits = rng.random(BITMAP_BITS) < 0.4
    deletes = np.sort(
        rng.choice(BITMAP_BITS, size=BITMAP_BITS // 16, replace=False)
    ).astype(np.int64)

    def setup(parallelism: int):
        bm = ShardedBitmap.from_bool_array(base_bits)
        bm.bulk_delete(deletes)
        pool = ShardTaskPool(max_workers=parallelism) if parallelism > 1 else None
        return bm, pool

    def run(state) -> None:
        bm, pool = state
        bm.condense(executor=pool)

    def teardown(state) -> None:
        _, pool = state
        if pool is not None:
            pool.close()

    return setup, run, teardown


def assert_state_identical() -> None:
    """Parallel DML + condense leave bit-identical state."""
    serial = fresh_session(1)
    parallel = fresh_session(PARALLELISM)
    for sql in (UPDATE_SQL, DELETE_SQL):
        assert serial.execute(sql) == parallel.execute(sql), sql
    st, pt = serial.catalog.table("events"), parallel.catalog.table("events")
    assert st.num_rows == pt.num_rows
    for name in st.schema.names:
        np.testing.assert_array_equal(st.column(name), pt.column(name), err_msg=name)
    parallel.close()

    setup, _, teardown = condense_workload()
    a, _ = setup(1)
    b, pool = setup(PARALLELISM)
    a.condense()
    b.condense(executor=pool)
    teardown((b, pool))
    np.testing.assert_array_equal(a._words, b._words)
    np.testing.assert_array_equal(a.to_bool_array(), b.to_bool_array())


def test_dml_speedup(benchmark):
    suite = [
        ("UPDATE predicate scan", *run_statement(UPDATE_SQL)),
        ("DELETE predicate scan", *run_statement(DELETE_SQL)),
        ("bitmap condense (§4.2.4)", *condense_workload()),
    ]
    rows = []
    for name, setup, run, teardown in suite:
        serial_s, parallel_s = time_dml_serial_vs_parallel(
            setup, run, parallelism=PARALLELISM, repeats=REPEATS, teardown=teardown
        )
        rows.append([name, serial_s, parallel_s, serial_s / max(parallel_s, 1e-9)])

    assert_state_identical()

    report = format_table(
        ["workload", "serial [s]", "parallel [s]", "speedup"],
        rows,
        title=(
            f"Morsel-parallel DML + parallel condense "
            f"(parallelism={PARALLELISM}, cpus={os.cpu_count()}, "
            f"rows={NUM_ROWS}, bits={BITMAP_BITS})"
        ),
    )
    if (os.cpu_count() or 1) < PARALLELISM:
        report += (
            f"\nnote: {os.cpu_count()} CPU(s) < {PARALLELISM} workers -> "
            "threads only interleave GIL-releasing kernels; ~1x (parity) "
            "is the attainable ceiling here, speedup needs cores."
        )
    write_report("dml_speedup", report)

    for name, serial_s, parallel_s, _ in rows:
        assert parallel_s <= serial_s * REGRESSION_SLACK + ABS_SLACK, (
            f"{name}: parallel {parallel_s:.4f}s regressed vs serial {serial_s:.4f}s"
        )

    setup, run, teardown = suite[0][1], suite[0][2], suite[0][3]

    def once():
        state = setup(1)
        run(state)
        teardown(state)

    benchmark.pedantic(once, rounds=1, iterations=1)
