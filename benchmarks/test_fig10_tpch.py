"""Figure 10 — TPC-H query and update performance (paper §6.3).

Paper setup: SF1000, lineitem order manipulated to 0 %/5 %/10 %
exceptions on the sorting constraint over ``l_orderkey``; queries Q3,
Q7, Q12 compared across: no constraint, PatchIndex at 10 %/5 %/0 %,
PatchIndex at 0 % with zero-branch pruning, and a JoinIndex; plus the
insert (RF1) and delete (RF2) refresh sets.  Laptop scale: SF 0.02.

Expected shape: PatchIndex benefit grows as e → 0; with ZBP at e = 0
runtimes approach (paper: slightly beat) the JoinIndex; Q12's small
join gains least from the rewrite; updates cost PatchIndex and
JoinIndex only a modest overhead over the reference.
"""

import pytest

from repro.bench import format_table, time_fn, write_report
from repro.core import NearlySortedColumn, PatchIndexManager
from repro.materialization import JoinIndex
from repro.plan import Optimizer, execute_plan
from repro.storage import Catalog
from repro.workloads import generate_tpch, perturb_order
from repro.workloads.tpch_queries import (
    q3_joinindex,
    q3_plan,
    q7_joinindex,
    q7_plan,
    q12_joinindex,
    q12_plan,
)

SCALE = 0.05
QUERIES = {
    "Q3": (q3_plan, q3_joinindex),
    "Q7": (q7_plan, q7_joinindex),
    "Q12": (q12_plan, q12_joinindex),
}


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(scale=SCALE, seed=21)


def make_env(tpch, fraction: float):
    """Catalog + PatchIndex over a perturbed lineitem copy."""
    catalog = Catalog()
    tpch.register(catalog)
    lineitem = perturb_order(tpch.lineitem, fraction, seed=31)
    catalog.register(lineitem)
    catalog.add_structure("sortkey", "orders", "o_orderkey", object())
    mgr = PatchIndexManager(catalog)
    mgr.create(lineitem, "l_orderkey", NearlySortedColumn())
    return catalog, mgr, lineitem


def query_time(plan_fn, catalog, mgr=None, zbp=False) -> float:
    plan = plan_fn()
    if mgr is not None:
        plan = Optimizer(
            catalog, mgr, zero_branch_pruning=zbp, use_cost_model=False
        ).optimize(plan)
    return time_fn(lambda: execute_plan(plan, catalog), repeats=3)


def test_fig10_tpch_queries(benchmark, tpch):
    reference_catalog = Catalog()
    tpch.register(reference_catalog)
    ji = JoinIndex(tpch.lineitem, "l_orderkey", tpch.orders, "o_orderkey",
                   auto_maintain=False)
    envs = {e: make_env(tpch, e) for e in (0.10, 0.05, 0.0)}

    rows = []
    shape = {}
    for name, (plan_fn, ji_fn) in QUERIES.items():
        ref = query_time(plan_fn, reference_catalog)
        pi10 = query_time(plan_fn, envs[0.10][0], envs[0.10][1])
        pi5 = query_time(plan_fn, envs[0.05][0], envs[0.05][1])
        pi0 = query_time(plan_fn, envs[0.0][0], envs[0.0][1])
        pi0_zbp = query_time(plan_fn, envs[0.0][0], envs[0.0][1], zbp=True)
        t_ji = time_fn(lambda: ji_fn(ji, reference_catalog), repeats=2)
        rows.append([name, ref, pi10, pi5, pi0, pi0_zbp, t_ji])
        shape[name] = dict(ref=ref, pi10=pi10, pi5=pi5, pi0=pi0, zbp=pi0_zbp, ji=t_ji)

    report = format_table(
        ["query", "w/o constraint", "PI_10%", "PI_5%", "PI_0%", "PI_0%_ZBP", "JoinIndex"],
        rows,
        title=f"Figure 10 (TPC-H SF {SCALE}, runtimes in seconds)",
    )
    write_report("fig10_tpch_queries", report)

    for name, s in shape.items():
        # benefit grows with decreasing exception rate
        assert s["pi0"] <= s["pi10"] * 1.5
        # ZBP removes the cloned-subtree overhead
        assert s["zbp"] <= s["pi0"] * 1.25
    # the big join (Q3) should profit from ZBP vs the plain reference
    assert shape["Q3"]["zbp"] < shape["Q3"]["ref"]

    benchmark.pedantic(
        lambda: execute_plan(q12_plan(), reference_catalog), rounds=1, iterations=1
    )


def test_fig10_tpch_updates(benchmark, tpch):
    """RF1 insert / RF2 delete sets under each structure."""
    rows = []

    def insert_run(catalog_setup):
        orders_t, lineitem_t, cleanup = catalog_setup()
        o_cols, l_cols = tpch.refresh_insert_payload(fraction=0.005, seed=41)

        def work():
            orders_t.insert(o_cols)
            lineitem_t.insert(l_cols)

        t = time_fn(work, repeats=1, warmup=0)
        cleanup()
        return t

    def delete_run(catalog_setup):
        orders_t, lineitem_t, cleanup = catalog_setup()
        order_rows, line_rows = tpch.refresh_delete_rowids(fraction=0.005, seed=42)

        def work():
            lineitem_t.delete(line_rows)
            orders_t.delete(order_rows)

        t = time_fn(work, repeats=1, warmup=0)
        cleanup()
        return t

    def reference_setup():
        data = generate_tpch(scale=SCALE, seed=21)
        return data.orders, data.lineitem, lambda: None

    def patchindex_setup():
        data = generate_tpch(scale=SCALE, seed=21)
        mgr = PatchIndexManager()
        mgr.create(data.lineitem, "l_orderkey", NearlySortedColumn())
        return data.orders, data.lineitem, lambda: mgr.drop("lineitem", "l_orderkey")

    def joinindex_setup():
        data = generate_tpch(scale=SCALE, seed=21)
        ji = JoinIndex(data.lineitem, "l_orderkey", data.orders, "o_orderkey")
        return data.orders, data.lineitem, ji.detach

    setups = {
        "w/o constraint": reference_setup,
        "PatchIndex": patchindex_setup,
        "JoinIndex": joinindex_setup,
    }
    timings = {}
    for label, setup in setups.items():
        t_ins = insert_run(setup)
        t_del = delete_run(setup)
        timings[label] = (t_ins, t_del)
        rows.append([label, t_ins, t_del])

    report = format_table(
        ["structure", "insert set [s]", "delete set [s]"],
        rows,
        title=f"Figure 10 (TPC-H refresh sets, SF {SCALE})",
    )
    write_report("fig10_tpch_updates", report)

    # updates stay lightweight: small multiple of the reference cost
    ref_ins, ref_del = timings["w/o constraint"]
    pi_ins, pi_del = timings["PatchIndex"]
    assert pi_ins < ref_ins * 20 + 0.5
    assert pi_del < ref_del * 20 + 0.5

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
