"""Figure 11 — qualitative comparison of the evaluated approaches.

The paper condenses §6 into radar scores (1-4, higher better) for
Creation effort, Memory overhead, Performance impact and Updatability
over {PatchIndex, Mat. view, SortKey, JoinIndex}.  We derive the same
scores from small live measurements of each dimension.

Expected shape (paper Figure 11): the PatchIndex is a balanced
compromise — near-top updatability and performance with moderate
creation and memory cost; matview/SortKey score poorly on updates,
SortKey best on memory, JoinIndex expensive to create.
"""

from repro.bench import format_table, qualitative_scores, time_fn, write_report
from repro.core import NearlySortedColumn, NearlyUniqueColumn, PatchIndexManager, PatchIndex
from repro.materialization import JoinIndex, MaterializedView, SortKey
from repro.plan import DistinctNode, Optimizer, ScanNode, execute_plan
from repro.storage import Catalog
from repro.workloads import generate_dataset, generate_tpch, insert_batch

NUM_ROWS = 150_000
E = 0.1


def measure() -> dict:
    """Creation/memory/query/update cost per approach."""
    out = {"creation": {}, "memory": {}, "query": {}, "update": {}}

    # --- PatchIndex (NUC distinct scenario) ---------------------------
    ds = generate_dataset(NUM_ROWS, E, "nuc", seed=8, name="q")
    catalog = Catalog()
    catalog.register(ds.table)
    mgr = PatchIndexManager(catalog)
    out["creation"]["PatchIndex"] = time_fn(
        lambda: PatchIndex(ds.table, "v", NearlyUniqueColumn()), repeats=1
    )
    handle = mgr.create(ds.table, "v", NearlyUniqueColumn())
    out["memory"]["PatchIndex"] = handle.memory_bytes()
    plan = Optimizer(catalog, mgr, use_cost_model=False).optimize(
        DistinctNode(ScanNode("q", ["v"]), ["v"])
    )
    out["query"]["PatchIndex"] = time_fn(lambda: execute_plan(plan, catalog), repeats=2)
    mgr.drop("q", "v")
    # updatability measured in the same scenario as the SortKey (NSC):
    # the sorted-run extension of §5.1 vs the physical re-sort
    ds_upd = generate_dataset(NUM_ROWS, E, "nsc", seed=8, name="qu")
    mgr_upd = PatchIndexManager()
    mgr_upd.create(ds_upd.table, "v", NearlySortedColumn())
    out["update"]["PatchIndex"] = time_fn(
        lambda: ds_upd.table.insert(
            insert_batch(ds_upd, 100, 0.2, seed=ds_upd.table.num_rows)
        ),
        repeats=1, warmup=0,
    )
    mgr_upd.drop("qu", "v")

    # --- Materialized view --------------------------------------------
    ds_mv = generate_dataset(NUM_ROWS, E, "nuc", seed=8, name="m")
    out["creation"]["Mat. view"] = time_fn(
        lambda: MaterializedView(ds_mv.table, "v", refresh_policy="manual"), repeats=1
    )
    mv = MaterializedView(ds_mv.table, "v")  # immediate refresh
    out["memory"]["Mat. view"] = mv.memory_bytes()
    out["query"]["Mat. view"] = time_fn(lambda: mv.scan_values(), repeats=2)
    out["update"]["Mat. view"] = time_fn(
        lambda: ds_mv.table.insert(insert_batch(ds_mv, 100, 0.2, seed=ds_mv.table.num_rows)),
        repeats=1, warmup=0,
    )
    mv.detach()

    # --- SortKey (NSC sort scenario) -----------------------------------
    ds_sk = generate_dataset(NUM_ROWS, E, "nsc", seed=8, name="s")
    out["creation"]["SortKey"] = time_fn(
        lambda: SortKey(ds_sk.table, "v", refresh_policy="manual"), repeats=1
    )
    sk = SortKey(ds_sk.table, "v")  # immediate re-sort
    out["memory"]["SortKey"] = max(sk.memory_bytes(), 1)  # 0 extra bytes
    out["query"]["SortKey"] = time_fn(lambda: sk.scan_sorted(["v"]), repeats=2)
    out["update"]["SortKey"] = time_fn(
        lambda: ds_sk.table.insert(insert_batch(ds_sk, 100, 0.2, seed=ds_sk.table.num_rows)),
        repeats=1, warmup=0,
    )
    sk.detach()

    # --- JoinIndex (TPC-H join scenario) -------------------------------
    data = generate_tpch(scale=0.01, seed=9)
    out["creation"]["JoinIndex"] = time_fn(
        lambda: JoinIndex(data.lineitem, "l_orderkey", data.orders, "o_orderkey",
                          auto_maintain=False),
        repeats=1,
    )
    ji = JoinIndex(data.lineitem, "l_orderkey", data.orders, "o_orderkey")
    out["memory"]["JoinIndex"] = ji.memory_bytes()
    out["query"]["JoinIndex"] = time_fn(
        lambda: ji.join(["l_extendedprice"], ["o_orderdate"]), repeats=2
    )
    o_cols, l_cols = data.refresh_insert_payload(fraction=0.005, seed=10)
    out["update"]["JoinIndex"] = time_fn(
        lambda: data.lineitem.insert(l_cols), repeats=1, warmup=0
    )
    ji.detach()
    return out


def test_fig11_qualitative_comparison(benchmark):
    m = measure()
    scores = qualitative_scores(m["creation"], m["memory"], m["query"], m["update"])
    rows = [
        [name, s["C"], s["M"], s["P"], s["U"]]
        for name, s in sorted(scores.items())
    ]
    report = format_table(
        ["approach", "C", "M", "P", "U"],
        rows,
        title="Figure 11 (derived scores, 4 = best)",
    )
    detail = format_table(
        ["approach", "creation [s]", "memory [B]", "query [s]", "update [s]"],
        [
            [name, m["creation"][name], m["memory"][name], m["query"][name], m["update"][name]]
            for name in sorted(m["creation"])
        ],
        title="Underlying measurements",
    )
    write_report("fig11_qualitative", report + "\n\n" + detail)

    # the paper's headline qualitative claims that are robust in this
    # substrate (creation-effort orderings shift with numpy constants —
    # see EXPERIMENTS.md)
    assert scores["PatchIndex"]["U"] >= scores["Mat. view"]["U"]
    assert scores["PatchIndex"]["U"] >= scores["SortKey"]["U"]
    assert scores["SortKey"]["M"] == max(s["M"] for s in scores.values())
    assert scores["PatchIndex"]["M"] > scores["Mat. view"]["M"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
