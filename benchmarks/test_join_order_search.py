"""Join-order search — DP vs greedy vs parser order on TPC-H joins.

Runs multi-join TPC-H queries phrased with a deliberately bad parser
order (fact table first) under the three ``join_order_search``
strategies and reports, per query and strategy: planning time, the
modeled plan cost, and execution wall time.

Two properties are asserted:

* all three strategies return bit-identical relations (reordering is
  never allowed to change results), and
* the DP order's modeled cost is never above the parser order's, and
  strictly below it on at least one query (the search earns its keep).

Set ``BENCH_QUICK=1`` to shrink the dataset (the CI smoke job).
"""

import os

import numpy as np

from repro.bench import format_table, time_fn, write_report
from repro.core import PatchIndexManager
from repro.plan.stats import analyze_table
from repro.sql.session import SQLSession
from repro.storage import Catalog
from repro.workloads import generate_tpch

QUICK = bool(int(os.environ.get("BENCH_QUICK", "0")))
TPCH_SCALE = 0.01 if QUICK else 0.05
REPEATS = 2 if QUICK else 3
STRATEGIES = ["off", "greedy", "dp"]

QUERIES = [
    (
        "Q3 core, fact first",
        "SELECT c_custkey, o_orderdate, l_extendedprice FROM lineitem "
        "JOIN orders ON l_orderkey = o_orderkey "
        "JOIN customer ON o_custkey = c_custkey",
    ),
    (
        "Q10 core, fact first",
        "SELECT n_name, c_custkey, l_extendedprice FROM lineitem "
        "JOIN orders ON l_orderkey = o_orderkey "
        "JOIN customer ON o_custkey = c_custkey "
        "JOIN nation ON c_nationkey = n_nationkey",
    ),
    (
        "Q5 core, 5-way",
        "SELECT n_name, l_extendedprice FROM lineitem "
        "JOIN orders ON l_orderkey = o_orderkey "
        "JOIN customer ON o_custkey = c_custkey "
        "JOIN supplier ON l_suppkey = s_suppkey "
        "JOIN nation ON s_nationkey = n_nationkey",
    ),
]


def tpch_catalog() -> Catalog:
    catalog = Catalog()
    generate_tpch(scale=TPCH_SCALE, seed=13).register(catalog)
    for name in ("customer", "orders", "lineitem", "supplier", "nation"):
        analyze_table(catalog, name)
    return catalog


def plan_cost(session: SQLSession, sql: str) -> float:
    """Modeled cost of the plan the session would run for ``sql``."""
    from repro.sql.parser import parse_statement

    plan = parse_statement(sql).plan
    plan, _ = session.optimizer.optimize_staged(plan)
    return session.optimizer.cost_model.cost(plan)


def run_strategies(catalog: Catalog):
    rows, results = [], {}
    with SQLSession(catalog, index_manager=PatchIndexManager(catalog)) as session:
        for qname, sql in QUERIES:
            for strategy in STRATEGIES:
                session.execute(f"SET join_order_search = {strategy}")
                plan_s = time_fn(
                    lambda: session.prepare(sql), repeats=REPEATS, warmup=0
                )
                exec_s = time_fn(lambda: session.execute(sql), repeats=REPEATS)
                cost = plan_cost(session, sql)
                rows.append([qname, strategy, plan_s, cost, exec_s])
                results[(qname, strategy)] = session.execute(sql)
    return rows, results


def assert_results_identical(results) -> None:
    for qname, _ in QUERIES:
        reference = results[(qname, "off")]
        for strategy in STRATEGIES[1:]:
            got = results[(qname, strategy)]
            assert got.num_rows == reference.num_rows, qname
            for name in reference.column_names:
                np.testing.assert_array_equal(
                    got.column(name),
                    reference.column(name),
                    err_msg=f"{qname} / {strategy} / {name}",
                )


def test_join_order(benchmark):
    catalog = tpch_catalog()
    rows, results = run_strategies(catalog)
    assert_results_identical(results)

    costs = {(qname, strategy): cost for qname, strategy, _, cost, _ in rows}
    for qname, _ in QUERIES:
        assert costs[(qname, "dp")] <= costs[(qname, "off")], qname
    assert any(
        costs[(qname, "dp")] < costs[(qname, "off")] for qname, _ in QUERIES
    ), "DP never beat the parser order on any query"

    lineitem_rows = catalog.table("lineitem").num_rows
    report = format_table(
        ["query", "strategy", "plan [s]", "modeled cost", "exec [s]"],
        rows,
        title=(
            f"Join-order search: DP vs greedy vs parser order "
            f"(scale={TPCH_SCALE}, lineitem={lineitem_rows})"
        ),
    )
    write_report("join_order", report)

    with SQLSession(catalog, index_manager=PatchIndexManager(catalog)) as session:
        benchmark.pedantic(
            lambda: session.execute(QUERIES[0][1]), rounds=1, iterations=1
        )
