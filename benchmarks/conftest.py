"""Shared benchmark configuration."""

import pytest


def pytest_configure(config):
    # Benchmarks print the regenerated tables/figures; keep output visible.
    config.option.verbose = max(config.option.verbose, 0)
