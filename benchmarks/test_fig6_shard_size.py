"""Figure 6 — sharded bitmap bulk delete runtime and memory overhead
depending on the shard size.

Paper setup: delete 1 M random elements from a 100 M-bit sharded bitmap
for shard sizes 2^8..2^19, comparing the parallel and the parallel &
vectorized implementations, plus the metadata overhead 64/shard_size.
We run the same sweep at laptop scale (2^22-bit bitmap, 40 K deletes).

Expected shape: a U-curve with an interior runtime minimum (around
2^14 in the paper) and monotonically decreasing memory overhead.
"""

import numpy as np
import pytest

from repro.bench import format_table, time_fn, write_report
from repro.bitmap import ParallelBulkDeleter, ShardedBitmap
from repro.bitmap import kernels

BITMAP_BITS = 1 << 22
NUM_DELETES = 40_000
SHARD_SIZES = [1 << s for s in range(8, 20)]


def run_bulk_delete(
    shard_bits: int, kernel, executor, num_deletes: int = NUM_DELETES
) -> float:
    """Seconds for a bulk delete, normalized to NUM_DELETES deletions.

    The non-vectorized (word-loop) kernel is measured on a subset of the
    deletions and scaled — per-delete cost dominates, and the pure-Python
    loop would otherwise take minutes at large shard sizes.
    """
    rng = np.random.default_rng(0)
    positions = np.sort(rng.choice(BITMAP_BITS, size=num_deletes, replace=False))

    def once():
        bm = ShardedBitmap(BITMAP_BITS, shard_bits=shard_bits)
        bm.set_many(positions[::2])
        bm.bulk_delete(positions, kernel=kernel, executor=executor)

    return time_fn(once, repeats=1, warmup=0) * (NUM_DELETES / num_deletes)


def test_fig6_shard_size_sweep(benchmark):
    rows = []
    with ParallelBulkDeleter() as executor:
        for shard_bits in SHARD_SIZES:
            scalar_subset = NUM_DELETES if shard_bits <= (1 << 12) else 4_000
            t_scalar = run_bulk_delete(
                shard_bits, kernels.shift_down_scalar, executor, scalar_subset
            )
            t_vector = run_bulk_delete(shard_bits, kernels.shift_down_vectorized, executor)
            overhead = 64 / shard_bits * 100
            rows.append(
                [f"2^{shard_bits.bit_length() - 1}", t_scalar, t_vector, f"{overhead:.4f}%"]
            )
    report = format_table(
        ["shard_size", "parallel [s]", "parallel+vect [s]", "mem overhead"],
        rows,
        title=(
            f"Figure 6: bulk delete of {NUM_DELETES} elements from a "
            f"{BITMAP_BITS}-bit sharded bitmap"
        ),
    )
    write_report("fig6_shard_size", report)

    vect_times = [r[2] for r in rows]
    # U-shape: the minimum is strictly interior
    best = int(np.argmin(vect_times))
    assert 0 < best < len(vect_times) - 1, "expected an interior runtime minimum"
    # vectorization helps for large shards (more words shifted per delete)
    assert rows[-1][2] < rows[-1][1], "vectorized kernel should win at large shards"
    # memory overhead decreases monotonically
    overheads = [64 / s for s in SHARD_SIZES]
    assert all(a > b for a, b in zip(overheads, overheads[1:]))

    # headline number for the pytest-benchmark table: the paper's shard size
    benchmark.pedantic(
        lambda: run_bulk_delete(1 << 14, kernels.shift_down_vectorized, None),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("shard_bits", [1 << 14])
def test_fig6_benchmark_default_shard(benchmark, shard_bits):
    """pytest-benchmark hook: the paper's chosen shard size (2^14)."""
    rng = np.random.default_rng(1)
    positions = np.sort(rng.choice(BITMAP_BITS, size=5_000, replace=False))

    def once():
        bm = ShardedBitmap(BITMAP_BITS, shard_bits=shard_bits)
        bm.bulk_delete(positions)

    benchmark.pedantic(once, rounds=3, iterations=1)
