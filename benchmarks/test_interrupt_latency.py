"""Time-to-interrupt of a running scan (PR 8 acceptance).

Measures how long a cooperative cancel takes to unwind a full-table
aggregation that is already executing: a worker thread runs the query
under a caller-held :class:`CancellationToken`, the main thread fires
``cancel()`` mid-scan, and the latency is the gap between the cancel
and the worker observing :class:`QueryCancelledError`.  Checkpoints sit
between morsels, so p99 must stay under one morsel's work (with a 50 ms
scheduling floor).  A second pass measures deadline overshoot: how far
past ``timeout_ms`` a timed-out query actually returns.

Set ``BENCH_QUICK=1`` to shrink the dataset (the CI smoke job).
"""

import os
import threading
import time

import numpy as np

from repro.bench import format_table, write_report
from repro.engine import (
    CancellationToken,
    QueryCancelledError,
    QueryTimeoutError,
    cancellation_scope,
)
from repro.sql import SQLSession
from repro.storage import Catalog, Table

QUICK = bool(int(os.environ.get("BENCH_QUICK", "0")))
N_ROWS = 200_000 if QUICK else 1_500_000
ITERS = 10 if QUICK else 30
MORSEL_ROWS = 8_192
SQL = "SELECT SUM(val) AS s FROM events WHERE val >= 0"


def make_session() -> SQLSession:
    rng = np.random.default_rng(7)
    catalog = Catalog()
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(N_ROWS, dtype=np.int64),
                "grp": rng.integers(0, 64, N_ROWS).astype(np.int64),
                "val": rng.random(N_ROWS),
            },
        )
    )
    return SQLSession(catalog, parallelism=2, morsel_rows=MORSEL_ROWS)


def percentile(samples, q):
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def test_interrupt_latency():
    session = make_session()
    try:
        # warm the pool, then take the uninterrupted runtime as the
        # yardstick for one morsel's work
        session.execute(SQL)
        start = time.perf_counter()
        session.execute(SQL)
        runtime = time.perf_counter() - start
        num_morsels = max(1, N_ROWS // MORSEL_ROWS)
        per_morsel = runtime / num_morsels

        # --- cancel latency -------------------------------------------
        cancel_delay = 0.25 * runtime
        latencies = []
        for _ in range(ITERS):
            token = CancellationToken()
            caught = {}

            def work():
                try:
                    with cancellation_scope(token):
                        session.execute(SQL)
                    caught["t"] = None  # finished before the cancel
                except QueryCancelledError:
                    caught["t"] = time.perf_counter()

            worker = threading.Thread(target=work)
            worker.start()
            time.sleep(cancel_delay)
            cancelled_at = time.perf_counter()
            token.cancel()
            worker.join()
            if caught["t"] is not None:
                latencies.append(caught["t"] - cancelled_at)
        assert len(latencies) >= ITERS // 2, (
            f"cancel landed mid-query only {len(latencies)}/{ITERS} times"
        )
        cancel_p50 = percentile(latencies, 50)
        cancel_p99 = percentile(latencies, 99)

        # acceptance: p99 under one morsel's work, 50 ms floor
        bound = max(0.050, per_morsel)
        assert cancel_p99 <= bound, (
            f"cancel p99 {cancel_p99 * 1e3:.2f} ms exceeds "
            f"{bound * 1e3:.2f} ms (morsel {per_morsel * 1e3:.3f} ms)"
        )

        # --- deadline overshoot ---------------------------------------
        timeout_ms = max(1, int(runtime * 1000 * 0.3))
        overshoots = []
        for _ in range(ITERS):
            token = CancellationToken(timeout_ms=timeout_ms)
            start = time.perf_counter()
            try:
                with cancellation_scope(token):
                    session.execute(SQL)
            except QueryTimeoutError:
                elapsed = time.perf_counter() - start
                overshoots.append(elapsed - timeout_ms / 1000.0)
        assert overshoots, "the deadline never fired mid-query"
        timeout_p50 = percentile(overshoots, 50)
        timeout_p99 = percentile(overshoots, 99)

        rows = [
            ["cancel latency", len(latencies), cancel_p50 * 1e3, cancel_p99 * 1e3],
            ["timeout overshoot", len(overshoots), timeout_p50 * 1e3, timeout_p99 * 1e3],
        ]
        report = format_table(
            ["measure", "samples", "p50 (ms)", "p99 (ms)"],
            rows,
            title=(
                f"Interrupt latency: {N_ROWS} rows, morsel_rows={MORSEL_ROWS}, "
                f"scan {runtime * 1e3:.1f} ms (~{per_morsel * 1e3:.3f} ms/morsel), "
                f"deadline {timeout_ms} ms"
            ),
        )
        write_report("interrupt_latency", report)
    finally:
        session.close()
