"""TCP front door vs. in-process AsyncSQLSession: QPS + tail latency.

The server adds framing, JSON serialization and a socket hop on top of
the shared async session.  This benchmark issues identical statement
logs through both paths at ``N_CLIENTS`` concurrent clients/
connections, reports QPS and client-observed p50/p99 latency, and
asserts:

* the final table state after the server run is bit-identical to the
  in-process run (the wire layer never changes SQL semantics), and
* the front door is not pathologically slower than in-process — the
  wire tax on this localhost setup must stay within a generous
  constant factor, not orders of magnitude.

Set ``BENCH_QUICK=1`` to shrink the dataset (the CI smoke job).
"""

import asyncio
import os
import time

import numpy as np

from repro.bench import format_table, write_report
from repro.server import AsyncSQLClient, SQLServer
from repro.sql import AsyncSQLSession
from repro.storage import Catalog, Table

QUICK = bool(int(os.environ.get("BENCH_QUICK", "0")))
NUM_ROWS = 120_000 if QUICK else 400_000
N_CLIENTS = 8
N_STATEMENTS = 64 if QUICK else 160
REPEATS = 2 if QUICK else 3
#: Localhost framing + JSON must cost a constant factor, not orders of
#: magnitude; the slack is generous because the statements here are
#: millisecond-scale, where fixed per-frame overhead is most visible.
WIRE_SLACK = 4.0
ABS_SLACK = 1.0

READS = [
    "SELECT grp, SUM(val) AS s FROM events GROUP BY grp ORDER BY grp",
    "SELECT COUNT(*) AS n FROM events WHERE val * score > 0.8",
    "SELECT SUM(val) AS s FROM events WHERE grp % 7 = 3",
    "SELECT eid FROM events WHERE val > 0.998 ORDER BY eid",
]
WRITES = [
    "UPDATE events SET val = val * 1.001 WHERE grp = {k}",
    "DELETE FROM events WHERE eid % 100000 = {k}",
]


def fresh_catalog() -> Catalog:
    rng = np.random.default_rng(71)
    catalog = Catalog()
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(NUM_ROWS, dtype=np.int64),
                "grp": rng.integers(0, 500, NUM_ROWS).astype(np.int64),
                "val": rng.random(NUM_ROWS),
                "score": rng.random(NUM_ROWS),
            },
        )
    )
    return catalog


def statement_log(write_every) -> list:
    """Deterministic statement mix; ``write_every=None`` is read-only.

    The write templates commute bitwise (multiplicative updates on
    disjoint grp-slices, value-matched deletes), so any commit order
    lands on the same final state — which makes cross-path state
    equality a valid check.
    """
    out = []
    for i in range(N_STATEMENTS):
        if write_every is not None and i % write_every == 0:
            out.append(WRITES[(i // write_every) % len(WRITES)].format(k=i % 17))
        else:
            out.append(READS[i % len(READS)])
    return out


def run_inprocess(statements):
    """The baseline: N async clients sharing one AsyncSQLSession."""
    catalog = fresh_catalog()
    latencies = []

    async def main():
        async with AsyncSQLSession(
            catalog, parallelism=1, max_inflight=N_CLIENTS
        ) as db:

            async def client(slice_):
                for sql in slice_:
                    t0 = time.perf_counter()
                    await db.execute(sql)
                    latencies.append(time.perf_counter() - t0)

            t0 = time.perf_counter()
            await asyncio.gather(
                *(client(statements[i::N_CLIENTS]) for i in range(N_CLIENTS))
            )
            return time.perf_counter() - t0

    elapsed = asyncio.run(main())
    return elapsed, latencies, catalog


def run_server(statements):
    """The same clients, through the TCP front door."""
    catalog = fresh_catalog()
    latencies = []

    async def main():
        async with SQLServer(
            catalog,
            parallelism=1,
            session_max_inflight=N_CLIENTS,
            max_connections=N_CLIENTS,
        ) as srv:

            async def client(slice_):
                async with await AsyncSQLClient.connect(
                    "127.0.0.1", srv.port
                ) as cli:
                    for sql in slice_:
                        t0 = time.perf_counter()
                        await cli.execute(sql)
                        latencies.append(time.perf_counter() - t0)

            t0 = time.perf_counter()
            await asyncio.gather(
                *(client(statements[i::N_CLIENTS]) for i in range(N_CLIENTS))
            )
            return time.perf_counter() - t0

    elapsed = asyncio.run(main())
    return elapsed, latencies, catalog


def assert_states_identical(a: Catalog, b: Catalog) -> None:
    ta, tb = a.table("events"), b.table("events")
    assert ta.num_rows == tb.num_rows
    for name in ta.schema.names:
        np.testing.assert_array_equal(ta.column(name), tb.column(name), err_msg=name)


def best_of(runner, statements):
    best = None
    for _ in range(REPEATS):
        elapsed, latencies, catalog = runner(statements)
        if best is None or elapsed < best[0]:
            best = (elapsed, latencies, catalog)
    return best


def test_server_throughput(benchmark):
    mixes = [
        ("read-only", statement_log(None)),
        ("read-heavy (~6% DML)", statement_log(16)),
    ]
    rows = []
    overheads = {}
    for name, statements in mixes:
        in_s, in_lat, in_catalog = best_of(run_inprocess, statements)
        srv_s, srv_lat, srv_catalog = best_of(run_server, statements)
        # the wire layer never changes SQL semantics
        assert_states_identical(srv_catalog, in_catalog)
        n = len(statements)
        overheads[name] = srv_s / max(in_s, 1e-9)
        for path, elapsed, lat in [
            ("in-process", in_s, in_lat),
            ("tcp server", srv_s, srv_lat),
        ]:
            p50, p99 = np.percentile(np.asarray(lat) * 1e3, [50, 99])
            rows.append(
                [name, path, elapsed, n / max(elapsed, 1e-9), p50, p99]
            )

    report = format_table(
        ["mix", "path", "total [s]", "QPS", "p50 [ms]", "p99 [ms]"],
        rows,
        title=(
            f"Server throughput: TCP front door vs in-process "
            f"(clients={N_CLIENTS}, rows={NUM_ROWS}, "
            f"statements={N_STATEMENTS})"
        ),
    )
    write_report("server_throughput", report)

    for name, factor in overheads.items():
        in_s = next(r[2] for r in rows if r[0] == name and r[1] == "in-process")
        srv_s = next(r[2] for r in rows if r[0] == name and r[1] == "tcp server")
        assert srv_s <= in_s * WIRE_SLACK + ABS_SLACK, (
            f"{name}: server {srv_s:.3f}s pathologically slower than "
            f"in-process {in_s:.3f}s ({factor:.1f}x)"
        )

    def once():
        run_server(statement_log(None)[: max(4, N_STATEMENTS // 8)])

    benchmark.pedantic(once, rounds=1, iterations=1)
