"""Unit and integration tests for the TPC-H subset and its queries."""

import numpy as np
import pytest

from repro.core import NearlySortedColumn, PatchIndexManager, discover_nsc_patches
from repro.materialization import JoinIndex
from repro.plan import Optimizer, execute_plan
from repro.storage import Catalog
from repro.workloads import generate_tpch, perturb_order
from repro.workloads.tpch_queries import (
    q3_joinindex,
    q3_plan,
    q7_joinindex,
    q7_plan,
    q12_joinindex,
    q12_plan,
)


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(scale=0.002, seed=11)


@pytest.fixture(scope="module")
def catalog(tpch):
    cat = Catalog()
    tpch.register(cat)
    cat.add_structure("sortkey", "orders", "o_orderkey", object())
    return cat


class TestGenerator:
    def test_table_sizes_scale(self, tpch):
        assert tpch.orders.num_rows == int(1_500_000 * 0.002)
        assert tpch.customer.num_rows == int(150_000 * 0.002)
        assert tpch.lineitem.num_rows >= tpch.orders.num_rows

    def test_orders_sorted_on_orderkey(self, tpch):
        keys = tpch.orders.column("o_orderkey")
        assert np.all(keys[1:] > keys[:-1])

    def test_lineitem_clustered_on_orderkey(self, tpch):
        keys = tpch.lineitem.column("l_orderkey")
        assert np.all(keys[1:] >= keys[:-1])

    def test_fk_integrity(self, tpch):
        assert np.isin(tpch.lineitem.column("l_orderkey"), tpch.orders.column("o_orderkey")).all()
        assert np.isin(tpch.orders.column("o_custkey"), tpch.customer.column("c_custkey")).all()
        assert np.isin(tpch.lineitem.column("l_suppkey"), tpch.supplier.column("s_suppkey")).all()

    def test_dates_in_range(self, tpch):
        d = tpch.orders.column("o_orderdate")
        assert d.min() >= 19920101 and d.max() <= 19981231

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate_tpch(scale=0)


class TestPerturbation:
    def test_zero_fraction_keeps_order(self, tpch):
        li = perturb_order(tpch.lineitem, 0.0)
        np.testing.assert_array_equal(li.column("l_orderkey"), tpch.lineitem.column("l_orderkey"))

    def test_fraction_introduces_exceptions(self, tpch):
        li = perturb_order(tpch.lineitem, 0.10, seed=3)
        patches, _ = discover_nsc_patches(li.column("l_orderkey"))
        rate = len(patches) / li.num_rows
        assert 0.04 <= rate <= 0.12

    def test_rows_stay_intact(self, tpch):
        li = perturb_order(tpch.lineitem, 0.5, seed=4)
        before = np.sort(tpch.lineitem.column("l_extendedprice"))
        after = np.sort(li.column("l_extendedprice"))
        np.testing.assert_array_equal(before, after)

    def test_invalid_fraction(self, tpch):
        with pytest.raises(ValueError):
            perturb_order(tpch.lineitem, 1.5)


class TestQueriesReference:
    def test_q3_shape(self, catalog):
        out = execute_plan(q3_plan(), catalog)
        assert out.num_rows <= 10
        assert "revenue" in out.column_names
        rev = out.column("revenue")
        assert np.all(rev[:-1] >= rev[1:])  # ordered by revenue desc

    def test_q7_shape(self, catalog):
        out = execute_plan(q7_plan(), catalog)
        assert set(out.column_names) == {"supp_nation", "cust_nation", "l_year", "revenue"}
        if out.num_rows:
            assert set(np.unique(out.column("supp_nation"))) <= {"FRANCE", "GERMANY"}

    def test_q12_shape(self, catalog):
        out = execute_plan(q12_plan(), catalog)
        assert out.num_rows <= 2
        assert set(out.column_names) == {"l_shipmode", "high_line_count", "low_line_count"}


class TestPatchIndexPlans:
    @pytest.fixture()
    def pi_env(self, tpch):
        cat = Catalog()
        tpch.register(cat)
        lineitem = perturb_order(tpch.lineitem, 0.05, seed=9)
        cat.register(lineitem)
        cat.add_structure("sortkey", "orders", "o_orderkey", object())
        mgr = PatchIndexManager(cat)
        mgr.create(lineitem, "l_orderkey", NearlySortedColumn())
        return cat, mgr

    @pytest.mark.parametrize("make_plan", [q3_plan, q7_plan, q12_plan])
    def test_rewritten_results_match_reference(self, pi_env, make_plan):
        cat, mgr = pi_env
        reference = execute_plan(make_plan(), cat)
        opt = Optimizer(cat, mgr, use_cost_model=False).optimize(make_plan())
        assert "Join[merge]" in opt.explain()
        result = execute_plan(opt, cat)
        assert result.num_rows == reference.num_rows
        for c in reference.column_names:
            ref = reference.column(c)
            got = result.column(c)
            if ref.dtype.kind == "f":
                np.testing.assert_allclose(np.sort(got), np.sort(ref), rtol=1e-9)
            else:
                np.testing.assert_array_equal(np.sort(got), np.sort(ref))

    def test_zbp_on_clean_data_matches(self, tpch):
        cat = Catalog()
        tpch.register(cat)
        cat.add_structure("sortkey", "orders", "o_orderkey", object())
        mgr = PatchIndexManager(cat)
        mgr.create(tpch.lineitem, "l_orderkey", NearlySortedColumn())
        assert mgr.get("lineitem", "l_orderkey").num_patches == 0
        reference = execute_plan(q3_plan(), cat)
        opt = Optimizer(
            cat, mgr, zero_branch_pruning=True, use_cost_model=False
        ).optimize(q3_plan())
        text = opt.explain()
        assert "use_patches" not in text
        result = execute_plan(opt, cat)
        assert result.num_rows == reference.num_rows
        mgr.drop("lineitem", "l_orderkey")


class TestJoinIndexVariants:
    @pytest.fixture()
    def ji(self, tpch, catalog):
        return JoinIndex(tpch.lineitem, "l_orderkey", tpch.orders, "o_orderkey",
                         auto_maintain=False)

    def test_q3_joinindex_matches(self, catalog, ji):
        reference = execute_plan(q3_plan(), catalog)
        result = q3_joinindex(ji, catalog)
        assert result.num_rows == reference.num_rows
        np.testing.assert_allclose(
            np.sort(result.column("revenue")), np.sort(reference.column("revenue")),
            rtol=1e-9,
        )

    def test_q7_joinindex_matches(self, catalog, ji):
        reference = execute_plan(q7_plan(), catalog)
        result = q7_joinindex(ji, catalog)
        assert result.num_rows == reference.num_rows
        if reference.num_rows:
            np.testing.assert_allclose(
                np.sort(result.column("revenue")), np.sort(reference.column("revenue")),
                rtol=1e-9,
            )

    def test_q12_joinindex_matches(self, catalog, ji):
        reference = execute_plan(q12_plan(), catalog)
        result = q12_joinindex(ji, catalog)
        assert result.num_rows == reference.num_rows
        if reference.num_rows:
            np.testing.assert_array_equal(
                np.sort(result.column("high_line_count")),
                np.sort(reference.column("high_line_count")),
            )


class TestRefreshSets:
    def test_rf1_insert_payload(self, tpch):
        orders_cols, line_cols = tpch.refresh_insert_payload(fraction=0.01)
        assert len(orders_cols["o_orderkey"]) == int(round(0.01 * tpch.orders.num_rows))
        assert np.isin(line_cols["l_orderkey"], orders_cols["o_orderkey"]).all()
        # new keys extend the sorted run
        assert orders_cols["o_orderkey"].min() > tpch.orders.column("o_orderkey").max()

    def test_rf2_delete_rowids(self, tpch):
        order_rows, line_rows = tpch.refresh_delete_rowids(fraction=0.01)
        victim_keys = tpch.orders.column("o_orderkey")[order_rows]
        line_keys = tpch.lineitem.column("l_orderkey")[line_rows]
        assert np.isin(line_keys, victim_keys).all()
