"""Unit tests for the microbenchmark and PublicBI generators."""

import numpy as np
import pytest

from repro.core import discover_nsc_patches, discover_nuc_patches
from repro.workloads import (
    PUBLICBI_SPECS,
    generate_dataset,
    generate_publicbi_dataset,
    insert_batch,
    modify_batch,
)
from repro.workloads.publicbi import profile_histogram


class TestNUCGenerator:
    def test_exception_rate_is_respected(self):
        ds = generate_dataset(10_000, 0.3, "nuc", seed=1)
        patches = discover_nuc_patches(ds.table.column("v"))
        measured = len(patches) / ds.num_rows
        assert measured == pytest.approx(0.3, abs=0.01)

    def test_zero_exception_rate(self):
        ds = generate_dataset(5_000, 0.0, "nuc")
        assert len(discover_nuc_patches(ds.table.column("v"))) == 0

    def test_full_exception_rate(self):
        ds = generate_dataset(5_000, 1.0, "nuc")
        patches = discover_nuc_patches(ds.table.column("v"))
        assert len(patches) == pytest.approx(5_000, abs=10)

    def test_key_column_unique(self):
        ds = generate_dataset(1_000, 0.5, "nuc")
        keys = ds.table.column("k")
        assert len(np.unique(keys)) == len(keys)

    def test_exception_values_pool_reused(self):
        ds = generate_dataset(10_000, 0.4, "nuc", num_exception_values=10)
        values = ds.table.column("v")
        uniq, counts = np.unique(values, return_counts=True)
        dup_values = uniq[counts > 1]
        assert len(dup_values) <= 10

    def test_deterministic_by_seed(self):
        a = generate_dataset(1_000, 0.2, "nuc", seed=7)
        b = generate_dataset(1_000, 0.2, "nuc", seed=7)
        np.testing.assert_array_equal(a.table.column("v"), b.table.column("v"))


class TestNSCGenerator:
    def test_exception_rate_close(self):
        ds = generate_dataset(10_000, 0.2, "nsc", seed=2)
        patches, _ = discover_nsc_patches(ds.table.column("v"))
        measured = len(patches) / ds.num_rows
        # a random replacement can accidentally fit the sorted run, so
        # the measured rate is at most the requested one
        assert measured <= 0.2 + 1e-9
        assert measured >= 0.15

    def test_zero_rate_is_sorted(self):
        ds = generate_dataset(5_000, 0.0, "nsc")
        v = ds.table.column("v")
        assert np.all(v[1:] >= v[:-1])

    def test_partitioned_output(self):
        ds = generate_dataset(8_000, 0.1, "nsc", num_partitions=8)
        assert ds.table.num_partitions == 8
        assert ds.table.num_rows == 8_000


class TestValidation:
    def test_bad_rate(self):
        with pytest.raises(ValueError):
            generate_dataset(100, 1.5, "nuc")

    def test_bad_constraint(self):
        with pytest.raises(ValueError):
            generate_dataset(100, 0.5, "fd")


class TestUpdateBatches:
    def test_insert_batch_fresh_keys(self):
        ds = generate_dataset(1_000, 0.5, "nuc")
        batch = insert_batch(ds, 50)
        assert not np.isin(batch["k"], ds.table.column("k")).any()
        assert len(batch["k"]) == 50

    def test_insert_batch_collisions(self):
        ds = generate_dataset(1_000, 0.5, "nuc")
        batch = insert_batch(ds, 100, collide_fraction=0.5)
        collisions = np.isin(batch["v"], ds.table.column("v")).sum()
        assert collisions >= 40

    def test_modify_batch_rowids_valid(self):
        ds = generate_dataset(1_000, 0.5, "nsc")
        batch = modify_batch(ds, 30)
        assert batch["rowids"].max() < 1_000
        assert len(batch["rowids"]) == 30


class TestPublicBI:
    @pytest.mark.parametrize("name", list(PUBLICBI_SPECS))
    def test_generated_match_rates_track_spec(self, name):
        spec = PUBLICBI_SPECS[name]
        table = generate_publicbi_dataset(spec, num_rows=4_000, seed=3)
        for i, target in enumerate(spec.match_rates):
            values = table.column(f"c{i:03d}")
            if spec.constraint == "nsc":
                patches, _ = discover_nsc_patches(values)
            else:
                patches = discover_nuc_patches(values)
            measured = 1.0 - len(patches) / len(values)
            assert measured == pytest.approx(target, abs=0.06)

    def test_histogram_bucketing(self):
        hist = profile_histogram([0.95, 0.91, 0.5, 0.1])
        assert hist["80-100%"] == 2
        assert hist["40-60%"] == 1
        assert hist["0-20%"] == 1
