"""Stage-1 join ordering: graph extraction, enumeration, equivalence.

The core contract under test: every enumerated join order of a region
returns row-level bit-identical results (per column, by name), and the
staged optimizer only adopts an order whose modeled cost is strictly
lower than the parser's.
"""

import numpy as np
import pytest

from repro.plan import (
    JoinGraph,
    JoinNode,
    Optimizer,
    ScanNode,
    build_join_tree,
    dp_order,
    enumerate_orders,
    execute_plan,
    extract_join_graph,
    greedy_order,
    reorder_joins,
)
from repro.plan.cost import CostModel
from repro.plan.joinorder import DP_MAX_RELATIONS, JoinEdge, JoinOrderDecision
from repro.plan.nodes import FilterNode
from repro.plan.stats import analyze_table
from repro.storage import Catalog, Table
from repro.workloads.tpch import generate_tpch


@pytest.fixture(scope="module")
def tpch():
    """Small TPC-H catalog with distinct-count statistics loaded."""
    data = generate_tpch(scale=0.002, seed=3)
    catalog = Catalog()
    data.register(catalog)
    for name in ("customer", "orders", "lineitem", "supplier", "nation"):
        analyze_table(catalog, name)
    return catalog


def scan(table):
    return ScanNode(table)


def q3_shape():
    """customer ⨝ orders ⨝ lineitem (the Q3 join core)."""
    return JoinNode(
        JoinNode(scan("customer"), scan("orders"), "c_custkey", "o_custkey"),
        scan("lineitem"),
        "o_orderkey",
        "l_orderkey",
    )


def q5_shape():
    """customer ⨝ orders ⨝ lineitem ⨝ supplier ⨝ nation (Q5 core)."""
    return JoinNode(
        JoinNode(
            JoinNode(q3_shape().left, scan("lineitem"), "o_orderkey", "l_orderkey"),
            scan("supplier"),
            "l_suppkey",
            "s_suppkey",
        ),
        scan("nation"),
        "s_nationkey",
        "n_nationkey",
    )


def q10_shape():
    """customer ⨝ orders ⨝ lineitem ⨝ nation (Q10 core)."""
    return JoinNode(
        JoinNode(q3_shape().left, scan("lineitem"), "o_orderkey", "l_orderkey"),
        scan("nation"),
        "c_nationkey",
        "n_nationkey",
    )


def assert_bit_identical(reference, result):
    assert result.num_rows == reference.num_rows
    assert set(result.column_names) == set(reference.column_names)
    for name in reference.column_names:
        np.testing.assert_array_equal(result.column(name), reference.column(name))


class TestGraphExtraction:
    def test_q3_graph(self, tpch):
        graph = extract_join_graph(q3_shape(), tpch)
        assert graph is not None
        assert graph.num_relations == 3
        assert len(graph.edges) == 2
        names = [graph.relation_name(r) for r in range(3)]
        assert names == ["customer", "orders", "lineitem"]
        assert graph.neighbors(1) == {0, 2}  # orders joins both ends

    def test_q5_graph_is_a_path(self, tpch):
        graph = extract_join_graph(q5_shape(), tpch)
        assert graph.num_relations == 5
        assert len(graph.edges) == 4
        degrees = sorted(len(graph.neighbors(r)) for r in range(5))
        assert degrees == [1, 1, 2, 2, 2]

    def test_q10_graph_branches_at_customer(self, tpch):
        graph = extract_join_graph(q10_shape(), tpch)
        assert graph.num_relations == 4
        # customer joins orders AND nation
        assert graph.neighbors(0) == {1, 3}

    def test_merge_join_root_is_opaque(self, tpch):
        plan = JoinNode(
            scan("customer"), scan("orders"), "c_custkey", "o_custkey",
            algorithm="merge",
        )
        assert extract_join_graph(plan, tpch) is None

    def test_pinned_build_side_is_opaque_leaf(self, tpch):
        inner = JoinNode(
            scan("customer"), scan("orders"), "c_custkey", "o_custkey",
            build_side="left",
        )
        plan = JoinNode(inner, scan("lineitem"), "o_orderkey", "l_orderkey")
        graph = extract_join_graph(plan, tpch)
        assert graph is not None
        # the pinned join survives as one opaque relation
        assert graph.num_relations == 2
        assert graph.relations[0] is inner

    def test_ambiguous_key_ownership_defers(self, tpch):
        # self-join: both sides expose the same column names, so the
        # outer key cannot be attributed to one base relation
        inner = JoinNode(scan("orders"), scan("orders"), "o_orderkey", "o_orderkey")
        plan = JoinNode(inner, scan("lineitem"), "o_orderkey", "l_orderkey")
        assert extract_join_graph(plan, tpch) is None


class TestEnumeration:
    def test_path_of_three_has_four_orders(self, tpch):
        graph = extract_join_graph(q3_shape(), tpch)
        orders = list(enumerate_orders(graph))
        assert sorted(orders) == [(0, 1, 2), (1, 0, 2), (1, 2, 0), (2, 1, 0)]

    def test_every_prefix_is_connected(self, tpch):
        graph = extract_join_graph(q5_shape(), tpch)
        orders = list(enumerate_orders(graph))
        assert len(orders) == 2 ** (graph.num_relations - 1)  # path graph
        for order in orders:
            placed = {order[0]}
            for rel in order[1:]:
                assert graph.neighbors(rel) & placed
                placed.add(rel)

    def test_disconnected_graph_yields_nothing(self):
        graph = JoinGraph(
            relations=[scan("a"), scan("b")], columns=[{"x"}, {"y"}], edges=[]
        )
        assert list(enumerate_orders(graph)) == []

    def test_cross_product_order_rejected(self, tpch):
        graph = extract_join_graph(q3_shape(), tpch)
        with pytest.raises(ValueError, match="cross product"):
            build_join_tree(graph, (0, 2, 1))  # customer-lineitem: no edge

    def test_invalid_order_rejected(self, tpch):
        graph = extract_join_graph(q3_shape(), tpch)
        with pytest.raises(ValueError):
            build_join_tree(graph, (0, 0, 1))
        with pytest.raises(ValueError):
            build_join_tree(graph, ())


class TestEquivalence:
    """Every enumerated order returns bit-identical rows."""

    @pytest.mark.parametrize("shape", [q3_shape, q5_shape, q10_shape])
    def test_tpch_shapes(self, tpch, shape):
        plan = shape()
        reference = execute_plan(plan, tpch)
        graph = extract_join_graph(plan, tpch)
        orders = list(enumerate_orders(graph))
        assert len(orders) >= 4
        for order in orders:
            result = execute_plan(build_join_tree(graph, order), tpch)
            assert_bit_identical(reference, result)

    def test_cyclic_graph_extra_edges_become_filters(self):
        # triangle: extra edge of the cycle must survive as an equality
        # filter so every order keeps the original predicate set
        rng = np.random.default_rng(11)
        catalog = Catalog()
        catalog.register(Table.from_arrays("ta", {
            "ak": np.arange(40, dtype=np.int64),
            "ax": np.arange(40, dtype=np.int64) % 10,
        }))
        catalog.register(Table.from_arrays("tb", {
            "bk": rng.permutation(40).astype(np.int64),
            "bx": rng.integers(0, 10, 40).astype(np.int64),
        }))
        catalog.register(Table.from_arrays("tc", {
            "ck": rng.integers(0, 40, 200).astype(np.int64),
            "cx": rng.integers(0, 10, 200).astype(np.int64),
        }))
        graph = JoinGraph(
            relations=[scan("ta"), scan("tb"), scan("tc")],
            columns=[{"ak", "ax"}, {"bk", "bx"}, {"ck", "cx"}],
            edges=[
                JoinEdge(0, "ak", 1, "bk"),
                JoinEdge(1, "bk", 2, "ck"),
                JoinEdge(0, "ax", 2, "cx"),  # cycle-closing edge
            ],
        )
        results = []
        for order in enumerate_orders(graph):
            tree = build_join_tree(graph, order)
            kinds = {type(n).__name__ for n in _walk(tree)}
            assert "FilterNode" in kinds  # third edge kept as filter
            rel = execute_plan(tree, catalog)
            key = np.lexsort([rel.column(c) for c in sorted(rel.column_names)])
            results.append({c: rel.column(c)[key] for c in rel.column_names})
        assert len(results) >= 4
        for other in results[1:]:
            assert set(other) == set(results[0])
            for name, values in results[0].items():
                np.testing.assert_array_equal(other[name], values)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_fk_joins(self, seed):
        # random 3-5 relation FK chains: fact table strictly biggest,
        # every dim key unique, every FK value present in its parent
        rng = np.random.default_rng(seed)
        n_rel = int(rng.integers(3, 6))
        sizes = [4000] + sorted(
            rng.choice(np.arange(20, 600), size=n_rel - 1, replace=False),
            reverse=True,
        )
        catalog = Catalog()
        relations, columns, edges = [], [], []
        for i in range(n_rel):
            cols = {f"k{i}": rng.permutation(int(sizes[i])).astype(np.int64)}
            if i + 1 < n_rel:
                cols[f"f{i}"] = rng.integers(0, sizes[i + 1], int(sizes[i])).astype(
                    np.int64
                )
            cols[f"p{i}"] = rng.integers(0, 1000, int(sizes[i])).astype(np.int64)
            catalog.register(Table.from_arrays(f"t{i}", cols))
            relations.append(scan(f"t{i}"))
            columns.append(set(cols))
            if i + 1 < n_rel:
                edges.append(JoinEdge(i, f"f{i}", i + 1, f"k{i + 1}"))
            analyze_table(catalog, f"t{i}")
        graph = JoinGraph(relations, columns, edges)
        parser_tree = build_join_tree(graph, tuple(range(n_rel)))
        reference = execute_plan(parser_tree, catalog)
        assert reference.num_rows == sizes[0]  # FK joins preserve the fact
        orders = list(enumerate_orders(graph))
        assert len(orders) == 2 ** (n_rel - 1)
        for order in orders:
            result = execute_plan(build_join_tree(graph, order), catalog)
            assert_bit_identical(reference, result)

        cost_model = CostModel(catalog)
        best = dp_order(graph, cost_model)
        assert best is not None
        assert cost_model.cost(build_join_tree(graph, best)) <= cost_model.cost(
            parser_tree
        )


class TestSearch:
    def test_dp_prefers_small_intermediates(self, tpch):
        # parser order starts from the fact table; DP should not
        plan = JoinNode(
            JoinNode(scan("lineitem"), scan("orders"), "l_orderkey", "o_orderkey"),
            scan("customer"),
            "o_custkey",
            "c_custkey",
        )
        graph = extract_join_graph(plan, tpch)
        cost_model = CostModel(tpch)
        order = dp_order(graph, cost_model)
        names = [graph.relation_name(r) for r in order]
        assert names[0] != "lineitem"
        assert cost_model.cost(build_join_tree(graph, order)) < cost_model.cost(plan)

    def test_dp_matches_exhaustive_enumeration(self, tpch):
        plan = q5_shape()
        graph = extract_join_graph(plan, tpch)
        cost_model = CostModel(tpch)
        best = dp_order(graph, cost_model)
        exhaustive = min(
            enumerate_orders(graph),
            key=lambda o: cost_model.cost(build_join_tree(graph, o)),
        )
        assert cost_model.cost(build_join_tree(graph, best)) == pytest.approx(
            cost_model.cost(build_join_tree(graph, exhaustive))
        )

    def test_dp_bails_above_relation_cap(self, tpch):
        n = DP_MAX_RELATIONS + 1
        graph = JoinGraph(
            relations=[scan(f"r{i}") for i in range(n)],
            columns=[{f"c{i}"} for i in range(n)],
            edges=[JoinEdge(i, f"c{i}", i + 1, f"c{i + 1}") for i in range(n - 1)],
        )
        assert dp_order(graph, CostModel(tpch)) is None

    def test_greedy_returns_connected_order(self, tpch):
        graph = extract_join_graph(q5_shape(), tpch)
        order = greedy_order(graph, tpch)
        assert sorted(order) == list(range(graph.num_relations))
        placed = {order[0]}
        for rel in order[1:]:
            assert graph.neighbors(rel) & placed
            placed.add(rel)


class TestReorderJoins:
    def bad_parser_plan(self):
        return JoinNode(
            JoinNode(scan("lineitem"), scan("orders"), "l_orderkey", "o_orderkey"),
            scan("customer"),
            "o_custkey",
            "c_custkey",
        )

    @pytest.mark.parametrize("strategy", ["dp", "greedy"])
    def test_reorder_applies_and_stays_bit_identical(self, tpch, strategy):
        plan = self.bad_parser_plan()
        reference = execute_plan(plan, tpch)
        cost_model = CostModel(tpch)
        new_plan, decisions = reorder_joins(plan, tpch, cost_model, strategy)
        assert len(decisions) == 1
        assert decisions[0].applied
        assert decisions[0].chosen_cost < decisions[0].parser_cost
        assert new_plan is not plan
        assert_bit_identical(reference, execute_plan(new_plan, tpch))

    def test_off_keeps_parser_plan(self, tpch):
        plan = self.bad_parser_plan()
        new_plan, decisions = reorder_joins(plan, tpch, CostModel(tpch), "off")
        assert new_plan is plan
        assert decisions == []

    def test_unknown_strategy_rejected(self, tpch):
        with pytest.raises(ValueError, match="join_order_search"):
            reorder_joins(self.bad_parser_plan(), tpch, CostModel(tpch), "bogus")

    def test_optimal_parser_order_is_kept(self, tpch):
        plan = q3_shape()  # customer first: already the cheap order
        new_plan, decisions = reorder_joins(plan, tpch, CostModel(tpch), "dp")
        assert len(decisions) == 1
        assert not decisions[0].applied
        assert new_plan is plan

    def test_two_way_joins_are_not_searched(self, tpch):
        plan = JoinNode(scan("customer"), scan("orders"), "c_custkey", "o_custkey")
        new_plan, decisions = reorder_joins(plan, tpch, CostModel(tpch), "dp")
        assert new_plan is plan
        assert decisions == []

    def test_region_below_filter_is_found(self, tpch):
        from repro.engine import col

        plan = FilterNode(self.bad_parser_plan(), col("c_custkey") < 100)
        reference = execute_plan(plan, tpch)
        new_plan, decisions = reorder_joins(plan, tpch, CostModel(tpch), "dp")
        assert len(decisions) == 1 and decisions[0].applied
        assert isinstance(new_plan, FilterNode)
        assert_bit_identical(reference, execute_plan(new_plan, tpch))

    def test_decision_describe_mentions_strategy(self):
        decision = JoinOrderDecision(
            strategy="dp", relations=["a", "b", "c"], order=["b", "a", "c"],
            parser_cost=20.0, chosen_cost=10.0, applied=True,
        )
        text = decision.describe()
        assert "[dp]" in text and "b ⨝ a ⨝ c" in text and "<" in text
        decision.applied = False
        assert "parser order kept" in decision.describe()


class TestOptimizerIntegration:
    def test_staged_optimizer_reorders(self, tpch):
        from repro.core import PatchIndexManager

        plan = JoinNode(
            JoinNode(scan("lineitem"), scan("orders"), "l_orderkey", "o_orderkey"),
            scan("customer"),
            "o_custkey",
            "c_custkey",
        )
        reference = execute_plan(plan, tpch)
        opt = Optimizer(tpch, PatchIndexManager(tpch))
        new_plan, report = opt.optimize_staged(plan)
        assert report.join_orders and report.join_orders[0].applied
        assert len(report.assignment) > 0
        assert_bit_identical(reference, execute_plan(new_plan, tpch))

    def test_forced_mode_disables_search(self, tpch):
        from repro.core import PatchIndexManager

        plan = JoinNode(
            JoinNode(scan("lineitem"), scan("orders"), "l_orderkey", "o_orderkey"),
            scan("customer"),
            "o_custkey",
            "c_custkey",
        )
        opt = Optimizer(tpch, PatchIndexManager(tpch), use_cost_model=False)
        new_plan, report = opt.optimize_staged(plan)
        assert new_plan is plan
        assert report.join_orders == []

    def test_invalid_strategy_rejected_at_construction(self, tpch):
        from repro.core import PatchIndexManager

        with pytest.raises(ValueError, match="join_order_search"):
            Optimizer(tpch, PatchIndexManager(tpch), join_order_search="fastest")


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)
