"""Catalog statistics: ANALYZE, distinct counts, join selectivity."""

import numpy as np
import pytest

from repro.plan import JoinNode, ScanNode, analyze_table, distinct_count
from repro.plan.nodes import FilterNode, TopNNode
from repro.plan.stats import (
    DISTINCT_STAT_KIND,
    estimate_rows,
    join_selectivity,
)
from repro.engine import col
from repro.storage import Catalog, Table
from repro.workloads.tpch import generate_tpch


@pytest.fixture(scope="module")
def tpch():
    data = generate_tpch(scale=0.002, seed=3)
    catalog = Catalog()
    data.register(catalog)
    for name in ("customer", "orders", "lineitem"):
        analyze_table(catalog, name)
    return catalog


class TestAnalyze:
    def test_distinct_counts_registered(self, tpch):
        assert distinct_count(tpch, "customer", "c_custkey") == 300
        d_cust = distinct_count(tpch, "orders", "o_custkey")
        assert d_cust is not None and 1 < d_cust <= 300

    def test_unanalyzed_column_returns_none(self):
        catalog = Catalog()
        catalog.register(Table.from_arrays("t", {"a": np.arange(10)}))
        assert distinct_count(catalog, "t", "a") is None

    def test_analyze_subset_of_columns(self):
        catalog = Catalog()
        catalog.register(
            Table.from_arrays("t", {"a": np.arange(10), "b": np.zeros(10, np.int64)})
        )
        analyze_table(catalog, "t", columns=["a"])
        assert distinct_count(catalog, "t", "a") == 10
        assert distinct_count(catalog, "t", "b") is None

    def test_stale_stats_after_table_mutation(self):
        catalog = Catalog()
        table = Table.from_arrays("t", {"a": np.arange(10, dtype=np.int64)})
        catalog.register(table)
        analyze_table(catalog, "t")
        assert distinct_count(catalog, "t", "a") == 10
        table.modify(table.rowids()[:5], {"a": np.zeros(5, dtype=np.int64)})
        assert distinct_count(catalog, "t", "a") is None  # version moved on
        analyze_table(catalog, "t")
        assert distinct_count(catalog, "t", "a") == 6

    def test_stats_live_in_catalog_structures(self, tpch):
        kinds = {kind for kind, _, _ in tpch.structures_on("customer")}
        assert DISTINCT_STAT_KIND in kinds


class TestJoinSelectivity:
    def test_key_fk_join_uses_pk_distinct(self, tpch):
        join = JoinNode(
            ScanNode("customer"), ScanNode("orders"), "c_custkey", "o_custkey"
        )
        sel = join_selectivity(join, tpch)
        assert sel == pytest.approx(1.0 / 300)

    def test_fact_join_selectivity(self, tpch):
        join = JoinNode(
            ScanNode("orders"), ScanNode("lineitem"), "o_orderkey", "l_orderkey"
        )
        assert join_selectivity(join, tpch) == pytest.approx(1.0 / 3000)

    def test_no_stats_means_none(self):
        catalog = Catalog()
        catalog.register(Table.from_arrays("a", {"x": np.arange(5)}))
        catalog.register(Table.from_arrays("b", {"y": np.arange(5)}))
        join = JoinNode(ScanNode("a"), ScanNode("b"), "x", "y")
        assert join_selectivity(join, catalog) is None

    def test_estimate_falls_back_without_stats(self):
        catalog = Catalog()
        catalog.register(Table.from_arrays("a", {"x": np.arange(50)}))
        catalog.register(Table.from_arrays("b", {"y": np.arange(200) % 50}))
        join = JoinNode(ScanNode("a"), ScanNode("b"), "x", "y")
        assert estimate_rows(join, catalog) == 200.0  # seed behavior: max side

    def test_stats_sharpen_filtered_join_estimate(self, tpch):
        # filtered customers joined to orders: the FK fallback says
        # max(100, 3000) = 3000, the distinct-count estimate scales down
        filtered = FilterNode(ScanNode("customer"), col("c_custkey") < 100)
        join = JoinNode(filtered, ScanNode("orders"), "c_custkey", "o_custkey")
        est = estimate_rows(join, tpch)
        fallback = max(estimate_rows(filtered, tpch), 3000.0)
        assert est < fallback
        assert est == pytest.approx(
            estimate_rows(filtered, tpch) * 3000.0 / 300.0
        )

    def test_selectivity_works_through_join_subtrees(self, tpch):
        inner = JoinNode(
            ScanNode("customer"), ScanNode("orders"), "c_custkey", "o_custkey"
        )
        outer = JoinNode(inner, ScanNode("lineitem"), "o_orderkey", "l_orderkey")
        assert join_selectivity(outer, tpch) == pytest.approx(1.0 / 3000)


class TestTopNEstimate:
    def test_topn_bounded_by_n(self, tpch):
        node = TopNNode(ScanNode("orders"), ["o_orderdate"], None, 10)
        assert estimate_rows(node, tpch) == 10.0

    def test_topn_bounded_by_child(self, tpch):
        node = TopNNode(ScanNode("customer"), ["c_custkey"], None, 10_000)
        assert estimate_rows(node, tpch) == 300.0
