"""End-to-end tests: logical plans, PatchIndex rewrites, execution."""

import numpy as np
import pytest

from repro.core import NearlySortedColumn, NearlyUniqueColumn, PatchIndexManager
from repro.engine import col
from repro.plan import (
    AggregateNode,
    CostModel,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    Optimizer,
    ProjectNode,
    ScanNode,
    SortNode,
    estimate_rows,
    execute_plan,
)
from repro.plan.nodes import MergeCombineNode, PatchScanNode, UnionNode
from repro.plan.rules import find_single_scan, is_sorted_on
from repro.storage import Catalog, PartitionedTable, Table


@pytest.fixture
def env():
    """Catalog with a NUC table, an NSC table and an index manager."""
    rng = np.random.default_rng(42)
    n = 2000
    # value column: 10% of rows share values drawn from a small pool
    values = np.arange(n, dtype=np.int64) + 10_000
    dup_rows = rng.choice(n, size=200, replace=False)
    values[dup_rows] = rng.integers(0, 50, size=200)
    nuc = Table.from_arrays("nuc_t", {"k": np.arange(n), "v": values})

    sorted_vals = np.arange(n, dtype=np.int64) * 3
    patch_rows = rng.choice(n, size=150, replace=False)
    sorted_vals[patch_rows] = rng.integers(0, 3 * n, size=150)
    nsc = Table.from_arrays("nsc_t", {"k": np.arange(n), "v": sorted_vals})

    catalog = Catalog()
    catalog.register(nuc)
    catalog.register(nsc)
    mgr = PatchIndexManager(catalog)
    mgr.create(nuc, "v", NearlyUniqueColumn())
    mgr.create(nsc, "v", NearlySortedColumn())
    return catalog, mgr


def optimizer(env, zbp=False, force=True):
    catalog, mgr = env
    return Optimizer(catalog, mgr, zero_branch_pruning=zbp, use_cost_model=not force)


class TestDistinctRewrite:
    def test_plan_shape(self, env):
        catalog, mgr = env
        plan = DistinctNode(ScanNode("nuc_t", ["v"]), ["v"])
        opt = optimizer(env).optimize(plan)
        assert isinstance(opt, UnionNode)
        assert "PatchScan" in opt.explain()

    def test_result_matches_reference(self, env):
        catalog, _ = env
        plan = DistinctNode(ScanNode("nuc_t", ["v"]), ["v"])
        reference = execute_plan(plan, catalog)
        rewritten = optimizer(env).optimize(plan)
        result = execute_plan(rewritten, catalog)
        np.testing.assert_array_equal(
            np.sort(result.column("v")), np.sort(reference.column("v"))
        )

    def test_rewrite_with_filter_in_subtree(self, env):
        catalog, _ = env
        plan = DistinctNode(
            FilterNode(ScanNode("nuc_t", ["v"]), col("v") < 5000), ["v"]
        )
        rewritten = optimizer(env).optimize(plan)
        reference = execute_plan(plan, catalog)
        result = execute_plan(rewritten, catalog)
        np.testing.assert_array_equal(
            np.sort(result.column("v")), np.sort(reference.column("v"))
        )

    def test_no_rewrite_without_index(self, env):
        plan = DistinctNode(ScanNode("nuc_t", ["k"]), ["k"])  # no index on k
        assert optimizer(env).optimize(plan) is plan

    def test_no_rewrite_under_join_subtree(self, env):
        plan = DistinctNode(
            JoinNode(ScanNode("nuc_t"), ScanNode("nsc_t"), "k", "k"), ["v"]
        )
        opt = optimizer(env).optimize(plan)
        assert isinstance(opt, DistinctNode)


class TestSortRewrite:
    def test_plan_shape(self, env):
        plan = SortNode(ScanNode("nsc_t", ["v"]), ["v"])
        opt = optimizer(env).optimize(plan)
        assert isinstance(opt, MergeCombineNode)

    def test_result_is_sorted_and_complete(self, env):
        catalog, _ = env
        plan = SortNode(ScanNode("nsc_t", ["v"]), ["v"])
        reference = execute_plan(plan, catalog)
        result = execute_plan(optimizer(env).optimize(plan), catalog)
        np.testing.assert_array_equal(result.column("v"), reference.column("v"))

    def test_descending_order_mismatch_not_rewritten(self, env):
        plan = SortNode(ScanNode("nsc_t", ["v"]), ["v"], [False])
        assert optimizer(env).optimize(plan) is plan

    def test_partitioned_sort_rewrite_merges_partitions(self):
        n = 400
        vals = np.arange(n, dtype=np.int64)
        vals[[50, 170, 333]] = [7, 900, 2]
        t = Table.from_arrays("pt", {"k": np.arange(n), "v": vals})
        pt = PartitionedTable.from_table(t, "k", 4)
        catalog = Catalog()
        catalog.register(pt)
        mgr = PatchIndexManager(catalog)
        mgr.create(pt, "v", NearlySortedColumn())
        plan = SortNode(ScanNode("pt", ["v"]), ["v"])
        opt = Optimizer(catalog, mgr, use_cost_model=False).optimize(plan)
        result = execute_plan(opt, catalog)
        np.testing.assert_array_equal(result.column("v"), np.sort(vals))


class TestJoinRewrite:
    @pytest.fixture
    def join_env(self):
        rng = np.random.default_rng(7)
        n_dim, n_fact = 300, 3000
        dim = Table.from_arrays(
            "dim", {"dk": np.arange(n_dim, dtype=np.int64),
                    "dpay": rng.integers(0, 100, n_dim)}
        )
        fk = np.sort(rng.integers(0, n_dim, n_fact)).astype(np.int64)
        disorder = rng.choice(n_fact, size=200, replace=False)
        fk[disorder] = rng.integers(0, n_dim, size=200)
        fact = Table.from_arrays(
            "fact", {"fk": fk, "fpay": rng.integers(0, 10, n_fact)}
        )
        catalog = Catalog()
        catalog.register(dim)
        catalog.register(fact)
        catalog.add_structure("sortkey", "dim", "dk", object())
        mgr = PatchIndexManager(catalog)
        mgr.create(fact, "fk", NearlySortedColumn())
        return catalog, mgr

    def test_plan_shape(self, join_env):
        catalog, mgr = join_env
        plan = JoinNode(ScanNode("dim"), ScanNode("fact"), "dk", "fk")
        opt = Optimizer(catalog, mgr, use_cost_model=False).optimize(plan)
        text = opt.explain()
        assert "Join[merge]" in text
        assert "Join[hash]" in text
        assert "ReuseCache" in text and "ReuseLoad" in text

    def test_result_matches_reference(self, join_env):
        catalog, mgr = join_env
        plan = JoinNode(ScanNode("dim"), ScanNode("fact"), "dk", "fk")
        reference = execute_plan(plan, catalog)
        opt = Optimizer(catalog, mgr, use_cost_model=False).optimize(plan)
        result = execute_plan(opt, catalog)
        assert result.num_rows == reference.num_rows
        ref_rows = sorted(zip(reference.column("dk"), reference.column("fpay")))
        got_rows = sorted(zip(result.column("dk"), result.column("fpay")))
        assert ref_rows == got_rows

    def test_no_rewrite_when_other_side_unsorted(self, join_env):
        catalog, mgr = join_env
        catalog.remove_structure("sortkey", "dim", "dk")
        plan = JoinNode(ScanNode("dim"), ScanNode("fact"), "dk", "fk")
        opt = Optimizer(catalog, mgr, use_cost_model=False).optimize(plan)
        assert isinstance(opt, JoinNode)
        assert opt.algorithm == "hash"

    def test_zbp_with_zero_patches_drops_hash_branch(self, join_env):
        catalog, mgr = join_env
        mgr.drop("fact", "fk")
        # replace the fact table with a perfectly sorted one
        fact = catalog.table("fact")
        fact.modify(fact.rowids(), {"fk": np.sort(fact.column("fk"))})
        mgr.create(fact, "fk", NearlySortedColumn())
        assert mgr.get("fact", "fk").num_patches == 0
        plan = JoinNode(ScanNode("dim"), ScanNode("fact"), "dk", "fk")
        opt = Optimizer(
            catalog, mgr, zero_branch_pruning=True, use_cost_model=False
        ).optimize(plan)
        assert isinstance(opt, JoinNode) and opt.algorithm == "merge"
        result = execute_plan(opt, catalog)
        reference = execute_plan(plan, catalog)
        assert result.num_rows == reference.num_rows


class TestZeroBranchPruning:
    def test_distinct_zbp(self):
        t = Table.from_arrays("u", {"v": np.arange(100, dtype=np.int64)})
        catalog = Catalog()
        catalog.register(t)
        mgr = PatchIndexManager(catalog)
        mgr.create(t, "v", NearlyUniqueColumn())
        plan = DistinctNode(ScanNode("u", ["v"]), ["v"])
        opt = Optimizer(catalog, mgr, zero_branch_pruning=True,
                        use_cost_model=False).optimize(plan)
        assert not isinstance(opt, UnionNode)
        result = execute_plan(opt, catalog)
        assert result.num_rows == 100


class TestCostModel:
    def test_estimates_use_known_patch_counts(self, env):
        catalog, mgr = env
        handle = mgr.get("nuc_t", "v")
        node = PatchScanNode("nuc_t", handle, "use_patches")
        assert estimate_rows(node, catalog) == handle.num_patches

    def test_cost_prefers_rewrite_for_large_distinct(self, env):
        catalog, mgr = env
        plan = DistinctNode(ScanNode("nuc_t", ["v"]), ["v"])
        opt = Optimizer(catalog, mgr, use_cost_model=True).optimize(plan)
        assert isinstance(opt, UnionNode)  # cost model accepts

    def test_merge_join_cheaper_than_hash(self, env):
        catalog, _ = env
        cm = CostModel(catalog)
        hash_plan = JoinNode(ScanNode("nuc_t"), ScanNode("nsc_t"), "k", "k")
        merge_plan = JoinNode(
            ScanNode("nuc_t"), ScanNode("nsc_t"), "k", "k", algorithm="merge"
        )
        assert cm.cost(merge_plan) < cm.cost(hash_plan)

    def test_estimate_rows_covers_all_nodes(self, env):
        catalog, _ = env
        scan = ScanNode("nuc_t")
        plans = [
            scan,
            FilterNode(scan, col("v") > 0),
            ProjectNode(scan, {"v": "v"}),
            DistinctNode(scan, ["v"]),
            AggregateNode(scan, ["v"], {"c": ("count", None)}),
            SortNode(scan, ["v"]),
            LimitNode(scan, 5),
            UnionNode([scan, scan]),
        ]
        for p in plans:
            assert estimate_rows(p, catalog) >= 0


class TestHelpers:
    def test_find_single_scan(self, env):
        scan = ScanNode("nuc_t")
        assert find_single_scan(FilterNode(scan, col("v") > 0)) is scan
        join = JoinNode(scan, ScanNode("nsc_t"), "k", "k")
        assert find_single_scan(join) is None

    def test_is_sorted_on_sortkey(self, env):
        catalog, _ = env
        catalog.add_structure("sortkey", "nuc_t", "k", object())
        assert is_sorted_on(ScanNode("nuc_t"), "k", catalog)
        assert not is_sorted_on(ScanNode("nuc_t"), "v", catalog)

    def test_is_sorted_through_filter(self, env):
        catalog, _ = env
        catalog.add_structure("sortkey", "nuc_t", "k", catalog)
        node = FilterNode(ScanNode("nuc_t"), col("v") > 0)
        assert is_sorted_on(node, "k", catalog)

    def test_probe_side_of_hash_join_preserves_order(self, env):
        catalog, _ = env
        catalog.add_structure("sortkey", "nuc_t", "k", catalog)
        join = JoinNode(
            ScanNode("nsc_t"), ScanNode("nuc_t"), "k", "k", build_side="left"
        )
        assert is_sorted_on(join, "k", catalog)

    def test_plan_explain(self, env):
        plan = SortNode(FilterNode(ScanNode("nsc_t"), col("v") > 3), ["v"])
        text = plan.explain()
        assert "Sort" in text and "Filter" in text and "Scan" in text


class TestExecutorMisc:
    def test_execute_strips_rowids(self, env):
        catalog, mgr = env
        handle = mgr.get("nuc_t", "v")
        plan = PatchScanNode("nuc_t", handle, "use_patches", columns=["v"])
        result = execute_plan(plan, catalog)
        assert "__rowid__" not in result.column_names

    def test_aggregate_plan(self, env):
        catalog, _ = env
        plan = AggregateNode(
            ScanNode("nuc_t"), [], {"total": ("sum", "v"), "n": ("count", None)}
        )
        result = execute_plan(plan, catalog)
        assert result.column("n")[0] == 2000
