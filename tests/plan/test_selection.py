"""Stage-2 operator selection: the chain, its links, and cost dicts."""

import numpy as np
import pytest

from repro.core import NearlyUniqueColumn, PatchIndexManager
from repro.plan import (
    JoinNode,
    LimitNode,
    Optimizer,
    ProjectNode,
    ScanNode,
    SortNode,
    TopNNode,
    execute_plan,
)
from repro.plan.cost import CostModel
from repro.plan.nodes import DistinctNode, FilterNode
from repro.plan.selection import (
    JoinOperatorSelection,
    ParallelVariantSelection,
    PatchIndexSelection,
    PhysicalOperatorAssignment,
    PhysicalOperatorSelection,
    TopNSelection,
    default_selection_chain,
)
from repro.engine import col
from repro.storage import Catalog, Table


@pytest.fixture
def catalog():
    rng = np.random.default_rng(5)
    cat = Catalog()
    cat.register(Table.from_arrays("small", {
        "sk": np.arange(200, dtype=np.int64),
        "sv": rng.integers(0, 9, 200).astype(np.int64),
    }))
    cat.register(Table.from_arrays("big", {
        "bk": rng.integers(0, 200, 5000).astype(np.int64),
        "bv": rng.integers(0, 9, 5000).astype(np.int64),
    }))
    cat.register(Table.from_arrays("huge", {
        "hk": rng.integers(0, 200, 40_000).astype(np.int64),
    }))
    return cat


class _Tagger(PhysicalOperatorSelection):
    """Test link: tags the root, records invocation order."""

    def __init__(self, name, trace):
        super().__init__()
        self.name = name
        self.trace = trace

    def _apply_selection(self, plan, assignment):
        self.trace.append(self.name)
        assignment.assign(plan, self.name, None, "Tagger")
        return plan


class TestChain:
    def test_chain_with_appends_and_returns_head(self, catalog):
        trace = []
        a, b, c = (_Tagger(n, trace) for n in "abc")
        head = a.chain_with(b).chain_with(c)
        assert head is a
        assert a.next_selection is b and b.next_selection is c
        plan = ScanNode("small")
        head.select_physical_operators(plan, PhysicalOperatorAssignment())
        assert trace == ["a", "b", "c"]

    def test_later_link_wins_on_same_node(self, catalog):
        trace = []
        head = _Tagger("first", trace).chain_with(_Tagger("second", trace))
        assignment = PhysicalOperatorAssignment()
        head.select_physical_operators(ScanNode("small"), assignment)
        assert assignment.get(ScanNode("small")) is None  # identity-keyed
        # the chain tagged one node twice; last writer is recorded
        assert len(assignment) == 1

    def test_default_chain_composition(self, catalog):
        chain = default_selection_chain(
            catalog, PatchIndexManager(catalog), CostModel(catalog)
        )
        kinds = []
        link = chain
        while link is not None:
            kinds.append(type(link).__name__)
            link = link.next_selection
        assert kinds == [
            "PatchIndexSelection",
            "JoinOperatorSelection",
            "TopNSelection",
            "ParallelVariantSelection",
        ]

    def test_force_mode_is_patchindex_alone(self, catalog):
        chain = default_selection_chain(
            catalog, PatchIndexManager(catalog), None, force=True
        )
        assert isinstance(chain, PatchIndexSelection)
        assert chain.next_selection is None


class TestAssignmentLog:
    def test_assign_get_describe(self, catalog):
        node = ScanNode("small")
        assignment = PhysicalOperatorAssignment()
        assignment.assign(node, "Scan[serial]", CostModel(catalog), "TestLink")
        choice = assignment.get(node)
        assert choice.operator == "Scan[serial]"
        assert choice.source == "TestLink"
        assert choice.cost["cardinality"] == 200.0
        lines = assignment.describe(node)
        assert len(lines) == 1
        assert "Scan[serial]" in lines[0] and "TestLink" in lines[0]

    def test_cost_model_failure_degrades_to_empty_dict(self, catalog):
        node = ScanNode("missing_table")
        assignment = PhysicalOperatorAssignment()
        assignment.assign(node, "Scan", CostModel(catalog), "TestLink")
        assert assignment.get(node).cost == {}
        assert "Scan [TestLink]" in assignment.get(node).describe()


class TestOperatorCost:
    def test_total_matches_recursive_cost(self, catalog):
        model = CostModel(catalog)
        join = JoinNode(ScanNode("small"), ScanNode("big"), "sk", "bk")
        plan = FilterNode(join, col("bv") < 4)
        for node in (plan, join, join.left, join.right):
            entry = model.operator_cost(node)
            children = sum(model.cost(c) for c in node.children())
            assert model.cost(node) == pytest.approx(children + entry["total"])

    def test_entry_shape(self, catalog):
        model = CostModel(catalog)
        entry = model.operator_cost(
            SortNode(ScanNode("big"), ["bk"], None)
        )
        assert set(entry) >= {
            "operator", "cardinality", "time_per_row", "startup", "total",
        }
        assert entry["operator"] == "Sort"
        assert entry["startup"] == entry["total"]  # sorts are blocking
        assert entry["time_per_row"] == 0.0

    def test_per_row_time_of_streaming_operator(self, catalog):
        model = CostModel(catalog)
        entry = model.operator_cost(FilterNode(ScanNode("big"), col("bv") < 4))
        assert entry["startup"] == 0.0
        assert entry["time_per_row"] > 0.0
        # time_per_row is per *driving* (input) row, not per output row
        assert entry["total"] == pytest.approx(entry["time_per_row"] * 5000.0)

    def test_hash_join_startup_is_build_side(self, catalog):
        model = CostModel(catalog)
        entry = model.operator_cost(
            JoinNode(ScanNode("small"), ScanNode("big"), "sk", "bk")
        )
        assert entry["startup"] == model.COST_HASH_BUILD * 200.0
        assert entry["total"] > entry["startup"]

    def test_topn_cost_beats_sort_for_small_n(self, catalog):
        model = CostModel(catalog)
        assert model.topn_cost(40_000, 10) < model.sort_cost(40_000)
        assert model.topn_cost(100, 100) >= model.sort_cost(100)


class TestJoinOperatorSelection:
    def run(self, catalog, plan):
        assignment = PhysicalOperatorAssignment()
        link = JoinOperatorSelection(catalog, CostModel(catalog))
        out = link.select_physical_operators(plan, assignment)
        return out, assignment

    def test_build_side_pinned_to_smaller_exact_side(self, catalog):
        plan = JoinNode(ScanNode("small"), ScanNode("big"), "sk", "bk")
        reference = execute_plan(plan, catalog)
        out, assignment = self.run(catalog, plan)
        assert out is plan  # annotated in place
        assert plan.build_side == "left"
        assert assignment.get(plan).operator == "HashJoin[build=left]"
        result = execute_plan(plan, catalog)
        for name in reference.column_names:
            np.testing.assert_array_equal(result.column(name), reference.column(name))

    def test_build_side_right_when_right_smaller(self, catalog):
        plan = JoinNode(ScanNode("big"), ScanNode("small"), "bk", "sk")
        self.run(catalog, plan)
        assert plan.build_side == "right"

    def test_estimated_cardinality_defers(self, catalog):
        filtered = FilterNode(ScanNode("small"), col("sv") < 4)
        plan = JoinNode(filtered, ScanNode("big"), "sk", "bk")
        _, assignment = self.run(catalog, plan)
        assert plan.build_side == "auto"  # runtime heuristic keeps the call
        assert len(assignment) == 0

    def test_merge_flip_on_doubly_sorted_inputs(self):
        # both inputs carry SortKey structures and really are sorted:
        # the link may safely switch the algorithm to merge
        cat = Catalog()
        cat.register(Table.from_arrays("d1", {
            "k1": np.arange(2000, dtype=np.int64),
            "v1": np.arange(2000, dtype=np.int64) % 7,
        }))
        cat.register(Table.from_arrays("d2", {
            "k2": np.arange(3000, dtype=np.int64),
            "v2": np.arange(3000, dtype=np.int64) % 5,
        }))
        cat.add_structure("sortkey", "d1", "k1", object())
        cat.add_structure("sortkey", "d2", "k2", object())
        plan = JoinNode(ScanNode("d1"), ScanNode("d2"), "k1", "k2")
        reference = execute_plan(
            JoinNode(ScanNode("d1"), ScanNode("d2"), "k1", "k2"), cat
        )
        assignment = PhysicalOperatorAssignment()
        JoinOperatorSelection(cat, CostModel(cat)).select_physical_operators(
            plan, assignment
        )
        assert plan.algorithm == "merge"
        assert assignment.get(plan).operator == "MergeJoin[sortkey]"
        result = execute_plan(plan, cat)
        assert result.num_rows == reference.num_rows
        for name in reference.column_names:
            np.testing.assert_array_equal(result.column(name), reference.column(name))

    def test_explicit_algorithm_untouched(self, catalog):
        plan = JoinNode(
            ScanNode("small"), ScanNode("big"), "sk", "bk", build_side="right"
        )
        _, assignment = self.run(catalog, plan)
        assert plan.build_side == "right"
        assert len(assignment) == 0


class TestTopNSelection:
    def run(self, catalog, plan):
        assignment = PhysicalOperatorAssignment()
        link = TopNSelection(catalog, CostModel(catalog))
        return link.select_physical_operators(plan, assignment), assignment

    def test_limit_sort_collapses(self, catalog):
        plan = LimitNode(SortNode(ScanNode("huge"), ["hk"], None), 10)
        out, assignment = self.run(catalog, plan)
        assert isinstance(out, TopNNode)
        assert out.n == 10 and out.keys == ["hk"]
        assert assignment.get(out).operator == "TopN[n=10]"

    def test_project_is_hoisted(self, catalog):
        plan = LimitNode(
            ProjectNode(SortNode(ScanNode("huge"), ["hk"], None), {"hk": "hk"}), 25
        )
        out, _ = self.run(catalog, plan)
        assert isinstance(out, ProjectNode)
        assert isinstance(out.child, TopNNode)
        assert out.outputs == {"hk": "hk"}

    def test_large_n_keeps_full_sort(self, catalog):
        plan = LimitNode(SortNode(ScanNode("small"), ["sk"], None), 200)
        out, assignment = self.run(catalog, plan)
        assert isinstance(out, LimitNode)
        assert len(assignment) == 0

    def test_limit_without_sort_untouched(self, catalog):
        plan = LimitNode(ScanNode("huge"), 10)
        out, _ = self.run(catalog, plan)
        assert out is plan


class TestParallelVariantSelection:
    def run(self, catalog, plan, parallelism):
        assignment = PhysicalOperatorAssignment()
        link = ParallelVariantSelection(
            catalog, CostModel(catalog, parallelism=parallelism)
        )
        link.select_physical_operators(plan, assignment)
        return assignment

    def test_small_scan_pinned_serial(self, catalog):
        plan = ScanNode("small")
        assignment = self.run(catalog, plan, parallelism=8)
        assert plan.exec_mode == "serial"
        assert assignment.get(plan).operator == "Scan[serial]"

    def test_large_scan_marked_parallel(self, catalog):
        plan = ScanNode("huge")
        assignment = self.run(catalog, plan, parallelism=8)
        assert plan.exec_mode == "parallel"
        assert assignment.get(plan).operator == "Scan[parallel]"

    def test_one_worker_model_pins_serial(self, catalog):
        plan = ScanNode("huge")
        self.run(catalog, plan, parallelism=1)
        assert plan.exec_mode == "serial"

    def test_filter_pipeline_gated_by_table_cardinality(self, catalog):
        plan = FilterNode(ScanNode("huge"), col("hk") < 3)
        assignment = self.run(catalog, plan, parallelism=8)
        # the filter's output estimate is small, but the morsel source
        # (the scan's table) is what the runtime gate sees
        assert plan.exec_mode == "parallel"
        assert assignment.get(plan).operator == "Filter[parallel]"

    def test_join_is_left_alone(self, catalog):
        plan = JoinNode(ScanNode("small"), ScanNode("big"), "sk", "bk")
        self.run(catalog, plan, parallelism=8)
        assert plan.exec_mode is None


class TestPatchIndexLink:
    def test_distinct_rewrite_assigned(self):
        rng = np.random.default_rng(42)
        values = np.arange(2000, dtype=np.int64) + 10_000
        dup_rows = rng.choice(2000, size=200, replace=False)
        values[dup_rows] = rng.integers(0, 50, size=200)
        cat = Catalog()
        table = Table.from_arrays("nuc_t", {"k": np.arange(2000), "v": values})
        cat.register(table)
        mgr = PatchIndexManager(cat)
        mgr.create(table, "v", NearlyUniqueColumn())
        plan = DistinctNode(ScanNode("nuc_t", ["v"]), ["v"])
        assignment = PhysicalOperatorAssignment()
        link = PatchIndexSelection(cat, mgr, None, force=True)
        out = link.select_physical_operators(plan, assignment)
        assert out is not plan
        choice = assignment.get(out)
        assert choice is not None
        assert choice.operator == "PatchIndex[distinct]"
        assert choice.source == "PatchIndexSelection"

    def test_optimize_still_returns_same_plan_when_nothing_applies(self, catalog):
        opt = Optimizer(catalog, PatchIndexManager(catalog), use_cost_model=False)
        plan = FilterNode(ScanNode("big"), col("bv") < 4)
        assert opt.optimize(plan) is plan
