"""Unit tests for the longest sorted subsequence algorithm."""

import numpy as np
import pytest

from repro.core.lis import longest_sorted_subsequence, order_codes


def check_sorted(values, idx, ascending=True):
    seq = values[idx]
    if len(seq) <= 1:
        return True
    pairs = seq[1:] >= seq[:-1] if ascending else seq[1:] <= seq[:-1]
    return bool(np.all(pairs))


def brute_force_length(values, ascending=True):
    # O(n^2) DP reference
    n = len(values)
    best = [1] * n
    for i in range(n):
        for j in range(i):
            ok = values[j] <= values[i] if ascending else values[j] >= values[i]
            if ok:
                best[i] = max(best[i], best[j] + 1)
    return max(best, default=0)


class TestLIS:
    def test_empty(self):
        assert len(longest_sorted_subsequence(np.array([]))) == 0

    def test_sorted_input_keeps_everything(self):
        idx = longest_sorted_subsequence(np.arange(100))
        assert len(idx) == 100

    def test_reverse_sorted_keeps_one(self):
        idx = longest_sorted_subsequence(np.arange(100)[::-1])
        assert len(idx) == 1

    def test_duplicates_extend_run(self):
        # non-decreasing: duplicates are part of the run
        idx = longest_sorted_subsequence(np.array([1, 1, 1, 1]))
        assert len(idx) == 4

    def test_classic_example(self):
        values = np.array([3, 1, 2, 10, 4, 5])
        idx = longest_sorted_subsequence(values)
        assert len(idx) == 4  # 1 2 4 5
        assert check_sorted(values, idx)

    def test_indices_are_increasing_positions(self):
        values = np.array([5, 1, 6, 2, 7, 3])
        idx = longest_sorted_subsequence(values)
        assert np.all(np.diff(idx) > 0)
        assert check_sorted(values, idx)

    def test_descending(self):
        values = np.array([1, 9, 8, 2, 7, 7, 3])
        idx = longest_sorted_subsequence(values, ascending=False)
        assert check_sorted(values, idx, ascending=False)
        assert len(idx) == 5  # 9 8 7 7 3

    def test_string_values(self):
        values = np.array(["a", "c", "b", "d"], dtype=object)
        idx = longest_sorted_subsequence(values)
        assert len(idx) == 3
        assert check_sorted(values[idx].astype(str), np.arange(3))

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 20, size=40)
        for ascending in (True, False):
            idx = longest_sorted_subsequence(values, ascending)
            assert check_sorted(values, idx, ascending)
            assert len(idx) == brute_force_length(values, ascending)


class TestOrderCodes:
    def test_preserves_order(self):
        values = np.array([30, 10, 20])
        codes = order_codes(values)
        assert codes.tolist() == [2, 0, 1]

    def test_descending_negates(self):
        values = np.array([1, 2])
        asc = order_codes(values, True)
        desc = order_codes(values, False)
        np.testing.assert_array_equal(desc, -asc)
