"""Unit tests for NUC/NSC patch discovery."""

import numpy as np

from repro.core import (
    NearlySortedColumn,
    NearlyUniqueColumn,
    discover_nsc_patches,
    discover_nuc_patches,
)


class TestNUCDiscovery:
    def test_unique_column_has_no_patches(self):
        assert len(discover_nuc_patches(np.arange(100))) == 0

    def test_all_occurrences_of_duplicated_values_are_patches(self):
        values = np.array([5, 7, 5, 5, 9, 7])
        patches = discover_nuc_patches(values)
        assert patches.tolist() == [0, 1, 2, 3, 5]

    def test_kept_values_are_globally_unique(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 50, size=300)
        patches = discover_nuc_patches(values)
        mask = np.zeros(len(values), dtype=bool)
        mask[patches] = True
        kept = values[~mask]
        assert len(np.unique(kept)) == len(kept)
        # disjointness with patch values (what the Union rewrite needs)
        assert not np.isin(kept, values[mask]).any()
        # minimality: exactly the single-occurrence values are kept
        uniq, counts = np.unique(values, return_counts=True)
        assert len(kept) == int((counts == 1).sum())

    def test_empty(self):
        assert len(discover_nuc_patches(np.array([]))) == 0

    def test_string_values(self):
        values = np.array(["x", "y", "x"], dtype=object)
        assert discover_nuc_patches(values).tolist() == [0, 2]

    def test_constraint_class_wires_discovery(self):
        c = NearlyUniqueColumn()
        assert c.kind == "nuc"
        assert c.initial_patches(np.array([1, 1])).tolist() == [0, 1]
        assert "unique" in c.describe()


class TestNSCDiscovery:
    def test_sorted_column_has_no_patches(self):
        patches, last = discover_nsc_patches(np.arange(50))
        assert len(patches) == 0
        assert last == 49

    def test_exclusion_leaves_sorted_and_minimal(self):
        rng = np.random.default_rng(1)
        values = np.arange(200, dtype=np.int64)
        swap = rng.choice(200, size=30, replace=False)
        values[swap] = rng.integers(0, 200, size=30)
        patches, last = discover_nsc_patches(values)
        mask = np.zeros(len(values), dtype=bool)
        mask[patches] = True
        kept = values[~mask]
        assert np.all(kept[1:] >= kept[:-1])
        assert last == kept[-1]

    def test_descending(self):
        values = np.array([9, 8, 10, 7])
        patches, last = discover_nsc_patches(values, ascending=False)
        assert patches.tolist() == [2]
        assert last == 7

    def test_empty(self):
        patches, last = discover_nsc_patches(np.array([]))
        assert len(patches) == 0 and last is None

    def test_constraint_class_wires_discovery(self):
        c = NearlySortedColumn()
        assert c.kind == "nsc"
        assert c.initial_patches(np.array([2, 1, 3])).tolist() in ([0], [1])
        patches, last = c.initial_patches_with_state(np.array([1, 5, 2, 3]))
        assert last == 3
        assert "ascending" in c.describe()


class TestNSCExtension:
    def test_extend_with_larger_values(self):
        c = NearlySortedColumn()
        keep, last = c.extend_sorted_run(np.array([10, 12, 11, 13]), 9)
        assert len(keep) == 3  # 10 12 13 or 10 11 13
        assert last == 13

    def test_values_below_boundary_are_patches(self):
        c = NearlySortedColumn()
        keep, last = c.extend_sorted_run(np.array([1, 2, 3]), 100)
        assert len(keep) == 0
        assert last == 100

    def test_none_boundary_accepts_all(self):
        c = NearlySortedColumn()
        keep, last = c.extend_sorted_run(np.array([5, 6]), None)
        assert keep.tolist() == [0, 1]
        assert last == 6

    def test_descending_extension(self):
        c = NearlySortedColumn(ascending=False)
        keep, last = c.extend_sorted_run(np.array([8, 9, 7]), 10)
        assert last == 7
        assert len(keep) == 2  # 8 7 or 9 7

    def test_paper_optimality_loss_example(self):
        # table (1, 2, 10), inserts (3, 4): the extension keeps nothing
        # beyond 10 even though (1,2,3,4) would be globally longer.
        c = NearlySortedColumn()
        keep, last = c.extend_sorted_run(np.array([3, 4]), 10)
        assert len(keep) == 0
        assert last == 10

    def test_empty_insert(self):
        c = NearlySortedColumn()
        keep, last = c.extend_sorted_run(np.array([]), 5)
        assert len(keep) == 0 and last == 5
