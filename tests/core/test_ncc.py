"""Tests for the NearlyConstantColumn extension (§5.5 / §7)."""

import numpy as np
import pytest

from repro.core import (
    BITMAP_DESIGN,
    IDENTIFIER_DESIGN,
    NearlyConstantColumn,
    PatchIndex,
    PatchIndexManager,
)
from repro.engine import col, lit
from repro.plan import FilterNode, ScanNode, execute_plan
from repro.plan.nodes import FilterNode as FN, UnionNode
from repro.plan.rules import rewrite_constant_filter
from repro.storage import Catalog, Table

DESIGNS = [BITMAP_DESIGN, IDENTIFIER_DESIGN]


def ncc_table(n=200, outliers=(5, 77, 123), name="t"):
    values = np.full(n, 42, dtype=np.int64)
    for i, pos in enumerate(outliers):
        values[pos] = 100 + i
    return Table.from_arrays(name, {"k": np.arange(n), "v": values})


@pytest.mark.parametrize("design", DESIGNS)
class TestDiscovery:
    def test_mode_becomes_constant(self, design):
        t = ncc_table()
        pi = PatchIndex(t, "v", NearlyConstantColumn(), design=design)
        assert pi.constant_value == 42
        assert sorted(pi.patch_rowids().tolist()) == [5, 77, 123]
        assert pi.verify()

    def test_fully_constant_column(self, design):
        t = ncc_table(outliers=())
        pi = PatchIndex(t, "v", NearlyConstantColumn(), design=design)
        assert pi.num_patches == 0
        assert pi.verify()

    def test_empty_column(self, design):
        t = Table.from_arrays("e", {"v": np.array([], dtype=np.int64)})
        pi = PatchIndex(t, "v", NearlyConstantColumn(), design=design)
        assert pi.constant_value is None
        assert pi.num_patches == 0


@pytest.mark.parametrize("design", DESIGNS)
class TestMaintenance:
    def test_insert_constant_values_add_no_patches(self, design):
        t = ncc_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyConstantColumn(), design=design)
        t.insert({"k": np.array([200, 201]), "v": np.array([42, 42])})
        assert pi.num_patches == 3
        assert pi.verify()

    def test_insert_deviating_values_become_patches(self, design):
        t = ncc_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyConstantColumn(), design=design)
        t.insert({"k": np.array([200, 201]), "v": np.array([42, 999])})
        assert pi.num_patches == 4
        assert pi.verify()

    def test_modify_to_deviating_value(self, design):
        t = ncc_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyConstantColumn(), design=design)
        t.modify(np.array([10]), {"v": np.array([7])})
        assert pi.is_patch(10)
        assert pi.verify()

    def test_modify_other_column_ignored(self, design):
        t = ncc_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyConstantColumn(), design=design)
        t.modify(np.array([10]), {"k": np.array([999])})
        assert pi.num_patches == 3

    def test_delete_drops_tracking(self, design):
        t = ncc_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyConstantColumn(), design=design)
        t.delete(np.array([5]))
        assert pi.num_patches == 2
        assert pi.verify()

    def test_constant_defined_by_first_insert_into_empty_table(self, design):
        t = Table.from_arrays("e", {"k": np.array([], dtype=np.int64),
                                    "v": np.array([], dtype=np.int64)})
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyConstantColumn(), design=design)
        t.insert({"k": np.arange(4), "v": np.array([9, 9, 9, 1])})
        assert pi.constant_value == 9
        assert pi.num_patches == 1
        assert pi.verify()


class TestFilterRewrite:
    @pytest.fixture
    def env(self):
        t = ncc_table(name="c")
        catalog = Catalog()
        catalog.register(t)
        mgr = PatchIndexManager(catalog)
        mgr.create(t, "v", NearlyConstantColumn())
        return catalog, mgr

    def test_filter_on_constant_unions_flows(self, env):
        catalog, mgr = env
        plan = FilterNode(ScanNode("c"), col("v") == lit(42))
        opt = rewrite_constant_filter(plan, mgr.get, force=True)
        assert isinstance(opt, UnionNode)
        result = execute_plan(opt, catalog)
        reference = execute_plan(plan, catalog)
        assert result.num_rows == reference.num_rows == 197

    def test_filter_on_non_constant_probes_only_patches(self, env):
        catalog, mgr = env
        plan = FilterNode(ScanNode("c"), col("v") == lit(101))
        opt = rewrite_constant_filter(plan, mgr.get, force=True)
        assert isinstance(opt, FN)  # patches-only flow with the filter on top
        result = execute_plan(opt, catalog)
        assert result.num_rows == 1
        assert result.column("k")[0] == 77

    def test_literal_on_left_side(self, env):
        catalog, mgr = env
        plan = FilterNode(ScanNode("c"), lit(42) == col("v"))
        opt = rewrite_constant_filter(plan, mgr.get, force=True)
        assert opt is not None

    def test_non_equality_not_rewritten(self, env):
        catalog, mgr = env
        plan = FilterNode(ScanNode("c"), col("v") > lit(41))
        assert rewrite_constant_filter(plan, mgr.get, force=True) is None

    def test_no_index_no_rewrite(self, env):
        catalog, mgr = env
        plan = FilterNode(ScanNode("c"), col("k") == lit(0))
        assert rewrite_constant_filter(plan, mgr.get, force=True) is None

    def test_zbp_on_clean_column(self):
        t = ncc_table(outliers=(), name="clean")
        catalog = Catalog()
        catalog.register(t)
        mgr = PatchIndexManager(catalog)
        mgr.create(t, "v", NearlyConstantColumn())
        plan = FilterNode(ScanNode("clean"), col("v") == lit(42))
        opt = rewrite_constant_filter(
            plan, mgr.get, zero_branch_pruning=True, force=True
        )
        assert not isinstance(opt, UnionNode)
        assert execute_plan(opt, catalog).num_rows == 200
