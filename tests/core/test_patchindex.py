"""Unit tests for the PatchIndex structure (both designs)."""

import numpy as np
import pytest

from repro.core import (
    BITMAP_DESIGN,
    IDENTIFIER_DESIGN,
    NearlySortedColumn,
    NearlyUniqueColumn,
    PatchIndex,
)
from repro.storage import Table

DESIGNS = [BITMAP_DESIGN, IDENTIFIER_DESIGN]


def nuc_table(n=100, dup_every=10, name="t"):
    values = np.arange(n, dtype=np.int64)
    values[::dup_every] = -1  # every dup_every-th row shares value -1
    return Table.from_arrays(name, {"k": np.arange(n), "v": values})


def nsc_table(n=100, patches=(), name="t"):
    values = np.arange(n, dtype=np.int64)
    for p in patches:
        values[p] = -5  # breaks the ascending order at p (except p=0)
    return Table.from_arrays(name, {"k": np.arange(n), "v": values})


@pytest.mark.parametrize("design", DESIGNS)
class TestBuild:
    def test_nuc_build(self, design):
        t = nuc_table(100, 10)
        pi = PatchIndex(t, "v", NearlyUniqueColumn(), design=design)
        # 10 rows share value -1 -> all 10 are patches
        assert pi.num_patches == 10
        assert pi.exception_rate == pytest.approx(0.10)
        assert pi.verify()

    def test_nsc_build(self, design):
        t = nsc_table(100, patches=[50, 70])
        pi = PatchIndex(t, "v", NearlySortedColumn(), design=design)
        assert pi.num_patches == 2
        assert sorted(pi.patch_rowids().tolist()) == [50, 70]
        assert pi.last_sorted_value == 99
        assert pi.verify()

    def test_mask_and_rowids_agree(self, design):
        t = nuc_table(50, 5)
        pi = PatchIndex(t, "v", NearlyUniqueColumn(), design=design)
        mask = pi.patch_mask()
        assert len(mask) == 50
        np.testing.assert_array_equal(np.flatnonzero(mask), pi.patch_rowids())

    def test_is_patch(self, design):
        t = nsc_table(20, patches=[7])
        pi = PatchIndex(t, "v", NearlySortedColumn(), design=design)
        assert pi.is_patch(7)
        assert not pi.is_patch(8)

    def test_empty_table(self, design):
        t = Table.from_arrays("e", {"v": np.array([], dtype=np.int64)})
        pi = PatchIndex(t, "v", NearlyUniqueColumn(), design=design)
        assert pi.num_patches == 0
        assert pi.exception_rate == 0.0


@pytest.mark.parametrize("design", DESIGNS)
class TestMaintenancePrimitives:
    def test_extend_and_add(self, design):
        t = nuc_table(20, 100)
        pi = PatchIndex(t, "v", NearlyUniqueColumn(), design=design)
        pi.extend_rows(5)
        assert pi.num_rows == 25
        pi.add_patches([22, 24])
        assert sorted(pi.patch_rowids().tolist()) == [22, 24]

    def test_add_patches_idempotent(self, design):
        t = nuc_table(20, 100)
        pi = PatchIndex(t, "v", NearlyUniqueColumn(), design=design)
        pi.add_patches([5])
        pi.add_patches([5])
        assert pi.num_patches == 1

    def test_add_patch_out_of_range(self, design):
        t = nuc_table(10, 100)
        pi = PatchIndex(t, "v", NearlyUniqueColumn(), design=design)
        with pytest.raises(IndexError):
            pi.add_patches([10])

    def test_remove_rows_drops_and_shifts(self, design):
        t = nuc_table(20, 100)
        pi = PatchIndex(t, "v", NearlyUniqueColumn(), design=design)
        pi.add_patches([3, 10, 15])
        pi.remove_rows(np.array([3, 5]))  # patch 3 deleted; 10->8, 15->13
        assert pi.num_rows == 18
        assert sorted(pi.patch_rowids().tolist()) == [8, 13]

    def test_remove_rows_out_of_range(self, design):
        t = nuc_table(10, 100)
        pi = PatchIndex(t, "v", NearlyUniqueColumn(), design=design)
        with pytest.raises(IndexError):
            pi.remove_rows(np.array([10]))

    def test_negative_extend(self, design):
        t = nuc_table(10, 100)
        pi = PatchIndex(t, "v", NearlyUniqueColumn(), design=design)
        with pytest.raises(ValueError):
            pi.extend_rows(-1)

    def test_designs_agree_after_random_ops(self, design):
        rng = np.random.default_rng(0)
        t = nuc_table(200, 100)
        a = PatchIndex(t, "v", NearlyUniqueColumn(), design=BITMAP_DESIGN, build=True)
        b = PatchIndex(t, "v", NearlyUniqueColumn(), design=IDENTIFIER_DESIGN, build=True)
        for _ in range(10):
            n = a.num_rows
            new_patches = rng.choice(n, size=5, replace=False)
            a.add_patches(new_patches)
            b.add_patches(new_patches)
            dels = np.sort(rng.choice(n, size=7, replace=False))
            a.remove_rows(dels)
            b.remove_rows(dels)
        np.testing.assert_array_equal(a.patch_rowids(), b.patch_rowids())


class TestMemory:
    def test_bitmap_memory_is_constant_in_e(self):
        t1 = nuc_table(10000, 2)   # e = 0.5
        t2 = nuc_table(10000, 100)  # e = 0.01
        m1 = PatchIndex(t1, "v", NearlyUniqueColumn(), design=BITMAP_DESIGN).memory_bytes()
        m2 = PatchIndex(t2, "v", NearlyUniqueColumn(), design=BITMAP_DESIGN).memory_bytes()
        assert m1 == m2

    def test_identifier_memory_grows_with_e(self):
        t1 = nuc_table(10000, 2)
        t2 = nuc_table(10000, 100)
        m1 = PatchIndex(t1, "v", NearlyUniqueColumn(), design=IDENTIFIER_DESIGN).memory_bytes()
        m2 = PatchIndex(t2, "v", NearlyUniqueColumn(), design=IDENTIFIER_DESIGN).memory_bytes()
        assert m1 > m2

    def test_crossover_at_1_64(self):
        # identifier cheaper below e=1/64, bitmap cheaper above (§3.2)
        n = 64 * 1000
        values = np.arange(n, dtype=np.int64)
        values[: n // 16] = -1  # e ~ 1/16 > 1/64
        t = Table.from_arrays("t", {"v": values})
        bm = PatchIndex(t, "v", NearlyUniqueColumn(), design=BITMAP_DESIGN)
        ids = PatchIndex(t, "v", NearlyUniqueColumn(), design=IDENTIFIER_DESIGN)
        assert bm.memory_bytes() < ids.memory_bytes()


class TestInvalid:
    def test_unknown_design(self):
        with pytest.raises(ValueError):
            PatchIndex(nuc_table(), "v", NearlyUniqueColumn(), design="roaring")
