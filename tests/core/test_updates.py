"""Unit tests for PatchIndex update maintenance (paper §5)."""

import numpy as np
import pytest

from repro.core import (
    BITMAP_DESIGN,
    IDENTIFIER_DESIGN,
    NearlySortedColumn,
    NearlyUniqueColumn,
    PatchIndexManager,
)
from repro.core.updates import nuc_collision_patches
from repro.storage import PartitionedTable, Table

DESIGNS = [BITMAP_DESIGN, IDENTIFIER_DESIGN]


def unique_table(n=100, name="t"):
    return Table.from_arrays(
        name, {"k": np.arange(n), "v": np.arange(n, dtype=np.int64)},
        minmax_block_size=16,
    )


def sorted_table(n=100, name="t"):
    return Table.from_arrays(
        name, {"k": np.arange(n), "v": np.arange(n, dtype=np.int64) * 2},
        minmax_block_size=16,
    )


@pytest.mark.parametrize("design", DESIGNS)
class TestNUCInsert:
    def test_insert_unique_values_adds_no_patches(self, design):
        t = unique_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        t.insert({"k": np.array([100]), "v": np.array([1000])})
        assert pi.num_patches == 0
        assert pi.num_rows == 101
        assert pi.verify()

    def test_insert_collision_with_existing_value(self, design):
        t = unique_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        t.insert({"k": np.array([100]), "v": np.array([42])})  # 42 exists
        # both join sides become patches (§5.1)
        assert pi.num_patches == 2
        assert pi.verify()

    def test_insert_duplicates_within_batch(self, design):
        t = unique_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        t.insert({"k": np.array([100, 101, 102]), "v": np.array([777, 777, 777])})
        assert pi.num_patches == 3  # the whole colliding group
        assert pi.verify()

    def test_insert_value_equal_to_existing_patch_group(self, design):
        # table has duplicates -> one kept non-patch; inserting the same
        # value again must patch the new tuple, not resurrect old ones
        values = np.arange(100, dtype=np.int64)
        values[10] = values[20]  # duplicate pair
        t = Table.from_arrays("t", {"k": np.arange(100), "v": values})
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        assert pi.num_patches == 2
        t.insert({"k": np.array([100]), "v": np.array([values[20]])})
        assert pi.num_patches == 3
        assert pi.verify()

    def test_repeated_small_inserts(self, design):
        t = unique_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        for i in range(10):
            t.insert({"k": np.array([200 + i]), "v": np.array([50])})  # always collides
        # the original row with value 50 plus all 10 inserted rows
        assert pi.num_patches == 11
        assert pi.verify()


@pytest.mark.parametrize("design", DESIGNS)
class TestNSCInsert:
    def test_insert_extending_values(self, design):
        t = sorted_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlySortedColumn(), design=design)
        t.insert({"k": np.array([100, 101]), "v": np.array([200, 202])})
        assert pi.num_patches == 0
        assert pi.verify()

    def test_insert_below_boundary_becomes_patch(self, design):
        t = sorted_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlySortedColumn(), design=design)
        t.insert({"k": np.array([100]), "v": np.array([-7])})
        assert pi.num_patches == 1
        assert pi.verify()

    def test_insert_mixed_batch(self, design):
        t = sorted_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlySortedColumn(), design=design)
        # boundary is 198: 500/510 extend; 100 and 505-out-of-order is kept patch-wise
        t.insert({"k": np.arange(100, 104), "v": np.array([500, 100, 510, 505])})
        assert pi.verify()
        assert pi.num_patches == 2  # 100 and 505

    def test_boundary_value_advances(self, design):
        t = sorted_table(10)
        mgr = PatchIndexManager()
        handle = mgr.create(t, "v", NearlySortedColumn(), design=design)
        t.insert({"k": np.array([10]), "v": np.array([300])})
        t.insert({"k": np.array([11]), "v": np.array([299])})  # below new boundary
        assert handle.num_patches == 1
        assert handle.verify()


@pytest.mark.parametrize("design", DESIGNS)
class TestModify:
    def test_nuc_modify_creating_collision(self, design):
        t = unique_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        t.modify(np.array([5]), {"v": np.array([42])})  # now two rows = 42
        assert pi.num_patches == 2
        assert pi.verify()

    def test_nuc_modify_to_fresh_value(self, design):
        t = unique_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        t.modify(np.array([5]), {"v": np.array([123456])})
        assert pi.num_patches == 0
        assert pi.verify()

    def test_nuc_modify_other_column_ignored(self, design):
        t = unique_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        t.modify(np.array([5]), {"k": np.array([999])})
        assert pi.num_patches == 0

    def test_nsc_modify_always_patches(self, design):
        t = sorted_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlySortedColumn(), design=design)
        t.modify(np.array([5, 6]), {"v": np.array([5000, -1])})
        assert pi.num_patches == 2
        assert sorted(pi.patch_rowids().tolist()) == [5, 6]
        assert pi.verify()

    def test_nsc_modify_other_column_ignored(self, design):
        t = sorted_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlySortedColumn(), design=design)
        t.modify(np.array([5]), {"k": np.array([999])})
        assert pi.num_patches == 0


@pytest.mark.parametrize("design", DESIGNS)
class TestDelete:
    def test_delete_drops_patch_info(self, design):
        values = np.arange(100, dtype=np.int64)
        values[50] = 0  # rows 0 and 50 duplicated -> both patches
        t = Table.from_arrays("t", {"k": np.arange(100), "v": values})
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        assert pi.num_patches == 2
        t.delete(np.array([50]))
        # row 0 stays a (conservative) patch: §5.3's optimality loss
        assert pi.num_patches == 1
        assert pi.num_rows == 99
        assert pi.verify()

    def test_delete_shifts_remaining_patches(self, design):
        values = np.arange(100, dtype=np.int64)
        values[80] = 0  # patches at rows 0 and 80
        t = Table.from_arrays("t", {"k": np.arange(100), "v": values})
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        t.delete(np.array([10, 20]))
        assert pi.patch_rowids().tolist() == [0, 78]
        assert pi.verify()

    def test_delete_keeps_conservative_patches(self, design):
        # deleting one duplicate leaves the other as a (now unnecessary
        # but harmless) patch: optimality loss of §5.3
        values = np.arange(100, dtype=np.int64)
        values[60] = values[40]
        t = Table.from_arrays("t", {"k": np.arange(100), "v": values})
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn(), design=design)
        t.delete(np.array([40]))
        assert pi.num_patches == 1  # stays a patch
        assert pi.verify()  # still correct (superset of exceptions)


class TestManager:
    def test_duplicate_index_rejected(self):
        t = unique_table()
        mgr = PatchIndexManager()
        mgr.create(t, "v", NearlyUniqueColumn())
        with pytest.raises(ValueError):
            mgr.create(t, "v", NearlyUniqueColumn())

    def test_drop_detaches_hook(self):
        t = unique_table()
        mgr = PatchIndexManager()
        pi = mgr.create(t, "v", NearlyUniqueColumn())
        mgr.drop("t", "v")
        assert mgr.get("t", "v") is None
        t.insert({"k": np.array([100]), "v": np.array([42])})
        assert pi.num_rows == 100  # not maintained anymore

    def test_recompute_threshold_triggers_rebuild(self):
        t = sorted_table(50)
        mgr = PatchIndexManager()
        handle = mgr.create(
            t, "v", NearlySortedColumn(), recompute_threshold=0.2
        )
        # patch 40% of rows via modifies -> rebuild discovers minimal set
        t.modify(np.arange(20), {"v": t.column("v")[np.arange(20)]})
        assert handle.exception_rate <= 0.2 or handle.num_patches == 0
        assert handle.verify()

    def test_catalog_registration(self):
        from repro.storage import Catalog

        cat = Catalog()
        t = unique_table()
        cat.register(t)
        mgr = PatchIndexManager(cat)
        handle = mgr.create(t, "v", NearlyUniqueColumn())
        assert cat.structure("patchindex", "t", "v") is handle
        mgr.drop("t", "v")
        assert cat.structure("patchindex", "t", "v") is None


class TestPartitioned:
    def test_partitioned_index_build_and_mask(self):
        values = np.arange(80, dtype=np.int64)
        values[10] = values[11]  # one duplicate pair
        t = Table.from_arrays("t", {"k": np.arange(80), "v": values})
        pt = PartitionedTable.from_table(t, "k", 4)
        mgr = PatchIndexManager()
        handle = mgr.create(pt, "v", NearlyUniqueColumn())
        assert handle.num_rows == 80
        assert handle.num_patches == 2
        assert len(handle.patch_mask()) == 80
        assert handle.verify()

    def test_partitioned_insert_maintains_local_index(self):
        t = Table.from_arrays(
            "t", {"k": np.arange(80), "v": np.arange(80, dtype=np.int64)}
        )
        pt = PartitionedTable.from_table(t, "k", 4)
        mgr = PatchIndexManager()
        handle = mgr.create(pt, "v", NearlyUniqueColumn())
        pt.insert({"k": np.array([100]), "v": np.array([79])})  # collides in last part
        assert handle.num_patches == 2
        assert handle.verify()

    def test_partitioned_delete(self):
        t = Table.from_arrays(
            "t", {"k": np.arange(80), "v": np.arange(80, dtype=np.int64)}
        )
        pt = PartitionedTable.from_table(t, "k", 4)
        mgr = PatchIndexManager()
        handle = mgr.create(pt, "v", NearlyUniqueColumn())
        pt.delete_global(np.array([0, 25, 79]))
        assert handle.num_rows == 77
        assert handle.verify()


class TestCollisionPatchesUnit:
    def test_whole_colliding_group_becomes_patches(self):
        values = np.array([7, 7, 7, 9])
        candidates = np.array([0, 1, 2])
        mask = np.zeros(4, dtype=bool)
        out = nuc_collision_patches(values, candidates, mask)
        assert out.tolist() == [0, 1, 2]

    def test_existing_patches_never_returned(self):
        values = np.array([7, 7, 7])
        candidates = np.array([0, 1, 2])
        mask = np.array([True, False, False])
        out = nuc_collision_patches(values, candidates, mask)
        assert out.tolist() == [1, 2]  # row 0 already a patch, not re-added

    def test_empty_candidates(self):
        out = nuc_collision_patches(np.array([1]), np.array([], dtype=np.int64), np.zeros(1, bool))
        assert len(out) == 0
