"""Integration tests spanning storage, core, plan, sql and baselines."""

import numpy as np

from repro.core import (
    NearlySortedColumn,
    NearlyUniqueColumn,
    PatchIndexManager,
)
from repro.engine import col
from repro.materialization import JoinIndex, MaterializedView, SortKey
from repro.plan import (
    DistinctNode,
    Optimizer,
    ScanNode,
    SortNode,
    execute_plan,
)
from repro.sql import SQLSession
from repro.storage import Catalog, Snapshot, Table
from repro.workloads import generate_dataset, generate_tpch, perturb_order
from repro.workloads.tpch_queries import q3_plan, q12_plan


class TestLifecycleNUC:
    """Create → query → update → query → recompute, distinct scenario."""

    def test_full_lifecycle(self):
        ds = generate_dataset(20_000, 0.1, "nuc", seed=1, name="life")
        catalog = Catalog()
        catalog.register(ds.table)
        mgr = PatchIndexManager(catalog)
        handle = mgr.create(ds.table, "v", NearlyUniqueColumn())
        opt = Optimizer(catalog, mgr, use_cost_model=False)

        def run_distinct():
            plan = opt.optimize(DistinctNode(ScanNode("life", ["v"]), ["v"]))
            return execute_plan(plan, catalog)

        reference = np.unique(ds.table.column("v"))
        assert run_distinct().num_rows == len(reference)

        # mixed updates
        ds.table.insert({"k": np.arange(20_000, 20_100),
                         "v": ds.table.column("v")[:100]})  # all collide
        ds.table.delete(np.arange(50))
        ds.table.modify(np.array([0, 1]), {"v": np.array([-1, -1])})
        assert handle.verify()
        reference = np.unique(ds.table.column("v"))
        assert run_distinct().num_rows == len(reference)

        # drift recovery: a rebuild shrinks the conservative patch set
        before = handle.num_patches
        handle.index.rebuild()
        assert handle.num_patches <= before
        assert run_distinct().num_rows == len(reference)


class TestLifecycleNSCPartitioned:
    def test_partitioned_sort_pipeline_under_updates(self):
        ds = generate_dataset(8_000, 0.05, "nsc", num_partitions=4, seed=2, name="pl")
        catalog = Catalog()
        catalog.register(ds.table)
        mgr = PatchIndexManager(catalog)
        handle = mgr.create(ds.table, "v", NearlySortedColumn())
        opt = Optimizer(catalog, mgr, use_cost_model=False)

        def run_sort():
            plan = opt.optimize(SortNode(ScanNode("pl", ["v"]), ["v"]))
            return execute_plan(plan, catalog).column("v")

        np.testing.assert_array_equal(run_sort(), np.sort(ds.table.column("v")))
        ds.table.insert({"k": np.array([90_000]), "v": np.array([-3])})
        ds.table.delete_global(np.array([10, 4_000]))
        assert handle.verify()
        np.testing.assert_array_equal(run_sort(), np.sort(ds.table.column("v")))


class TestSQLOverTPCH:
    def test_sql_q12_like_query_with_patchindex(self):
        data = generate_tpch(scale=0.005, seed=3)
        catalog = Catalog()
        data.register(catalog)
        lineitem = perturb_order(data.lineitem, 0.05, seed=4)
        catalog.register(lineitem)
        catalog.add_structure("sortkey", "orders", "o_orderkey", object())
        mgr = PatchIndexManager(catalog)
        mgr.create(lineitem, "l_orderkey", NearlySortedColumn())
        session = SQLSession(catalog, index_manager=mgr, use_cost_model=False)
        sql = (
            "SELECT l_shipmode, COUNT(*) AS n FROM orders "
            "JOIN lineitem ON o_orderkey = l_orderkey "
            "WHERE l_shipmode IN ('MAIL', 'SHIP') "
            "GROUP BY l_shipmode ORDER BY l_shipmode"
        )
        assert "Join[merge]" in session.explain(sql)
        out = session.execute(sql)
        plain = SQLSession(catalog)
        reference = plain.execute(sql)
        np.testing.assert_array_equal(out.column("n"), reference.column("n"))

    def test_plan_and_sql_agree_on_q3_and_q12(self):
        data = generate_tpch(scale=0.005, seed=5)
        catalog = Catalog()
        data.register(catalog)
        for make_plan in (q3_plan, q12_plan):
            out = execute_plan(make_plan(), catalog)
            assert out.num_rows >= 0  # executes cleanly end-to-end


class TestBaselinesSideBySide:
    def test_patchindex_and_matview_stay_consistent_under_updates(self):
        ds = generate_dataset(10_000, 0.2, "nuc", seed=6, name="both")
        catalog = Catalog()
        catalog.register(ds.table)
        mgr = PatchIndexManager(catalog)
        handle = mgr.create(ds.table, "v", NearlyUniqueColumn())
        mv = MaterializedView(ds.table, "v")  # immediate refresh
        for step in range(5):
            ds.table.insert({
                "k": np.array([50_000 + step]),
                "v": np.array([step]),  # collides with pool values
            })
        assert handle.verify()
        assert not mv.is_stale
        # both answer the distinct query identically
        opt = Optimizer(catalog, mgr, use_cost_model=False)
        plan = opt.optimize(DistinctNode(ScanNode("both", ["v"]), ["v"]))
        via_pi = np.sort(execute_plan(plan, catalog).column("v"))
        np.testing.assert_array_equal(via_pi, mv.scan_values())
        mv.detach()

    def test_joinindex_and_patchindex_query_agreement(self):
        data = generate_tpch(scale=0.005, seed=7)
        catalog = Catalog()
        data.register(catalog)
        catalog.add_structure("sortkey", "orders", "o_orderkey", object())
        mgr = PatchIndexManager(catalog)
        mgr.create(data.lineitem, "l_orderkey", NearlySortedColumn())
        ji = JoinIndex(data.lineitem, "l_orderkey", data.orders, "o_orderkey",
                       auto_maintain=False)
        joined = ji.join(["l_extendedprice"], ["o_orderdate"])
        opt = Optimizer(catalog, mgr, zero_branch_pruning=True,
                        use_cost_model=False).optimize(q3_plan())
        out = execute_plan(opt, catalog)
        reference = execute_plan(q3_plan(), catalog)
        np.testing.assert_allclose(
            np.sort(out.column("revenue")), np.sort(reference.column("revenue"))
        )
        assert len(joined["o_orderdate"]) == data.lineitem.num_rows


class TestSnapshotInterplay:
    def test_snapshot_isolates_queries_from_index_maintenance(self):
        ds = generate_dataset(5_000, 0.1, "nuc", seed=8, name="snap")
        mgr = PatchIndexManager()
        handle = mgr.create(ds.table, "v", NearlyUniqueColumn())
        snap = Snapshot(ds.table)
        ds.table.delete(np.arange(1_000))
        assert snap.num_rows == 5_000
        assert handle.num_rows == 4_000
        assert handle.verify()


class TestCostModelProtection:
    def test_cost_model_rejects_tiny_join_rewrite(self):
        """Q12-style protection: the optimizer should not clone subtrees
        when the join is too small to amortize the overhead (§6.3)."""
        dim = Table.from_arrays("d", {"dk": np.arange(50, dtype=np.int64)})
        fact = Table.from_arrays(
            "f",
            {"fk": np.sort(np.arange(100, dtype=np.int64) % 50),
             "pay": np.arange(100)},
        )
        catalog = Catalog()
        catalog.register(dim)
        catalog.register(fact)
        catalog.add_structure("sortkey", "d", "dk", object())
        mgr = PatchIndexManager(catalog)
        mgr.create(fact, "fk", NearlySortedColumn())
        from repro.plan import JoinNode

        plan = JoinNode(ScanNode("d"), ScanNode("f"), "dk", "fk")
        # forced: rewrite fires
        forced = Optimizer(catalog, mgr, use_cost_model=False).optimize(plan)
        assert "Join[merge]" in forced.explain()
        # cost-gated: the optimizer keeps the small hash join as-is or
        # produces something estimated cheaper — never something the cost
        # model scores worse
        from repro.plan import CostModel

        gated = Optimizer(catalog, mgr, use_cost_model=True).optimize(plan)
        cm = CostModel(catalog)
        assert cm.cost(gated) <= cm.cost(plan)


class TestSortKeyVsPatchIndexQueries:
    def test_same_sorted_output(self):
        ds = generate_dataset(6_000, 0.1, "nsc", seed=9, name="sk")
        catalog = Catalog()
        catalog.register(ds.table)
        sk = SortKey(ds.table, "v", refresh_policy="manual")
        mgr = PatchIndexManager(catalog)
        mgr.create(ds.table, "v", NearlySortedColumn())
        opt = Optimizer(catalog, mgr, use_cost_model=False)
        plan = opt.optimize(SortNode(ScanNode("sk", ["v"]), ["v"]))
        via_pi = execute_plan(plan, catalog).column("v")
        via_sk = sk.scan_sorted(["v"])["v"]
        np.testing.assert_array_equal(via_pi, via_sk)
