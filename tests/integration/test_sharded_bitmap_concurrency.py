"""Concurrency tests for shard-granular bitmap mutation (paper §5.4)."""

import threading

import numpy as np

from repro.bitmap import ShardedBitmap
from repro.storage import ShardLockManager

SHARD = 256


class TestConcurrentShardMutation:
    def test_disjoint_shard_sets_commute(self):
        """Concurrent set() on disjoint shards with per-shard locks."""
        nshards = 8
        bm = ShardedBitmap(nshards * SHARD, shard_bits=SHARD)
        locks = ShardLockManager(nshards)
        errors = []

        def worker(shard: int):
            try:
                base = shard * SHARD
                for i in range(SHARD):
                    with locks.locked(shard):
                        bm.set(base + i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(nshards)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert bm.count() == nshards * SHARD

    def test_concurrent_decrements_commute(self):
        """§5.4: start-value decrements commute, so any interleaving of
        shard-local deletes yields the same final start values."""
        rng = np.random.default_rng(0)
        n = 16 * SHARD
        targets = np.sort(rng.choice(n, size=200, replace=False))
        # sequential reference
        ref = ShardedBitmap(n, shard_bits=SHARD)
        ref.set_many(np.arange(0, n, 7))
        ref.bulk_delete(targets)
        # "concurrent" = different grouping/order of the same deletes,
        # descending order preserved globally
        out = ShardedBitmap(n, shard_bits=SHARD)
        out.set_many(np.arange(0, n, 7))
        chunks = np.array_split(targets, 5)
        for chunk in reversed(chunks):  # later positions deleted first
            out.bulk_delete(chunk)
        np.testing.assert_array_equal(out.to_bool_array(), ref.to_bool_array())

    def test_locked_many_no_deadlock_on_overlapping_sets(self):
        locks = ShardLockManager(16)
        stop = threading.Event()
        errors = []

        def worker(seed: int):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(100):
                    shards = rng.choice(16, size=4, replace=False)
                    with locks.locked_many(shards.tolist()):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert all(not t.is_alive() for t in threads)
