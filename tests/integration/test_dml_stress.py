"""Stress: a randomized DML stream under every parallelism level.

Three sessions (parallelism 1, 2, 8) replay one randomized stream of
UPDATE/DELETE/INSERT/SELECT statements against separate but identical
catalogs; after every statement the table images must match exactly.
Each catalog carries a maintained PatchIndex with a maintenance pool and
an auto-condense threshold, so the stream also drives parallel bulk
deletes and shard-local parallel condense through the update hooks —
the full §4.2 maintenance path, not just the predicate scan.
"""

import numpy as np

from repro.core import NearlySortedColumn, PatchIndexManager
from repro.sql.session import SQLSession
from repro.storage import Catalog, Table

PARALLELISMS = [1, 2, 8]
NUM_ROWS = 30_000
NUM_STATEMENTS = 60


def build_catalog():
    rng = np.random.default_rng(42)
    values = np.arange(NUM_ROWS, dtype=np.int64)
    noise = rng.random(NUM_ROWS) < 0.02
    values[noise] = rng.integers(0, NUM_ROWS, int(noise.sum()))
    table = Table.from_arrays(
        "stream",
        {
            "k": np.arange(NUM_ROWS, dtype=np.int64),
            "v": values,
            "x": rng.random(NUM_ROWS),
        },
    )
    catalog = Catalog()
    catalog.register(table)
    manager = PatchIndexManager(catalog)
    manager.create(
        table,
        "v",
        NearlySortedColumn(),
        parallelism=4,
        condense_threshold=0.05,
        shard_bits=1024,
    )
    return catalog, manager


def statement_stream(rng):
    for i in range(NUM_STATEMENTS):
        kind = rng.integers(0, 10)
        a = int(rng.integers(0, 100))
        b = round(float(rng.random()), 3)
        if kind < 4:
            yield f"UPDATE stream SET x = x * {1 + b} WHERE k % 100 = {a}"
        elif kind < 7:
            yield f"DELETE FROM stream WHERE x < {b / 8}"
        elif kind < 8:
            key = NUM_ROWS + i
            yield (
                "INSERT INTO stream (k, v, x) "
                f"VALUES ({key}, {key}, {b})"
            )
        else:
            yield "SELECT COUNT(*) AS n FROM stream WHERE x > 0.5"


def test_randomized_dml_stream_equivalence():
    setups = [build_catalog() for _ in PARALLELISMS]
    sessions = [
        SQLSession(catalog, parallelism=p, morsel_rows=1024)
        for (catalog, _), p in zip(setups, PARALLELISMS)
    ]
    try:
        rng = np.random.default_rng(7)
        for sql in statement_stream(rng):
            results = [session.execute(sql) for session in sessions]
            if sql.startswith("SELECT"):
                first = results[0].column("n")
                for other in results[1:]:
                    np.testing.assert_array_equal(other.column("n"), first)
            else:
                assert len(set(results)) == 1, sql
            baseline = setups[0][0].table("stream")
            for catalog, _ in setups[1:]:
                other = catalog.table("stream")
                assert other.num_rows == baseline.num_rows, sql
                for name in baseline.schema.names:
                    np.testing.assert_array_equal(
                        other.column(name), baseline.column(name), err_msg=sql
                    )
        # maintained indexes stayed consistent through the whole stream
        for catalog, manager in setups:
            handle = manager.get("stream", "v")
            assert handle.verify()
    finally:
        for session in sessions:
            session.close()
