"""Randomized async stress: concurrent clients vs. serial replay.

Seeded fuzz over the whole async surface: 2/4/8 concurrent clients
fire a randomized mix of queries, DML, ``SET parallelism`` and
SortKey-refreshing writes (an immediate-refresh SortKey — including a
*descending* one on a partitioned table, exercising the k-way merge's
reversed-stable tie rule — hangs off the mutated tables) at one
``AsyncSQLSession``.  The committed write log is then replayed, in
commit order, on a fresh blocking ``SQLSession`` over an identical
catalog: the final table states, SortKey materializations and refresh
counts must be **bit-identical** — whatever interleaving the scheduler
chose, the outcome is one of the serial histories.

Seeded and deterministic per client; every await is wrapped in a
timeout so a scheduling bug fails fast instead of hanging CI.
"""

import asyncio

import numpy as np
import pytest

from repro.materialization.sortkey import SortKey
from repro.sql import AsyncSQLSession, SQLSession
from repro.storage import Catalog, PartitionedTable, Table

TIMEOUT = 180.0
N_EVENTS = 6_000
N_METRICS = 4_000
STATEMENTS_PER_CLIENT = 18
MORSEL_ROWS = 1024


def run_async(coro, timeout: float = TIMEOUT):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def make_catalog(seed: int):
    """events (plain) + metrics (4-way partitioned), with an ascending
    SortKey on events and a descending SortKey on metrics."""
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    events = Table.from_arrays(
        "events",
        {
            "eid": np.arange(N_EVENTS, dtype=np.int64),
            "grp": rng.integers(0, 30, N_EVENTS).astype(np.int64),
            "val": rng.random(N_EVENTS),
        },
    )
    metrics_base = Table.from_arrays(
        "metrics",
        {
            "mid": np.arange(N_METRICS, dtype=np.int64),
            "bucket": rng.integers(0, 12, N_METRICS).astype(np.int64),
            "v": rng.random(N_METRICS),
        },
    )
    metrics = PartitionedTable.from_table(metrics_base, "mid", 4)
    catalog.register(events)
    catalog.register(metrics)
    sortkeys = {
        "events": SortKey(events, "grp", ascending=True),
        "metrics": SortKey(metrics, "v", ascending=False),
    }
    return catalog, sortkeys


READS = [
    "SELECT COUNT(*) AS n FROM events WHERE grp < {k}",
    "SELECT SUM(val) AS s FROM events WHERE grp % 3 = {m3}",
    "SELECT grp, COUNT(*) AS n FROM events GROUP BY grp ORDER BY grp",
    "SELECT eid, val FROM events WHERE val > 0.9 ORDER BY val DESC, eid LIMIT 20",
    "SELECT COUNT(*) AS n FROM metrics WHERE bucket = {b}",
    "SELECT mid FROM metrics WHERE v < 0.1 ORDER BY mid LIMIT 15",
    "SELECT bucket, SUM(v) AS s FROM metrics GROUP BY bucket ORDER BY bucket",
]
WRITES = [
    "UPDATE events SET val = val * 1.02 WHERE grp = {k}",
    "UPDATE events SET grp = grp + 1 WHERE val < 0.02 AND grp < 25",
    "DELETE FROM events WHERE eid % 211 = {m7}",
    "INSERT INTO events (eid, grp, val) VALUES ({ins}, {k}, 0.5)",
    "UPDATE metrics SET v = v / 1.01 WHERE bucket = {b}",
    "DELETE FROM metrics WHERE mid % 307 = {m7}",
]
SETS = ["SET parallelism = 1", "SET parallelism = 2", "SET parallelism = 3"]


def client_statements(rng: np.random.Generator, client_id: int):
    out = []
    for step in range(STATEMENTS_PER_CLIENT):
        params = {
            "k": int(rng.integers(0, 30)),
            "m3": int(rng.integers(0, 3)),
            "m7": int(rng.integers(0, 7)),
            "b": int(rng.integers(0, 12)),
            # unique eid per (client, step): inserts never collide
            "ins": 1_000_000 + client_id * 1_000 + step,
        }
        r = rng.random()
        if r < 0.55:
            template = READS[rng.integers(len(READS))]
        elif r < 0.92:
            template = WRITES[rng.integers(len(WRITES))]
        else:
            template = SETS[rng.integers(len(SETS))]
        out.append(template.format(**params))
    return out


def assert_table_equal(a, b, name):
    if isinstance(a, PartitionedTable):
        assert isinstance(b, PartitionedTable)
        assert a.num_partitions == b.num_partitions, name
        pairs = list(zip(a.partitions, b.partitions))
    else:
        pairs = [(a, b)]
    for i, (pa, pb) in enumerate(pairs):
        assert pa.num_rows == pb.num_rows, (name, i)
        for col in pa.schema.names:
            x, y = pa.column(col), pb.column(col)
            assert x.dtype == y.dtype, (name, i, col)
            np.testing.assert_array_equal(x, y, err_msg=f"{name}[{i}].{col}")


@pytest.mark.parametrize("clients", [2, 4, 8])
def test_fuzz_final_state_matches_serial_replay(clients):
    seed = 9_000 + clients
    write_records = []

    async def client(db, statements):
        for sql in statements:
            _, stats = await db.execute(sql, with_stats=True)
            if stats.kind == "write":
                write_records.append((stats.write_seq, sql))

    async def main():
        catalog, sortkeys = make_catalog(seed)
        async with AsyncSQLSession(
            catalog,
            parallelism=2,
            morsel_rows=MORSEL_ROWS,
            max_inflight=clients,
            stats_history=10_000,
        ) as db:
            jobs = []
            for i in range(clients):
                rng = np.random.default_rng(seed * 10 + i)
                jobs.append(client(db, client_statements(rng, i)))
            await asyncio.gather(*jobs)
            assert db.commit_count == len(write_records)
        return catalog, sortkeys

    catalog, sortkeys = run_async(main())

    # commit order is gapless FIFO
    seqs = sorted(seq for seq, _ in write_records)
    assert seqs == list(range(1, len(write_records) + 1))

    # serial replay of the committed write log on a blocking session
    replay_catalog, replay_sortkeys = make_catalog(seed)
    replay = SQLSession(replay_catalog)
    for _, sql in sorted(write_records):
        replay.execute(sql)

    for name in ("events", "metrics"):
        assert_table_equal(
            catalog.table(name), replay_catalog.table(name), name
        )
        sk, rsk = sortkeys[name], replay_sortkeys[name]
        assert sk.refresh_count == rsk.refresh_count, name
        got, want = sk.scan_sorted(), rsk.scan_sorted()
        assert got.keys() == want.keys()
        for col in want:
            np.testing.assert_array_equal(
                got[col], want[col], err_msg=f"sortkey {name}.{col}"
            )
        sk.detach()
        rsk.detach()


@pytest.mark.parametrize("clients", [4])
def test_fuzz_reads_never_see_torn_state(clients):
    """A cheap invariant probe on top of the replay test: the events
    table keeps ``val`` finite and ``grp`` within the range the write
    mix can produce, for every read the fuzz run performs."""
    seed = 77

    async def main():
        catalog, sortkeys = make_catalog(seed)
        async with AsyncSQLSession(
            catalog, parallelism=2, morsel_rows=MORSEL_ROWS, max_inflight=clients
        ) as db:

            async def mutator(i):
                rng = np.random.default_rng(300 + i)
                for _ in range(10):
                    k = int(rng.integers(0, 30))
                    await db.execute(
                        f"UPDATE events SET val = val * 1.01 WHERE grp = {k}"
                    )

            async def checker():
                for _ in range(12):
                    rel = await db.execute(
                        "SELECT COUNT(*) AS n FROM events WHERE val < 0.0"
                    )
                    assert rel.column("n").tolist() == [0]

            await asyncio.gather(mutator(0), mutator(1), checker(), checker())
        for sk in sortkeys.values():
            sk.detach()

    run_async(main())
