"""Concurrency stress for the morsel-parallel executor.

Complements ``test_sharded_bitmap_concurrency.py``: that file covers the
bitmap layer, this one hammers the execution layer — many client threads
sharing one :class:`~repro.engine.parallel.ExecutionContext` (and one
:class:`~repro.sql.SQLSession`), all queries running with parallel
morsel dispatch at once.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.engine import col
from repro.engine.parallel import ExecutionContext
from repro.plan import AggregateNode, FilterNode, ScanNode, execute_plan
from repro.sql import AsyncSQLSession, ConcurrentSessionError, SQLSession
from repro.storage import Catalog, Table

N_ROWS = 20_000
N_THREADS = 6
N_QUERIES = 15


@pytest.fixture
def catalog():
    rng = np.random.default_rng(42)
    table = Table.from_arrays(
        "events",
        {
            "eid": np.arange(N_ROWS, dtype=np.int64),
            "grp": rng.integers(0, 25, N_ROWS).astype(np.int64),
            "val": rng.random(N_ROWS),
        },
    )
    catalog = Catalog()
    catalog.register(table)
    return catalog


def run_threads(worker, n_threads=N_THREADS):
    errors = []

    def guarded(i):
        try:
            worker(i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=guarded, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert all(not t.is_alive() for t in threads), "worker thread hung"
    assert not errors, errors


class TestSharedContextStress:
    def test_concurrent_plan_execution(self, catalog):
        """N client threads × M queries over one shared worker pool."""
        plans = [
            FilterNode(ScanNode("events"), col("val") > 0.6),
            AggregateNode(
                ScanNode("events"), ["grp"], {"s": ("sum", "val"), "n": ("count", None)}
            ),
            AggregateNode(
                FilterNode(ScanNode("events"), col("grp") < 10),
                ["grp"],
                {"hi": ("max", "val")},
            ),
        ]
        expected = [execute_plan(p, catalog) for p in plans]

        with ExecutionContext(parallelism=4, morsel_rows=512, min_parallel_rows=0) as ctx:

            def worker(i):
                for q in range(N_QUERIES):
                    k = (i + q) % len(plans)
                    out = execute_plan(plans[k], catalog, context=ctx)
                    want = expected[k]
                    assert out.column_names == want.column_names
                    for name in want.column_names:
                        np.testing.assert_array_equal(out.column(name), want.column(name))

            run_threads(worker)

    def test_map_hammered_from_many_threads(self):
        """ctx.map itself is safe under concurrent callers."""
        with ExecutionContext(parallelism=3) as ctx:

            def worker(i):
                for q in range(50):
                    items = list(range(i, i + 20))
                    assert ctx.map(lambda x: x * 2, items) == [x * 2 for x in items]

            run_threads(worker)


class TestSessionConcurrency:
    QUERIES = [
        "SELECT grp, SUM(val) AS s FROM events GROUP BY grp ORDER BY grp",
        "SELECT eid FROM events WHERE val > 0.9 ORDER BY eid",
        "SELECT COUNT(*) AS n FROM events WHERE grp = 7",
    ]

    def test_blocking_session_rejects_concurrent_threads(self, catalog):
        """Hammering one blocking session from threads never corrupts:
        every call either returns the right answer or is rejected with
        ``ConcurrentSessionError`` (the supported concurrent path is
        ``AsyncSQLSession``)."""
        expected = {}
        serial = SQLSession(catalog)
        for sql in self.QUERIES:
            expected[sql] = serial.execute(sql)
        rejected = []

        with SQLSession(catalog, parallelism=4, morsel_rows=512) as session:

            def worker(i):
                for sql in self.QUERIES * 5:
                    want = expected[sql]
                    try:
                        out = session.execute(sql)
                    except ConcurrentSessionError:
                        rejected.append(sql)
                        continue
                    for name in want.column_names:
                        np.testing.assert_array_equal(out.column(name), want.column(name))

            run_threads(worker)
        # overlap is scheduling-dependent, so no count is asserted; the
        # invariant is that nothing was silently wrong

    def test_async_session_is_the_concurrent_path(self, catalog):
        """The same multi-client workload through ``AsyncSQLSession``
        runs concurrently and every result is bit-identical."""
        expected = {}
        serial = SQLSession(catalog)
        for sql in self.QUERIES:
            expected[sql] = serial.execute(sql)

        async def main():
            async with AsyncSQLSession(
                catalog, parallelism=4, morsel_rows=512, max_inflight=N_THREADS
            ) as db:

                async def client(i):
                    for sql in self.QUERIES * 5:
                        out = await db.execute(sql)
                        want = expected[sql]
                        for name in want.column_names:
                            np.testing.assert_array_equal(
                                out.column(name), want.column(name)
                            )

                await asyncio.gather(*(client(i) for i in range(N_THREADS)))

        asyncio.run(asyncio.wait_for(main(), timeout=120))
