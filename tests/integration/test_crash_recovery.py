"""Kill-anywhere chaos: crash at every durability fault point, recover,
and compare against serial replay of the durable commit-log prefix.

Concurrent clients hammer one durable :class:`AsyncSQLSession` while a
seeded injector crashes the commit path at one of the registered
durability fault points (``wal.append``, ``wal.fsync``,
``checkpoint.write``).  The session is then *abandoned* — no drain, no
final sync, no shutdown checkpoint — exactly what a killed process
leaves behind.  A fresh session recovers the data directory and the
recovered tables must be bit-identical to a serial replay of the WAL's
committed record prefix on a fresh catalog.  Under ``wal_sync = fsync``
every acknowledged write must be in that prefix (no lost acked writes);
under ``group``/``off`` a simulated power loss truncates the WAL to the
fsynced offset and only the *prefix* property is required — but never a
duplicated or reordered commit.

``test_real_process_kill`` does it without simulation: a child process
``os._exit``s at the injected fault point and the parent recovers what
the corpse left on disk.
"""

import asyncio
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.sql import AsyncSQLSession, SQLSession
from repro.storage import Catalog, PartitionedTable, Table, recovery
from repro.testing import FaultInjector, FaultRule, InjectedFaultError, inject

TIMEOUT = 120.0
N_EVENTS = 2_000
N_METRICS = 1_200
STATEMENTS_PER_CLIENT = 10
CRASH_POINTS = ("wal.append", "wal.fsync", "checkpoint.write")


def run_async(coro, timeout: float = TIMEOUT):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def make_catalog(seed: int) -> Catalog:
    """events (plain) + metrics (3-way partitioned), seeded."""
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(N_EVENTS, dtype=np.int64),
                "grp": rng.integers(0, 20, N_EVENTS).astype(np.int64),
                "val": rng.random(N_EVENTS),
            },
        )
    )
    metrics = Table.from_arrays(
        "metrics",
        {
            "mid": np.arange(N_METRICS, dtype=np.int64),
            "bucket": rng.integers(0, 8, N_METRICS).astype(np.int64),
            "v": rng.random(N_METRICS),
        },
    )
    catalog.register(PartitionedTable.from_table(metrics, "mid", 3))
    return catalog


def assert_table_equal(a, b, name: str) -> None:
    if isinstance(a, PartitionedTable):
        assert isinstance(b, PartitionedTable)
        assert a.num_partitions == b.num_partitions, name
        pairs = list(zip(a.partitions, b.partitions))
    else:
        pairs = [(a, b)]
    for i, (pa, pb) in enumerate(pairs):
        assert pa.num_rows == pb.num_rows, (name, i)
        for col in pa.schema.names:
            x, y = pa.column(col), pb.column(col)
            assert x.dtype == y.dtype, (name, i, col)
            np.testing.assert_array_equal(x, y, err_msg=f"{name}[{i}].{col}")


READS = [
    "SELECT COUNT(*) AS n FROM events WHERE grp < {k}",
    "SELECT bucket, SUM(v) AS s FROM metrics GROUP BY bucket ORDER BY bucket",
]
WRITES = [
    "UPDATE events SET val = val * 1.02 WHERE grp = {k}",
    "DELETE FROM events WHERE eid % 173 = {m7}",
    "INSERT INTO events (eid, grp, val) VALUES ({ins}, {k}, 0.5)",
    "UPDATE metrics SET v = v / 1.01 WHERE bucket = {b}",
]


async def chaos_client(session, client_id, seed, acked, crashed):
    """One seeded client; stops dead the moment the injected crash fires."""
    rng = np.random.default_rng(seed * 613 + client_id)
    for step in range(STATEMENTS_PER_CLIENT):
        if crashed["dead"]:
            return
        params = {
            "k": int(rng.integers(0, 20)),
            "m7": int(rng.integers(0, 7)),
            "b": int(rng.integers(0, 8)),
            "ins": 1_000_000 + client_id * 1_000 + step,
        }
        if rng.random() < 0.30:
            sql = READS[rng.integers(len(READS))].format(**params)
        else:
            sql = WRITES[rng.integers(len(WRITES))].format(**params)
        try:
            _, stats = await session.execute(sql, with_stats=True)
        except InjectedFaultError:
            crashed["dead"] = True  # the process just died at the fault
            return
        if stats.kind == "write":
            acked.append((stats.write_seq, sql))


def run_crash_chaos(
    clients: int,
    seed: int,
    crash_point: str,
    wal_sync: str = "fsync",
    power_loss: bool = False,
    probability: float = 0.35,
    data_dir: str = "",
):
    """One crash run: chaos -> abandon -> (power loss) -> recover -> oracle."""
    injector = FaultInjector(
        seed=seed,
        rules={
            crash_point: FaultRule(
                action="raise", probability=probability, max_fires=1
            )
        },
    )
    acked = []
    crashed = {"dead": False}

    async def main():
        session = AsyncSQLSession(
            make_catalog(seed),
            parallelism=2,
            morsel_rows=1024,
            data_dir=data_dir,
            wal_sync=wal_sync,
            checkpoint_interval=4,
            checkpoint_retain=10_000,  # keep the full history for the oracle
        )
        with inject(injector):
            await asyncio.gather(
                *(
                    chaos_client(session, i, seed, acked, crashed)
                    for i in range(clients)
                )
            )
        wal = session.durability.wal
        synced, active_segment = wal.synced_offset, wal.path
        # abandon the session: release the worker pool, but no drain
        # checkpoint and no final fsync — the crash already happened
        session._context.close()
        return synced, active_segment

    synced_offset, active_segment = run_async(main())
    assert injector.fired.get(crash_point, 0) == 1, (
        f"crash at {crash_point} never fired for seed {seed}"
    )

    if power_loss:
        # everything past the last fsync evaporates with the machine
        with open(active_segment, "r+b") as fh:
            fh.truncate(synced_offset)

    # the durable commit log: gapless, no duplicates, commit order
    records = recovery.read_records(data_dir)
    writes = [r for r in records if r.kind == "write"]
    assert [r.seq for r in records] == list(range(1, len(records) + 1))
    assert len(set(s for s, _ in acked)) == len(acked), "duplicate ack"

    # prefix property: every surviving acked write sits at exactly its
    # acknowledged position; under fsync none may be missing at all
    for write_seq, sql in acked:
        if write_seq <= len(writes):
            assert writes[write_seq - 1].sql == sql, (
                f"commit {write_seq} reordered"
            )
        else:
            assert wal_sync != "fsync" and power_loss, (
                f"acked write {write_seq} lost under wal_sync=fsync"
            )

    # recover, and compare to the serial-replay oracle bit-for-bit
    recovered = SQLSession(make_catalog(seed), data_dir=data_dir)
    oracle_catalog = make_catalog(seed)
    with SQLSession(oracle_catalog) as oracle:
        for record in records:
            oracle.execute(record.sql)
    for name in ("events", "metrics"):
        assert_table_equal(
            recovered.catalog.table(name), oracle_catalog.table(name), name
        )
    recovered.close()
    return len(writes)


@pytest.mark.parametrize("clients", [2, 4, 8])
@pytest.mark.parametrize("crash_point", CRASH_POINTS)
def test_kill_anywhere_fsync(clients, crash_point, tmp_path):
    """Crash at every registered durability point, at 2/4/8 clients."""
    run_crash_chaos(
        clients,
        seed=9_000 + clients * 10 + CRASH_POINTS.index(crash_point),
        crash_point=crash_point,
        wal_sync="fsync",
        power_loss=True,  # a no-op under fsync: synced == written
        data_dir=str(tmp_path),
    )


@pytest.mark.parametrize("wal_sync", ["group", "off"])
def test_power_loss_keeps_durable_prefix(wal_sync, tmp_path):
    """group/off may lose the un-fsynced tail, never tear the prefix."""
    run_crash_chaos(
        4,
        seed=77 if wal_sync == "group" else 78,
        crash_point="wal.append",
        wal_sync=wal_sync,
        power_loss=True,
        data_dir=str(tmp_path),
    )


@pytest.mark.parametrize("seed", [111, 222, 333])
def test_crash_fixed_seeds(seed, tmp_path):
    run_crash_chaos(
        4, seed=seed, crash_point="wal.append", data_dir=str(tmp_path)
    )


def test_rotating_seed(capsys, tmp_path):
    seed = int(os.environ.get("CHAOS_SEED", "515151"))
    with capsys.disabled():
        print(f"\n[crash-chaos] rotating seed = {seed} (set CHAOS_SEED to reproduce)")
    for i, point in enumerate(CRASH_POINTS):
        # probability 1.0: whatever the schedule, the kill happens at
        # the first visit of the rotating point — always a real crash
        run_crash_chaos(
            4,
            seed=seed + i,
            crash_point=point,
            probability=1.0,
            data_dir=str(tmp_path / point),
        )


# ----------------------------------------------------------------------
# real process kill
# ----------------------------------------------------------------------
CHILD_SCRIPT = textwrap.dedent(
    """
    import os, sys
    import numpy as np
    from repro.sql import SQLSession
    from repro.storage import Catalog, Table
    from repro.testing import FaultInjector, FaultRule, inject

    point, data_dir, ack_path = sys.argv[1], sys.argv[2], sys.argv[3]
    cat = Catalog()
    cat.register(Table.from_arrays("t", {
        "a": np.arange(64, dtype=np.int64),
        "b": np.zeros(64),
    }))
    session = SQLSession(
        cat, data_dir=data_dir, wal_sync="fsync", checkpoint_interval=4
    )
    injector = FaultInjector(
        seed=7, rules={point: FaultRule(action="raise", max_fires=1)}
    )
    ack = open(ack_path, "a", encoding="utf-8")
    with inject(injector):
        for i in range(24):
            sql = f"UPDATE t SET b = b + 1 WHERE a % 7 = {i % 7}"
            try:
                session.execute(sql)
            except Exception:
                os._exit(17)  # die on the spot: no close, no atexit
            ack.write(sql + chr(10))
            ack.flush()
            os.fsync(ack.fileno())
    os._exit(0)
    """
)


@pytest.mark.parametrize("crash_point", CRASH_POINTS)
def test_real_process_kill(crash_point, tmp_path):
    """A child process hard-exits at the fault point; the parent recovers."""
    data_dir = str(tmp_path / "data")
    ack_path = str(tmp_path / "acked.txt")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, crash_point, data_dir, ack_path],
        env=env,
        timeout=60,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 17, (proc.returncode, proc.stderr)

    acked = [line for line in open(ack_path, encoding="utf-8").read().splitlines() if line]
    records = recovery.read_records(data_dir)
    writes = [r for r in records if r.kind == "write"]
    # fsync policy: every write the child acknowledged before dying is
    # in the durable log, in order, with nothing duplicated
    assert [r.sql for r in writes[: len(acked)]] == acked
    assert len(writes) - len(acked) <= 1  # at most the unacked final commit

    cat = Catalog()
    cat.register(
        Table.from_arrays(
            "t", {"a": np.arange(64, dtype=np.int64), "b": np.zeros(64)}
        )
    )
    recovered = SQLSession(cat, data_dir=data_dir)
    expected = np.zeros(64)
    for sql in (r.sql for r in writes):
        rem = int(sql.rsplit("= ", 1)[1])
        expected[np.arange(64) % 7 == rem] += 1
    np.testing.assert_array_equal(recovered.catalog.table("t").column("b"), expected)
    recovered.close()
