"""Chaos suite: seeded fault injection vs. bit-identical serial replay.

Concurrent wire clients fire a randomized mix of reads, writes,
deadline overrides, cancels and forced disconnects at one
:class:`SQLServer` while the fault injection harness
(:mod:`repro.testing.faults`) sleeps worker morsels, dispatch threads
and outbound frames on a seeded schedule.  Whatever subset of
statements survives, the server's committed write log must be gapless,
every commit a client saw acknowledged must be in it, and replaying it
serially on a fresh catalog must reproduce the final tables
**bit-identically** — faults may abort statements, but never tear,
lose, or duplicate a commit.

The fixed-seed runs keep CI deterministic; ``test_rotating_seed``
honors a ``CHAOS_SEED`` environment variable (and logs the seed it
used) so scheduled CI can walk fresh schedules without losing
reproducibility.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.server import (
    AsyncSQLClient,
    ConnectionClosedError,
    RetryPolicy,
    ServerError,
    SQLServer,
)
from repro.sql import SQLSession
from repro.storage import Catalog, PartitionedTable, Table
from repro.testing import FaultInjector, FaultRule, inject

TIMEOUT = 180.0
N_EVENTS = 4_000
N_METRICS = 3_000
STATEMENTS_PER_CLIENT = 12


def run_async(coro, timeout: float = TIMEOUT):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def make_catalog(seed: int) -> Catalog:
    """events (plain) + metrics (4-way partitioned), seeded."""
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(N_EVENTS, dtype=np.int64),
                "grp": rng.integers(0, 30, N_EVENTS).astype(np.int64),
                "val": rng.random(N_EVENTS),
            },
        )
    )
    metrics = Table.from_arrays(
        "metrics",
        {
            "mid": np.arange(N_METRICS, dtype=np.int64),
            "bucket": rng.integers(0, 12, N_METRICS).astype(np.int64),
            "v": rng.random(N_METRICS),
        },
    )
    catalog.register(PartitionedTable.from_table(metrics, "mid", 4))
    return catalog


def assert_table_equal(a, b, name: str) -> None:
    if isinstance(a, PartitionedTable):
        assert isinstance(b, PartitionedTable)
        assert a.num_partitions == b.num_partitions, name
        pairs = list(zip(a.partitions, b.partitions))
    else:
        pairs = [(a, b)]
    for i, (pa, pb) in enumerate(pairs):
        assert pa.num_rows == pb.num_rows, (name, i)
        for col in pa.schema.names:
            x, y = pa.column(col), pb.column(col)
            assert x.dtype == y.dtype, (name, i, col)
            np.testing.assert_array_equal(x, y, err_msg=f"{name}[{i}].{col}")


READS = [
    "SELECT COUNT(*) AS n FROM events WHERE grp < {k}",
    "SELECT SUM(val) AS s FROM events WHERE val >= 0 AND grp % 3 = {m3}",
    "SELECT grp, COUNT(*) AS n FROM events GROUP BY grp ORDER BY grp",
    "SELECT COUNT(*) AS n FROM metrics WHERE bucket = {b}",
    "SELECT bucket, SUM(v) AS s FROM metrics GROUP BY bucket ORDER BY bucket",
]
WRITES = [
    "UPDATE events SET val = val * 1.02 WHERE grp = {k}",
    "DELETE FROM events WHERE eid % 211 = {m7}",
    "INSERT INTO events (eid, grp, val) VALUES ({ins}, {k}, 0.5)",
    "UPDATE metrics SET v = v / 1.01 WHERE bucket = {b}",
]


def chaos_rules():
    """Sleep-flavored faults at every injection point that can't hang.

    ``block`` rules are deliberately absent: chaos must keep moving so
    the run terminates without hand-releasing injector events.
    """
    return {
        "worker.morsel": FaultRule(action="sleep", sleep_s=0.01, probability=0.10),
        "session.dispatch": FaultRule(action="sleep", sleep_s=0.03, probability=0.20),
        "server.send": FaultRule(action="sleep", sleep_s=0.01, probability=0.10),
    }


async def chaos_client(port, client_id, seed, observed_commits):
    """One seeded client: reads, writes, deadlines, cancels, drops."""
    rng = np.random.default_rng(seed * 997 + client_id)
    cli = await AsyncSQLClient.connect(
        "127.0.0.1",
        port,
        retry=RetryPolicy(max_attempts=3, base_backoff_ms=10.0, seed=client_id),
    )
    try:
        for step in range(STATEMENTS_PER_CLIENT):
            params = {
                "k": int(rng.integers(0, 30)),
                "m3": int(rng.integers(0, 3)),
                "m7": int(rng.integers(0, 7)),
                "b": int(rng.integers(0, 12)),
                # unique eid per (client, step): inserts never collide
                "ins": 1_000_000 + client_id * 1_000 + step,
            }
            if rng.random() < 0.55:
                sql = READS[rng.integers(len(READS))].format(**params)
            else:
                sql = WRITES[rng.integers(len(WRITES))].format(**params)
            timeout_ms = int(rng.integers(20, 200)) if rng.random() < 0.25 else None
            mode = rng.random()
            try:
                if mode < 0.10:
                    # sever the transport; the next statement redials
                    cli._writer.close()
                    result = await cli.execute(sql, timeout_ms=timeout_ms)
                elif mode < 0.30:
                    sid = await cli.submit(sql, timeout_ms=timeout_ms)
                    await asyncio.sleep(float(rng.random()) * 0.02)
                    await cli.cancel(sid)
                    result = await cli.wait(sid)  # result or query-cancelled
                else:
                    result = await cli.execute(sql, timeout_ms=timeout_ms)
            except (ServerError, ConnectionClosedError, ConnectionError, OSError):
                continue  # aborted statement: fine, replay decides truth
            if result.stats and result.stats["kind"] == "write":
                observed_commits.append(result.stats["write_seq"])
    finally:
        await cli.aclose()


def run_chaos(clients: int, seed: int) -> int:
    """One chaos run + replay check; returns the number of commits."""
    injector = FaultInjector(seed=seed, rules=chaos_rules())
    observed_commits = []

    async def main():
        async with SQLServer(
            make_catalog(seed),
            parallelism=2,
            morsel_rows=1024,
            session_max_inflight=max(2, clients // 2),
            session_max_queued=clients * STATEMENTS_PER_CLIENT,
            stats_history=10_000,
        ) as srv:
            with inject(injector):
                await asyncio.gather(
                    *(
                        chaos_client(srv.port, i, seed, observed_commits)
                        for i in range(clients)
                    )
                )
            # the committed write log, in commit order
            writes = sorted(
                (s.write_seq, s.sql) for s in srv.stats() if s.kind == "write"
            )
            assert srv.session.commit_count == len(writes)
            return writes, srv.session.catalog

    writes, catalog = run_async(main())

    # no lost or duplicated commits: the log is gapless, and every
    # commit a client saw acknowledged appears in it exactly once
    assert [seq for seq, _ in writes] == list(range(1, len(writes) + 1)), (
        "commit sequence has gaps or duplicates"
    )
    assert len(observed_commits) == len(set(observed_commits)), (
        "a commit was acknowledged twice"
    )
    assert set(observed_commits) <= {seq for seq, _ in writes}, (
        "a client observed a commit missing from the log"
    )

    # bit-identical serial replay on a fresh catalog
    replay_catalog = make_catalog(seed)
    with SQLSession(replay_catalog) as replay:
        for _, sql in writes:
            replay.execute(sql)
    for name in ("events", "metrics"):
        assert_table_equal(catalog.table(name), replay_catalog.table(name), name)
    return len(writes)


@pytest.mark.parametrize("clients", [2, 4, 8])
def test_chaos_replay_is_bit_identical(clients):
    run_chaos(clients, seed=5_000 + clients)


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_chaos_fixed_seeds(seed):
    run_chaos(4, seed=seed)


def test_rotating_seed(capsys):
    seed = int(os.environ.get("CHAOS_SEED", "424242"))
    with capsys.disabled():
        print(f"\n[chaos] rotating seed = {seed} (set CHAOS_SEED to reproduce)")
    run_chaos(4, seed=seed)
