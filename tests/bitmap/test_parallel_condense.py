"""Parallel condense (§4.2.4): equivalence, edge cases, knob plumbing.

The parallel condense path repacks each post-condense shard from a
disjoint logical bit range on a :class:`~repro.bitmap.parallel.
ShardTaskPool`; this suite pins that it is bit-identical to the serial
single-pass repack (words, start values and lost counters compared
exactly), covers the condense edge cases, and checks the factory /
PatchIndex knob forwarding that enables auto-condense in the first
place.
"""

import numpy as np
import pytest

from repro.bitmap import ParallelBulkDeleter, ShardedBitmap, ShardTaskPool
from repro.core import NearlySortedColumn, PatchIndex

SMALL_SHARD = 128  # bits; small enough that tests span many shards


def assert_bitmaps_identical(a: ShardedBitmap, b: ShardedBitmap) -> None:
    assert len(a) == len(b)
    assert a.num_shards == b.num_shards
    np.testing.assert_array_equal(a._words, b._words)
    np.testing.assert_array_equal(a._starts, b._starts)
    np.testing.assert_array_equal(a._lost, b._lost)
    np.testing.assert_array_equal(a.to_bool_array(), b.to_bool_array())


def build_pair(bits: np.ndarray) -> tuple:
    return (
        ShardedBitmap.from_bool_array(bits, shard_bits=SMALL_SHARD),
        ShardedBitmap.from_bool_array(bits, shard_bits=SMALL_SHARD),
    )


class TestParallelSerialEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_randomized_workloads(self, workers):
        rng = np.random.default_rng(workers)
        for _ in range(8):
            n = int(rng.integers(1, 40 * SMALL_SHARD))
            bits = rng.random(n) < rng.random()
            serial, parallel = build_pair(bits)
            for _ in range(int(rng.integers(1, 4))):
                if len(serial) < 2:
                    break
                k = int(rng.integers(1, max(2, len(serial) // 4)))
                dels = np.sort(rng.choice(len(serial), size=k, replace=False))
                serial.bulk_delete(dels)
                parallel.bulk_delete(dels)
            serial.condense()
            with ShardTaskPool(max_workers=workers) as pool:
                parallel.condense(executor=pool)
            assert_bitmaps_identical(serial, parallel)

    def test_single_bit_deletes_then_condense(self):
        bits = np.ones(5 * SMALL_SHARD, dtype=bool)
        serial, parallel = build_pair(bits)
        for pos in [0, SMALL_SHARD - 1, SMALL_SHARD, 3 * SMALL_SHARD + 7]:
            serial.delete(pos)
            parallel.delete(pos)
        serial.condense()
        with ShardTaskPool(max_workers=4) as pool:
            parallel.condense(executor=pool)
        assert_bitmaps_identical(serial, parallel)

    def test_attached_executor_used_by_condense(self):
        rng = np.random.default_rng(7)
        bits = rng.random(10 * SMALL_SHARD) < 0.5
        serial = ShardedBitmap.from_bool_array(bits, shard_bits=SMALL_SHARD)
        with ShardTaskPool(max_workers=4) as pool:
            parallel = ShardedBitmap.from_bool_array(
                bits, shard_bits=SMALL_SHARD, condense_executor=pool
            )
            dels = np.arange(0, 4 * SMALL_SHARD, 3, dtype=np.int64)
            serial.bulk_delete(dels)
            parallel.bulk_delete(dels)
            serial.condense()
            parallel.condense()  # picks the attached pool up
            assert_bitmaps_identical(serial, parallel)


class TestCondenseEdgeCases:
    def test_empty_bitmap(self):
        bm = ShardedBitmap(0, shard_bits=SMALL_SHARD)
        bm.condense()
        assert len(bm) == 0 and bm.count() == 0
        with ShardTaskPool(max_workers=2) as pool:
            bm.condense(executor=pool)
        assert len(bm) == 0 and bm.count() == 0 and bm.num_shards == 1

    def test_condense_after_boundary_spanning_bulk_delete(self):
        bits = np.zeros(6 * SMALL_SHARD, dtype=bool)
        bits[:: SMALL_SHARD // 4] = True
        serial, parallel = build_pair(bits)
        # a contiguous run of deletes crossing two shard boundaries
        dels = np.arange(SMALL_SHARD - 10, 3 * SMALL_SHARD + 10, dtype=np.int64)
        expect = np.delete(bits, dels)
        for bm in (serial, parallel):
            bm.bulk_delete(dels)
        serial.condense()
        with ShardTaskPool(max_workers=4) as pool:
            parallel.condense(executor=pool)
        assert_bitmaps_identical(serial, parallel)
        np.testing.assert_array_equal(serial.to_bool_array(), expect)
        assert serial.lost_bits() == 0
        assert serial.utilization() >= expect.size / (serial.num_shards * SMALL_SHARD)

    def test_auto_condense_exactly_at_threshold_boundary(self):
        # capacity = 4 shards * 128 bits; threshold = 2/512: two lost
        # bits sit exactly AT the threshold (no condense), the third
        # strictly exceeds it and fires.
        capacity = 4 * SMALL_SHARD
        bm = ShardedBitmap(
            capacity, shard_bits=SMALL_SHARD, condense_threshold=2 / capacity
        )
        bm.delete(0)
        bm.delete(0)
        assert bm.lost_bits() == 2  # at the boundary: untouched
        bm.delete(0)
        assert bm.lost_bits() == 0  # strictly above: condensed
        assert len(bm) == capacity - 3

    def test_condense_preserves_set_bits_after_heavy_deletes(self):
        rng = np.random.default_rng(11)
        bits = rng.random(8 * SMALL_SHARD) < 0.7
        bm = ShardedBitmap.from_bool_array(bits, shard_bits=SMALL_SHARD)
        live = bits.copy()
        for _ in range(6):
            dels = np.sort(
                rng.choice(len(bm), size=max(1, len(bm) // 3), replace=False)
            )
            bm.bulk_delete(dels)
            live = np.delete(live, dels)
        with ShardTaskPool(max_workers=3) as pool:
            bm.condense(executor=pool)
        np.testing.assert_array_equal(bm.to_bool_array(), live)
        assert bm.lost_bits() == 0


class TestFactoryThresholdForwarding:
    """Regression: the factories silently dropped ``condense_threshold``."""

    def test_from_bool_array_forwards_threshold(self):
        bm = ShardedBitmap.from_bool_array(
            np.ones(4 * SMALL_SHARD, dtype=bool),
            shard_bits=SMALL_SHARD,
            condense_threshold=0.0,
        )
        bm.delete(0)
        # any lost bit strictly exceeds 0.0, so auto-condense fired
        assert bm.lost_bits() == 0
        assert len(bm) == 4 * SMALL_SHARD - 1

    def test_from_positions_forwards_threshold(self):
        bm = ShardedBitmap.from_positions(
            [0, SMALL_SHARD, 2 * SMALL_SHARD],
            3 * SMALL_SHARD,
            shard_bits=SMALL_SHARD,
            condense_threshold=0.0,
        )
        bm.bulk_delete([1, SMALL_SHARD + 1])
        assert bm.lost_bits() == 0
        assert bm.count() == 3

    def test_factories_without_threshold_never_condense(self):
        bm = ShardedBitmap.from_bool_array(
            np.ones(4 * SMALL_SHARD, dtype=bool), shard_bits=SMALL_SHARD
        )
        bm.delete(0)
        assert bm.lost_bits() == 1


class TestPatchIndexCondensePlumbing:
    def _table(self, n=4096):
        from repro.storage import Table

        values = np.arange(n, dtype=np.int64)
        values[:: n // 8] = -1  # a few NSC violations
        return Table.from_arrays("t", {"k": np.arange(n), "v": values})

    def test_parallelism_knob_shares_pool_for_delete_and_condense(self):
        table = self._table()
        index = PatchIndex(
            table,
            "v",
            NearlySortedColumn(),
            shard_bits=SMALL_SHARD,
            parallelism=4,
            condense_threshold=0.01,
        )
        assert isinstance(index._deleter, ParallelBulkDeleter)
        assert index._bitmap.condense_executor is index._deleter
        before = index.patch_mask()
        dels = np.arange(0, table.num_rows, 5, dtype=np.int64)
        index.remove_rows(dels)
        np.testing.assert_array_equal(index.patch_mask(), np.delete(before, dels))
        index.condense()
        assert index._bitmap.lost_bits() == 0
        np.testing.assert_array_equal(index.patch_mask(), np.delete(before, dels))

    def test_serial_index_matches_parallel_index(self):
        table = self._table()
        serial = PatchIndex(table, "v", NearlySortedColumn(), shard_bits=SMALL_SHARD)
        parallel = PatchIndex(
            table, "v", NearlySortedColumn(), shard_bits=SMALL_SHARD, parallelism=8
        )
        dels = np.sort(
            np.random.default_rng(3).choice(table.num_rows, size=700, replace=False)
        )
        serial.remove_rows(dels)
        parallel.remove_rows(dels)
        serial.condense()
        parallel.condense()
        assert_bitmaps_identical(serial._bitmap, parallel._bitmap)

    def test_invalid_parallelism_rejected(self):
        table = self._table(256)
        with pytest.raises(ValueError):
            PatchIndex(table, "v", NearlySortedColumn(), parallelism=0)
        with pytest.raises(TypeError):
            PatchIndex(table, "v", NearlySortedColumn(), parallelism=2.5)

    def test_partitioned_table_shares_one_maintenance_pool(self):
        from repro.core import PatchIndexManager
        from repro.storage import Catalog, PartitionedTable

        table = self._table(8192)
        parted = PartitionedTable.from_table(table, "k", 4)
        catalog = Catalog()
        catalog.register(parted)
        manager = PatchIndexManager(catalog)
        handle = manager.create(
            parted, "v", NearlySortedColumn(), parallelism=4, shard_bits=SMALL_SHARD
        )
        pools = {id(p.index._deleter) for p in handle.parts}
        assert len(pools) == 1  # one pool for the whole table, not per partition
        assert handle.parts[0].index._deleter is handle._pool
        assert not handle.parts[0].index._owns_deleter
        # dml through a partition drives the shared pool without issue
        parted.delete_global(np.arange(0, 4096, 3, dtype=np.int64))
        assert handle.verify()
        manager.drop(parted.name, "v")  # closes the shared pool

    def test_owned_pool_closed_on_manager_drop(self):
        from repro.core import PatchIndexManager
        from repro.storage import Catalog

        table = self._table(1024)
        catalog = Catalog()
        catalog.register(table)
        manager = PatchIndexManager(catalog)
        handle = manager.create(table, "v", NearlySortedColumn(), parallelism=4)
        deleter = handle.index._deleter
        deleter.run_tasks([lambda: None, lambda: None])  # spin the pool up
        assert deleter._pool is not None
        manager.drop(table.name, "v")
        assert deleter._pool is None  # released by detach

    def test_identifier_design_condense_is_noop(self):
        table = self._table(256)
        index = PatchIndex(table, "v", NearlySortedColumn(), design="identifier")
        before = index.patch_rowids()
        index.condense()
        np.testing.assert_array_equal(index.patch_rowids(), before)
