"""Unit tests for the ordinary bitmap baseline."""

import numpy as np
import pytest

from repro.bitmap import PlainBitmap


class TestBasics:
    def test_new_bitmap_is_zero(self):
        bm = PlainBitmap(100)
        assert len(bm) == 100
        assert bm.count() == 0
        assert not bm.get(0)
        assert not bm.get(99)

    def test_set_get_unset(self):
        bm = PlainBitmap(70)
        bm.set(0)
        bm.set(69)
        assert bm.get(0) and bm.get(69)
        bm.unset(0)
        assert not bm.get(0)
        assert bm.count() == 1

    def test_out_of_range_raises(self):
        bm = PlainBitmap(10)
        with pytest.raises(IndexError):
            bm.get(10)
        with pytest.raises(IndexError):
            bm.set(-1)
        with pytest.raises(IndexError):
            bm.delete(10)

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            PlainBitmap(-1)

    def test_from_positions(self):
        bm = PlainBitmap.from_positions([1, 5, 64, 99], 100)
        assert bm.positions().tolist() == [1, 5, 64, 99]

    def test_from_positions_out_of_range(self):
        with pytest.raises(IndexError):
            PlainBitmap.from_positions([100], 100)

    def test_from_bool_array(self):
        bits = np.zeros(130, dtype=bool)
        bits[[0, 64, 129]] = True
        bm = PlainBitmap.from_bool_array(bits)
        np.testing.assert_array_equal(bm.to_bool_array(), bits)

    def test_iteration(self):
        bm = PlainBitmap.from_positions([3, 7], 10)
        assert list(bm) == [3, 7]


class TestGrowth:
    def test_append(self):
        bm = PlainBitmap(0)
        bm.append(True)
        bm.append(False)
        bm.append(True)
        assert len(bm) == 3
        assert bm.positions().tolist() == [0, 2]

    def test_extend_across_word_boundary(self):
        bm = PlainBitmap(60)
        bm.extend(100)
        assert len(bm) == 160
        bm.set(159)
        assert bm.get(159)

    def test_extend_negative_raises(self):
        with pytest.raises(ValueError):
            PlainBitmap(5).extend(-1)


class TestDelete:
    def test_delete_shifts_subsequent_bits(self):
        bm = PlainBitmap.from_positions([2, 5, 9], 10)
        bm.delete(3)
        assert len(bm) == 9
        assert bm.positions().tolist() == [2, 4, 8]

    def test_delete_set_bit_removes_it(self):
        bm = PlainBitmap.from_positions([4], 10)
        bm.delete(4)
        assert bm.count() == 0

    def test_delete_matches_list_reference(self):
        rng = np.random.default_rng(0)
        bits = (rng.random(500) < 0.4).tolist()
        bm = PlainBitmap.from_bool_array(np.array(bits))
        for _ in range(100):
            pos = int(rng.integers(0, len(bits)))
            bm.delete(pos)
            del bits[pos]
        np.testing.assert_array_equal(bm.to_bool_array(), np.array(bits))

    def test_bulk_delete_matches_reference(self):
        rng = np.random.default_rng(1)
        bits = (rng.random(300) < 0.5).tolist()
        bm = PlainBitmap.from_bool_array(np.array(bits))
        targets = sorted(rng.choice(300, size=40, replace=False).tolist())
        bm.bulk_delete(targets)
        for pos in reversed(targets):
            del bits[pos]
        np.testing.assert_array_equal(bm.to_bool_array(), np.array(bits))

    def test_delete_last_bit(self):
        bm = PlainBitmap.from_positions([9], 10)
        bm.delete(9)
        assert len(bm) == 9
        assert bm.count() == 0


class TestMemory:
    def test_memory_grows_with_length(self):
        small = PlainBitmap(64)
        large = PlainBitmap(64 * 1000)
        assert large.memory_bytes() > small.memory_bytes()
