"""Unit tests for the sharded bitmap (paper §4)."""

import numpy as np
import pytest

from repro.bitmap import ParallelBulkDeleter, ShardedBitmap
from repro.bitmap import kernels

SMALL_SHARD = 128  # tiny shards force cross-shard behaviour in tests


class TestConstruction:
    def test_invalid_shard_bits(self):
        with pytest.raises(ValueError):
            ShardedBitmap(10, shard_bits=63)
        with pytest.raises(ValueError):
            ShardedBitmap(10, shard_bits=0)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            ShardedBitmap(-5)

    def test_shard_count(self):
        bm = ShardedBitmap(1000, shard_bits=SMALL_SHARD)
        assert bm.num_shards == 8  # ceil(1000/128)
        assert len(bm) == 1000

    def test_non_power_of_two_shard_size_supported(self):
        bm = ShardedBitmap(500, shard_bits=192)
        bm.set(499)
        assert bm.get(499)
        bm.delete(100)
        assert bm.get(498)

    def test_power_of_two_vs_fallback_shard_lookup(self):
        """§4.2.1: power-of-two shard sizes use the shift-based initial
        shard guess; other multiples of 64 fall back to a search.  Both
        paths must agree with a plain list reference bit-for-bit."""
        pow2 = ShardedBitmap(1500, shard_bits=256)
        fallback = ShardedBitmap(1500, shard_bits=192)
        assert pow2._shard_shift is not None  # fast path engaged
        assert fallback._shard_shift is None  # non-pow2 fallback engaged

        rng = np.random.default_rng(11)
        bits = (rng.random(1500) < 0.4).tolist()
        for pos, bit in enumerate(bits):
            if bit:
                pow2.set(pos)
                fallback.set(pos)
        for _ in range(200):
            pos = int(rng.integers(0, len(bits)))
            pow2.delete(pos)
            fallback.delete(pos)
            del bits[pos]
        reference = np.array(bits)
        np.testing.assert_array_equal(pow2.to_bool_array(), reference)
        np.testing.assert_array_equal(fallback.to_bool_array(), reference)
        assert len(pow2) == len(fallback) == len(bits)


class TestBitAccess:
    def test_set_get_unset(self):
        bm = ShardedBitmap(1000, shard_bits=SMALL_SHARD)
        for pos in (0, 127, 128, 500, 999):
            bm.set(pos)
            assert bm.get(pos)
        bm.unset(128)
        assert not bm.get(128)
        assert bm.count() == 4

    def test_out_of_range(self):
        bm = ShardedBitmap(100, shard_bits=SMALL_SHARD)
        with pytest.raises(IndexError):
            bm.get(100)
        with pytest.raises(IndexError):
            bm.set(-1)

    def test_set_many_matches_individual_sets(self):
        rng = np.random.default_rng(2)
        pos = rng.choice(5000, size=700, replace=False)
        a = ShardedBitmap(5000, shard_bits=SMALL_SHARD)
        a.set_many(pos)
        b = ShardedBitmap(5000, shard_bits=SMALL_SHARD)
        for p in pos:
            b.set(int(p))
        np.testing.assert_array_equal(a.to_bool_array(), b.to_bool_array())

    def test_set_many_out_of_range(self):
        bm = ShardedBitmap(10, shard_bits=SMALL_SHARD)
        with pytest.raises(IndexError):
            bm.set_many([3, 10])

    def test_from_positions(self):
        bm = ShardedBitmap.from_positions([1, 200, 900], 1000, shard_bits=SMALL_SHARD)
        assert bm.positions().tolist() == [1, 200, 900]


class TestDelete:
    def test_paper_figure3_example(self):
        # Figure 3: deleting bit 5 shifts subsequent bits of the shard and
        # decrements subsequent start values.
        bm = ShardedBitmap(512, shard_bits=SMALL_SHARD)
        bm.set(5)
        bm.set(6)
        bm.set(26)
        bm.set(200)
        bm.delete(5)
        # former bit 6 now at 5, former 26 at 25, former 200 at 199
        assert bm.positions().tolist() == [5, 25, 199]
        assert len(bm) == 511

    def test_delete_matches_list_reference(self):
        rng = np.random.default_rng(3)
        bits = (rng.random(1000) < 0.35).tolist()
        bm = ShardedBitmap.from_bool_array(np.array(bits), shard_bits=SMALL_SHARD)
        for _ in range(300):
            pos = int(rng.integers(0, len(bits)))
            bm.delete(pos)
            del bits[pos]
        np.testing.assert_array_equal(bm.to_bool_array(), np.array(bits))
        assert len(bm) == len(bits)

    def test_delete_tracks_lost_bits(self):
        bm = ShardedBitmap(512, shard_bits=SMALL_SHARD)
        bm.delete(0)
        assert bm.lost_bits() == 1
        bm.delete(0)
        assert bm.lost_bits() == 2

    def test_delete_in_last_shard_loses_nothing(self):
        bm = ShardedBitmap(512, shard_bits=SMALL_SHARD)
        bm.delete(511)
        assert bm.lost_bits() == 0

    def test_access_after_cross_shard_deletes(self):
        # Deleting from shard 0 moves the logical window of shard 1.
        bm = ShardedBitmap(256, shard_bits=SMALL_SHARD)
        bm.set(130)
        for _ in range(5):
            bm.delete(0)
        assert bm.get(125)
        assert bm.positions().tolist() == [125]

    def test_scalar_kernel_delete(self):
        bm = ShardedBitmap.from_positions([10, 70], 128, shard_bits=SMALL_SHARD)
        bm.delete(5, kernel=kernels.shift_down_scalar)
        assert bm.positions().tolist() == [9, 69]


class TestBulkDelete:
    def run_reference(self, n, density, ndel, seed, shard_bits=SMALL_SHARD, executor=None):
        rng = np.random.default_rng(seed)
        bits = (rng.random(n) < density).tolist()
        bm = ShardedBitmap.from_bool_array(np.array(bits), shard_bits=shard_bits)
        targets = sorted(rng.choice(n, size=ndel, replace=False).tolist())
        bm.bulk_delete(targets, executor=executor)
        for pos in reversed(targets):
            del bits[pos]
        np.testing.assert_array_equal(bm.to_bool_array(), np.array(bits))
        assert len(bm) == len(bits)

    def test_bulk_delete_matches_reference(self):
        self.run_reference(2000, 0.4, 300, seed=4)

    def test_bulk_delete_dense_targets(self):
        self.run_reference(1000, 0.9, 600, seed=5)

    def test_bulk_delete_single_shard(self):
        self.run_reference(100, 0.5, 30, seed=6)

    def test_bulk_delete_parallel_executor(self):
        with ParallelBulkDeleter(max_workers=4) as ex:
            self.run_reference(4000, 0.3, 700, seed=7, executor=ex)

    def test_bulk_delete_empty(self):
        bm = ShardedBitmap(100, shard_bits=SMALL_SHARD)
        bm.bulk_delete([])
        assert len(bm) == 100

    def test_bulk_delete_out_of_range(self):
        bm = ShardedBitmap(100, shard_bits=SMALL_SHARD)
        with pytest.raises(IndexError):
            bm.bulk_delete([100])

    def test_bulk_delete_duplicates_collapse(self):
        bm = ShardedBitmap.from_positions([50], 100, shard_bits=SMALL_SHARD)
        bm.bulk_delete([10, 10, 10])
        assert len(bm) == 99
        assert bm.positions().tolist() == [49]

    def test_equivalent_to_sequence_of_single_deletes(self):
        rng = np.random.default_rng(8)
        bits = rng.random(1500) < 0.5
        a = ShardedBitmap.from_bool_array(bits, shard_bits=SMALL_SHARD)
        b = ShardedBitmap.from_bool_array(bits, shard_bits=SMALL_SHARD)
        targets = sorted(rng.choice(1500, size=200, replace=False).tolist())
        a.bulk_delete(targets)
        for pos in reversed(targets):
            b.delete(pos)
        np.testing.assert_array_equal(a.to_bool_array(), b.to_bool_array())


class TestGrowth:
    def test_append_after_filling_shard(self):
        bm = ShardedBitmap(SMALL_SHARD, shard_bits=SMALL_SHARD)
        assert bm.num_shards == 1
        bm.append(True)
        assert bm.num_shards == 2
        assert bm.get(SMALL_SHARD)

    def test_extend_many(self):
        bm = ShardedBitmap(10, shard_bits=SMALL_SHARD)
        bm.extend(1000)
        assert len(bm) == 1010
        bm.set(1009)
        assert bm.get(1009)

    def test_extend_after_deletes_respects_lost_capacity(self):
        bm = ShardedBitmap(2 * SMALL_SHARD, shard_bits=SMALL_SHARD)
        bm.set(2 * SMALL_SHARD - 1)
        for _ in range(10):
            bm.delete(0)  # lose 10 bits of shard 0 capacity
        bm.extend(50)
        bm.set(len(bm) - 1)
        assert bm.get(len(bm) - 1)
        # original set bit shifted down 10 positions, still present
        assert bm.get(2 * SMALL_SHARD - 11)

    def test_append_into_partially_filled_tail(self):
        bm = ShardedBitmap(5, shard_bits=SMALL_SHARD)
        bm.append(True)
        assert len(bm) == 6
        assert bm.get(5)
        assert bm.num_shards == 1


class TestCondense:
    def test_condense_preserves_logical_content(self):
        rng = np.random.default_rng(9)
        bits = rng.random(3000) < 0.3
        bm = ShardedBitmap.from_bool_array(bits, shard_bits=SMALL_SHARD)
        targets = sorted(rng.choice(3000, size=500, replace=False).tolist())
        bm.bulk_delete(targets)
        before = bm.to_bool_array()
        assert bm.lost_bits() > 0
        bm.condense()
        assert bm.lost_bits() == 0
        np.testing.assert_array_equal(bm.to_bool_array(), before)

    def test_condense_shrinks_shard_count(self):
        bm = ShardedBitmap(10 * SMALL_SHARD, shard_bits=SMALL_SHARD)
        bm.bulk_delete(list(range(5 * SMALL_SHARD)))
        bm.condense()
        assert bm.num_shards == 5
        assert bm.utilization() == 1.0

    def test_auto_condense_triggered_by_threshold(self):
        bm = ShardedBitmap(
            4 * SMALL_SHARD, shard_bits=SMALL_SHARD, condense_threshold=0.05
        )
        bm.set(4 * SMALL_SHARD - 1)
        for _ in range(60):
            bm.delete(0)
        # condense triggered along the way: lost bits were reset at least once,
        # so far fewer than the 60 deletes remain un-reclaimed
        assert bm.lost_bits() < 60 * 0.5
        assert bm.get(len(bm) - 1)

    def test_operations_after_condense(self):
        bm = ShardedBitmap.from_positions([100, 200], 300, shard_bits=SMALL_SHARD)
        bm.bulk_delete([0, 1, 2])
        bm.condense()
        bm.delete(97)  # was position 100 before the three deletes
        assert bm.positions().tolist() == [196]


class TestIntrospection:
    def test_overhead_fraction_matches_formula(self):
        bm = ShardedBitmap(1 << 20, shard_bits=1 << 14)
        assert bm.overhead_fraction() == pytest.approx(64 / (1 << 14))

    def test_memory_includes_metadata(self):
        bm = ShardedBitmap(1 << 16, shard_bits=1 << 10)
        assert bm.memory_bytes() > (1 << 16) // 8

    def test_utilization_decreases_with_lost_bits(self):
        bm = ShardedBitmap(4 * SMALL_SHARD, shard_bits=SMALL_SHARD)
        u0 = bm.utilization()
        bm.delete(0)
        assert bm.utilization() < u0

    def test_count_and_positions_agree(self):
        rng = np.random.default_rng(10)
        bits = rng.random(2000) < 0.2
        bm = ShardedBitmap.from_bool_array(bits, shard_bits=SMALL_SHARD)
        assert bm.count() == len(bm.positions()) == int(bits.sum())

    def test_iter_yields_positions(self):
        bm = ShardedBitmap.from_positions([4, 300], 400, shard_bits=SMALL_SHARD)
        assert list(bm) == [4, 300]
