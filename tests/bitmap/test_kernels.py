"""Unit tests for the word-level bit kernels."""

import numpy as np
import pytest

from repro.bitmap import kernels


def bits_of(words, n):
    return kernels.words_to_bool(words, n)


class TestBitAccess:
    def test_set_get_clear_roundtrip(self):
        words = np.zeros(4, dtype=np.uint64)
        kernels.set_bit(words, 0)
        kernels.set_bit(words, 63)
        kernels.set_bit(words, 64)
        kernels.set_bit(words, 200)
        assert kernels.get_bit(words, 0)
        assert kernels.get_bit(words, 63)
        assert kernels.get_bit(words, 64)
        assert kernels.get_bit(words, 200)
        assert not kernels.get_bit(words, 1)
        kernels.clear_bit(words, 63)
        assert not kernels.get_bit(words, 63)
        assert kernels.get_bit(words, 64)

    def test_set_bit_idempotent(self):
        words = np.zeros(1, dtype=np.uint64)
        kernels.set_bit(words, 5)
        kernels.set_bit(words, 5)
        assert kernels.popcount_words(words) == 1


class TestPackUnpack:
    def test_roundtrip_bool_words(self):
        rng = np.random.default_rng(7)
        bits = rng.random(1000) < 0.3
        words = kernels.bool_to_words(bits)
        back = kernels.words_to_bool(words, len(bits))
        np.testing.assert_array_equal(bits, back)

    def test_empty(self):
        words = kernels.bool_to_words(np.zeros(0, dtype=bool))
        assert kernels.popcount_words(words) == 0

    def test_popcount(self):
        bits = np.zeros(500, dtype=bool)
        bits[[0, 63, 64, 100, 499]] = True
        words = kernels.bool_to_words(bits)
        assert kernels.popcount_words(words) == 5


@pytest.mark.parametrize("kernel", [kernels.shift_down_vectorized, kernels.shift_down_scalar])
class TestShiftDown:
    def reference_shift(self, bits, pos):
        out = bits.copy()
        out[pos:-1] = bits[pos + 1 :]
        out[-1] = False
        return out

    def check(self, kernel, bits, pos):
        words = kernels.bool_to_words(bits)
        kernel(words, pos, len(bits))
        got = kernels.words_to_bool(words, len(bits))
        np.testing.assert_array_equal(got, self.reference_shift(bits, pos))

    def test_shift_within_single_word(self, kernel):
        bits = np.array([1, 0, 1, 1, 0, 1, 0, 0] * 4, dtype=bool)
        self.check(kernel, bits, 3)

    def test_shift_across_words(self, kernel):
        rng = np.random.default_rng(3)
        bits = rng.random(64 * 5) < 0.5
        self.check(kernel, bits, 10)

    def test_shift_from_zero(self, kernel):
        rng = np.random.default_rng(4)
        bits = rng.random(300) < 0.5
        self.check(kernel, bits, 0)

    def test_shift_at_word_boundary(self, kernel):
        rng = np.random.default_rng(5)
        bits = rng.random(256) < 0.5
        for pos in (63, 64, 127, 128):
            self.check(kernel, bits.copy(), pos)

    def test_shift_last_bit(self, kernel):
        bits = np.ones(130, dtype=bool)
        self.check(kernel, bits, 129)

    def test_shift_noop_when_bit_beyond_valid(self, kernel):
        words = kernels.bool_to_words(np.ones(64, dtype=bool))
        before = words.copy()
        kernel(words, 64, 64)
        np.testing.assert_array_equal(words, before)

    def test_random_positions_match_reference(self, kernel):
        rng = np.random.default_rng(11)
        for _ in range(25):
            n = int(rng.integers(1, 512))
            bits = rng.random(n) < 0.4
            pos = int(rng.integers(0, n))
            self.check(kernel, bits, pos)

    def test_kernels_agree(self, kernel):
        rng = np.random.default_rng(12)
        bits = rng.random(640) < 0.5
        w1 = kernels.bool_to_words(bits)
        w2 = kernels.bool_to_words(bits)
        kernels.shift_down_vectorized(w1, 77, len(bits))
        kernels.shift_down_scalar(w2, 77, len(bits))
        np.testing.assert_array_equal(w1, w2)
